//! Constraints and queries as *text*: the paper argues PCs should be
//! "checked, versioned, and tested just like any other analysis code"
//! (§1). This example keeps the whole contingency analysis in two plain
//! strings — a constraint document and a SQL query — the way it would live
//! in a repository.
//!
//! Run: `cargo run --release --example text_interfaces`

use predicate_constraints::core::{dsl, BoundEngine};
use predicate_constraints::predicate::{AttrType, Interval, Region, Schema, Value};
use predicate_constraints::storage::{parse_query, Table};

fn main() {
    // the schema + dictionaries come from the live table
    let schema = Schema::new(vec![
        ("utc", AttrType::Int),
        ("branch", AttrType::Cat),
        ("price", AttrType::Float),
    ]);
    let mut sales = Table::new(schema.clone());
    for label in ["Chicago", "New York", "Trenton"] {
        sales.intern(1, label);
    }
    sales.push_row(vec![Value::Int(1), Value::Cat(0), Value::Float(3.02)]);
    sales.push_row(vec![Value::Int(1), Value::Cat(1), Value::Float(6.71)]);

    // constraints.pc — version this file next to the analysis notebook
    let constraints = "\
# Missing-data assumptions for the Nov 11-13 outage.
# Tested against October history in CI; see PcSet::validate.
branch = 'Chicago'  => price BETWEEN 0 AND 149.99, (0, 5)
branch = 'New York' => price BETWEEN 0 AND 100.00, (0, 10)
TRUE                => price BETWEEN 0 AND 149.99, (0, 12)
";
    let mut set = dsl::parse_pcset(&sales, constraints).expect("constraint document parses");
    let mut domain = Region::full(&schema);
    domain.set_interval(1, Interval::closed(0.0, 1.0)); // outage hit Chicago + NY only
    set.set_domain(domain);
    assert!(set.is_closed(), "c1+c3-style closure over the two branches");
    println!("parsed {} constraints:", set.len());
    for pc in set.constraints() {
        println!("  {}", pc.display(&schema));
    }

    // the analyst's query, as she would actually write it
    let sql = "SELECT SUM(price) FROM sales WHERE branch = 'Chicago'";
    let query = parse_query(&sales, sql).expect("query parses");
    let report = BoundEngine::new(&set).bound(&query).expect("bound");
    println!("\n{sql}");
    println!(
        "missing-row contribution ∈ [{:.2}, {:.2}]",
        report.range.lo, report.range.hi
    );
    assert!((report.range.hi - 5.0 * 149.99).abs() < 1e-6);

    // and the overall count, with the tautology cap biting
    let sql = "SELECT COUNT(*) FROM sales";
    let query = parse_query(&sales, sql).expect("query parses");
    let report = BoundEngine::new(&set).bound(&query).expect("bound");
    println!("\n{sql}");
    println!(
        "missing-row count ∈ [{}, {}]  (the TRUE constraint caps the union at 12)",
        report.range.lo, report.range.hi
    );
    assert_eq!(report.range.hi, 12.0);

    // typos are compile-time errors, not silent wrong answers
    let err = parse_query(&sales, "SELECT SUM(price) WHERE branch = 'Bostn'").unwrap_err();
    println!("\na typo'd label is rejected: {err}");
}
