//! Quickstart: the paper's running example (§2.1 / §4.4).
//!
//! A sales table loses the Nov-11..Nov-13 rows to a network outage. The
//! analyst states predicate-constraints about the missing rows and gets a
//! deterministic range for `SELECT SUM(price)` — first with disjoint
//! day-bucket constraints, then with overlapping ones that require the
//! full cell-decomposition + MILP machinery.
//!
//! Run: `cargo run --release --example quickstart`

use predicate_constraints::core::{
    BoundEngine, FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint,
};
use predicate_constraints::predicate::{
    Atom, AttrType, Interval, Predicate, Region, Schema, Value,
};
use predicate_constraints::storage::{AggKind, AggQuery, Table};

fn main() {
    // Sales(utc, branch, price) — utc encoded as day-of-month
    let schema = Schema::new(vec![
        ("utc", AttrType::Int),
        ("branch", AttrType::Cat),
        ("price", AttrType::Float),
    ]);
    let utc = schema.expect_index("utc");
    let price = schema.expect_index("price");

    // The rows we *do* have (Nov 1..10 survived the outage).
    let mut sales = Table::new(schema.clone());
    let chicago = sales.intern(1, "Chicago");
    let newyork = sales.intern(1, "New York");
    for day in 1..=10 {
        sales.push_row(vec![
            Value::Int(day),
            Value::Cat(if day % 2 == 0 { chicago } else { newyork }),
            Value::Float(3.0 + day as f64),
        ]);
    }
    println!("certain partition: {} rows\n", sales.len());

    // ---------------------------------------------------------------
    // Disjoint constraints (§4.4, first example): per-day price ranges
    // and sale counts for the two lost days.
    // ---------------------------------------------------------------
    let mut set = PcSet::new(schema.clone());
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::bucket(utc, 11.0, 12.0)),
        ValueConstraint::none().with(price, Interval::closed(0.99, 129.99)),
        FrequencyConstraint::between(50, 100),
    ));
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::bucket(utc, 12.0, 13.0)),
        ValueConstraint::none().with(price, Interval::closed(0.99, 149.99)),
        FrequencyConstraint::between(50, 100),
    ));
    // the missing rows live in the outage window
    let mut domain = Region::full(&schema);
    domain.set_interval(utc, Interval::half_open(11.0, 13.0));
    set.set_domain(domain.clone());
    assert!(set.is_closed(), "constraints cover the outage window");

    for (i, pc) in set.constraints().iter().enumerate() {
        println!("t{}: {}", i + 1, pc.display(&schema));
    }
    let engine = BoundEngine::new(&set);
    let q = AggQuery::new(AggKind::Sum, price, Predicate::always());
    let report = engine.bound(&q).expect("bound");
    println!(
        "\nSUM(price) over the missing days ∈ [{:.2}, {:.2}]   (paper: [99.00, 27998.00])",
        report.range.lo, report.range.hi
    );

    // ---------------------------------------------------------------
    // Overlapping constraints (§4.4, second example): t2 now spans both
    // days and *interacts* with t1 — the optimal allocation is no longer
    // obvious, and the engine decomposes cells and solves a MILP.
    // ---------------------------------------------------------------
    let mut set = PcSet::new(schema.clone());
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::bucket(utc, 11.0, 12.0)),
        ValueConstraint::none().with(price, Interval::closed(0.99, 129.99)),
        FrequencyConstraint::between(50, 100),
    ));
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::bucket(utc, 11.0, 13.0)),
        ValueConstraint::none().with(price, Interval::closed(0.99, 149.99)),
        FrequencyConstraint::between(75, 125),
    ));
    set.set_domain(domain);

    let engine = BoundEngine::new(&set);
    let report = engine.bound(&q).expect("bound");
    println!(
        "overlapping version           ∈ [{:.2}, {:.2}]   (paper: [74.25, 17748.75])",
        report.range.lo, report.range.hi
    );
    println!(
        "decomposition: {} satisfiability checks",
        report.stats.sat_checks
    );

    // COUNT and AVG come from the same machinery.
    let count = engine
        .bound(&AggQuery::count(Predicate::always()))
        .expect("count");
    println!(
        "\nmissing-row COUNT ∈ [{}, {}]",
        count.range.lo, count.range.hi
    );
    let avg = engine
        .bound(&AggQuery::new(AggKind::Avg, price, Predicate::always()))
        .expect("avg");
    println!(
        "missing-row AVG(price) ∈ [{:.2}, {:.2}]",
        avg.range.lo, avg.range.hi
    );

    // Combine with the certain partition for a total-SUM contingency range.
    let certain_sum = predicate_constraints::storage::evaluate(&sales, &q).unwrap_or(0.0);
    let total = report.range.offset(certain_sum);
    println!(
        "\nTOTAL SUM(price) (certain {certain_sum:.2} + missing range) ∈ [{:.2}, {:.2}]",
        total.lo, total.hi
    );
}
