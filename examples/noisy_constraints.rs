//! Overlapping constraints as a defence against mis-specification
//! (§3.1's c1/c2 interaction and the Fig 6 robustness story).
//!
//! When constraints overlap, the framework enforces the *most restrictive*
//! combination in every decomposed cell. A wrong (too-generous) constraint
//! overlapped by a correct one is harmless; a wrong standalone constraint
//! is not — and `PcSet::validate` catches it on historical data before it
//! can mislead anyone.
//!
//! Run: `cargo run --release --example noisy_constraints`

use predicate_constraints::core::{
    BoundEngine, FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint,
};
use predicate_constraints::predicate::{
    Atom, AttrType, Interval, Predicate, Region, Schema, Value,
};
use predicate_constraints::storage::{AggKind, AggQuery, Table};

fn main() {
    // Sales(branch, price) with branches Chicago(0), NewYork(1), Trenton(2)
    let schema = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
    let branch = schema.expect_index("branch");
    let price = schema.expect_index("price");
    let mut domain = Region::full(&schema);
    domain.set_interval(branch, Interval::closed(0.0, 2.0));

    // §3.1's interacting constraints:
    //   c1: Chicago sales cost ≤ 149.99, at most 5 of them
    //   c2: ALL sales cost ≤ 149.99, at most 100 of them
    let c1 = PredicateConstraint::new(
        Predicate::atom(Atom::eq(branch, 0.0)),
        ValueConstraint::none().with(price, Interval::closed(0.0, 149.99)),
        FrequencyConstraint::at_most(5),
    );
    let c2 = PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(price, Interval::closed(0.0, 149.99)),
        FrequencyConstraint::at_most(100),
    );
    let mut set = PcSet::new(schema.clone()).with(c1).with(c2);
    set.set_domain(domain.clone());

    println!("constraints:");
    for pc in set.constraints() {
        println!("  {}", pc.display(&schema));
    }

    let engine = BoundEngine::new(&set);
    let chicago_sum = engine
        .bound(&AggQuery::new(
            AggKind::Sum,
            price,
            Predicate::atom(Atom::eq(branch, 0.0)),
        ))
        .expect("bound");
    println!(
        "\nSUM(price) in Chicago ≤ {:.2}  (5 × 149.99 — c1 overrides c2's 100 rows)",
        chicago_sum.range.hi
    );
    let total_count = engine
        .bound(&AggQuery::count(Predicate::always()))
        .expect("bound");
    println!(
        "COUNT(*) everywhere   ≤ {}  (c2's cap, c1 adds nothing here)",
        total_count.range.hi
    );

    // -----------------------------------------------------------------
    // Now a *mis-specified* constraint: someone claims Chicago prices
    // reach 10_000. Because c2 overlaps it, the reconciled bound barely
    // moves — the most restrictive range still wins in the overlap.
    // -----------------------------------------------------------------
    let wrong = PredicateConstraint::new(
        Predicate::atom(Atom::eq(branch, 0.0)),
        ValueConstraint::none().with(price, Interval::closed(0.0, 10_000.0)),
        FrequencyConstraint::at_most(5),
    );
    let mut noisy = PcSet::new(schema.clone())
        .with(wrong.clone())
        .with(PredicateConstraint::new(
            Predicate::always(),
            ValueConstraint::none().with(price, Interval::closed(0.0, 149.99)),
            FrequencyConstraint::at_most(100),
        ));
    noisy.set_domain(domain);
    let engine = BoundEngine::new(&noisy);
    let reconciled = engine
        .bound(&AggQuery::new(
            AggKind::Sum,
            price,
            Predicate::atom(Atom::eq(branch, 0.0)),
        ))
        .expect("bound");
    println!(
        "\nwith a corrupted Chicago range (≤ 10000), the reconciled bound is still {:.2}",
        reconciled.range.hi
    );
    assert!((reconciled.range.hi - 5.0 * 149.99).abs() < 1e-6);

    // -----------------------------------------------------------------
    // And constraints are *testable*: validating against historical data
    // catches violations before the constraints are trusted.
    // -----------------------------------------------------------------
    let mut history = Table::new(schema.clone());
    for p in [12.0, 80.0, 149.0, 200.0] {
        history.push_row(vec![Value::Cat(0), Value::Float(p)]);
    }
    let strict = PcSet::new(schema.clone()).with(PredicateConstraint::new(
        Predicate::atom(Atom::eq(branch, 0.0)),
        ValueConstraint::none().with(price, Interval::closed(0.0, 149.99)),
        FrequencyConstraint::at_most(5),
    ));
    let violations = strict.validate(&history);
    println!("\nvalidating \"price ≤ 149.99\" against history:");
    for v in &violations {
        println!("  ✗ {v}");
    }
    assert_eq!(violations.len(), 1, "the $200 sale must be flagged");
    println!("(the $200 sale on row 3 falsifies the constraint — fix it *before* analysis)");
}
