//! The paper's §1 motivating scenario: a sensor fleet logs readings in
//! partitions, one partition fails to load, and the analyst must decide
//! whether her threshold-exceedance count is trustworthy.
//!
//! The workflow this example demonstrates is the framework's whole point:
//!
//! 1. derive candidate constraints from *historical* data (days 0-5),
//! 2. **test** them on a held-out day (day 6) — constraints are code,
//!    they get validated like code,
//! 3. apply them to the day-7 partition that was lost,
//! 4. read off a hard range for the query and compare against the ground
//!    truth we secretly kept.
//!
//! Run: `cargo run --release --example sensor_outage`

use predicate_constraints::core::{BoundEngine, PcSet};
use predicate_constraints::datagen::intel::{self, cols, IntelConfig};
use predicate_constraints::datagen::pcgen;
use predicate_constraints::predicate::{Atom, Interval, Predicate};
use predicate_constraints::storage::{evaluate, AggQuery, Table};

/// Split an Intel-like table by day (epoch buckets of one day).
fn day_slice(table: &Table, epochs_per_day: i64, day: i64) -> Table {
    let pred = Predicate::atom(Atom::bucket(
        cols::EPOCH,
        (day * epochs_per_day) as f64,
        ((day + 1) * epochs_per_day) as f64,
    ));
    table.partition_by(&pred).0
}

fn main() {
    let config = IntelConfig {
        rows: 60_000,
        days: 8,
        ..IntelConfig::default()
    };
    let epd = i64::from(config.epochs_per_day);
    let lab = intel::generate(config);

    // Days 0-5: history. Day 6: held-out validation. Day 7: lost.
    let history: Vec<Table> = (0..6).map(|d| day_slice(&lab, epd, d)).collect();
    let validation_day = day_slice(&lab, epd, 6);
    let lost_day = day_slice(&lab, epd, 7); // ground truth, normally gone

    // 1. Derive per-device constraints from history: for each device, the
    //    observed light range and daily reading count across history,
    //    with safety margins (20% on values, 30% on counts).
    let mut set = PcSet::new(lab.schema().clone());
    {
        use predicate_constraints::core::{
            FrequencyConstraint, PredicateConstraint, ValueConstraint,
        };
        for device in 0..54u32 {
            let pred = Predicate::atom(Atom::eq(cols::DEVICE, f64::from(device)));
            let mut max_light: f64 = 0.0;
            let mut max_count = 0u64;
            for day in &history {
                let rows = day.partition_by(&pred).0;
                max_count = max_count.max(rows.len() as u64);
                if let Some((_, hi)) = rows.attr_range(cols::LIGHT) {
                    max_light = max_light.max(hi);
                }
            }
            set.push(PredicateConstraint::new(
                pred,
                ValueConstraint::none().with(cols::LIGHT, Interval::closed(0.0, max_light * 1.2)),
                FrequencyConstraint::at_most((max_count as f64 * 1.3).ceil() as u64),
            ));
        }
        let mut domain = predicate_constraints::predicate::Region::full(lab.schema());
        domain.set_interval(cols::DEVICE, Interval::closed(0.0, 53.0));
        set.set_domain(domain);
        set.set_disjoint_hint(true);
    }
    println!(
        "derived {} per-device constraints from 6 days of history",
        set.len()
    );
    assert!(set.is_closed(), "every device is covered");

    // 2. Test the constraints on the held-out day — exactly like a test
    //    suite for analysis assumptions.
    let violations = set.validate(&validation_day);
    if violations.is_empty() {
        println!("validation day: all constraints hold ✓");
    } else {
        println!(
            "validation day: {} violations — widen margins!",
            violations.len()
        );
        for v in violations.iter().take(3) {
            println!("  {v}");
        }
    }

    // 3. The query: how many readings exceeded the light threshold?
    let threshold = 900.0;
    let q = AggQuery::count(Predicate::atom(Atom::new(
        cols::LIGHT,
        Interval::at_least(threshold, false),
    )));
    let observed: f64 = (0..6)
        .map(|d| evaluate(&history[d], &q).unwrap_or(0.0))
        .sum::<f64>()
        + evaluate(&validation_day, &q).unwrap_or(0.0);

    // 4. Bound the lost day's contribution.
    let engine = BoundEngine::new(&set);
    let report = engine.bound(&q).expect("bound");
    let total = report.range.offset(observed);
    println!("\nreadings with light ≥ {threshold}: observed {observed} in 7 loaded days");
    println!(
        "contingency range including the lost partition: [{:.0}, {:.0}]",
        total.lo, total.hi
    );

    // The reveal: where the truth actually fell.
    let lost_truth = evaluate(&lost_day, &q).unwrap_or(0.0);
    println!(
        "(ground truth for the lost day: {lost_truth}; inside the missing-range [{:.0}, {:.0}] = {})",
        report.range.lo,
        report.range.hi,
        report.range.contains(lost_truth)
    );
    assert!(
        report.range.contains(lost_truth),
        "hard bound must contain the truth when constraints hold"
    );

    // Bonus: what an equi-cardinality Corr-PC summary of the lost day
    // itself would give (the experiments' idealized setting).
    let corr = pcgen::corr_pc(&lost_day, &[cols::DEVICE, cols::EPOCH], 200);
    let tight = BoundEngine::new(&corr).bound(&q).expect("bound");
    println!(
        "idealized Corr-PC summary of the lost day: [{:.0}, {:.0}]",
        tight.range.lo, tight.range.hi
    );
}
