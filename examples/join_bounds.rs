//! Join bounds (§5 / Fig 12): bounding aggregates of natural joins whose
//! inputs are missing, with the naive Cartesian-product bound, the
//! fractional-edge-cover (worst-case-optimal) bound, and the elastic
//! sensitivity competitor — against ground truth.
//!
//! Run: `cargo run --release --example join_bounds`

use predicate_constraints::baselines::{elastic_chain_bound, elastic_triangle_bound};
use predicate_constraints::core::join::{
    fec_count_bound, fec_sum_bound, naive_count_bound, JoinSpec,
};
use predicate_constraints::core::{BoundEngine, BoundOptions};
use predicate_constraints::datagen::pcgen;
use predicate_constraints::datagen::synth_join::{chain_tables, triangle_tables};
use predicate_constraints::predicate::Predicate;
use predicate_constraints::storage::{natural_join, AggKind, AggQuery, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn count_bound(table: &Table) -> f64 {
    let set = pcgen::corr_pc(table, &[0, 1], 25);
    BoundEngine::with_options(
        &set,
        BoundOptions {
            check_closure: false,
            ..BoundOptions::default()
        },
    )
    .bound(&AggQuery::count(Predicate::always()))
    .expect("count bound")
    .range
    .hi
}

fn main() {
    println!("--- triangle counting:  R(a,b) ⋈ S(b,c) ⋈ T(c,a) ---");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>10}",
        "N", "naive(N^3)", "FEC(N^1.5)", "elastic", "truth"
    );
    let spec = JoinSpec::triangle();
    for n in [100usize, 400, 1600] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let tables = triangle_tables(n, &mut rng);
        let counts: Vec<f64> = tables.iter().map(count_bound).collect();
        let naive = naive_count_bound(&counts);
        let fec = fec_count_bound(&spec, &counts).expect("fec");
        let elastic = elastic_triangle_bound(n as f64, None);
        let rs = natural_join(&tables[0], &tables[1]);
        let truth = natural_join(&rs, &tables[2]).len();
        println!("{n:>8} {naive:>14.3e} {fec:>14.3e} {elastic:>14.3e} {truth:>10}");
        assert!(truth as f64 <= fec, "FEC must bound the truth");
        assert!(fec <= naive, "FEC is never looser than the product bound");
    }

    println!("\n--- acyclic chain:  R1(x1,x2) ⋈ … ⋈ R5(x5,x6) ---");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "K", "naive(K^5)", "FEC(K^3)", "elastic"
    );
    let spec = JoinSpec::chain(5);
    for k in [100usize, 1000] {
        let mut rng = StdRng::seed_from_u64(50 + k as u64);
        let tables = chain_tables(5, k, &mut rng);
        let counts: Vec<f64> = tables.iter().map(count_bound).collect();
        let naive = naive_count_bound(&counts);
        let fec = fec_count_bound(&spec, &counts).expect("fec");
        let elastic = elastic_chain_bound(k as f64, 5, None);
        println!("{k:>8} {naive:>14.3e} {fec:>14.3e} {elastic:>14.3e}");
    }

    println!("\n--- SUM across a join (GWE inequality, §5.2) ---");
    // SUM over R's `a` attribute in the triangle query: the bound is
    // SUM_R(a) × COUNT(S or T)^cover.
    let mut rng = StdRng::seed_from_u64(99);
    let tables = triangle_tables(400, &mut rng);
    let spec = JoinSpec::triangle();
    let counts: Vec<f64> = tables.iter().map(count_bound).collect();
    let sum_r = {
        let set = pcgen::corr_pc(&tables[0], &[0, 1], 25);
        BoundEngine::new(&set)
            .bound(&AggQuery::new(AggKind::Sum, 0, Predicate::always()))
            .expect("sum bound")
            .range
            .hi
    };
    let bound = fec_sum_bound(&spec, 0, sum_r, &counts).expect("sum bound");
    // ground truth: materialize the join and sum `a`
    let rs = natural_join(&tables[0], &tables[1]);
    let rst = natural_join(&rs, &tables[2]);
    let truth = predicate_constraints::storage::evaluate(
        &rst,
        &AggQuery::new(AggKind::Sum, 0, Predicate::always()),
    )
    .unwrap_or(0.0);
    println!("SUM(a) over the triangle join: bound {bound:.3e}, truth {truth:.3e}");
    assert!(truth <= bound, "GWE bound must hold");
}
