//! Integration tests pinning the paper's worked examples end-to-end
//! through the facade crate.

use predicate_constraints::core::{
    BoundEngine, FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint,
};
use predicate_constraints::predicate::{
    Atom, AttrType, Interval, Predicate, Region, Schema, Value,
};
use predicate_constraints::storage::{AggKind, AggQuery, Table};

fn sales_schema() -> Schema {
    Schema::new(vec![
        ("utc", AttrType::Int),
        ("branch", AttrType::Cat),
        ("price", AttrType::Float),
    ])
}

fn outage_domain(schema: &Schema) -> Region {
    let mut domain = Region::full(schema);
    domain.set_interval(0, Interval::half_open(11.0, 13.0));
    domain
}

/// §4.4, disjoint case: the result range is computable by hand.
#[test]
fn section_4_4_disjoint() {
    let schema = sales_schema();
    let mut set = PcSet::new(schema.clone());
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::bucket(0, 11.0, 12.0)),
        ValueConstraint::none().with(2, Interval::closed(0.99, 129.99)),
        FrequencyConstraint::between(50, 100),
    ));
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::bucket(0, 12.0, 13.0)),
        ValueConstraint::none().with(2, Interval::closed(0.99, 149.99)),
        FrequencyConstraint::between(50, 100),
    ));
    set.set_domain(outage_domain(&schema));

    let q = AggQuery::new(AggKind::Sum, 2, Predicate::always());
    let r = BoundEngine::new(&set).bound(&q).unwrap().range;
    assert!((r.lo - 99.0).abs() < 1e-9);
    assert!((r.hi - 27_998.0).abs() < 1e-9);
}

/// §4.4, overlapping case: requires decomposition + MILP; note the paper's
/// observation that the optimal allocation does *not* maximize rows in c1.
#[test]
fn section_4_4_overlapping() {
    let schema = sales_schema();
    let mut set = PcSet::new(schema.clone());
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::bucket(0, 11.0, 12.0)),
        ValueConstraint::none().with(2, Interval::closed(0.99, 129.99)),
        FrequencyConstraint::between(50, 100),
    ));
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::bucket(0, 11.0, 13.0)),
        ValueConstraint::none().with(2, Interval::closed(0.99, 149.99)),
        FrequencyConstraint::between(75, 125),
    ));
    set.set_domain(outage_domain(&schema));

    let q = AggQuery::new(AggKind::Sum, 2, Predicate::always());
    let report = BoundEngine::new(&set).bound(&q).unwrap();
    assert!(report.closed);
    assert!((report.range.lo - 74.25).abs() < 1e-6);
    assert!((report.range.hi - 17_748.75).abs() < 1e-6);
}

/// §3.1: c1/c2 interaction — "Chicago cannot have more than 5 sales at
/// 149.99" even though c2 alone would allow 100.
#[test]
fn section_3_1_constraint_interaction() {
    let schema = sales_schema();
    let mut domain = Region::full(&schema);
    domain.set_interval(1, Interval::closed(0.0, 2.0));
    let mut set = PcSet::new(schema.clone());
    // c1: Chicago (code 0)
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::eq(1, 0.0)),
        ValueConstraint::none().with(2, Interval::closed(0.0, 149.99)),
        FrequencyConstraint::at_most(5),
    ));
    // c2: everywhere
    set.push(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(2, Interval::closed(0.0, 149.99)),
        FrequencyConstraint::at_most(100),
    ));
    set.set_domain(domain);

    let engine = BoundEngine::new(&set);
    let chicago = engine
        .bound(&AggQuery::new(
            AggKind::Sum,
            2,
            Predicate::atom(Atom::eq(1, 0.0)),
        ))
        .unwrap();
    assert!((chicago.range.hi - 5.0 * 149.99).abs() < 1e-6);

    let everywhere = engine
        .bound(&AggQuery::new(AggKind::Sum, 2, Predicate::always()))
        .unwrap();
    // 5 Chicago rows + 95 elsewhere, all at 149.99
    assert!((everywhere.range.hi - 100.0 * 149.99).abs() < 1e-6);
}

/// §3.2 closure: c1 + c3 are closed over {Chicago, New York} but not over
/// a domain including Trenton.
#[test]
fn definition_3_2_closure() {
    let schema = sales_schema();
    let c1 = PredicateConstraint::new(
        Predicate::atom(Atom::eq(1, 0.0)),
        ValueConstraint::none().with(2, Interval::closed(0.0, 149.99)),
        FrequencyConstraint::at_most(5),
    );
    let c3 = PredicateConstraint::new(
        Predicate::atom(Atom::eq(1, 1.0)),
        ValueConstraint::none().with(2, Interval::closed(0.0, 100.0)),
        FrequencyConstraint::at_most(10),
    );
    let mut set = PcSet::new(schema.clone()).with(c1).with(c3);

    let mut two_branches = Region::full(&schema);
    two_branches.set_interval(1, Interval::closed(0.0, 1.0));
    set.set_domain(two_branches);
    assert!(set.is_closed());

    let mut three_branches = Region::full(&schema);
    three_branches.set_interval(1, Interval::closed(0.0, 2.0));
    set.set_domain(three_branches);
    assert!(!set.is_closed());
}

/// The simple histogram-as-tautology encoding from §3.1 produces exact
/// counts.
#[test]
fn histogram_as_tautological_pcs() {
    let schema = sales_schema();
    let mut domain = Region::full(&schema);
    domain.set_interval(1, Interval::closed(0.0, 2.0));
    let mut set = PcSet::new(schema.clone());
    for (code, count) in [(0u32, 100u64), (1, 20), (2, 10)] {
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::eq(1, f64::from(code))),
            ValueConstraint::none(),
            FrequencyConstraint::exactly(count),
        ));
    }
    set.set_domain(domain);
    set.set_disjoint_hint(true);

    let engine = BoundEngine::new(&set);
    let total = engine
        .bound(&AggQuery::count(Predicate::always()))
        .unwrap()
        .range;
    assert_eq!((total.lo, total.hi), (130.0, 130.0));
    let ny = engine
        .bound(&AggQuery::count(Predicate::atom(Atom::eq(1, 1.0))))
        .unwrap()
        .range;
    assert_eq!((ny.lo, ny.hi), (20.0, 20.0));
}

/// Definition 3.1 round-trip: a table satisfying a constraint passes
/// `check`, and each violation type is detected.
#[test]
fn definition_3_1_satisfaction() {
    let schema = sales_schema();
    let pc = PredicateConstraint::new(
        Predicate::atom(Atom::eq(1, 0.0)),
        ValueConstraint::none().with(2, Interval::closed(0.0, 149.99)),
        FrequencyConstraint::between(1, 2),
    );
    let mut ok = Table::new(schema.clone());
    ok.push_row(vec![Value::Int(1), Value::Cat(0), Value::Float(3.02)]);
    ok.push_row(vec![Value::Int(2), Value::Cat(1), Value::Float(999.0)]);
    assert!(pc.check(&ok).is_ok());

    let mut too_many = ok.clone();
    too_many.push_row(vec![Value::Int(3), Value::Cat(0), Value::Float(1.0)]);
    too_many.push_row(vec![Value::Int(4), Value::Cat(0), Value::Float(1.0)]);
    assert!(pc.check(&too_many).is_err());
}
