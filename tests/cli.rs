//! Integration test for the `pc` CLI: the full text-in, range-out flow a
//! downstream analyst runs.

use std::process::Command;

fn pc_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pc"))
}

fn write_fixtures(dir: &std::path::Path) -> (String, String) {
    let data = dir.join("sales.csv");
    std::fs::write(
        &data,
        "utc,branch,price\n\
         1,Chicago,3.02\n\
         2,New York,6.71\n\
         3,Chicago,18.99\n",
    )
    .unwrap();
    let constraints = dir.join("assumptions.pc");
    std::fs::write(
        &constraints,
        "# outage assumptions\n\
         branch = 'Chicago' => price BETWEEN 0 AND 149.99, (0, 5)\n\
         TRUE => price BETWEEN 0 AND 149.99, (0, 100)\n",
    )
    .unwrap();
    (
        data.to_string_lossy().into_owned(),
        constraints.to_string_lossy().into_owned(),
    )
}

const SCHEMA: &str = "utc:int,branch:cat,price:float";

#[test]
fn bound_command_end_to_end() {
    let dir = std::env::temp_dir().join("pc-cli-test-bound");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let out = pc_bin()
        .args([
            "bound",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--query",
            "SELECT SUM(price) WHERE branch = 'Chicago'",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("[0, 749.95"), "{stdout}");
}

#[test]
fn bound_with_combine() {
    let dir = std::env::temp_dir().join("pc-cli-test-combine");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let out = pc_bin()
        .args([
            "bound",
            "--combine",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--query",
            "SELECT COUNT(*)",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    // 3 certain rows + missing ∈ [0, 100]
    assert!(stdout.contains("certain partition answer: 3"), "{stdout}");
    assert!(stdout.contains("[3, 103]"), "{stdout}");
}

#[test]
fn validate_flags_violations() {
    let dir = std::env::temp_dir().join("pc-cli-test-validate");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, _) = write_fixtures(&dir);
    // constraint that the $18.99 Chicago sale violates
    let constraints = dir.join("strict.pc");
    std::fs::write(
        &constraints,
        "branch = 'Chicago' => price BETWEEN 0 AND 10, (0, 5)\n",
    )
    .unwrap();
    let out = pc_bin()
        .args([
            "validate",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            constraints.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "violations must fail the exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VIOLATION"), "{stdout}");
}

#[test]
fn check_reports_open_sets() {
    let dir = std::env::temp_dir().join("pc-cli-test-check");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, _) = write_fixtures(&dir);
    let constraints = dir.join("open.pc");
    std::fs::write(
        &constraints,
        "branch = 'Chicago' => price BETWEEN 0 AND 10, (0, 5)\n",
    )
    .unwrap();
    let out = pc_bin()
        .args([
            "check",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            constraints.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("NOT CLOSED"));
}

#[test]
fn helpful_errors_for_bad_input() {
    let out = pc_bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = pc_bin()
        .args(["bound", "--data", "/nonexistent.csv", "--schema", "a:int"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}
