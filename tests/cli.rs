//! Integration test for the `pc` CLI: the full text-in, range-out flow a
//! downstream analyst runs.

use std::process::Command;

fn pc_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pc"))
}

fn write_fixtures(dir: &std::path::Path) -> (String, String) {
    let data = dir.join("sales.csv");
    std::fs::write(
        &data,
        "utc,branch,price\n\
         1,Chicago,3.02\n\
         2,New York,6.71\n\
         3,Chicago,18.99\n",
    )
    .unwrap();
    let constraints = dir.join("assumptions.pc");
    std::fs::write(
        &constraints,
        "# outage assumptions\n\
         branch = 'Chicago' => price BETWEEN 0 AND 149.99, (0, 5)\n\
         TRUE => price BETWEEN 0 AND 149.99, (0, 100)\n",
    )
    .unwrap();
    (
        data.to_string_lossy().into_owned(),
        constraints.to_string_lossy().into_owned(),
    )
}

const SCHEMA: &str = "utc:int,branch:cat,price:float";

#[test]
fn bound_command_end_to_end() {
    let dir = std::env::temp_dir().join("pc-cli-test-bound");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let out = pc_bin()
        .args([
            "bound",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--query",
            "SELECT SUM(price) WHERE branch = 'Chicago'",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("[0, 749.95"), "{stdout}");
}

#[test]
fn bound_with_combine() {
    let dir = std::env::temp_dir().join("pc-cli-test-combine");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let out = pc_bin()
        .args([
            "bound",
            "--combine",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--query",
            "SELECT COUNT(*)",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    // 3 certain rows + missing ∈ [0, 100]
    assert!(stdout.contains("certain partition answer: 3"), "{stdout}");
    assert!(stdout.contains("[3, 103]"), "{stdout}");
}

#[test]
fn batch_command_streams_queries_through_one_session() {
    let dir = std::env::temp_dir().join("pc-cli-test-batch");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let queries = dir.join("queries.sql");
    std::fs::write(
        &queries,
        "# a stream of aggregate queries\n\
         SELECT SUM(price) WHERE branch = 'Chicago'\n\
         \n\
         SELECT COUNT(*)\n\
         SELECT SUM(price)\n",
    )
    .unwrap();
    for extra in [
        &[][..],
        &["--no-session-cache"],
        &["--no-tableau-carry"],
        &["--no-warm-start", "--no-tableau-carry"],
    ] {
        let out = pc_bin()
            .args([
                "batch",
                "--data",
                &data,
                "--schema",
                SCHEMA,
                "--constraints",
                &constraints,
                "--queries",
                queries.to_str().unwrap(),
            ])
            .args(extra)
            .output()
            .unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "extra: {extra:?}, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        // comment and blank lines skipped, results in input order,
        // identical with and without the session cache / warm starts
        let lines: Vec<&str> = stdout.lines().collect();
        assert_eq!(lines.len(), 3, "{stdout}");
        assert!(
            lines[0].contains("Chicago") && lines[0].contains("[0, 749.95"),
            "{stdout}"
        );
        assert!(
            lines[1].contains("COUNT(*)") && lines[1].contains("[0, 100]"),
            "{stdout}"
        );
        assert!(lines[2].starts_with("SELECT SUM(price) ->"), "{stdout}");
    }
}

#[test]
fn batch_update_directives_drive_a_churning_session() {
    let dir = std::env::temp_dir().join("pc-cli-test-batch-churn");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let queries = dir.join("churn.sql");
    // serve, tighten the global cap (c2), serve, retire it, serve: the
    // same COUNT query must see [0, 100] -> [0, 40] -> [0, 100]
    std::fs::write(
        &queries,
        "SELECT COUNT(*)\n\
         + TRUE => price BETWEEN 0 AND 149.99, (0, 40)\n\
         - c1\n\
         SELECT COUNT(*)\n\
         - c2\n\
         + TRUE => price BETWEEN 0 AND 149.99, (0, 100)\n\
         SELECT COUNT(*)\n",
    )
    .unwrap();
    let out = pc_bin()
        .args([
            "batch",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--queries",
            queries.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 7, "{stdout}");
    assert!(lines[0].contains("[0, 100]"), "{stdout}");
    assert!(
        lines[1].starts_with("+ TRUE") && lines[1].contains("c2 (epoch 1)"),
        "{stdout}"
    );
    assert!(lines[2].contains("c1 retired (epoch 2)"), "{stdout}");
    assert!(lines[3].contains("[0, 40]"), "{stdout}");
    assert!(lines[4].contains("c2 retired (epoch 3)"), "{stdout}");
    assert!(lines[5].contains("c3 (epoch 4)"), "{stdout}");
    assert!(lines[6].contains("[0, 100]"), "{stdout}");

    // directives need the session cache: the combination is rejected
    let out = pc_bin()
        .args([
            "batch",
            "--no-session-cache",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--queries",
            queries.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "directives + --no-session-cache");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--no-session-cache"),
        "error must name the flag"
    );

    // an unknown id fails loudly, not silently
    let bad = dir.join("bad.sql");
    std::fs::write(&bad, "- c9\nSELECT COUNT(*)\n").unwrap();
    let out = pc_bin()
        .args([
            "batch",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--queries",
            bad.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("c9"));
}

#[test]
fn batch_per_query_budget_directives() {
    let dir = std::env::temp_dir().join("pc-cli-test-batch-at");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let queries = dir.join("at.sql");
    // the middle query carries its own (generous) caps: it must still be
    // answered in stream order, exactly, without degrading
    std::fs::write(
        &queries,
        "SELECT COUNT(*)\n\
         @timeout-ms=10000 @sat-cap=100000 @node-cap=1000000 SELECT COUNT(*) WHERE branch = 'Chicago'\n\
         SELECT SUM(price)\n",
    )
    .unwrap();
    let out = pc_bin()
        .args([
            "batch",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--queries",
            queries.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(lines[0].contains("[0, 100]"), "{stdout}");
    // the directive tokens are stripped from the echoed SQL
    assert!(
        lines[1].starts_with("SELECT COUNT(*) WHERE branch = 'Chicago' ->")
            && lines[1].contains("[0, 5]")
            && !lines[1].contains("degraded"),
        "{stdout}"
    );
    assert!(lines[2].starts_with("SELECT SUM(price) ->"), "{stdout}");

    // malformed directives fail loudly, naming the line
    for bad in [
        "@sat-cap=abc SELECT COUNT(*)",
        "@sat-cap=5",
        "@wat=1 SELECT COUNT(*)",
    ] {
        let bad_file = dir.join("bad-at.sql");
        std::fs::write(&bad_file, format!("{bad}\n")).unwrap();
        let out = pc_bin()
            .args([
                "batch",
                "--data",
                &data,
                "--schema",
                SCHEMA,
                "--constraints",
                &constraints,
                "--queries",
                bad_file.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(!out.status.success(), "must reject {bad:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("line 1"),
            "{bad:?} error must name the line"
        );
    }
}

#[test]
fn bound_stats_reports_shards() {
    let dir = std::env::temp_dir().join("pc-cli-test-stats");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, _) = write_fixtures(&dir);
    // two constraints on disjoint utc ranges: two interaction components
    let constraints = dir.join("tiles.pc");
    std::fs::write(
        &constraints,
        "utc BETWEEN 1 AND 2 => price BETWEEN 0 AND 10, (0, 5)\n\
         utc BETWEEN 10 AND 12 => price BETWEEN 0 AND 20, (0, 7)\n",
    )
    .unwrap();
    let out = pc_bin()
        .args([
            "bound",
            "--stats",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            constraints.to_str().unwrap(),
            "--query",
            "SELECT COUNT(*)",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("stats: "), "{stdout}");
    assert!(
        stdout.contains("ordering: ") && stdout.contains("estimate-guided splits"),
        "{stdout}"
    );
    assert!(
        stdout.contains("shards: 2 (largest 1 constraints)"),
        "{stdout}"
    );
    assert!(stdout.contains("per-shard sat checks: ["), "{stdout}");

    // batch prints one indented counter line under each query's result
    let queries = dir.join("q.sql");
    std::fs::write(&queries, "SELECT COUNT(*)\n").unwrap();
    let out = pc_bin()
        .args([
            "batch",
            "--stats",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            constraints.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("  stats: ")
            && stdout.contains("ordered splits")
            && stdout.contains("incumbent-first"),
        "{stdout}"
    );
}

#[test]
fn validate_flags_violations() {
    let dir = std::env::temp_dir().join("pc-cli-test-validate");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, _) = write_fixtures(&dir);
    // constraint that the $18.99 Chicago sale violates
    let constraints = dir.join("strict.pc");
    std::fs::write(
        &constraints,
        "branch = 'Chicago' => price BETWEEN 0 AND 10, (0, 5)\n",
    )
    .unwrap();
    let out = pc_bin()
        .args([
            "validate",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            constraints.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "violations must fail the exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("VIOLATION"), "{stdout}");
}

#[test]
fn check_reports_open_sets() {
    let dir = std::env::temp_dir().join("pc-cli-test-check");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, _) = write_fixtures(&dir);
    let constraints = dir.join("open.pc");
    std::fs::write(
        &constraints,
        "branch = 'Chicago' => price BETWEEN 0 AND 10, (0, 5)\n",
    )
    .unwrap();
    let out = pc_bin()
        .args([
            "check",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            constraints.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("NOT CLOSED"));
}

#[test]
fn helpful_errors_for_bad_input() {
    let out = pc_bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = pc_bin()
        .args(["bound", "--data", "/nonexistent.csv", "--schema", "a:int"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
}

#[test]
fn unsupported_flag_combinations_are_rejected() {
    let dir = std::env::temp_dir().join("pc-cli-test-flagmix");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let queries = dir.join("q.sql");
    std::fs::write(&queries, "SELECT COUNT(*)\n").unwrap();
    let base = |cmd: &str| {
        let mut c = pc_bin();
        c.args([
            cmd,
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
        ]);
        c
    };
    // batch must not silently ignore bound-only flags
    for extra in [
        &["--queries", "q", "--group-by", "branch"][..],
        &["--queries", "q", "--combine"],
        &["--queries", "q", "--query", "SELECT COUNT(*)"],
    ] {
        let mut cmd = base("batch");
        // point --queries at the real file (first pair is a placeholder)
        let extra: Vec<&str> = extra
            .iter()
            .map(|s| {
                if *s == "q" {
                    queries.to_str().unwrap()
                } else {
                    *s
                }
            })
            .collect();
        let out = cmd.args(&extra).output().unwrap();
        assert!(!out.status.success(), "batch must reject {extra:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    }
    // and bound must not silently ignore --queries
    let out = base("bound")
        .args(["--queries", queries.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--query"));
    // disabling warm starts while leaving the tableau carry on is a
    // contradiction (the carry rides on warm starts): rejected for every
    // command, never silently resolved
    for cmd in ["bound", "batch"] {
        let out = base(cmd).args(["--no-warm-start"]).output().unwrap();
        assert!(!out.status.success(), "{cmd} must reject the bare flag");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--no-tableau-carry"),
            "{cmd} must name the missing flag"
        );
    }
}

#[test]
fn serve_client_round_trip() {
    use std::io::BufRead;
    let dir = std::env::temp_dir().join("pc-cli-test-serve");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let script = dir.join("session.txt");
    std::fs::write(
        &script,
        "ping\n\
         bound SELECT COUNT(*)\n\
         + utc >= 2 => price BETWEEN 0 AND 10, (0, 3)\n\
         batch SELECT COUNT(*) ;; SELECT SUM(price)\n\
         # malformed lines answer ERR without killing the connection\n\
         ! bound @timeout-ms=0 SELECT COUNT(*)\n\
         ! frobnicate\n\
         stats\n\
         shutdown\n",
    )
    .unwrap();

    // port 0: the kernel picks; the server prints the bound address
    let mut server = pc_bin()
        .args([
            "serve",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--listen",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .unwrap();
    let mut banner = String::new();
    std::io::BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut banner)
        .unwrap();
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {banner:?}"))
        .to_string();

    let out = pc_bin()
        .args([
            "client",
            "--addr",
            &addr,
            "--script",
            script.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "client failed\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("OK pong"), "{stdout}");
    assert!(stdout.contains("OK bound epoch=0"), "{stdout}");
    assert!(stdout.contains("OK added=c2 epoch=1"), "{stdout}");
    assert!(stdout.contains("OK batch epoch=1 n=2"), "{stdout}");
    assert!(stdout.contains("the minimum cap is 1"), "{stdout}");
    assert!(stdout.contains("shed-cache-hits="), "{stdout}");
    assert!(stdout.contains("OK draining"), "{stdout}");
    assert!(!stdout.contains("MISMATCH"), "{stdout}");

    // the scripted shutdown drains the server to a clean exit
    let status = server.wait().unwrap();
    assert!(status.success(), "server exited {status:?}");
}

#[test]
fn cap_flags_and_directives_reject_zero_negative_overflow() {
    let dir = std::env::temp_dir().join("pc-cli-test-capzero");
    std::fs::create_dir_all(&dir).unwrap();
    let (data, constraints) = write_fixtures(&dir);
    let queries = dir.join("q.sql");
    std::fs::write(&queries, "SELECT COUNT(*)\n").unwrap();
    // one shared parser behind the flags: 0, negative, and overflowing
    // values are rejected with the same diagnostics on every cap
    for flag in ["--timeout-ms", "--sat-cap", "--node-cap"] {
        for (value, needle) in [
            ("0", "minimum cap is 1"),
            ("-7", "is negative"),
            ("18446744073709551616", "overflows"),
        ] {
            let out = pc_bin()
                .args([
                    "bound",
                    "--data",
                    &data,
                    "--schema",
                    SCHEMA,
                    "--constraints",
                    &constraints,
                    "--query",
                    "SELECT COUNT(*)",
                    flag,
                    value,
                ])
                .output()
                .unwrap();
            assert!(!out.status.success(), "must reject {flag} {value}");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(
                stderr.contains(needle) && stderr.contains(flag),
                "{flag} {value}: {stderr}"
            );
        }
    }
    // and the same parser behind a batch line's @ directives
    let bad_file = dir.join("zero-at.sql");
    std::fs::write(&bad_file, "@sat-cap=0 SELECT COUNT(*)\n").unwrap();
    let out = pc_bin()
        .args([
            "batch",
            "--data",
            &data,
            "--schema",
            SCHEMA,
            "--constraints",
            &constraints,
            "--queries",
            bad_file.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 1") && stderr.contains("minimum cap is 1"),
        "{stderr}"
    );
}
