//! Integration tests for the §5 join-bound pipeline: PC summaries of each
//! relation → per-relation COUNT/SUM bounds → fractional-edge-cover join
//! bound, verified against materialized joins.

use predicate_constraints::core::join::{
    fec_count_bound, fec_sum_bound, naive_count_bound, JoinSpec,
};
use predicate_constraints::core::{BoundEngine, BoundOptions};
use predicate_constraints::datagen::pcgen;
use predicate_constraints::datagen::synth_join::{chain_tables, random_edges, triangle_tables};
use predicate_constraints::predicate::Predicate;
use predicate_constraints::storage::{evaluate, natural_join, AggKind, AggQuery, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn count_bound(table: &Table) -> f64 {
    let set = pcgen::corr_pc(table, &[0, 1], 16);
    BoundEngine::with_options(
        &set,
        BoundOptions {
            check_closure: false,
            ..BoundOptions::default()
        },
    )
    .bound(&AggQuery::count(Predicate::always()))
    .unwrap()
    .range
    .hi
}

#[test]
fn triangle_bound_dominates_truth_across_sizes() {
    let spec = JoinSpec::triangle();
    for n in [50usize, 200, 800] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let tables = triangle_tables(n, &mut rng);
        let counts: Vec<f64> = tables.iter().map(count_bound).collect();
        let fec = fec_count_bound(&spec, &counts).unwrap();
        let naive = naive_count_bound(&counts);
        let truth = {
            let rs = natural_join(&tables[0], &tables[1]);
            natural_join(&rs, &tables[2]).len() as f64
        };
        assert!(truth <= fec + 1e-9, "N={n}: truth {truth} > FEC {fec}");
        assert!(fec <= naive + 1e-9, "N={n}: FEC looser than naive");
        // the FEC bound tracks N^1.5 since per-relation counts are exact
        let expected = (n as f64).powf(1.5);
        assert!(
            (fec / expected - 1.0).abs() < 0.05,
            "N={n}: FEC {fec} should be ≈ N^1.5 = {expected}"
        );
    }
}

#[test]
fn chain_bound_shape() {
    let spec = JoinSpec::chain(5);
    let k = 200usize;
    let mut rng = StdRng::seed_from_u64(9);
    let tables = chain_tables(5, k, &mut rng);
    let counts: Vec<f64> = tables.iter().map(count_bound).collect();
    let fec = fec_count_bound(&spec, &counts).unwrap();
    assert!((fec / (k as f64).powi(3) - 1.0).abs() < 0.05, "K³ shape");
    // materialize the 5-way chain and verify the bound
    let mut acc = tables[0].clone();
    for t in &tables[1..] {
        acc = natural_join(&acc, t);
    }
    assert!(acc.len() as f64 <= fec);
}

#[test]
fn sum_bound_gwe_holds_on_join() {
    let spec = JoinSpec::triangle();
    let mut rng = StdRng::seed_from_u64(13);
    let tables = triangle_tables(300, &mut rng);
    let counts: Vec<f64> = tables.iter().map(count_bound).collect();
    let sum_r = {
        let set = pcgen::corr_pc(&tables[0], &[0, 1], 16);
        BoundEngine::new(&set)
            .bound(&AggQuery::new(AggKind::Sum, 0, Predicate::always()))
            .unwrap()
            .range
            .hi
    };
    let bound = fec_sum_bound(&spec, 0, sum_r, &counts).unwrap();
    let truth = {
        let rs = natural_join(&tables[0], &tables[1]);
        let rst = natural_join(&rs, &tables[2]);
        evaluate(&rst, &AggQuery::new(AggKind::Sum, 0, Predicate::always())).unwrap_or(0.0)
    };
    assert!(truth <= bound, "GWE: truth {truth} > bound {bound}");
}

#[test]
fn two_way_join_exact_product_shape() {
    // R(x,y) ⋈ S(y,z): the AGM bound is |R|·|S| and the naive bound
    // coincides — no gap on acyclic 2-joins
    let mut rng = StdRng::seed_from_u64(17);
    let r = random_edges(100, 20, "x", "y", &mut rng);
    let s = random_edges(80, 20, "y", "z", &mut rng);
    let spec = JoinSpec::new(vec![
        predicate_constraints::core::join::JoinRelation::new("R", &["x", "y"]),
        predicate_constraints::core::join::JoinRelation::new("S", &["y", "z"]),
    ]);
    let counts = [count_bound(&r), count_bound(&s)];
    let fec = fec_count_bound(&spec, &counts).unwrap();
    let naive = naive_count_bound(&counts);
    assert!((fec - naive).abs() / naive < 1e-6);
    assert!(natural_join(&r, &s).len() as f64 <= fec);
}

#[test]
fn per_relation_pc_bounds_are_exact_for_full_tables() {
    // Corr-PC with exact frequencies bounds COUNT(*) of a whole table
    // exactly — the FEC inputs in the experiments are not inflated
    let mut rng = StdRng::seed_from_u64(23);
    let t = random_edges(150, 25, "a", "b", &mut rng);
    assert!((count_bound(&t) - 150.0).abs() < 1e-9);
}
