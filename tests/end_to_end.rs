//! End-to-end integration: synthetic dataset → correlated missingness →
//! PC summarization → hard bounds for all five aggregates, checked
//! against ground truth and against the statistical baselines' contract.

use predicate_constraints::baselines::{Ci, EquiWidthHistogram, UniformSample};
use predicate_constraints::core::{BoundEngine, BoundError, BoundOptions};
use predicate_constraints::datagen::intel::{self, cols, IntelConfig};
use predicate_constraints::datagen::missing::{remove_random_fraction, remove_top_fraction};
use predicate_constraints::datagen::{pcgen, QueryGenerator};
use predicate_constraints::storage::{evaluate, AggKind, AggQuery, AggResult};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (
    predicate_constraints::storage::Table,
    predicate_constraints::storage::Table,
) {
    let t = intel::generate(IntelConfig {
        rows: 10_000,
        seed: 77,
        ..IntelConfig::default()
    });
    remove_top_fraction(&t, cols::LIGHT, 0.35)
}

#[test]
fn corr_pc_bounds_all_aggregates_soundly() {
    let (missing, _present) = setup();
    let set = pcgen::corr_pc(&missing, &[cols::DEVICE, cols::EPOCH], 150);
    assert!(set.validate(&missing).is_empty());
    let engine = BoundEngine::new(&set);

    let qg = QueryGenerator::from_table(&missing, &[cols::DEVICE, cols::EPOCH]);
    let mut rng = StdRng::seed_from_u64(5);
    for agg in [
        AggKind::Count,
        AggKind::Sum,
        AggKind::Avg,
        AggKind::Min,
        AggKind::Max,
    ] {
        for q in qg.gen_workload(agg, cols::LIGHT, 30, &mut rng) {
            let truth = evaluate(&missing, &q);
            match (engine.bound(&q), truth) {
                (Ok(report), AggResult::Value(v)) => {
                    assert!(
                        report.range.contains(v),
                        "{agg:?}: {v} outside [{}, {}]",
                        report.range.lo,
                        report.range.hi
                    );
                }
                (Ok(_), AggResult::Empty) => {}
                (Err(BoundError::EmptyAggregate), truth) => {
                    assert_eq!(truth, AggResult::Empty, "{agg:?} claimed empty wrongly");
                }
                (Err(e), _) => panic!("{agg:?} errored: {e}"),
            }
        }
    }
}

#[test]
fn uncorrelated_missingness_is_the_easy_case() {
    // with random removal, even extrapolation works; PCs remain sound
    let t = intel::generate(IntelConfig {
        rows: 6_000,
        seed: 3,
        ..IntelConfig::default()
    });
    let mut rng = StdRng::seed_from_u64(11);
    let (missing, present) = remove_random_fraction(&t, 0.3, &mut rng);
    let q = AggQuery::new(AggKind::Sum, cols::LIGHT, pc_predicate_always());
    let observed = evaluate(&present, &q).unwrap_or(0.0);
    let est = predicate_constraints::baselines::simple_extrapolate(observed, 0.3);
    let truth = observed + evaluate(&missing, &q).unwrap_or(0.0);
    let rel = (est - truth).abs() / truth;
    assert!(
        rel < 0.05,
        "random missingness extrapolates well, rel {rel}"
    );
}

fn pc_predicate_always() -> predicate_constraints::predicate::Predicate {
    predicate_constraints::predicate::Predicate::always()
}

#[test]
fn combined_certain_plus_missing_range() {
    let (missing, present) = setup();
    let set = pcgen::corr_pc(&missing, &[cols::DEVICE, cols::EPOCH], 150);
    let engine = BoundEngine::new(&set);

    let q = AggQuery::new(AggKind::Sum, cols::LIGHT, pc_predicate_always());
    let certain = evaluate(&present, &q).unwrap_or(0.0);
    let report = engine.bound(&q).unwrap();
    let total_range = report.range.offset(certain);

    let full_truth = certain + evaluate(&missing, &q).unwrap_or(0.0);
    assert!(total_range.contains(full_truth));
    // the range is non-trivial: narrower than a factor-3 guess band
    assert!(total_range.hi < full_truth * 3.0);
}

#[test]
fn early_stopping_only_widens() {
    let (missing, _) = setup();
    let mut rng = StdRng::seed_from_u64(21);
    let set = pcgen::rand_pc(&missing, &[cols::DEVICE, cols::EPOCH], 12, &mut rng);
    let exact_engine = BoundEngine::new(&set);
    // stop 3 layers early: every unverified suffix multiplies the admitted
    // cells by up to 2³, so the depth must stay close to the set size —
    // Optimization 4 trades a *few* layers of verification, not most
    let approx_engine = BoundEngine::with_options(
        &set,
        BoundOptions {
            strategy: predicate_constraints::core::Strategy::EarlyStop { depth: 9 },
            ..BoundOptions::default()
        },
    );
    let qg = QueryGenerator::from_table(&missing, &[cols::DEVICE, cols::EPOCH]);
    let mut qrng = StdRng::seed_from_u64(23);
    for q in qg.gen_workload(AggKind::Sum, cols::LIGHT, 10, &mut qrng) {
        let exact = exact_engine.bound(&q).unwrap().range;
        let approx = approx_engine.bound(&q).unwrap().range;
        assert!(
            approx.hi >= exact.hi - 1e-6,
            "early stopping must not tighten the upper bound"
        );
        assert!(approx.lo <= exact.lo + 1e-6);
    }
}

#[test]
fn baselines_contract_failure_vs_tightness() {
    // the paper's qualitative claim across ALL experiments: statistical
    // intervals are tighter but fail; PC bounds never fail
    let (missing, _) = setup();
    let set = pcgen::corr_pc(&missing, &[cols::DEVICE, cols::EPOCH], 150);
    let engine = BoundEngine::new(&set);
    let hist = EquiWidthHistogram::build(&missing, 30);
    let mut rng = StdRng::seed_from_u64(31);
    let sample = UniformSample::draw(&missing, 150, &mut rng);

    let qg = QueryGenerator::from_table(&missing, &[cols::DEVICE, cols::EPOCH]);
    let mut qrng = StdRng::seed_from_u64(37);
    let queries = qg.gen_workload(AggKind::Sum, cols::LIGHT, 60, &mut qrng);

    let mut pc_failures = 0;
    let mut hist_failures = 0;
    let mut sample_failures = 0;
    for q in &queries {
        let truth = evaluate(&missing, q).unwrap_or(0.0);
        let pc = engine.bound(q).unwrap().range;
        if !pc.contains(truth) {
            pc_failures += 1;
        }
        let h = hist.bound_conservative(q);
        if !(h.lo - 1e-6 <= truth && truth <= h.hi + 1e-6) {
            hist_failures += 1;
        }
        let s = sample.estimate(q, Ci::Parametric(0.95));
        if !s.contains(truth) {
            sample_failures += 1;
        }
    }
    assert_eq!(pc_failures, 0, "hard bounds cannot fail");
    assert_eq!(hist_failures, 0, "conservative histograms cannot fail");
    assert!(
        sample_failures > 0,
        "a 95% CLT interval should fail somewhere over 60 skewed queries"
    );
}
