//! `pc` — contingency analysis from the command line.
//!
//! ```text
//! pc bound    --data sales.csv --schema utc:int,branch:cat,price:float \
//!             --constraints assumptions.pc \
//!             --query "SELECT SUM(price) WHERE branch = 'Chicago'"
//! pc validate --data history.csv --schema ... --constraints assumptions.pc
//! pc check    --data sales.csv --schema ... --constraints assumptions.pc   # closure
//! ```
//!
//! * `--data` — CSV with a header row (used for the schema's dictionaries,
//!   for validation, and as the *certain* partition when `--combine` is
//!   given).
//! * `--schema` — `name:type` pairs (`int`, `float`, `cat`).
//! * `--constraints` — a predicate-constraint document in the paper's
//!   notation (see `pc_core::dsl`).
//! * `--query` — a SQL aggregate query (see `pc_storage::sql`).
//! * `--combine` — add the certain partition's exact answer to the
//!   missing-data range (SUM/COUNT only).

use predicate_constraints::core::{dsl, BoundEngine, BoundError};
use predicate_constraints::predicate::{AttrType, Schema};
use predicate_constraints::storage::{evaluate, parse_query, table_from_csv, AggKind, Table};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

struct Args {
    command: String,
    data: Option<String>,
    schema: Option<String>,
    constraints: Option<String>,
    query: Option<String>,
    combine: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("usage: pc <bound|validate|check> …")?;
    let mut args = Args {
        command,
        data: None,
        schema: None,
        constraints: None,
        query: None,
        combine: false,
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--data" => args.data = argv.next(),
            "--schema" => args.schema = argv.next(),
            "--constraints" => args.constraints = argv.next(),
            "--query" => args.query = argv.next(),
            "--combine" => args.combine = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_schema(spec: &str) -> Result<Schema, String> {
    let mut attrs = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("schema entry `{part}` must be name:type"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" => AttrType::Int,
            "float" => AttrType::Float,
            "cat" => AttrType::Cat,
            other => return Err(format!("unknown type `{other}` (int/float/cat)")),
        };
        attrs.push((name.trim().to_string(), ty));
    }
    Ok(Schema::new(attrs))
}

fn load_table(args: &Args) -> Result<Table, String> {
    let data_path = args.data.as_ref().ok_or("--data is required")?;
    let schema_spec = args.schema.as_ref().ok_or("--schema is required")?;
    let schema = parse_schema(schema_spec)?;
    let text =
        std::fs::read_to_string(data_path).map_err(|e| format!("cannot read {data_path}: {e}"))?;
    table_from_csv(schema, &text).map_err(|e| e.to_string())
}

fn load_constraints(
    args: &Args,
    table: &Table,
) -> Result<predicate_constraints::core::PcSet, String> {
    let path = args
        .constraints
        .as_ref()
        .ok_or("--constraints is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    dsl::parse_pcset(table, &text).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    let table = match load_table(&args) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };

    match args.command.as_str() {
        "validate" => {
            let set = match load_constraints(&args, &table) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let violations = set.validate(&table);
            if violations.is_empty() {
                println!("OK: all {} constraints hold on the data", set.len());
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("VIOLATION: {v}");
                }
                ExitCode::FAILURE
            }
        }
        "check" => {
            let set = match load_constraints(&args, &table) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            if set.is_closed() {
                println!("CLOSED: every point of the domain is covered by some constraint");
                ExitCode::SUCCESS
            } else {
                println!(
                    "NOT CLOSED: some missing rows would be unconstrained — \
                     bounds on uncovered regions will be infinite"
                );
                ExitCode::FAILURE
            }
        }
        "bound" => {
            let set = match load_constraints(&args, &table) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let sql = match &args.query {
                Some(q) => q,
                None => return fail("--query is required for `bound`"),
            };
            let query = match parse_query(&table, sql) {
                Ok(q) => q,
                Err(e) => return fail(&e.to_string()),
            };
            let report = match BoundEngine::new(&set).bound(&query) {
                Ok(r) => r,
                Err(BoundError::EmptyAggregate) => {
                    println!("EMPTY: no missing row can match this query");
                    return ExitCode::SUCCESS;
                }
                Err(e) => return fail(&e.to_string()),
            };
            if !report.closed {
                eprintln!("warning: constraint set does not cover the query region");
            }
            let range = if args.combine {
                if !matches!(query.agg, AggKind::Sum | AggKind::Count) {
                    return fail("--combine only makes sense for SUM/COUNT");
                }
                let certain = evaluate(&table, &query).unwrap_or(0.0);
                println!("certain partition answer: {certain}");
                report.range.offset(certain)
            } else {
                report.range
            };
            println!("{sql}");
            println!("result range: [{}, {}]", range.lo, range.hi);
            ExitCode::SUCCESS
        }
        other => fail(&format!("unknown command `{other}` (bound/validate/check)")),
    }
}
