//! `pc` — contingency analysis from the command line.
//!
//! ```text
//! pc bound    --data sales.csv --schema utc:int,branch:cat,price:float \
//!             --constraints assumptions.pc \
//!             --query "SELECT SUM(price) WHERE branch = 'Chicago'"
//! pc batch    --data sales.csv --schema ... --constraints assumptions.pc \
//!             --queries queries.sql                # one SQL query per line
//! pc validate --data history.csv --schema ... --constraints assumptions.pc
//! pc check    --data sales.csv --schema ... --constraints assumptions.pc   # closure
//! pc serve    --data sales.csv --schema ... --constraints assumptions.pc \
//!             --listen 127.0.0.1:7878             # multi-tenant TCP front-end
//! pc client   --addr 127.0.0.1:7878 --script session.txt   # or --request "ping"
//! ```
//!
//! * `--data` — CSV with a header row (used for the schema's dictionaries,
//!   for validation, and as the *certain* partition when `--combine` is
//!   given).
//! * `--schema` — `name:type` pairs (`int`, `float`, `cat`).
//! * `--constraints` — a predicate-constraint document in the paper's
//!   notation (see `pc_core::dsl`).
//! * `--query` — a SQL aggregate query (see `pc_storage::sql`).
//! * `--queries` — for `batch`: a file of SQL queries, one per line
//!   (blank lines and `#` comments skipped; `-` reads stdin). The whole
//!   stream is served through one `Session` — the constraint set is
//!   decomposed once and every query specializes the cached cells, with
//!   simplex warm starts chained across queries. Two **update
//!   directives** may interleave with the queries and drive the
//!   session's versioned catalog end-to-end:
//!
//!   ```text
//!   + <constraint line in the pc_core::dsl notation>
//!   - <constraint id, e.g. c2 (or just 2)>
//!   ```
//!
//!   `+` admits a constraint (the assigned id and new epoch are
//!   printed); `-` retires one. The constraints file seeds ids
//!   `c0..cN-1` in file order. Each directive produces a new epoch whose
//!   cell decomposition is *derived incrementally* from the previous one
//!   (only cells the churned constraint's box cuts are re-checked);
//!   queries between directives are batched against one pinned epoch.
//!   Directives require the session cache and are rejected under
//!   `--no-session-cache`.
//!
//!   A query line may also carry **per-query budget directives** — one
//!   or more `@timeout-ms=N` / `@sat-cap=N` / `@node-cap=N` tokens
//!   prefixed to the SQL:
//!
//!   ```text
//!   @timeout-ms=50 @sat-cap=200 SELECT SUM(price) WHERE utc >= 12
//!   ```
//!
//!   Each overrides the same-named stream-wide flag for that query
//!   only (unnamed caps inherit the flags). Such a query gets its own
//!   budget meter, so it is answered alone, in stream order, instead of
//!   sharing the surrounding batch's budget.
//! * `--combine` — add the certain partition's exact answer to the
//!   missing-data range (SUM/COUNT only).
//! * `--group-by COL` — bound the query once per distinct value of `COL`
//!   (dictionary codes for categorical columns, observed values
//!   otherwise), via the engine's two-level shared-decomposition group-by.
//! * `--threads N` — worker threads for parallel decomposition, parallel
//!   GROUP-BY groups / batch queries, the parallel witness search, and
//!   the allocation MILP's branch & bound (`0` = auto-detect, `1` =
//!   sequential; bounds are identical at any setting up to the branch &
//!   bound pruning tolerance, ~1e-6).
//! * `--per-key-groupby` — disable the shared-decomposition group-by
//!   (A/B baseline: one full decomposition per group).
//! * `--stats` — print the work counters alongside each result. For
//!   `bound` (single query): after the range, the cells, SAT checks, and
//!   branch & bound nodes, the estimate-guided ordering counters
//!   (splits taken in estimate order, incumbents installed by the
//!   branch-ordered near child — see `pc_core::estimate`), and, when the
//!   engine factored the catalog over its constraint-interaction graph
//!   (see `pc_core::shard`), the shard count, the largest shard's
//!   constraint count, and the per-shard SAT-check profile. For `batch`:
//!   one indented counter line under each query's result.
//! * `--no-session-cache` — for `batch`: decompose each query's region
//!   from scratch instead of specializing the session's cached domain
//!   decomposition (A/B baseline for the session layer). `bound` always
//!   runs cache-less — one query has nothing to amortize, and the
//!   per-query pushdown decomposition is never larger than the domain's.
//! * `--no-warm-start` — disable all simplex warm-start chaining
//!   (within queries, across queries, and inside branch & bound). Warm
//!   starting is what the tableau carry rides on, so this flag demands
//!   `--no-tableau-carry` too — the contradictory combination is
//!   rejected, not silently resolved.
//! * `--no-tableau-carry` — keep basis-level warm starts but disable the
//!   deeper tableau-carry tier (carrying whole canonical tableaux into
//!   branch & bound children, across AVG probes, and across a session's
//!   queries). A/B knob for the O(1)-pivot carry; never changes results.
//! * `--timeout-ms N` / `--sat-cap N` / `--node-cap N` — arm a
//!   [`QueryBudget`] (wall-clock deadline, SAT-probe cap, branch & bound
//!   node cap). A tripped budget never errors: the engine degrades
//!   gracefully and still answers, with the result marked `(degraded)` —
//!   the printed range is sound but possibly looser than the exact one.
//!   The budget is re-armed per engine call: for `bound` it covers the
//!   one query (or the whole GROUP BY fan-out); for `batch` it covers
//!   each run of consecutive queries (answered as one pinned-epoch
//!   batch) or each update directive's incremental derivation. A
//!   directive whose derivation trips still lands — its epoch's cells
//!   are simply rebuilt lazily by the next query. Cap values are
//!   validated by the shared parser (`pc_budget::caps`): `0`, negative,
//!   and overflowing values are rejected at parse time, identically on
//!   the flags, the `@` directives, and the `pc serve` wire protocol.
//! * `serve` — bind a TCP listener (`--listen ADDR`, default
//!   `127.0.0.1:7878`; port `0` picks a free port, scraped from the
//!   `listening on …` line) and serve the line protocol documented in
//!   the `pc-serve` crate: per-tenant versioned sessions, admission
//!   control, epoch-stamped responses. The `--data`/`--schema`/
//!   `--constraints` trio seeds the `default` tenant; engine knobs and
//!   budget caps above set every tenant's defaults. `--drain-ms N`
//!   bounds the graceful-shutdown drain.
//! * `client` — talk to a running server: `--addr ADDR` plus either
//!   `--request LINE` (one request, response echoed, exit code from
//!   `OK`/`ERR`) or `--script FILE` (`-` = stdin; one request per line,
//!   `#` comments, `!`-prefixed lines *expect* an `ERR` — exit code 0
//!   iff every expectation held).
//!
//! `batch` serves its stream **incrementally**: queries are answered
//! batch-by-batch as directives cut the stream, and a malformed line
//! aborts with `line N: …` *after* flushing every result already
//! produced — partial output is never lost to a late typo.

use predicate_constraints::core::budget::caps::{parse_cap_value, parse_line_caps, BudgetCaps};
use predicate_constraints::core::{
    dsl, BoundError, BoundOptions, BoundReport, ConstraintId, PcSet, QueryBudget, Session,
    SessionOptions, TripReason,
};
use predicate_constraints::predicate::{AttrType, Schema};
use predicate_constraints::serve::{run_script, Connection, ServeConfig, Server};
use predicate_constraints::storage::{
    evaluate, parse_query, table_from_csv, AggKind, AggQuery, Table,
};
use std::process::ExitCode;
use std::time::Duration;

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

struct Args {
    command: String,
    data: Option<String>,
    schema: Option<String>,
    constraints: Option<String>,
    query: Option<String>,
    queries: Option<String>,
    combine: bool,
    group_by: Option<String>,
    threads: usize,
    per_key_groupby: bool,
    no_session_cache: bool,
    no_warm_start: bool,
    no_tableau_carry: bool,
    fifo: bool,
    no_admission: bool,
    stats: bool,
    caps: BudgetCaps,
    listen: Option<String>,
    addr: Option<String>,
    script: Option<String>,
    request: Option<String>,
    drain_ms: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv
        .next()
        .ok_or("usage: pc <bound|batch|validate|check|serve|client> …")?;
    let mut args = Args {
        command,
        data: None,
        schema: None,
        constraints: None,
        query: None,
        queries: None,
        combine: false,
        group_by: None,
        threads: 0,
        per_key_groupby: false,
        no_session_cache: false,
        no_warm_start: false,
        no_tableau_carry: false,
        fifo: false,
        no_admission: false,
        stats: false,
        caps: BudgetCaps::default(),
        listen: None,
        addr: None,
        script: None,
        request: None,
        drain_ms: None,
    };
    // Budget caps go through the shared validating parser (same code the
    // batch `@` directives and the wire protocol use), so `0`, negative,
    // and overflowing values are rejected uniformly at parse time.
    let parse_cap = |flag: &str, v: Option<String>| -> Result<u64, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
        parse_cap_value(flag, &v)
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--data" => args.data = argv.next(),
            "--schema" => args.schema = argv.next(),
            "--constraints" => args.constraints = argv.next(),
            "--query" => args.query = argv.next(),
            "--queries" => args.queries = argv.next(),
            "--combine" => args.combine = true,
            "--group-by" => args.group_by = argv.next(),
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                args.threads = v
                    .parse()
                    .map_err(|_| format!("--threads: `{v}` is not a number"))?;
            }
            "--per-key-groupby" => args.per_key_groupby = true,
            "--stats" => args.stats = true,
            "--timeout-ms" => args.caps.timeout_ms = Some(parse_cap("--timeout-ms", argv.next())?),
            "--sat-cap" => args.caps.sat_cap = Some(parse_cap("--sat-cap", argv.next())?),
            "--node-cap" => args.caps.node_cap = Some(parse_cap("--node-cap", argv.next())?),
            "--listen" => args.listen = argv.next(),
            "--addr" => args.addr = argv.next(),
            "--script" => args.script = argv.next(),
            "--request" => args.request = argv.next(),
            "--drain-ms" => {
                let v = argv.next().ok_or("--drain-ms needs a value")?;
                args.drain_ms = Some(
                    v.parse()
                        .map_err(|_| format!("--drain-ms: `{v}` is not a number"))?,
                );
            }
            "--no-session-cache" => args.no_session_cache = true,
            "--no-warm-start" => args.no_warm_start = true,
            "--no-tableau-carry" => args.no_tableau_carry = true,
            "--fifo" => args.fifo = true,
            "--no-admission" => args.no_admission = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.no_warm_start && !args.no_tableau_carry {
        // Mirror the batch-flag hardening: the tableau carry is the warm
        // start's deeper tier, so "no warm starts, but keep carrying
        // tableaux" has no honest reading — demand the explicit pair
        // instead of silently disabling one side.
        return Err(
            "--no-warm-start also disables the tableau carry it rides on; \
             pass --no-tableau-carry alongside it"
                .into(),
        );
    }
    Ok(args)
}

/// The engine/session configuration the CLI knobs describe.
fn session_options(args: &Args) -> SessionOptions {
    SessionOptions {
        bound: BoundOptions {
            threads: args.threads,
            shared_group_by: !args.per_key_groupby,
            warm_start: !args.no_warm_start,
            tableau_carry: !args.no_tableau_carry,
            ..BoundOptions::default()
        },
        cache_cells: !args.no_session_cache,
        incremental: true,
        deadline_sched: !args.fifo,
        admission: !args.no_admission,
    }
}

/// A fresh budget from the stream-wide CLI caps.
fn query_budget(args: &Args) -> QueryBudget {
    args.caps.budget()
}

/// Suffix tags for a report line: degraded first (budget story, naming
/// *which* cap tripped), then closure (coverage story).
fn report_tags(degraded: bool, trip: Option<TripReason>, closed: bool) -> String {
    let mut tag = String::new();
    match (degraded, trip) {
        (true, Some(reason)) => tag.push_str(&format!("  (degraded: {reason})")),
        (true, None) => tag.push_str("  (degraded)"),
        _ => {}
    }
    if !closed {
        tag.push_str("  (not closed)");
    }
    tag
}

fn parse_schema(spec: &str) -> Result<Schema, String> {
    let mut attrs = Vec::new();
    for part in spec.split(',') {
        let (name, ty) = part
            .split_once(':')
            .ok_or_else(|| format!("schema entry `{part}` must be name:type"))?;
        let ty = match ty.trim().to_ascii_lowercase().as_str() {
            "int" => AttrType::Int,
            "float" => AttrType::Float,
            "cat" => AttrType::Cat,
            other => return Err(format!("unknown type `{other}` (int/float/cat)")),
        };
        attrs.push((name.trim().to_string(), ty));
    }
    Ok(Schema::new(attrs))
}

fn load_table(args: &Args) -> Result<Table, String> {
    let data_path = args.data.as_ref().ok_or("--data is required")?;
    let schema_spec = args.schema.as_ref().ok_or("--schema is required")?;
    let schema = parse_schema(schema_spec)?;
    let text =
        std::fs::read_to_string(data_path).map_err(|e| format!("cannot read {data_path}: {e}"))?;
    table_from_csv(schema, &text).map_err(|e| e.to_string())
}

fn load_constraints(args: &Args, table: &Table) -> Result<PcSet, String> {
    let path = args
        .constraints
        .as_ref()
        .ok_or("--constraints is required")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    dsl::parse_pcset(table, &text).map_err(|e| e.to_string())
}

/// `pc client` — a scripted (or single-request) session against a
/// running `pc serve`. Needs no table, so it runs before the data
/// loading the other commands share.
fn run_client(args: &Args) -> ExitCode {
    let addr = match args.addr.as_deref() {
        Some(a) => a,
        None => return fail("--addr is required for `client`"),
    };
    if args.request.is_some() && args.script.is_some() {
        return fail("`client` takes --request or --script, not both");
    }
    if let Some(request) = &args.request {
        let mut conn = match Connection::connect(addr) {
            Ok(c) => c,
            Err(e) => return fail(&format!("cannot connect to {addr}: {e}")),
        };
        let response = match conn.send(request) {
            Ok(r) => r,
            Err(e) => return fail(&format!("request failed: {e}")),
        };
        println!("{}", response.header);
        for row in &response.rows {
            println!("{row}");
        }
        if response.is_ok() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    } else if let Some(path) = &args.script {
        let script = if path == "-" {
            use std::io::Read;
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                return fail(&format!("cannot read stdin: {e}"));
            }
            buf
        } else {
            match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return fail(&format!("cannot read {path}: {e}")),
            }
        };
        let mut out = std::io::stdout();
        match run_script(addr, &script, &mut out) {
            Ok(outcome) if outcome.passed() => ExitCode::SUCCESS,
            Ok(outcome) => fail(&format!(
                "{} of {} script expectations mismatched",
                outcome.mismatches, outcome.requests
            )),
            Err(e) => fail(&format!("client session failed: {e}")),
        }
    } else {
        fail("`client` needs --script <file|-> or --request <line>")
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => return fail(&e),
    };
    if args.command == "client" {
        return run_client(&args);
    }
    let table = match load_table(&args) {
        Ok(t) => t,
        Err(e) => return fail(&e),
    };

    match args.command.as_str() {
        "validate" => {
            let set = match load_constraints(&args, &table) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let violations = set.validate(&table);
            if violations.is_empty() {
                println!("OK: all {} constraints hold on the data", set.len());
                ExitCode::SUCCESS
            } else {
                for v in &violations {
                    println!("VIOLATION: {v}");
                }
                ExitCode::FAILURE
            }
        }
        "check" => {
            let set = match load_constraints(&args, &table) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            if set.is_closed() {
                println!("CLOSED: every point of the domain is covered by some constraint");
                ExitCode::SUCCESS
            } else {
                println!(
                    "NOT CLOSED: some missing rows would be unconstrained — \
                     bounds on uncovered regions will be infinite"
                );
                ExitCode::FAILURE
            }
        }
        "batch" => {
            // Reject flags this command would otherwise silently ignore —
            // wrong-shaped output with exit code 0 is worse than an error.
            if args.group_by.is_some() {
                return fail("--group-by is not supported by `batch`; put GROUP BY queries through `bound --group-by`");
            }
            if args.combine {
                return fail("--combine is not supported by `batch` yet");
            }
            if args.query.is_some() {
                return fail("`batch` takes --queries (a file of queries), not --query");
            }
            if args.per_key_groupby {
                return fail("--per-key-groupby is not supported by `batch` (no GROUP BY queries here); its A/B knobs are --no-session-cache / --no-warm-start");
            }
            let set = match load_constraints(&args, &table) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let path = match &args.queries {
                Some(p) => p,
                None => {
                    return fail("--queries is required for `batch` (a file, or `-` for stdin)")
                }
            };
            let text = if path == "-" {
                use std::io::Read;
                let mut buf = String::new();
                if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                    return fail(&format!("cannot read stdin: {e}"));
                }
                buf
            } else {
                match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => return fail(&format!("cannot read {path}: {e}")),
                }
            };
            // One session serves the whole stream: decompose once,
            // specialize per query, delta-derive per directive, chain warm
            // starts across queries and epochs. The stream is processed
            // line by line — consecutive queries batch against one pinned
            // epoch, directives cut the batch, and a malformed line fails
            // *after* the batches before it have printed their results.
            let session = Session::with_options(set, session_options(&args));
            let mut failed = false;
            let mut saw_item = false;
            let mut pending: Vec<(String, AggQuery)> = Vec::new();
            let emit = |sql: &str, report: Result<BoundReport, BoundError>, failed: &mut bool| {
                match report {
                    Ok(r) => {
                        let tag = report_tags(r.degraded, r.trip, r.closed);
                        println!("{sql} -> [{}, {}]{tag}", r.range.lo, r.range.hi);
                        if args.stats {
                            println!(
                                "  stats: {} cells, {} sat checks, {} branch&bound nodes, \
                                 {} ordered splits, {} incumbent-first",
                                r.stats.cells,
                                r.stats.sat_checks,
                                r.solver.nodes,
                                r.stats.ordered_splits,
                                r.solver.incumbent_first
                            );
                            if let Some(sched) = &r.sched {
                                println!(
                                    "  sched: {} (queue wait {:?}, backlog {:?}, est cost {:?})",
                                    sched.verdict,
                                    sched.queue_wait,
                                    sched.backlog,
                                    sched.estimated_cost
                                );
                            }
                        }
                    }
                    Err(BoundError::EmptyAggregate) => {
                        println!("{sql} -> empty (no missing row can match)");
                    }
                    Err(e) => {
                        *failed = true;
                        println!("{sql} -> error: {e}");
                    }
                }
            };
            let flush = |pending: &mut Vec<(String, AggQuery)>, failed: &mut bool| {
                if pending.is_empty() {
                    return;
                }
                let queries: Vec<AggQuery> = pending.iter().map(|(_, q)| q.clone()).collect();
                let budget = query_budget(&args);
                let reports = session.bound_many_budgeted(&queries, &budget);
                for ((sql, _), report) in pending.iter().zip(reports) {
                    emit(sql, report, failed);
                }
                pending.clear();
            };
            for (idx, raw) in text.lines().enumerate() {
                let lineno = idx + 1;
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                saw_item = true;
                if let Some(rest) = line.strip_prefix("+ ") {
                    if args.no_session_cache {
                        flush(&mut pending, &mut failed);
                        return fail(&format!(
                            "line {lineno}: update directives (+ / -) drive the session's \
                             incremental epochs and need the cell cache; drop --no-session-cache"
                        ));
                    }
                    match dsl::parse_constraint(&table, rest) {
                        Ok(pc) => {
                            flush(&mut pending, &mut failed);
                            let id = session.add_constraint_budgeted(pc, &query_budget(&args));
                            println!("+ {rest} -> {id} (epoch {})", session.epoch());
                        }
                        Err(e) => {
                            flush(&mut pending, &mut failed);
                            return fail(&format!("line {lineno}: {line}: {e}"));
                        }
                    }
                } else if let Some(rest) = line.strip_prefix("- ") {
                    if args.no_session_cache {
                        flush(&mut pending, &mut failed);
                        return fail(&format!(
                            "line {lineno}: update directives (+ / -) drive the session's \
                             incremental epochs and need the cell cache; drop --no-session-cache"
                        ));
                    }
                    match rest.trim().parse::<ConstraintId>() {
                        Ok(id) => {
                            flush(&mut pending, &mut failed);
                            match session.retire_constraint(id) {
                                Ok(()) => println!("- {id} retired (epoch {})", session.epoch()),
                                Err(e) => return fail(&format!("line {lineno}: {e}")),
                            }
                        }
                        Err(e) => {
                            flush(&mut pending, &mut failed);
                            return fail(&format!("line {lineno}: {line}: {e}"));
                        }
                    }
                } else if line.starts_with('@') {
                    // Per-query budget directives: this query gets its own
                    // meter (stream caps overridden field-wise), so it
                    // cannot share the surrounding batch's budget — answer
                    // it alone, in stream order.
                    let (line_caps, sql) = match parse_line_caps(line) {
                        Ok(parsed) => parsed,
                        Err(e) => {
                            flush(&mut pending, &mut failed);
                            return fail(&format!("line {lineno}: {line}: {e}"));
                        }
                    };
                    match parse_query(&table, sql) {
                        Ok(q) => {
                            flush(&mut pending, &mut failed);
                            let budget = args.caps.overridden_by(line_caps).budget();
                            emit(sql, session.bound_budgeted(&q, &budget), &mut failed);
                        }
                        Err(e) => {
                            flush(&mut pending, &mut failed);
                            return fail(&format!("line {lineno}: {line}: {e}"));
                        }
                    }
                } else {
                    match parse_query(&table, line) {
                        Ok(q) => pending.push((line.to_string(), q)),
                        Err(e) => {
                            flush(&mut pending, &mut failed);
                            return fail(&format!("line {lineno}: {line}: {e}"));
                        }
                    }
                }
            }
            if !saw_item {
                return fail("--queries: no queries found");
            }
            flush(&mut pending, &mut failed);
            if args.stats {
                // Session-lifetime counters (they survive epoch churn):
                // how often a shed query's pre-tripped walk was answered
                // from the per-epoch memo instead of re-run.
                let shed = session.shed_cache_stats();
                println!("shed cache: {} hits, {} misses", shed.hits, shed.misses);
            }
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "bound" => {
            if args.queries.is_some() {
                return fail("`bound` takes --query (one query), not --queries; use `batch` for a query file");
            }
            let set = match load_constraints(&args, &table) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let sql = match &args.query {
                Some(q) => q,
                None => return fail("--query is required for `bound`"),
            };
            let query = match parse_query(&table, sql) {
                Ok(q) => q,
                Err(e) => return fail(&e.to_string()),
            };
            // --threads flows through the session/engine into
            // decomposition, GROUP-BY group tasks, the parallel witness
            // search, and the allocation MILP's branch & bound alike.
            // `bound` answers exactly one query, so the session's
            // domain-wide cell cache has nothing to amortize — worse, it
            // would trade the query-region pushdown for a possibly much
            // larger full-domain decomposition. Always serve `bound`
            // cache-less (per-query pushdown decomposition, as before the
            // session layer); `batch` is where the cache pays.
            let session = Session::with_options(
                set,
                SessionOptions {
                    cache_cells: false,
                    ..session_options(&args)
                },
            );

            if let Some(group_col) = &args.group_by {
                if args.stats {
                    return fail("--stats is not supported with --group-by yet");
                }
                if args.combine {
                    return fail(
                        "--combine cannot be used with --group-by \
                         (per-group certain-partition offsets are not supported yet)",
                    );
                }
                let Some(attr) = table.schema().index_of(group_col) else {
                    return fail(&format!("--group-by: no column named `{group_col}`"));
                };
                let keys: Vec<f64> = match table.dictionary(attr) {
                    // categorical: every dictionary code is a group
                    Some(dict) => (0..dict.len()).map(|c| c as f64).collect(),
                    // numeric: the distinct observed values. The CSV
                    // loader rejects NaN, but other frontends may not —
                    // filter explicitly and sort by total order rather
                    // than trusting partial_cmp.
                    None => {
                        let mut vals: Vec<f64> = (0..table.len())
                            .map(|r| table.encoded(r, attr))
                            .filter(|v| !v.is_nan())
                            .collect();
                        vals.sort_by(f64::total_cmp);
                        vals.dedup();
                        vals
                    }
                };
                if keys.is_empty() {
                    return fail("--group-by: no group keys found in the data");
                }
                println!("{sql} GROUP BY {group_col}");
                let budget = query_budget(&args);
                for group in session.bound_group_by_budgeted(&query, attr, keys, &budget) {
                    let label = table
                        .dictionary(attr)
                        .and_then(|d| d.label(group.key as u32))
                        .map(str::to_string)
                        .unwrap_or_else(|| group.key.to_string());
                    match group.report {
                        Ok(r) => {
                            let tag = report_tags(r.degraded, r.trip, r.closed);
                            println!("{label}: [{}, {}]{tag}", r.range.lo, r.range.hi);
                        }
                        Err(BoundError::EmptyAggregate) => {
                            println!("{label}: empty (no missing row can reach this group)");
                        }
                        Err(e) => println!("{label}: error: {e}"),
                    }
                }
                return ExitCode::SUCCESS;
            }

            let report = match session.bound_budgeted(&query, &query_budget(&args)) {
                Ok(r) => r,
                Err(BoundError::EmptyAggregate) => {
                    println!("EMPTY: no missing row can match this query");
                    return ExitCode::SUCCESS;
                }
                Err(e) => return fail(&e.to_string()),
            };
            if !report.closed {
                eprintln!("warning: constraint set does not cover the query region");
            }
            if report.degraded {
                match report.trip {
                    Some(reason) => eprintln!(
                        "warning: budget exhausted ({reason}) — the range is sound but may \
                         be looser than exact"
                    ),
                    None => eprintln!(
                        "warning: budget exhausted — the range is sound but may be looser \
                         than exact"
                    ),
                }
            }
            let range = if args.combine {
                if !matches!(query.agg, AggKind::Sum | AggKind::Count) {
                    return fail("--combine only makes sense for SUM/COUNT");
                }
                let certain = evaluate(&table, &query).unwrap_or(0.0);
                println!("certain partition answer: {certain}");
                report.range.offset(certain)
            } else {
                report.range
            };
            println!("{sql}");
            println!("result range: [{}, {}]", range.lo, range.hi);
            if args.stats {
                let s = report.stats;
                println!(
                    "stats: {} cells, {} sat checks, {} branch&bound nodes",
                    s.cells, s.sat_checks, report.solver.nodes
                );
                println!(
                    "ordering: {} estimate-guided splits, {} incumbent-first installs",
                    s.ordered_splits, report.solver.incumbent_first
                );
                if s.shards > 0 {
                    println!(
                        "shards: {} (largest {} constraints)",
                        s.shards, s.max_shard_constraints
                    );
                    let per_shard: Vec<String> =
                        report.shard_sat_checks.iter().map(u64::to_string).collect();
                    println!("per-shard sat checks: [{}]", per_shard.join(", "));
                }
            }
            ExitCode::SUCCESS
        }
        "serve" => {
            let set = match load_constraints(&args, &table) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let addr = args.listen.as_deref().unwrap_or("127.0.0.1:7878");
            let mut config = ServeConfig {
                options: session_options(&args),
                caps: args.caps,
                ..ServeConfig::default()
            };
            if let Some(ms) = args.drain_ms {
                config.drain = Duration::from_millis(ms);
            }
            let server = match Server::bind(addr, table, set, config) {
                Ok(s) => s,
                Err(e) => return fail(&format!("cannot listen on {addr}: {e}")),
            };
            match server.local_addr() {
                // Printed to stdout (and flushed) so scripts can scrape
                // the bound port when --listen used port 0.
                Ok(local) => {
                    println!("listening on {local}");
                    use std::io::Write;
                    std::io::stdout().flush().ok();
                }
                Err(e) => return fail(&e.to_string()),
            }
            match server.run() {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => fail(&format!("serve failed: {e}")),
            }
        }
        other => fail(&format!(
            "unknown command `{other}` (bound/batch/validate/check/serve/client)"
        )),
    }
}
