//! # predicate-constraints
//!
//! Facade crate for the Predicate-Constraint (PC) missing-data contingency
//! analysis framework — a reproduction of "Fast and Reliable Missing Data
//! Contingency Analysis with Predicate-Constraints" (SIGMOD 2020).
//!
//! The workspace is organized as focused sub-crates, all re-exported here:
//!
//! * [`predicate`] — typed predicate language, interval/region algebra, and
//!   the exact cell satisfiability solver.
//! * [`solver`] — two-phase simplex LP and branch-and-bound MILP solvers.
//! * [`storage`] — in-memory columnar tables, filters, aggregates, joins.
//! * [`core`] — the PC framework itself: constraint sets, cell
//!   decomposition, aggregate result ranges, and join bounds.
//! * [`serve`] — the multi-tenant TCP serving front-end (`pc serve`):
//!   line protocol, session registry, graceful drain.
//! * [`baselines`] — statistical baselines evaluated against PCs in the
//!   paper (sampling confidence intervals, histograms, GMM, elastic
//!   sensitivity).
//! * [`datagen`] — synthetic dataset twins, missing-data injectors, and
//!   workload/PC generators used by the experiment harness.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use pc_baselines as baselines;
pub use pc_core as core;
pub use pc_datagen as datagen;
pub use pc_predicate as predicate;
pub use pc_serve as serve;
pub use pc_solver as solver;
pub use pc_storage as storage;
