//! Property tests for estimate-guided search ordering (`pc_core::estimate`):
//! over random catalogs mixing tile-local and cross-cutting constraints,
//! every bound computed with ordering on (the default) must equal the
//! declaration-order oracle (`BoundOptions { ordering: false }`) — for all
//! five aggregates, arbitrary query regions, GROUP-BY fan-outs, sharded
//! catalogs, and sessions under random churn sequences. Ordering is a
//! visit-order permutation: the cell set, every verdict, every bound, and
//! the closure flag are invariant; only work counters and witness identity
//! may move. A deterministic skewed-catalog regression then checks the
//! point of the whole layer: with selective constraints declared *last*
//! (the adversarial order), ordering strictly reduces both the SAT-check
//! count of the decomposition and the branch & bound node count of the
//! allocation MILP.

use pc_core::{
    BoundEngine, BoundError, BoundOptions, BoundReport, ConstraintId, FrequencyConstraint, PcSet,
    PredicateConstraint, Session, SessionOptions, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use proptest::prelude::*;

/// Three tiles of width 4 on the x axis (mirrors `prop_shard.rs`, so
/// random catalogs sometimes factor into several interaction components
/// and the per-shard ordering path is exercised too).
const TILE: i64 = 4;
const TILES: i64 = 3;
const XMAX: i64 = TILE * TILES;
const VMAX: i64 = 20;

fn schema() -> Schema {
    Schema::new(vec![("x", AttrType::Int), ("v", AttrType::Int)])
}

fn build_set(pcs: Vec<PredicateConstraint>) -> PcSet {
    let mut set = PcSet::new(schema());
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, XMAX as f64));
    domain.set_interval(1, Interval::closed(0.0, VMAX as f64));
    for pc in pcs {
        set.push(pc);
    }
    set.set_domain(domain);
    set
}

fn pc_on(xlo: f64, xhi: f64, vlo: f64, vhi: f64, forced: bool, ku: u64) -> PredicateConstraint {
    let freq = if forced {
        FrequencyConstraint::between(1, ku)
    } else {
        FrequencyConstraint::at_most(ku)
    };
    PredicateConstraint::new(
        Predicate::always()
            .and(Atom::between(0, xlo, xhi))
            .and(Atom::between(1, vlo, vhi)),
        ValueConstraint::none().with(1, Interval::closed(vlo, vhi - 1.0)),
        freq,
    )
}

prop_compose! {
    /// Boxes of very different selectivity: some span whole tiles (wide,
    /// uninformative), some are slivers (selective) — the skew the
    /// estimate layer exists to exploit.
    fn arb_pc()(
        tile in 0..TILES,
        a in 0..TILE, b in 0..TILE,
        c in 0..=VMAX, d in 0..=VMAX,
        ku in 1u64..8,
        forced: bool,
        cross in 0usize..10,
    ) -> PredicateConstraint {
        let (vlo, vhi) = (c.min(d) as f64, c.max(d) as f64 + 1.0);
        if cross < 3 {
            let (xlo, xhi) = (
                (tile * TILE + a.min(b)) as f64,
                (tile * TILE + a.max(b)) as f64 + TILE as f64,
            );
            pc_on(xlo, xhi.min(XMAX as f64), vlo, vhi, forced, ku)
        } else {
            let (xlo, xhi) = (
                (tile * TILE + a.min(b)) as f64,
                (tile * TILE + a.max(b)) as f64 + 1.0,
            );
            pc_on(xlo, xhi, vlo, vhi, forced, ku)
        }
    }
}

prop_compose! {
    fn arb_query()(
        agg_pick in 0usize..5,
        a in 0..=XMAX, b in 0..=XMAX,
        full: bool,
    ) -> AggQuery {
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min, AggKind::Max][agg_pick];
        let predicate = if full {
            Predicate::always()
        } else {
            let (lo, hi) = (a.min(b) as f64, a.max(b) as f64);
            Predicate::atom(Atom::between(0, lo, hi + 1.0))
        };
        AggQuery::new(agg, 1, predicate)
    }
}

/// Declaration-order oracle: everything else at defaults.
fn unordered() -> BoundOptions {
    BoundOptions {
        ordering: false,
        ..BoundOptions::default()
    }
}

fn results_equal(
    label: &str,
    off: &Result<BoundReport, BoundError>,
    on: &Result<BoundReport, BoundError>,
) -> Result<(), String> {
    match (off, on) {
        (Ok(x), Ok(y)) => {
            let lo_ok = (x.range.lo - y.range.lo).abs() < 1e-5
                || (x.range.lo.is_infinite() && x.range.lo == y.range.lo);
            let hi_ok = (x.range.hi - y.range.hi).abs() < 1e-5
                || (x.range.hi.is_infinite() && x.range.hi == y.range.hi);
            if !lo_ok || !hi_ok {
                return Err(format!(
                    "{label}: declaration order [{}, {}] vs estimate order [{}, {}]",
                    x.range.lo, x.range.hi, y.range.lo, y.range.hi
                ));
            }
            if x.closed != y.closed {
                return Err(format!("{label}: closed {} vs {}", x.closed, y.closed));
            }
            Ok(())
        }
        (Err(x), Err(y)) if x == y => Ok(()),
        (x, y) => Err(format!(
            "{label}: declaration order {x:?} vs estimate order {y:?}"
        )),
    }
}

/// One catalog mutation; retire/replace targets resolve by index seed
/// into the live-id list at application time.
#[derive(Debug, Clone)]
enum Op {
    Add(PredicateConstraint),
    Retire(usize),
    Replace(usize, PredicateConstraint),
}

prop_compose! {
    fn arb_op()(
        pick in 0usize..6,
        seed in 0usize..8,
        pc in arb_pc(),
    ) -> Op {
        match pick {
            0..=2 => Op::Add(pc),
            3 | 4 => Op::Retire(seed),
            _ => Op::Replace(seed, pc),
        }
    }
}

fn apply(session: &Session, op: &Op) {
    let live: Vec<ConstraintId> = session.constraint_ids();
    match op {
        Op::Add(pc) => {
            session.add_constraint(pc.clone());
        }
        Op::Retire(seed) => {
            if !live.is_empty() {
                session
                    .retire_constraint(live[seed % live.len()])
                    .expect("live id retires");
            }
        }
        Op::Replace(seed, pc) => {
            if !live.is_empty() {
                session
                    .replace_constraint(live[seed % live.len()], pc.clone())
                    .expect("live id replaces");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One-shot engine: estimate-ordered bounds equal the
    /// declaration-order oracle for every aggregate and query region —
    /// including catalogs that factor over the interaction graph, where
    /// each shard orders from restricted estimates.
    #[test]
    fn ordering_never_moves_a_bound(
        pcs in prop::collection::vec(arb_pc(), 1..7),
        qs in prop::collection::vec(arb_query(), 1..4),
    ) {
        let set = build_set(pcs);
        let on = BoundEngine::new(&set);
        let off = BoundEngine::with_options(&set, unordered());
        for q in &qs {
            if let Err(msg) = results_equal("one-shot", &off.bound(q), &on.bound(q)) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// Repeated queries against one engine: the split-survival counters
    /// accumulate (the permutation may drift run to run) — bounds must
    /// not.
    #[test]
    fn survival_learning_never_moves_a_bound(
        pcs in prop::collection::vec(arb_pc(), 1..6),
        q in arb_query(),
    ) {
        let set = build_set(pcs);
        let on = BoundEngine::new(&set);
        let off = BoundEngine::with_options(&set, unordered());
        let oracle = off.bound(&q);
        for round in 0..3 {
            if let Err(msg) = results_equal(&format!("round {round}"), &oracle, &on.bound(&q)) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// GROUP-BY fan-outs: shared two-level and per-key alike answer the
    /// same with and without ordering.
    #[test]
    fn group_by_matches_declaration_order(
        pcs in prop::collection::vec(arb_pc(), 1..6),
        agg_pick in 0usize..3,
    ) {
        let set = build_set(pcs);
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Max][agg_pick];
        let base = AggQuery::new(agg, 1, Predicate::always());
        let keys: Vec<f64> = (0..XMAX).map(|k| k as f64).collect();
        let on = BoundEngine::new(&set).bound_group_by(&base, 0, keys.clone());
        let off = BoundEngine::with_options(&set, unordered()).bound_group_by(&base, 0, keys);
        prop_assert_eq!(on.len(), off.len());
        for (y, x) in on.iter().zip(&off) {
            prop_assert_eq!(y.key, x.key);
            if let Err(msg) = results_equal("group", &x.report, &y.report) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// Sessions under churn: per-delta estimate maintenance (add appends,
    /// retire drops, replace chains; shard merges recombine restricted
    /// stats) never moves a served bound off the declaration-order
    /// session — or off a fresh engine of the final catalog.
    #[test]
    fn churned_sessions_match_declaration_order(
        pcs in prop::collection::vec(arb_pc(), 1..5),
        ops in prop::collection::vec(arb_op(), 1..6),
        qs in prop::collection::vec(arb_query(), 1..3),
    ) {
        let on = Session::new(build_set(pcs.clone()));
        let off = Session::with_options(
            build_set(pcs),
            SessionOptions { bound: unordered(), ..SessionOptions::default() },
        );
        for (i, op) in ops.iter().enumerate() {
            apply(&on, op);
            apply(&off, op);
            for q in &qs {
                if let Err(msg) =
                    results_equal(&format!("after op {i}"), &off.bound(q), &on.bound(q))
                {
                    return Err(TestCaseError::fail(msg));
                }
            }
        }
        // final catalog: the served answers also equal a cold engine's
        let set = on.pc_set();
        let fresh = BoundEngine::with_options(&set, unordered());
        for q in &qs {
            if let Err(msg) = results_equal("final vs fresh", &fresh.bound(q), &on.bound(q)) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// Session GROUP-BY serves its level-1 cells from the epoch cache
    /// (zero-SAT key-local retirement) — answers must equal the engine's
    /// own two-level path on the same catalog, with and without ordering.
    #[test]
    fn session_group_by_serves_from_epoch_cache(
        pcs in prop::collection::vec(arb_pc(), 1..6),
        agg_pick in 0usize..3,
    ) {
        let set = build_set(pcs);
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg][agg_pick];
        let base = AggQuery::new(agg, 1, Predicate::always());
        let keys: Vec<f64> = (0..XMAX).map(|k| k as f64).collect();
        let engine_groups = BoundEngine::new(&set).bound_group_by(&base, 0, keys.clone());
        let session = Session::new(set);
        // prime the epoch cache, then serve the GROUP-BY from it
        session.cell_set().ok();
        let served = session.bound_group_by(&base, 0, keys);
        prop_assert_eq!(served.len(), engine_groups.len());
        for (s, e) in served.iter().zip(&engine_groups) {
            prop_assert_eq!(s.key, e.key);
            if let Err(msg) = results_equal("cached group", &e.report, &s.report) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }
}

/// 3-attr constraint for the skewed catalog: a box in the x–y plane plus
/// a value band `[vlo, vhi]` on the third attribute.
#[allow(clippy::too_many_arguments)]
fn pc_xy(
    xlo: f64,
    xhi: f64,
    ylo: f64,
    yhi: f64,
    vlo: f64,
    vhi: f64,
    forced: bool,
    ku: u64,
) -> PredicateConstraint {
    let freq = if forced {
        FrequencyConstraint::between(1, ku)
    } else {
        FrequencyConstraint::at_most(ku)
    };
    PredicateConstraint::new(
        Predicate::always()
            .and(Atom::between(0, xlo, xhi))
            .and(Atom::between(1, ylo, yhi))
            .and(Atom::between(2, vlo, vhi)),
        ValueConstraint::none().with(2, Interval::closed(vlo, vhi)),
        freq,
    )
}

/// The adversarial declaration order the estimate layer exists to fix:
/// wide, overlapping, uninformative boxes declared first; tiny selective
/// boxes declared last. Estimate order decides the selective constraints
/// early, so the DFS prunes whole subtrees the declaration order pays SAT
/// checks to explore — and the allocation MILP branches on the
/// selective-cell variables first, collapsing the fractional tail the
/// most-fractional rule re-explores.
///
/// Composition (schema `x, y ∈ [0,12]`, value `v ∈ [0,20]`):
/// * a non-forced cover box (finite bounds, and it couples every
///   constraint into one shard so the allocation MILP is joint);
/// * a 3×3 cross-hatch of wide forced strips — the SAT-check skew: in
///   declaration order the strips fragment the plane before anything
///   selective has been decided;
/// * two pentagon "rings" of forced boxes in which only cyclic
///   neighbours overlap, all sharing the value band `[5, 6]`. An odd
///   cycle's covering LP has a fractional optimum (2.5 tuples vs the
///   integral 3), so the MILP genuinely branches — and with two rings the
///   branch-variable choice decides how much of the product tree is
///   explored;
/// * three tiny slivers declared last: maximally selective, the cells the
///   estimate order decides (and the MILP branches) first.
fn skewed_catalog() -> PcSet {
    let mut set = PcSet::new(Schema::new(vec![
        ("x", AttrType::Int),
        ("y", AttrType::Int),
        ("v", AttrType::Int),
    ]));
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, XMAX as f64));
    domain.set_interval(1, Interval::closed(0.0, XMAX as f64));
    domain.set_interval(2, Interval::closed(0.0, VMAX as f64));
    let xmax = XMAX as f64;
    let vmax = VMAX as f64;
    let mut pcs = vec![pc_xy(0.0, xmax, 0.0, xmax, 0.0, vmax, false, 9)];
    // 3×3 cross-hatch of wide forced strips
    for i in 0..3 {
        let lo = 4.0 * i as f64;
        pcs.push(pc_xy(lo, lo + 4.0, 0.0, xmax, 0.0, vmax, true, 9));
    }
    for i in 0..3 {
        let lo = 4.0 * i as f64;
        pcs.push(pc_xy(0.0, xmax, lo, lo + 4.0, 0.0, vmax, true, 9));
    }
    // pentagon ring at (0, 4): only cyclic neighbours overlap
    pcs.push(pc_xy(0.0, 4.0, 9.0, 12.0, 5.0, 6.0, true, 1));
    pcs.push(pc_xy(3.0, 8.0, 9.0, 11.0, 5.0, 6.0, true, 1));
    pcs.push(pc_xy(6.0, 8.0, 5.0, 10.0, 5.0, 6.0, true, 1));
    pcs.push(pc_xy(1.0, 7.0, 4.0, 6.0, 5.0, 6.0, true, 1));
    pcs.push(pc_xy(0.0, 2.0, 5.0, 10.0, 5.0, 6.0, true, 1));
    // tiny 4×4 ring at (8, 0)
    pcs.push(pc_xy(8.0, 10.0, 3.0, 4.0, 5.0, 6.0, true, 1));
    pcs.push(pc_xy(10.0, 12.0, 2.0, 4.0, 5.0, 6.0, true, 1));
    pcs.push(pc_xy(11.0, 12.0, 0.0, 2.0, 5.0, 6.0, true, 1));
    pcs.push(pc_xy(9.0, 11.0, 0.0, 1.0, 5.0, 6.0, true, 1));
    pcs.push(pc_xy(8.0, 9.0, 1.0, 3.0, 5.0, 6.0, true, 1));
    // three tiny slivers declared last
    pcs.push(pc_xy(1.0, 2.0, 10.0, 11.0, 15.0, 16.0, true, 1));
    pcs.push(pc_xy(7.0, 8.0, 9.0, 10.0, 17.0, 18.0, true, 1));
    pcs.push(pc_xy(10.0, 11.0, 5.0, 6.0, 12.0, 13.0, true, 1));
    for pc in pcs {
        set.push(pc);
    }
    set.set_domain(domain);
    set
}

/// Deterministic regression: on the skewed catalog, estimate-guided
/// ordering must *strictly* reduce both SAT checks (decomposition) and
/// branch & bound nodes (allocation MILP) — and still answer identically.
#[test]
fn skewed_catalog_orders_strictly_fewer_sat_checks_and_nodes() {
    let set = skewed_catalog();
    let q = AggQuery::new(AggKind::Sum, 2, Predicate::always());
    let seq = |options: BoundOptions| BoundOptions {
        threads: 1,
        ..options
    };
    let on = BoundEngine::with_options(&set, seq(BoundOptions::default()))
        .bound(&q)
        .expect("skewed catalog bounds");
    let off = BoundEngine::with_options(&set, seq(unordered()))
        .bound(&q)
        .expect("skewed catalog bounds");
    assert!((on.range.lo - off.range.lo).abs() < 1e-5, "lo moved");
    assert!((on.range.hi - off.range.hi).abs() < 1e-5, "hi moved");
    assert!(
        on.stats.sat_checks < off.stats.sat_checks,
        "ordering must cut SAT checks: {} (ordered) vs {} (declaration)",
        on.stats.sat_checks,
        off.stats.sat_checks
    );
    assert!(
        on.solver.nodes < off.solver.nodes,
        "ordering must cut B&B nodes: {} (ordered) vs {} (declaration)",
        on.solver.nodes,
        off.solver.nodes
    );
    assert!(
        on.stats.ordered_splits > 0,
        "ordered splits must be counted"
    );
}
