//! Edge-case integration tests for the bounding engine: degenerate sets,
//! negative value domains, zero frequencies, out-of-domain queries, and
//! the LP-relaxation/exact-MILP consistency contract.

use pc_core::{
    BoundEngine, BoundError, BoundOptions, FrequencyConstraint, PcSet, PredicateConstraint,
    ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};

fn schema() -> Schema {
    Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Float)])
}

fn domain(lo: f64, hi: f64) -> Region {
    let mut d = Region::full(&schema());
    d.set_interval(0, Interval::closed(lo, hi));
    d
}

#[test]
fn empty_set_is_unbounded_above() {
    let set = PcSet::new(schema());
    let r = BoundEngine::new(&set)
        .bound(&AggQuery::count(Predicate::always()))
        .unwrap();
    assert!(!r.closed);
    assert_eq!(r.range.lo, 0.0);
    assert_eq!(r.range.hi, f64::INFINITY);
}

#[test]
fn query_outside_domain_is_empty() {
    let mut set = PcSet::new(schema()).with(PredicateConstraint::new(
        Predicate::atom(Atom::between(0, 0.0, 5.0)),
        ValueConstraint::none().with(1, Interval::closed(0.0, 10.0)),
        FrequencyConstraint::at_most(9),
    ));
    set.set_domain(domain(0.0, 5.0));
    let q = AggQuery::count(Predicate::atom(Atom::between(0, 50.0, 60.0)));
    let r = BoundEngine::new(&set).bound(&q).unwrap();
    assert_eq!((r.range.lo, r.range.hi), (0.0, 0.0));
    assert!(r.closed, "an empty region is vacuously covered");
}

#[test]
fn zero_frequency_means_no_rows() {
    let mut set = PcSet::new(schema()).with(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, 100.0)),
        FrequencyConstraint::at_most(0),
    ));
    set.set_domain(domain(0.0, 5.0));
    let engine = BoundEngine::new(&set);
    let count = engine.bound(&AggQuery::count(Predicate::always())).unwrap();
    assert_eq!((count.range.lo, count.range.hi), (0.0, 0.0));
    let sum = engine
        .bound(&AggQuery::new(AggKind::Sum, 1, Predicate::always()))
        .unwrap();
    assert_eq!((sum.range.lo, sum.range.hi), (0.0, 0.0));
    // aggregates over guaranteed-empty relations are undefined
    assert_eq!(
        engine
            .bound(&AggQuery::new(AggKind::Max, 1, Predicate::always()))
            .unwrap_err(),
        BoundError::EmptyAggregate
    );
}

#[test]
fn negative_value_domain_sum_bounds() {
    // temperatures in [-40, 10], 5 to 8 readings
    let mut set = PcSet::new(schema()).with(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(-40.0, 10.0)),
        FrequencyConstraint::between(5, 8),
    ));
    set.set_domain(domain(0.0, 5.0));
    let r = BoundEngine::new(&set)
        .bound(&AggQuery::new(AggKind::Sum, 1, Predicate::always()))
        .unwrap();
    // min: 8 readings at −40 (more rows make it *smaller*);
    // max: 8 readings at +10... but 5 forced rows could be negative? No:
    // max allocates all at +10, and extra rows only help: 8 × 10 = 80.
    assert_eq!(r.range.lo, -320.0);
    assert_eq!(r.range.hi, 80.0);

    let mn = BoundEngine::new(&set)
        .bound(&AggQuery::new(AggKind::Min, 1, Predicate::always()))
        .unwrap();
    assert_eq!(mn.range.lo, -40.0);
    // forced rows exist, each ≤ 10, so the MIN cannot exceed 10
    assert_eq!(mn.range.hi, 10.0);
}

#[test]
fn avg_of_forced_uniform_rows_is_pinned() {
    // exactly 4 rows, all with v ∈ [7, 7]: AVG must be exactly 7
    let mut set = PcSet::new(schema()).with(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::point(7.0)),
        FrequencyConstraint::exactly(4),
    ));
    set.set_domain(domain(0.0, 5.0));
    let r = BoundEngine::new(&set)
        .bound(&AggQuery::new(AggKind::Avg, 1, Predicate::always()))
        .unwrap();
    assert!((r.range.lo - 7.0).abs() < 1e-6);
    assert!((r.range.hi - 7.0).abs() < 1e-6);
}

#[test]
fn lp_relaxation_contains_exact_range() {
    // the relaxed range must always contain the exact range
    let mut set = PcSet::new(schema());
    for (lo, hi, kl, ku) in [(0.0, 3.0, 2u64, 7u64), (2.0, 5.0, 1, 9), (0.0, 5.0, 5, 12)] {
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, lo, hi)),
            ValueConstraint::none().with(1, Interval::closed(1.0, 10.0 + hi)),
            FrequencyConstraint::between(kl, ku),
        ));
    }
    set.set_domain(domain(0.0, 5.0));
    let exact = BoundEngine::with_options(
        &set,
        BoundOptions {
            lp_relax_cell_limit: usize::MAX,
            ..BoundOptions::default()
        },
    );
    let relaxed = BoundEngine::with_options(
        &set,
        BoundOptions {
            lp_relax_cell_limit: 0,
            ..BoundOptions::default()
        },
    );
    for q in [
        AggQuery::count(Predicate::always()),
        AggQuery::new(AggKind::Sum, 1, Predicate::always()),
        AggQuery::count(Predicate::atom(Atom::between(0, 0.0, 2.0))),
    ] {
        let e = exact.bound(&q).unwrap().range;
        let r = relaxed.bound(&q).unwrap().range;
        assert!(
            r.lo <= e.lo + 1e-6,
            "{q:?}: relax lo {} > exact {}",
            r.lo,
            e.lo
        );
        assert!(
            r.hi >= e.hi - 1e-6,
            "{q:?}: relax hi {} < exact {}",
            r.hi,
            e.hi
        );
    }
}

#[test]
fn result_range_helpers() {
    use pc_core::ResultRange;
    let r = ResultRange { lo: 1.0, hi: 5.0 };
    assert!(r.is_bounded());
    assert!(r.contains(1.0) && r.contains(5.0) && !r.contains(5.1));
    let shifted = r.offset(10.0);
    assert_eq!((shifted.lo, shifted.hi), (11.0, 15.0));
    let open = ResultRange {
        lo: 0.0,
        hi: f64::INFINITY,
    };
    assert!(!open.is_bounded());
    assert!(open.contains(1e300));
}

#[test]
fn tautology_constraint_bounds_everything() {
    // c2 from §3.1 alone: TRUE ⇒ price ≤ 149.99, at most 100 rows
    let mut set = PcSet::new(schema()).with(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, 149.99)),
        FrequencyConstraint::at_most(100),
    ));
    set.set_domain(domain(0.0, 100.0));
    assert!(set.is_closed());
    let r = BoundEngine::new(&set)
        .bound(&AggQuery::new(AggKind::Sum, 1, Predicate::always()))
        .unwrap();
    assert!((r.range.hi - 100.0 * 149.99).abs() < 1e-6);
}

#[test]
fn forced_rows_in_subregion_propagate_to_count_lower_bound() {
    let mut set = PcSet::new(schema())
        .with(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 0.0, 2.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 1.0)),
            FrequencyConstraint::between(10, 20),
        ))
        .with(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 3.0, 5.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 1.0)),
            FrequencyConstraint::at_most(7),
        ));
    set.set_domain(domain(0.0, 5.0));
    let r = BoundEngine::new(&set)
        .bound(&AggQuery::count(Predicate::always()))
        .unwrap();
    assert_eq!(r.range.lo, 10.0);
    assert_eq!(r.range.hi, 27.0);
}
