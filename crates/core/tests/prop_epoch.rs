//! Property tests for the versioned session: over arbitrary add / retire
//! / replace sequences, every incrementally derived epoch must equal a
//! **fresh full decomposition** of the materialized catalog — the same
//! cells (signatures *and* regions), genuine witnesses, the same closure
//! verdict, and the same query bounds — sequentially and with the
//! multi-worker engine knobs (the CI `test-multicore` job additionally
//! runs the whole file under a pinned 4-worker pool). A separate test
//! pins an epoch mid-`bound_many` while the catalog churns and asserts
//! the whole batch is answered by exactly one epoch's oracle (snapshot
//! isolation).

use pc_core::{
    decompose, BoundEngine, BoundError, BoundOptions, ConstraintId, FrequencyConstraint, PcSet,
    PredicateConstraint, Session, SessionOptions, Strategy, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use proptest::prelude::*;
use std::sync::Arc;

const XMAX: i64 = 10;
const VMAX: i64 = 30;

fn schema() -> Schema {
    Schema::new(vec![("x", AttrType::Int), ("v", AttrType::Int)])
}

prop_compose! {
    /// A constraint over a random (x, v) box with a value range and an
    /// upper frequency bound — sometimes also a lower bound.
    fn arb_pc()(
        a in 0..=XMAX, b in 0..=XMAX,
        c in 0..=VMAX, d in 0..=VMAX,
        ku in 1u64..8,
        forced: bool,
    ) -> PredicateConstraint {
        let (xlo, xhi) = (a.min(b) as f64, a.max(b) as f64);
        let (vlo, vhi) = (c.min(d) as f64, c.max(d) as f64);
        let freq = if forced {
            FrequencyConstraint::between(1, ku)
        } else {
            FrequencyConstraint::at_most(ku)
        };
        PredicateConstraint::new(
            Predicate::always()
                .and(Atom::between(0, xlo, xhi + 1.0))
                .and(Atom::between(1, vlo, vhi + 1.0)),
            ValueConstraint::none().with(1, Interval::closed(vlo, vhi)),
            freq,
        )
    }
}

/// One catalog mutation; retire/replace targets are picked by index seed
/// into the live-id list at application time.
#[derive(Debug, Clone)]
enum Op {
    Add(PredicateConstraint),
    Retire(usize),
    Replace(usize, PredicateConstraint),
}

prop_compose! {
    /// Adds weighted over retires over replaces (the catalog must grow to
    /// make later retires interesting).
    fn arb_op()(
        pick in 0usize..6,
        seed in 0usize..8,
        pc in arb_pc(),
    ) -> Op {
        match pick {
            0..=2 => Op::Add(pc),
            3 | 4 => Op::Retire(seed),
            _ => Op::Replace(seed, pc),
        }
    }
}

prop_compose! {
    fn arb_query()(
        agg_pick in 0usize..5,
        a in 0..=XMAX, b in 0..=XMAX,
        full: bool,
    ) -> AggQuery {
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min, AggKind::Max][agg_pick];
        let predicate = if full {
            Predicate::always()
        } else {
            let (lo, hi) = (a.min(b) as f64, a.max(b) as f64);
            Predicate::atom(Atom::between(0, lo, hi + 1.0))
        };
        AggQuery::new(agg, 1, predicate)
    }
}

fn build_set(pcs: Vec<PredicateConstraint>) -> PcSet {
    let mut set = PcSet::new(schema());
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, XMAX as f64));
    domain.set_interval(1, Interval::closed(0.0, VMAX as f64));
    for pc in pcs {
        set.push(pc);
    }
    set.set_domain(domain);
    set
}

/// Apply `op` to the session, resolving index seeds against the live ids.
/// Returns false when the op degenerates to a no-op (nothing to retire).
fn apply(session: &Session, op: &Op) -> bool {
    let live: Vec<ConstraintId> = session.constraint_ids();
    match op {
        Op::Add(pc) => {
            session.add_constraint(pc.clone());
            true
        }
        Op::Retire(seed) => {
            if live.is_empty() {
                return false;
            }
            session
                .retire_constraint(live[seed % live.len()])
                .expect("live id retires");
            true
        }
        Op::Replace(seed, pc) => {
            if live.is_empty() {
                return false;
            }
            session
                .replace_constraint(live[seed % live.len()], pc.clone())
                .expect("live id replaces");
            true
        }
    }
}

/// The tentpole invariant: the session's (derived) epoch equals a fresh
/// full decomposition of the materialized catalog — cells, witnesses,
/// closure verdict.
fn epoch_equals_fresh(session: &Session) -> Result<(), TestCaseError> {
    let set = session.pc_set();
    let cells = session.cell_set().expect("decomposable catalog");
    let (fresh, _) = decompose(&set, set.domain(), Strategy::DfsRewrite).expect("fresh oracle");
    let shape = |cells: &[pc_core::Cell]| -> Vec<(Vec<usize>, Region)> {
        let mut out: Vec<_> = cells
            .iter()
            .map(|c| (c.active.to_vec(), (*c.region).clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    };
    let (derived, oracle) = (shape(cells.cells()), shape(&fresh));
    prop_assert_eq!(derived, oracle, "epoch {} cells diverge", session.epoch());
    for cell in cells.cells() {
        let w = cell
            .witness
            .as_ref()
            .expect("exact strategy carries witnesses");
        prop_assert!(cell.region.contains_row(w));
        for (j, pc) in set.constraints().iter().enumerate() {
            prop_assert_eq!(pc.predicate.eval(w), cell.is_active(j));
        }
    }
    // closure verdict and counterexample validity
    let closed = set.is_closed_within(set.domain());
    prop_assert_eq!(cells.closed(), closed, "closure verdict diverges");
    if let Some(w) = cells.uncovered() {
        prop_assert!(set.domain().contains_row(w));
        for pc in set.constraints() {
            prop_assert!(!pc.predicate.eval(w), "counterexample is covered");
        }
    }
    Ok(())
}

fn results_equal(
    q: &AggQuery,
    a: &Result<pc_core::BoundReport, BoundError>,
    b: &Result<pc_core::BoundReport, BoundError>,
) -> Result<(), String> {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            let lo_ok = (x.range.lo - y.range.lo).abs() < 1e-5
                || (x.range.lo.is_infinite() && x.range.lo == y.range.lo);
            let hi_ok = (x.range.hi - y.range.hi).abs() < 1e-5
                || (x.range.hi.is_infinite() && x.range.hi == y.range.hi);
            if !lo_ok || !hi_ok {
                return Err(format!(
                    "{q:?}: fresh [{}, {}] vs session [{}, {}]",
                    x.range.lo, x.range.hi, y.range.lo, y.range.hi
                ));
            }
            if x.closed != y.closed {
                return Err(format!("{q:?}: closed {} vs {}", x.closed, y.closed));
            }
            Ok(())
        }
        (Err(x), Err(y)) if x == y => Ok(()),
        (x, y) => Err(format!("{q:?}: {x:?} vs {y:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random add/retire/replace sequences: after every mutation the
    /// derived epoch equals a fresh decomposition and serves the same
    /// bounds as a fresh engine on the materialized catalog.
    #[test]
    fn incremental_epochs_equal_fresh_decomposition(
        pcs in prop::collection::vec(arb_pc(), 1..4),
        ops in prop::collection::vec(arb_op(), 1..5),
        qs in prop::collection::vec(arb_query(), 1..3),
    ) {
        let session = Session::new(build_set(pcs));
        // prime epoch 0 so every mutation derives incrementally
        session.cell_set().expect("decomposable seed");
        epoch_equals_fresh(&session)?;
        for op in &ops {
            if !apply(&session, op) {
                continue;
            }
            epoch_equals_fresh(&session)?;
            let set = session.pc_set();
            let engine = BoundEngine::new(&set);
            for q in &qs {
                if let Err(msg) = results_equal(q, &engine.bound(q), &session.bound(q)) {
                    return Err(TestCaseError::fail(msg));
                }
            }
        }
    }

    /// The incremental knob is semantics-free: a rebuild-per-epoch
    /// session answers every query identically through the same churn.
    #[test]
    fn rebuild_ablation_is_semantics_free(
        pcs in prop::collection::vec(arb_pc(), 1..4),
        ops in prop::collection::vec(arb_op(), 1..4),
        q in arb_query(),
    ) {
        let fast = Session::new(build_set(pcs.clone()));
        let slow = Session::with_options(build_set(pcs), SessionOptions {
            incremental: false,
            ..SessionOptions::default()
        });
        fast.cell_set().expect("decomposable seed");
        slow.cell_set().expect("decomposable seed");
        for op in &ops {
            apply(&fast, op);
            apply(&slow, op);
            if let Err(msg) = results_equal(&q, &slow.bound(&q), &fast.bound(&q)) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// Churn under the multi-worker engine knobs: the pinned pool's
    /// parallel witness search / batch fan-out never changes epochs'
    /// answers.
    #[test]
    fn churn_is_stable_across_thread_counts(
        pcs in prop::collection::vec(arb_pc(), 1..4),
        ops in prop::collection::vec(arb_op(), 1..4),
        qs in prop::collection::vec(arb_query(), 1..4),
        threads in 1usize..5,
    ) {
        let session = Session::with_options(build_set(pcs), SessionOptions {
            bound: BoundOptions { threads, ..BoundOptions::default() },
            ..SessionOptions::default()
        });
        session.cell_set().expect("decomposable seed");
        for op in &ops {
            if !apply(&session, op) {
                continue;
            }
            let set = session.pc_set();
            let engine = BoundEngine::new(&set);
            let batch = session.bound_many(&qs);
            for (q, got) in qs.iter().zip(&batch) {
                if let Err(msg) = results_equal(q, &engine.bound(q), got) {
                    return Err(TestCaseError::fail(msg));
                }
            }
        }
    }
}

/// Snapshot isolation: a batch launched concurrently with a mutation is
/// answered entirely by one epoch — either everything sees the catalog
/// before the add, or everything sees it after, never a mix.
#[test]
fn bound_many_pins_exactly_one_epoch_under_mutation() {
    let mut seed = build_set(vec![]);
    seed.push(PredicateConstraint::new(
        Predicate::always().and(Atom::between(0, 0.0, 11.0)),
        ValueConstraint::none().with(1, Interval::closed(0.0, 10.0)),
        FrequencyConstraint::at_most(20),
    ));
    let session = Arc::new(Session::new(seed));
    session.cell_set().unwrap();
    let queries: Vec<AggQuery> = (0..24)
        .map(|i| {
            let lo = (i % 8) as f64;
            let q = Predicate::atom(Atom::between(0, lo, lo + 3.0));
            if i % 2 == 0 {
                AggQuery::count(q)
            } else {
                AggQuery::new(AggKind::Sum, 1, q)
            }
        })
        .collect();
    // the mutation tightens every count, so the two epochs' oracles are
    // distinguishable on every query
    let extra = PredicateConstraint::new(
        Predicate::always().and(Atom::between(0, 0.0, 11.0)),
        ValueConstraint::none().with(1, Interval::closed(0.0, 10.0)),
        FrequencyConstraint::at_most(7),
    );
    let before = session.pc_set();
    let worker = {
        let session = Arc::clone(&session);
        let queries = queries.clone();
        std::thread::spawn(move || session.bound_many(&queries))
    };
    session.add_constraint(extra);
    let after = session.pc_set();
    let results = worker.join().unwrap();

    let oracle = |set: &PcSet| -> Vec<Result<pc_core::BoundReport, BoundError>> {
        let engine = BoundEngine::new(set);
        queries.iter().map(|q| engine.bound(q)).collect()
    };
    let matches = |oracle: &[Result<pc_core::BoundReport, BoundError>]| {
        queries
            .iter()
            .zip(&results)
            .zip(oracle)
            .all(|((q, got), want)| results_equal(q, want, got).is_ok())
    };
    let matches_before = matches(&oracle(&before));
    let matches_after = matches(&oracle(&after));
    assert!(
        matches_before || matches_after,
        "batch mixed epochs: matches neither the pre- nor post-mutation oracle"
    );
    // sanity: the two oracles really do differ on this workload
    assert_ne!(
        oracle(&before)
            .iter()
            .map(|r| r.as_ref().map(|b| b.range).map_err(|_| ()))
            .collect::<Vec<_>>(),
        oracle(&after)
            .iter()
            .map(|r| r.as_ref().map(|b| b.range).map_err(|_| ()))
            .collect::<Vec<_>>(),
        "mutation must be observable for the pinning test to mean anything"
    );
}
