//! Recovery from *real* unwinds and stalls, injected inside the engine
//! (`--features fault`; see `pc_budget::fault`).
//!
//! These tests prove the serving layer's three recovery stories against
//! genuine panics rather than simulated `Err`s:
//!
//! 1. **Per-query isolation** — a panic in one of a batch's queries
//!    fails that query alone ([`BoundError::Panicked`]); its 15 siblings
//!    return the same ranges they do without the fault.
//! 2. **No lasting poison** — after a panicked solve (mid-simplex-pivot,
//!    the worst spot), the very next query on the same session answers
//!    exactly; torn warm-start state is dropped, never replayed.
//! 3. **Deadline over straggler** — a solver stall does not hang a
//!    budgeted call; the deadline trips at the next cooperative check
//!    and the call returns degraded-but-sound.
//!
//! The fault registry is process-global, so every test serializes on one
//! mutex and disarms in a drop guard (a failing test must not leak its
//! plan into the next).

#![cfg(feature = "fault")]

use pc_core::budget::fault::{self, Plan};
use pc_core::{
    BoundError, BoundOptions, FrequencyConstraint, PcSet, PredicateConstraint, QueryBudget,
    Session, SessionOptions, TripReason, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Serialize on the global registry and guarantee a clean slate on both
/// ends, even when the test body panics.
fn armed_section() -> (MutexGuard<'static, ()>, DisarmOnDrop) {
    let guard = FAULT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    fault::disarm_all();
    (guard, DisarmOnDrop)
}

struct DisarmOnDrop;
impl Drop for DisarmOnDrop {
    fn drop(&mut self) {
        fault::disarm_all();
    }
}

fn schema() -> Schema {
    Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Int)])
}

/// Overlapping buckets on `g`: the decomposition must split and
/// SAT-probe, which is where `sat::probe` lives, and the resulting cells
/// overlap enough that the allocation LPs pivot, which is where
/// `simplex::pivot` lives.
fn overlapping_set() -> PcSet {
    let mut set = PcSet::new(schema());
    let mut d = Region::full(&schema());
    d.set_interval(0, Interval::closed(0.0, 8.0));
    d.set_interval(1, Interval::closed(0.0, 20.0));
    set.set_domain(d);
    for i in 0..6 {
        let lo = i as f64;
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, lo, lo + 3.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 10.0 + lo)),
            FrequencyConstraint::between(1, 5 + i as u64),
        ));
    }
    // catch-all so the set is closed over the domain — without it every
    // range is [-inf, inf] and no allocation LP ever runs (nothing for
    // `simplex::pivot` to interrupt)
    set.push(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, 20.0)),
        FrequencyConstraint::at_most(32),
    ));
    set
}

fn session(threads: usize, cache_cells: bool) -> Session {
    Session::with_options(
        overlapping_set(),
        SessionOptions {
            bound: BoundOptions {
                threads,
                ..BoundOptions::default()
            },
            cache_cells,
            incremental: true,
            ..SessionOptions::default()
        },
    )
}

/// Sixteen window queries, each cutting the overlap differently.
fn sixteen_queries() -> Vec<AggQuery> {
    (0..16)
        .map(|i| {
            let lo = (i % 8) as f64 * 0.75;
            let agg = if i % 2 == 0 {
                AggKind::Count
            } else {
                AggKind::Sum
            };
            AggQuery::new(agg, 1, Predicate::atom(Atom::between(0, lo, lo + 2.5)))
        })
        .collect()
}

#[test]
fn injected_panic_fails_exactly_one_of_sixteen_batch_queries() {
    let (_guard, _disarm) = armed_section();
    // cache_cells off: every query decomposes inside its own pool task,
    // so the injected probe panic unwinds inside exactly one task's
    // catch boundary — nothing shared is mid-flight when it fires.
    let s = session(4, false);
    let queries = sixteen_queries();
    let oracle = s.bound_many(&queries);
    assert!(oracle.iter().all(|r| r.is_ok()), "fixture must be clean");

    fault::arm("sat::probe", Plan::PanicAfter(0));
    let faulted = s.bound_many(&queries);

    let panicked: Vec<usize> = faulted
        .iter()
        .enumerate()
        .filter(|(_, r)| matches!(r, Err(BoundError::Panicked)))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        panicked.len(),
        1,
        "one armed fault fires once and takes down exactly one query (got {panicked:?})"
    );
    for (i, (exact, got)) in oracle.iter().zip(&faulted).enumerate() {
        if i == panicked[0] {
            continue;
        }
        let (exact, got) = (exact.as_ref().unwrap(), got.as_ref().unwrap());
        assert_eq!(
            (exact.range.lo, exact.range.hi),
            (got.range.lo, got.range.hi),
            "query {i}: siblings of the panicked query must be untouched"
        );
        assert!(
            !got.degraded,
            "a sibling is not degraded, it is simply fine"
        );
    }

    // The session survives: re-running the dead query alone answers
    // exactly (the fired plan disarmed itself).
    let replay = s
        .bound(&queries[panicked[0]])
        .expect("session must recover");
    let exact = oracle[panicked[0]].as_ref().unwrap();
    assert_eq!(
        (replay.range.lo, replay.range.hi),
        (exact.range.lo, exact.range.hi)
    );
}

#[test]
fn panicked_pivot_leaves_no_torn_warm_state_behind() {
    let (_guard, _disarm) = armed_section();
    let s = session(1, true);
    let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());

    // Panic deep inside the very first solve's simplex — mid-pivot, with
    // the tableau torn and half-built warm/cell state in flight.
    fault::arm("simplex::pivot", Plan::PanicAfter(0));
    let unwound = catch_unwind(AssertUnwindSafe(|| s.bound(&q)));
    assert!(unwound.is_err(), "the injected pivot panic must surface");

    // Next query on the same session: the torn state was dropped, the
    // chain rebuilds cold, the answer matches a never-faulted session's.
    let after = s
        .bound(&q)
        .expect("session must answer after a panicked solve");
    let exact = session(1, true).bound(&q).expect("clean fixture");
    assert_eq!(
        (after.range.lo, after.range.hi),
        (exact.range.lo, exact.range.hi)
    );
    assert!(!after.degraded);
}

#[test]
fn stalled_sat_probe_is_cut_by_the_deadline_not_waited_out() {
    let (_guard, _disarm) = armed_section();
    let s = session(1, false);
    let q = AggQuery::new(AggKind::Count, 1, Predicate::always());
    let exact = s.bound(&q).expect("fixture must be clean");

    // One probe stalls for 300ms against a 20ms deadline. The stall
    // itself is not interruptible (cooperative cancellation), but the
    // very next check after it must trip — the call returns degraded in
    // roughly one stall, instead of probing the remaining cells at
    // 300ms each.
    fault::arm(
        "sat::probe",
        Plan::StallAfter(0, Duration::from_millis(300)),
    );
    let budget = QueryBudget::armed().with_timeout(Duration::from_millis(20));
    let t0 = Instant::now();
    let r = s
        .bound_budgeted(&q, &budget)
        .expect("a deadline degrades, never errors");
    let elapsed = t0.elapsed();

    assert_eq!(budget.trip_reason(), Some(TripReason::Deadline));
    assert!(r.degraded, "a deadline trip must be reported");
    assert!(
        r.range.lo <= exact.range.lo && r.range.hi >= exact.range.hi,
        "degraded [{}, {}] must contain exact [{}, {}]",
        r.range.lo,
        r.range.hi,
        exact.range.lo,
        exact.range.hi
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "stall must not be paid once per remaining probe (took {elapsed:?})"
    );
}

/// Hook installed on the pool's steal path (`rayon/fault`): counts the
/// sweeps and routes through the process-global fault registry, so a
/// test can stall a worker *mid-steal* — a straggler in the scheduler
/// itself rather than in the solver.
static STEAL_SWEEPS: AtomicU64 = AtomicU64::new(0);

fn steal_hook() {
    STEAL_SWEEPS.fetch_add(1, Ordering::Relaxed);
    fault::point("pool::steal");
}

struct UnhookOnDrop;
impl Drop for UnhookOnDrop {
    fn drop(&mut self) {
        rayon::fault::set_steal_hook(None);
    }
}

#[test]
fn stalled_worker_mid_steal_does_not_hang_a_deadline_batch() {
    let (_guard, _disarm) = armed_section();
    let s = session(4, false);
    let queries = sixteen_queries();
    let oracle = s.bound_many(&queries);
    assert!(oracle.iter().all(|r| r.is_ok()), "fixture must be clean");

    // A worker reaches the steal path and sleeps 250ms on the spot,
    // against a 50ms batch deadline. EDF cannot preempt a sleeping
    // worker; the recovery story is that the *other* workers keep
    // draining the deadline lane: the batch still answers, every result
    // is sound, and the call is bounded by roughly one stall — never a
    // hang, never a per-task re-payment of the stall.
    rayon::fault::set_steal_hook(Some(steal_hook));
    let _unhook = UnhookOnDrop;
    fault::arm(
        "pool::steal",
        Plan::StallAfter(0, Duration::from_millis(250)),
    );

    let budget = QueryBudget::armed().with_timeout(Duration::from_millis(50));
    let t0 = Instant::now();
    let results = s.bound_many_budgeted(&queries, &budget);
    let elapsed = t0.elapsed();

    assert!(
        elapsed < Duration::from_secs(5),
        "a single stalled steal must not cascade (took {elapsed:?})"
    );
    for (i, (exact, got)) in oracle.iter().zip(&results).enumerate() {
        let exact = exact.as_ref().unwrap();
        let got = got
            .as_ref()
            .expect("a stalled worker degrades answers, never errors them");
        assert!(
            got.range.lo <= exact.range.lo && got.range.hi >= exact.range.hi,
            "query {i}: [{}, {}] must contain exact [{}, {}]",
            got.range.lo,
            got.range.hi,
            exact.range.lo,
            exact.range.hi
        );
    }
    if rayon::current_num_threads() > 1 {
        assert!(
            STEAL_SWEEPS.load(Ordering::Relaxed) > 0,
            "a multi-worker pool must have swept the steal path"
        );
    }

    // Recovery: hook off, registry clean — the same session answers the
    // same batch exactly again, nothing lingers from the stall.
    rayon::fault::set_steal_hook(None);
    fault::disarm_all();
    let after = s.bound_many(&queries);
    for (exact, got) in oracle.iter().zip(&after) {
        let (exact, got) = (exact.as_ref().unwrap(), got.as_ref().unwrap());
        assert_eq!(
            (exact.range.lo, exact.range.hi),
            (got.range.lo, got.range.hi),
            "after disarm the session must answer exactly again"
        );
        assert!(!got.degraded);
    }
}
