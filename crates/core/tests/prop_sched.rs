//! Scheduling must never move an answer.
//!
//! The deadline lane (EDF) and the admission ladder are *scheduling*
//! features: they decide when a task runs and how much work a query is
//! allowed, never what a given amount of work computes. Two properties
//! pin that contract:
//!
//! 1. **EDF/FIFO equivalence** — the same queries on the same set
//!    produce bit-identical bounds whether the pool serves them through
//!    the deadline lane (`deadline_sched: true`, far-future deadline) or
//!    plain FIFO (`deadline_sched: false`), and whether a deadline is
//!    armed at all. Re-ordering ready tasks must not move a bound by
//!    even one bit.
//! 2. **Admission soundness** — a query the gauge degrades at admission
//!    or sheds outright still answers, and its (wider) range contains
//!    the exact range. The ladder only ever widens; see §4.3's
//!    early-stop argument.

use pc_core::{
    BoundOptions, FrequencyConstraint, PcSet, PredicateConstraint, QueryBudget, Session,
    SessionOptions, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use proptest::prelude::*;
use std::time::Duration;

const GMAX: i64 = 4;

fn schema() -> Schema {
    Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Int)])
}

fn domain() -> Region {
    let mut d = Region::full(&schema());
    d.set_interval(0, Interval::closed(0.0, GMAX as f64));
    d
}

/// Overlapping buckets on `g` (same shape as `prop_budget.rs`): overlap
/// makes the decomposition split and the LPs pivot, so the fan-out has
/// real stealable tasks for the scheduler to reorder.
#[derive(Debug, Clone)]
struct RawPc {
    g_lo: i64,
    g_hi: i64,
    v_lo: i64,
    v_hi: i64,
    k_lo: u64,
    k_hi: u64,
}

prop_compose! {
    fn arb_pc()(
        a in 0..=GMAX, b in 0..=GMAX,
        v1 in 0i64..8, v2 in 0i64..8,
        k in 0u64..4, k_extra in 0u64..6,
    ) -> RawPc {
        RawPc {
            g_lo: a.min(b),
            g_hi: a.max(b),
            v_lo: v1.min(v2),
            v_hi: v1.max(v2),
            k_lo: k,
            k_hi: k + k_extra,
        }
    }
}

fn build_set(raw: &[RawPc]) -> PcSet {
    let mut set = PcSet::new(schema());
    set.set_domain(domain());
    for r in raw {
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, r.g_lo as f64, r.g_hi as f64)),
            ValueConstraint::none().with(1, Interval::closed(r.v_lo as f64, r.v_hi as f64)),
            FrequencyConstraint::between(r.k_lo, r.k_hi),
        ));
    }
    set
}

fn batch(q_lo: i64, q_hi: i64) -> Vec<AggQuery> {
    let qpred = Predicate::atom(Atom::between(
        0,
        q_lo.min(q_hi) as f64,
        q_lo.max(q_hi) as f64,
    ));
    [AggKind::Count, AggKind::Sum, AggKind::Min, AggKind::Max]
        .into_iter()
        .map(|agg| AggQuery::new(agg, 1, qpred.clone()))
        .collect()
}

fn session_with(set: &PcSet, deadline_sched: bool, admission: bool) -> Session {
    Session::with_options(
        set.clone(),
        SessionOptions {
            bound: BoundOptions {
                threads: 4,
                ..BoundOptions::default()
            },
            cache_cells: true,
            incremental: true,
            deadline_sched,
            admission,
        },
    )
}

/// `outer` must contain `inner` (up to LP tolerance).
fn assert_contains(outer: (f64, f64), inner: (f64, f64), ctx: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        outer.0 <= inner.0 + 1e-9 && outer.1 >= inner.1 - 1e-9,
        "{ctx}: degraded [{}, {}] must contain exact [{}, {}]",
        outer.0,
        outer.1,
        inner.0,
        inner.1
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Four schedulings of the same batch — EDF lane with a far-future
    /// deadline, FIFO with the same deadline, and both with no deadline
    /// at all — return bit-identical bounds, flags included. A far
    /// deadline never trips, so any difference would be the scheduler
    /// changing an answer, which it must never do.
    #[test]
    fn edf_and_fifo_serve_bit_identical_bounds(
        raw in prop::collection::vec(arb_pc(), 1..4),
        q_lo in 0..=GMAX, q_hi in 0..=GMAX,
    ) {
        let set = build_set(&raw);
        let queries = batch(q_lo, q_hi);
        // (deadline_sched, armed): admission off everywhere so only the
        // pool lane differs between runs.
        let runs = [(true, true), (true, false), (false, true), (false, false)];
        let mut oracle: Option<Vec<Result<_, _>>> = None;
        for (edf, armed) in runs {
            let session = session_with(&set, edf, false);
            let budget = if armed {
                QueryBudget::armed().with_timeout(Duration::from_secs(3600))
            } else {
                QueryBudget::unlimited()
            };
            let got = session.bound_many_budgeted(&queries, &budget);
            prop_assert!(!budget.is_tripped(), "a far-future deadline must not trip");
            match &oracle {
                None => oracle = Some(got),
                Some(base) => {
                    for (i, (b, g)) in base.iter().zip(&got).enumerate() {
                        match (b, g) {
                            (Ok(b), Ok(g)) => {
                                prop_assert_eq!(
                                    (b.range.lo, b.range.hi, b.degraded, b.closed),
                                    (g.range.lo, g.range.hi, g.degraded, g.closed),
                                    "query {} (edf={}, armed={}): scheduling moved a bound",
                                    i, edf, armed
                                );
                            }
                            (Err(b), Err(g)) => {
                                prop_assert_eq!(
                                    b.to_string(), g.to_string(),
                                    "query {}: error class must not depend on scheduling", i
                                );
                            }
                            _ => return Err(TestCaseError::fail(format!(
                                "query {i} (edf={edf}, armed={armed}): Ok/Err disagreement"
                            ))),
                        }
                    }
                }
            }
        }
    }

    /// A calibrated gauge judging already-expired deadlines walks the
    /// ladder down to early-degraded and shed — and every one of those
    /// answers still contains the exact range. Shedding changes *how
    /// much* work a query gets, never the soundness of what it returns.
    #[test]
    fn shed_and_early_degraded_answers_contain_the_exact_range(
        raw in prop::collection::vec(arb_pc(), 1..4),
        q_lo in 0..=GMAX, q_hi in 0..=GMAX,
    ) {
        let set = build_set(&raw);
        let session = session_with(&set, true, true);
        let queries = batch(q_lo, q_hi);

        // Unlimited calls bypass admission: this is the exact oracle.
        let oracle = session.bound_many(&queries);

        // Calibrate the gauge's exact EWMA with generously-deadlined
        // batches (they admit exact and complete).
        for _ in 0..2 {
            let warm = QueryBudget::armed().with_timeout(Duration::from_secs(3600));
            let _ = session.bound_many_budgeted(&queries, &warm);
        }

        // Now arrivals whose deadline has already passed: the first
        // round degrades at admission (the exact estimate no longer
        // fits), which calibrates the degraded EWMA, and later rounds
        // shed. Every answer must stay sound.
        for round in 0..3 {
            let expired = QueryBudget::armed().with_timeout(Duration::ZERO);
            let got = session.bound_many_budgeted(&queries, &expired);
            for (i, (exact, g)) in oracle.iter().zip(&got).enumerate() {
                let exact = match exact {
                    Ok(r) => r,
                    // No exact range to contain (empty/infeasible): the
                    // degraded run may legitimately answer or error.
                    Err(_) => continue,
                };
                let g = match g {
                    Ok(r) => r,
                    Err(e) => return Err(TestCaseError::fail(format!(
                        "round {round} query {i}: an admitted-then-degraded query \
                         must answer, not error: {e}"
                    ))),
                };
                assert_contains(
                    (g.range.lo, g.range.hi),
                    (exact.range.lo, exact.range.hi),
                    &format!("round {round} query {i}"),
                )?;
                prop_assert!(
                    g.sched.is_some(),
                    "round {round} query {i}: admission must stamp a SchedReport"
                );
            }
        }

        // Verdict sanity: once the gauge has a real exact estimate, a
        // zero-slack arrival can never be admitted exact — the rounds
        // above must have degraded-at-admission or shed. (Guarded on the
        // calibration actually being coarse enough to survive the
        // cost-factor clamp's worst case.)
        let stats = session.pressure().stats();
        if stats.ewma_exact >= Duration::from_micros(20) {
            prop_assert!(
                stats.admitted_degraded + stats.shed > 0,
                "calibrated gauge at zero slack must degrade or shed (stats: {stats:?})"
            );
        }
    }
}
