//! End-to-end soundness of the bounding engine.
//!
//! The framework's central guarantee (§1, outcome 2): if the missing data
//! satisfies the constraints, the true aggregate lies inside the computed
//! result range. We generate random constraint sets and random concrete
//! tables; whenever the table happens to satisfy the set (checked with
//! `PcSet::validate`), every aggregate of every query on that table must
//! fall inside the engine's range.

use pc_core::{
    BoundEngine, BoundError, FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema, Value};
use pc_storage::{evaluate, AggKind, AggQuery, AggResult, Table};
use proptest::prelude::*;

const GMAX: i64 = 4;
const VMAX: i64 = 10;

fn schema() -> Schema {
    Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Int)])
}

fn domain() -> Region {
    let mut d = Region::full(&schema());
    d.set_interval(0, Interval::closed(0.0, GMAX as f64));
    d
}

/// A raw predicate plus slack knobs; value and frequency constraints are
/// derived *from the table* (the way Corr-PC summarizes real missing data)
/// so the table is a valid instance by construction.
#[derive(Debug, Clone)]
struct RawPc {
    g_lo: i64,
    g_hi: i64,
    k_slack: u64,
    v_slack: i64,
}

prop_compose! {
    fn arb_pc()(
        a in 0..=GMAX, b in 0..=GMAX,
        k_slack in 0u64..4, v_slack in 0i64..3,
    ) -> RawPc {
        RawPc {
            g_lo: a.min(b),
            g_hi: a.max(b),
            k_slack,
            v_slack,
        }
    }
}

fn build_set(raw: &[RawPc], table: &Table) -> PcSet {
    let mut set = PcSet::new(schema());
    set.set_domain(domain());
    for r in raw {
        let pred = Predicate::atom(Atom::between(0, r.g_lo as f64, r.g_hi as f64));
        // summarize the true matching rows, then widen by the slack knobs
        let mut count = 0u64;
        let mut vmin = f64::INFINITY;
        let mut vmax = f64::NEG_INFINITY;
        for row in 0..table.len() {
            let enc = table.encoded_row(row);
            if pred.eval(&enc) {
                count += 1;
                vmin = vmin.min(enc[1]);
                vmax = vmax.max(enc[1]);
            }
        }
        if count == 0 {
            vmin = 0.0;
            vmax = 0.0;
        }
        set.push(PredicateConstraint::new(
            pred,
            ValueConstraint::none().with(
                1,
                Interval::closed(vmin - r.v_slack as f64, vmax + r.v_slack as f64),
            ),
            FrequencyConstraint::between(count.saturating_sub(r.k_slack), count + r.k_slack),
        ));
    }
    // catch-all so the set is closed over the domain: any row anywhere,
    // generously bounded
    set.push(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, VMAX as f64)),
        FrequencyConstraint::at_most(64),
    ));
    set
}

fn build_table(rows: &[(i64, i64)]) -> Table {
    let mut t = Table::new(schema());
    for &(g, v) in rows {
        t.push_row(vec![Value::Int(g), Value::Int(v)]);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn valid_instances_fall_inside_ranges(
        raw in prop::collection::vec(arb_pc(), 1..4),
        rows in prop::collection::vec((0..=GMAX, 0..=VMAX), 0..12),
        q_lo in 0..=GMAX, q_hi in 0..=GMAX,
    ) {
        let table = build_table(&rows);
        let set = build_set(&raw, &table);
        // valid by construction; validate() doubles as a test of itself
        prop_assert!(set.validate(&table).is_empty());

        let (qa, qb) = (q_lo.min(q_hi) as f64, q_lo.max(q_hi) as f64);
        let qpred = Predicate::atom(Atom::between(0, qa, qb));
        let engine = BoundEngine::new(&set);

        for agg in [AggKind::Count, AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max] {
            let query = AggQuery::new(agg, 1, qpred.clone());
            let truth = evaluate(&table, &query);
            match engine.bound(&query) {
                Ok(report) => {
                    if let AggResult::Value(v) = truth {
                        prop_assert!(
                            report.range.contains(v),
                            "{agg:?}: true {v} outside [{}, {}] (closed={})",
                            report.range.lo, report.range.hi, report.closed
                        );
                    }
                }
                Err(BoundError::EmptyAggregate) => {
                    // the engine proved no row can match; the instance must
                    // agree
                    prop_assert_eq!(truth, AggResult::Empty);
                }
                Err(BoundError::Infeasible) => {
                    // a valid instance exists (we hold one!) — infeasible
                    // would be a soundness bug
                    return Err(TestCaseError::fail("engine claimed infeasible with a valid instance in hand"));
                }
                Err(e) => return Err(TestCaseError::fail(format!("solver error: {e}"))),
            }
        }
    }

    #[test]
    fn tightness_sum_upper_is_achievable_for_disjoint_partitions(
        counts in prop::collection::vec((0u64..5, 1i64..=VMAX), 1..4),
    ) {
        // partition g into one bucket per entry; PC i forces exactly
        // `count` rows at value ≤ v_hi. The SUM upper bound must equal
        // Σ count·v_hi — i.e. the bound is tight (§4: "our bounds are
        // tight").
        let mut set = PcSet::new(schema());
        let mut d = Region::full(&schema());
        d.set_interval(0, Interval::closed(0.0, counts.len() as f64 - 1.0));
        set.set_domain(d);
        let mut expect = 0.0;
        for (i, &(count, v_hi)) in counts.iter().enumerate() {
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::eq(0, i as f64)),
                ValueConstraint::none().with(1, Interval::closed(0.0, v_hi as f64)),
                FrequencyConstraint::exactly(count),
            ));
            expect += count as f64 * v_hi as f64;
        }
        set.set_disjoint_hint(true);
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let report = BoundEngine::new(&set).bound(&q).unwrap();
        prop_assert!((report.range.hi - expect).abs() < 1e-6,
            "upper {} != achievable {expect}", report.range.hi);
    }
}
