//! Soundness of graceful degradation under a [`QueryBudget`].
//!
//! The budget layer's contract (mirroring §4.3's early-stop argument): a
//! tripped budget may only *widen* a result range, never exclude the
//! exact one. We generate random constraint sets and throttle the engine
//! with random SAT-probe and branch-and-bound node caps — including
//! cap 0, which degrades every site the pipeline has — and check every
//! degraded range contains the unlimited oracle's range. A second
//! property pins the cancellation path: a budget cancelled before the
//! call still answers, degraded and sound, and reports `Cancelled`.
//!
//! Oracle-vs-truth soundness (the unlimited engine contains the real
//! aggregate) is `prop_bounds.rs`'s job; here the unlimited range *is*
//! the oracle.

use pc_core::{
    BoundEngine, BoundError, BoundOptions, FrequencyConstraint, PcSet, PredicateConstraint,
    QueryBudget, Session, SessionOptions, TripReason, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use proptest::prelude::*;

const GMAX: i64 = 4;

fn schema() -> Schema {
    Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Int)])
}

fn domain() -> Region {
    let mut d = Region::full(&schema());
    d.set_interval(0, Interval::closed(0.0, GMAX as f64));
    d
}

/// A raw overlapping constraint: bucket range on `g`, value range on `v`,
/// frequency window. Overlap between buckets is the point — it is what
/// makes the decomposition split, probe SAT, and hand the budget
/// something to interrupt.
#[derive(Debug, Clone)]
struct RawPc {
    g_lo: i64,
    g_hi: i64,
    v_lo: i64,
    v_hi: i64,
    k_lo: u64,
    k_hi: u64,
}

prop_compose! {
    fn arb_pc()(
        a in 0..=GMAX, b in 0..=GMAX,
        v1 in 0i64..8, v2 in 0i64..8,
        k in 0u64..4, k_extra in 0u64..6,
    ) -> RawPc {
        RawPc {
            g_lo: a.min(b),
            g_hi: a.max(b),
            v_lo: v1.min(v2),
            v_hi: v1.max(v2),
            k_lo: k,
            k_hi: k + k_extra,
        }
    }
}

fn build_set(raw: &[RawPc]) -> PcSet {
    let mut set = PcSet::new(schema());
    set.set_domain(domain());
    for r in raw {
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, r.g_lo as f64, r.g_hi as f64)),
            ValueConstraint::none().with(1, Interval::closed(r.v_lo as f64, r.v_hi as f64)),
            FrequencyConstraint::between(r.k_lo, r.k_hi),
        ));
    }
    set
}

/// `inner` must be inside `outer` (up to LP tolerance). Infinite ends
/// compare by `<=`, so a degraded `[-inf, inf]` contains everything.
fn assert_contains(outer: (f64, f64), inner: (f64, f64), ctx: &str) -> Result<(), TestCaseError> {
    prop_assert!(
        outer.0 <= inner.0 + 1e-9 && outer.1 >= inner.1 - 1e-9,
        "{ctx}: degraded [{}, {}] must contain exact [{}, {}]",
        outer.0,
        outer.1,
        inner.0,
        inner.1
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any cap, any aggregate: the throttled engine's range contains the
    /// unlimited engine's range, and `degraded` tracks the trip exactly.
    #[test]
    fn degraded_ranges_contain_the_exact_range(
        raw in prop::collection::vec(arb_pc(), 1..4),
        sat_cap in 0u64..12,
        node_cap in 0u64..12,
        q_lo in 0..=GMAX, q_hi in 0..=GMAX,
    ) {
        let set = build_set(&raw);
        let engine = BoundEngine::new(&set);
        let qpred = Predicate::atom(Atom::between(0, q_lo.min(q_hi) as f64, q_lo.max(q_hi) as f64));
        for agg in [AggKind::Count, AggKind::Sum, AggKind::Avg, AggKind::Min, AggKind::Max] {
            let query = AggQuery::new(agg, 1, qpred.clone());
            let exact = match engine.bound(&query) {
                Ok(r) => r,
                // Empty: no missing row can match; Infeasible: the random
                // set is contradictory. Either way there is no exact range
                // for a widened answer to contain — a budgeted run may
                // legitimately degrade past the proof (admitting unsat
                // cells is the soundness argument, §4.3), so skip.
                Err(BoundError::EmptyAggregate) | Err(BoundError::Infeasible) => continue,
                Err(e) => return Err(TestCaseError::fail(format!("oracle error: {e}"))),
            };
            let budget = QueryBudget::armed().with_sat_cap(sat_cap).with_node_cap(node_cap);
            match engine.bound_budgeted(&query, &budget) {
                Ok(r) => {
                    assert_contains(
                        (r.range.lo, r.range.hi),
                        (exact.range.lo, exact.range.hi),
                        &format!("{agg:?} sat_cap={sat_cap} node_cap={node_cap}"),
                    )?;
                    prop_assert_eq!(
                        r.degraded, budget.is_tripped(),
                        "{:?}: degraded flag must track the trip", agg
                    );
                }
                Err(e) => return Err(TestCaseError::fail(format!(
                    "{agg:?}: budget must degrade, not error (oracle was Ok): {e}"
                ))),
            }
        }
    }

    /// A budget cancelled before the call behaves like any other trip:
    /// the query answers immediately with a sound (maximally wide)
    /// range, reports `Cancelled`, and a batch on the same cancelled
    /// budget answers *every* query the same way.
    #[test]
    fn cancelled_budgets_still_answer_every_query_soundly(
        raw in prop::collection::vec(arb_pc(), 1..4),
        q_lo in 0..=GMAX, q_hi in 0..=GMAX,
    ) {
        let set = build_set(&raw);
        let qpred = Predicate::atom(Atom::between(0, q_lo.min(q_hi) as f64, q_lo.max(q_hi) as f64));
        let queries: Vec<AggQuery> = [AggKind::Count, AggKind::Sum, AggKind::Min]
            .into_iter()
            .map(|agg| AggQuery::new(agg, 1, qpred.clone()))
            .collect();

        let session = Session::with_options(
            set.clone(),
            SessionOptions {
                bound: BoundOptions { threads: 1, ..BoundOptions::default() },
                cache_cells: true,
                incremental: true,
                ..SessionOptions::default()
            },
        );
        let oracle = session.bound_many(&queries);

        let budget = QueryBudget::armed().with_sat_cap(u64::MAX);
        budget.cancel_token().unwrap().cancel();
        prop_assert_eq!(budget.trip_reason(), Some(TripReason::Cancelled));
        let degraded = session.bound_many_budgeted(&queries, &budget);

        prop_assert_eq!(oracle.len(), degraded.len());
        for ((q, exact), deg) in queries.iter().zip(&oracle).zip(&degraded) {
            match (exact, deg) {
                (Ok(e), Ok(d)) => {
                    assert_contains(
                        (d.range.lo, d.range.hi),
                        (e.range.lo, e.range.hi),
                        &format!("{:?} cancelled", q.agg),
                    )?;
                    prop_assert!(d.degraded, "{:?}: cancelled answer must be marked", q.agg);
                }
                // widening may turn a provably-empty or provably-
                // infeasible aggregate into a (sound) range, never the
                // other way around
                (Err(BoundError::EmptyAggregate), _) | (Err(BoundError::Infeasible), _) => {}
                (Ok(_), Err(e)) => return Err(TestCaseError::fail(format!(
                    "{:?}: cancellation must degrade, not error: {e}", q.agg
                ))),
                (Err(e), _) => return Err(TestCaseError::fail(format!("oracle error: {e}"))),
            }
        }
    }
}
