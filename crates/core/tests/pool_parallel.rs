//! End-to-end engine equivalence on a real multi-worker pool.
//!
//! The unit and property tests of this crate run wherever the harness
//! puts them — on a single-core container the global pool has one worker
//! and every parallel path degrades to inline execution. This binary pins
//! `RAYON_NUM_THREADS=4` before anything touches the pool (its own
//! process, so the setting is race-free), making the fork-at-every-split
//! decomposition, the per-group GROUP-BY tasks, and the parallel MILP
//! genuinely concurrent, then checks the results are exactly the
//! sequential ones.

use pc_core::{
    decompose, decompose_with, BoundEngine, BoundOptions, FrequencyConstraint, Parallelism, PcSet,
    PredicateConstraint, Strategy, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use std::sync::Once;

fn pool4() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
        assert_eq!(rayon::current_num_threads(), 4);
    });
}

fn schema() -> Schema {
    Schema::new(vec![("x", AttrType::Int), ("v", AttrType::Float)])
}

/// A deterministic, heavily overlapping constraint set: every pair of
/// boxes overlaps somewhere, so the include/exclude tree stays bushy and
/// forks at many levels.
fn overlapping_set(n: usize) -> PcSet {
    let mut set = PcSet::new(schema());
    for i in 0..n {
        let lo = (i * 3 % 17) as f64;
        let hi = lo + 8.0 + (i % 5) as f64;
        set.push(PredicateConstraint::new(
            Predicate::always()
                .and(Atom::between(0, lo, hi))
                .and(Atom::between(1, (i % 4) as f64 * 10.0, 100.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 100.0 + i as f64)),
            FrequencyConstraint::at_most(20 + i as u64),
        ));
    }
    set
}

#[test]
fn forked_decomposition_is_bit_identical() {
    pool4();
    let set = overlapping_set(14);
    let base = Region::full(set.schema());
    let (seq_cells, seq_stats) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
    for threads in [0usize, 2, 4, 8] {
        let par = Parallelism {
            threads,
            depth: None,
        };
        let (cells, stats) = decompose_with(&set, &base, Strategy::DfsRewrite, par).unwrap();
        assert_eq!(seq_cells.len(), cells.len(), "threads={threads}");
        for (s, p) in seq_cells.iter().zip(&cells) {
            assert_eq!(s.active.to_vec(), p.active.to_vec());
            assert!(*s.region == *p.region);
            // Witness *identity* may differ: the parallel witness search
            // is first-hit-wins. Genuineness must hold regardless.
            let w = p.witness.as_ref().expect("exact mode carries witnesses");
            assert!(p.region.contains_row(w));
            for (j, pc) in set.constraints().iter().enumerate() {
                assert_eq!(pc.predicate.eval(w), p.is_active(j));
            }
        }
        assert_eq!(seq_stats.sat_checks, stats.sat_checks);
        assert_eq!(seq_stats.pruned_subtrees, stats.pruned_subtrees);
        assert_eq!(seq_stats.rewrite_skips, stats.rewrite_skips);
        if threads != 1 {
            assert!(stats.parallel_subtrees > 0, "forking must engage");
        }
    }
}

/// `a` and `b` equal within `tol`, treating equal infinities as equal
/// (`∞ − ∞` is NaN, which would fail a plain difference check).
fn close(a: f64, b: f64, tol: f64) -> bool {
    a == b || (a - b).abs() < tol
}

#[test]
fn parallel_engine_bounds_match_sequential() {
    pool4();
    let mut set = overlapping_set(12);
    // a catch-all constraint and a clipped domain keep the set closed, so
    // every aggregate gets finite, comparable bounds
    set.push(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, 200.0)),
        FrequencyConstraint::at_most(300),
    ));
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, 40.0));
    domain.set_interval(1, Interval::closed(0.0, 200.0));
    set.set_domain(domain);
    let sequential = BoundEngine::with_options(
        &set,
        BoundOptions {
            threads: 1,
            ..BoundOptions::default()
        },
    );
    let parallel = BoundEngine::with_options(
        &set,
        BoundOptions {
            threads: 0,
            ..BoundOptions::default()
        },
    );
    for agg in [
        AggKind::Sum,
        AggKind::Count,
        AggKind::Min,
        AggKind::Max,
        AggKind::Avg,
    ] {
        let q = AggQuery::new(agg, 1, Predicate::always());
        let a = sequential.bound(&q);
        let b = parallel.bound(&q);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                assert!(
                    close(a.range.lo, b.range.lo, 1e-5) && close(a.range.hi, b.range.hi, 1e-5),
                    "{agg:?}: [{}, {}] vs [{}, {}]",
                    a.range.lo,
                    a.range.hi,
                    b.range.lo,
                    b.range.hi
                );
                assert_eq!(a.closed, b.closed, "{agg:?}");
            }
            (a, b) => assert_eq!(
                a.map(|r| (r.range.lo, r.range.hi)),
                b.map(|r| (r.range.lo, r.range.hi)),
                "{agg:?}"
            ),
        }
    }
}

#[test]
fn pooled_group_by_matches_sequential_and_per_key() {
    pool4();
    let schema = Schema::new(vec![("g", AttrType::Cat), ("v", AttrType::Float)]);
    let mut domain = Region::full(&schema);
    domain.set_interval(0, Interval::closed(0.0, 9.0));
    let mut set = PcSet::new(schema);
    for (code, hi, k) in [(0u32, 149.99, 5u64), (3, 100.0, 10), (7, 50.0, 3)] {
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::eq(0, f64::from(code))),
            ValueConstraint::none().with(1, Interval::closed(0.0, hi)),
            FrequencyConstraint::at_most(k),
        ));
    }
    // cross-cutting constraints so slices genuinely interact
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::between(0, 0.0, 6.0)),
        ValueConstraint::none().with(1, Interval::closed(0.0, 120.0)),
        FrequencyConstraint::at_most(12),
    ));
    set.push(PredicateConstraint::new(
        Predicate::atom(Atom::between(0, 2.0, 9.0)),
        ValueConstraint::none().with(1, Interval::closed(0.0, 80.0)),
        FrequencyConstraint::between(2, 9),
    ));
    set.set_domain(domain);

    let keys: Vec<f64> = (0..10).map(f64::from).collect();
    for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
        let base = AggQuery::new(agg, 1, Predicate::always());
        let oracle = BoundEngine::with_options(
            &set,
            BoundOptions {
                threads: 1,
                shared_group_by: false,
                ..BoundOptions::default()
            },
        )
        .bound_group_by(&base, 0, keys.clone());
        for (threads, shared) in [(0usize, true), (4, true), (4, false)] {
            let got = BoundEngine::with_options(
                &set,
                BoundOptions {
                    threads,
                    shared_group_by: shared,
                    ..BoundOptions::default()
                },
            )
            .bound_group_by(&base, 0, keys.clone());
            assert_eq!(oracle.len(), got.len());
            for (o, g) in oracle.iter().zip(&got) {
                assert_eq!(o.key, g.key, "order must be key order");
                match (&o.report, &g.report) {
                    (Ok(a), Ok(b)) => {
                        assert!(
                            close(a.range.lo, b.range.lo, 1e-5)
                                && close(a.range.hi, b.range.hi, 1e-5),
                            "{agg:?} key {} (threads={threads}, shared={shared}): \
                             [{}, {}] vs [{}, {}]",
                            o.key,
                            a.range.lo,
                            a.range.hi,
                            b.range.lo,
                            b.range.hi
                        );
                    }
                    (Err(a), Err(b)) => assert_eq!(a, b, "key {}", o.key),
                    (a, b) => panic!("key {}: {a:?} vs {b:?}", o.key),
                }
            }
        }
    }
}

#[test]
fn repeated_parallel_group_by_is_stable() {
    pool4();
    let set = overlapping_set(10);
    let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
    let keys: Vec<f64> = (0..12).map(f64::from).collect();
    let engine = BoundEngine::with_options(
        &set,
        BoundOptions {
            threads: 0,
            ..BoundOptions::default()
        },
    );
    let first = engine.bound_group_by(&base, 0, keys.clone());
    for _ in 0..3 {
        let again = engine.bound_group_by(&base, 0, keys.clone());
        for (a, b) in first.iter().zip(&again) {
            assert_eq!(a.key, b.key);
            // run-to-run wobble is bounded by the branch & bound pruning
            // tolerance (INT_TOL = 1e-6): a node whose bound beats the
            // incumbent by less than that may be pruned or explored
            // depending on which worker posted the incumbent first
            match (&a.report, &b.report) {
                (Ok(x), Ok(y)) => {
                    assert!(close(x.range.lo, y.range.lo, 2e-6));
                    assert!(close(x.range.hi, y.range.hi, 2e-6));
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (x, y) => panic!("{x:?} vs {y:?}"),
            }
        }
    }
}
