//! Property-based tests for cell decomposition: all exact strategies must
//! produce the same satisfiable cells on arbitrary overlapping constraint
//! sets, early stopping must only add cells, and cells must genuinely
//! partition the predicate space (witnesses are exclusive).

use pc_core::{
    decompose, FrequencyConstraint, PcSet, PredicateConstraint, Strategy, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use proptest::prelude::*;

const D: i64 = 10;

fn schema() -> Schema {
    Schema::new(vec![("x", AttrType::Int), ("y", AttrType::Int)])
}

prop_compose! {
    fn arb_box()(a in 0..=D, b in 0..=D, c in 0..=D, d in 0..=D) -> Predicate {
        Predicate::always()
            .and(Atom::between(0, a.min(b) as f64, a.max(b) as f64))
            .and(Atom::between(1, c.min(d) as f64, c.max(d) as f64))
    }
}

fn build_set(preds: Vec<Predicate>) -> PcSet {
    let mut set = PcSet::new(schema());
    for p in preds {
        set.push(PredicateConstraint::new(
            p,
            ValueConstraint::none(),
            FrequencyConstraint::at_most(10),
        ));
    }
    set
}

fn signatures(cells: &[pc_core::Cell]) -> Vec<Vec<usize>> {
    let mut sigs: Vec<Vec<usize>> = cells.iter().map(|c| c.active.clone()).collect();
    sigs.sort();
    sigs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_strategies_agree(preds in prop::collection::vec(arb_box(), 1..6)) {
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (naive, _) = decompose(&set, &base, Strategy::Naive);
        let (dfs, _) = decompose(&set, &base, Strategy::Dfs);
        let (rw, _) = decompose(&set, &base, Strategy::DfsRewrite);
        prop_assert_eq!(signatures(&naive), signatures(&dfs));
        prop_assert_eq!(signatures(&naive), signatures(&rw));
    }

    #[test]
    fn early_stop_is_a_superset(preds in prop::collection::vec(arb_box(), 2..6), depth in 0usize..4) {
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (exact, _) = decompose(&set, &base, Strategy::DfsRewrite);
        let (approx, stats) = decompose(&set, &base, Strategy::EarlyStop { depth });
        let exact_sigs = signatures(&exact);
        let approx_sigs = signatures(&approx);
        for sig in &exact_sigs {
            prop_assert!(approx_sigs.contains(sig), "lost satisfiable cell {:?}", sig);
        }
        // approximation admits cells without verifying — never fewer
        prop_assert!(approx_sigs.len() >= exact_sigs.len());
        if depth < set.len() {
            prop_assert!(stats.assumed_sat > 0);
        }
    }

    #[test]
    fn witnesses_are_exclusive(preds in prop::collection::vec(arb_box(), 1..6)) {
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite);
        for cell in &cells {
            let w = cell.witness.as_ref().expect("exact mode emits witnesses");
            for (j, pc) in set.constraints().iter().enumerate() {
                prop_assert_eq!(
                    pc.predicate.eval(w),
                    cell.is_active(j),
                    "witness must match the cell's activity pattern exactly"
                );
            }
        }
    }

    #[test]
    fn every_grid_point_in_exactly_one_cell_or_uncovered(
        preds in prop::collection::vec(arb_box(), 1..5)
    ) {
        // disjointness: a domain point matching some predicate belongs to
        // exactly one emitted cell's activity pattern
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite);
        for x in 0..=D {
            for y in 0..=D {
                let row = [x as f64, y as f64];
                let active: Vec<usize> = set
                    .constraints()
                    .iter()
                    .enumerate()
                    .filter(|(_, pc)| pc.predicate.eval(&row))
                    .map(|(j, _)| j)
                    .collect();
                let matching = cells
                    .iter()
                    .filter(|c| c.active == active)
                    .count();
                if active.is_empty() {
                    prop_assert_eq!(matching, 0, "all-negative points spawn no cell");
                } else {
                    prop_assert_eq!(matching, 1, "point ({},{}) pattern {:?}", x, y, active);
                }
            }
        }
    }

    #[test]
    fn pushdown_never_loses_query_cells(
        preds in prop::collection::vec(arb_box(), 1..5),
        qa in 0..=D, qb in 0..=D,
    ) {
        // decomposing inside the query region finds exactly the activity
        // patterns realized by points inside the region
        let set = build_set(preds);
        let (qlo, qhi) = (qa.min(qb) as f64, qa.max(qb) as f64);
        let mut base = Region::full(set.schema());
        base.intersect_atom(&Atom::between(0, qlo, qhi));
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite);
        let sigs = signatures(&cells);
        for x in (qlo as i64)..=(qhi as i64) {
            for y in 0..=D {
                let row = [x as f64, y as f64];
                let active: Vec<usize> = set
                    .constraints()
                    .iter()
                    .enumerate()
                    .filter(|(_, pc)| pc.predicate.eval(&row))
                    .map(|(j, _)| j)
                    .collect();
                if !active.is_empty() {
                    prop_assert!(
                        sigs.contains(&active),
                        "pattern {:?} at ({},{}) missing under pushdown", active, x, y
                    );
                }
            }
        }
    }

    #[test]
    fn interval_domains_respected(preds in prop::collection::vec(arb_box(), 1..5)) {
        // a restricted domain excludes cells outside it
        let mut set = build_set(preds);
        let mut domain = Region::full(set.schema());
        domain.set_interval(0, Interval::closed(0.0, 3.0));
        set.set_domain(domain.clone());
        let (cells, _) = decompose(&set, &domain, Strategy::DfsRewrite);
        for cell in &cells {
            let w = cell.witness.as_ref().unwrap();
            prop_assert!(w[0] <= 3.0, "witness escaped the domain");
        }
    }
}
