//! Property-based tests for cell decomposition: all exact strategies must
//! produce the same satisfiable cells on arbitrary overlapping constraint
//! sets, early stopping must only add cells, cells must genuinely
//! partition the predicate space (witnesses are exclusive), and the
//! parallel fork/join driver must emit exactly the sequential result.

use pc_core::{
    decompose, decompose_with, FrequencyConstraint, Parallelism, PcSet, PredicateConstraint,
    Strategy, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use proptest::prelude::*;

const D: i64 = 10;

fn schema() -> Schema {
    Schema::new(vec![("x", AttrType::Int), ("y", AttrType::Int)])
}

prop_compose! {
    fn arb_box()(a in 0..=D, b in 0..=D, c in 0..=D, d in 0..=D) -> Predicate {
        Predicate::always()
            .and(Atom::between(0, a.min(b) as f64, a.max(b) as f64))
            .and(Atom::between(1, c.min(d) as f64, c.max(d) as f64))
    }
}

fn build_set(preds: Vec<Predicate>) -> PcSet {
    let mut set = PcSet::new(schema());
    for p in preds {
        set.push(PredicateConstraint::new(
            p,
            ValueConstraint::none(),
            FrequencyConstraint::at_most(10),
        ));
    }
    set
}

fn signatures(cells: &[pc_core::Cell]) -> Vec<Vec<usize>> {
    let mut sigs: Vec<Vec<usize>> = cells.iter().map(|c| c.active.to_vec()).collect();
    sigs.sort();
    sigs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_strategies_agree(preds in prop::collection::vec(arb_box(), 1..6)) {
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (naive, _) = decompose(&set, &base, Strategy::Naive).unwrap();
        let (dfs, _) = decompose(&set, &base, Strategy::Dfs).unwrap();
        let (rw, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        prop_assert_eq!(signatures(&naive), signatures(&dfs));
        prop_assert_eq!(signatures(&naive), signatures(&rw));
    }

    #[test]
    fn early_stop_is_a_superset(preds in prop::collection::vec(arb_box(), 2..6), depth in 0usize..4) {
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (exact, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        let (approx, stats) = decompose(&set, &base, Strategy::EarlyStop { depth }).unwrap();
        let exact_sigs = signatures(&exact);
        let approx_sigs = signatures(&approx);
        for sig in &exact_sigs {
            prop_assert!(approx_sigs.contains(sig), "lost satisfiable cell {:?}", sig);
        }
        // approximation admits cells without verifying — never fewer
        prop_assert!(approx_sigs.len() >= exact_sigs.len());
        if depth < set.len() {
            prop_assert!(stats.assumed_sat > 0);
        }
    }

    #[test]
    fn parallel_equals_sequential(
        preds in prop::collection::vec(arb_box(), 1..7),
        threads in 2usize..9,
        explicit_depth in 0usize..4,
        use_explicit: bool,
    ) {
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (seq_cells, seq_stats) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        let par = Parallelism {
            threads,
            depth: if use_explicit { Some(explicit_depth) } else { None },
        };
        let (par_cells, par_stats) =
            decompose_with(&set, &base, Strategy::DfsRewrite, par).unwrap();
        // identical cells in identical order — not merely as a set
        prop_assert_eq!(seq_cells.len(), par_cells.len());
        for (s, p) in seq_cells.iter().zip(&par_cells) {
            prop_assert_eq!(s.active.to_vec(), p.active.to_vec());
            prop_assert_eq!(&s.witness, &p.witness);
            prop_assert!(*s.region == *p.region, "cell boxes must match");
        }
        // every counter except the parallel bookkeeping is identical
        prop_assert_eq!(seq_stats.sat_checks, par_stats.sat_checks);
        prop_assert_eq!(seq_stats.cells, par_stats.cells);
        prop_assert_eq!(seq_stats.pruned_subtrees, par_stats.pruned_subtrees);
        prop_assert_eq!(seq_stats.rewrite_skips, par_stats.rewrite_skips);
        prop_assert_eq!(seq_stats.assumed_sat, par_stats.assumed_sat);
    }

    #[test]
    fn parallel_early_stop_equals_sequential(
        preds in prop::collection::vec(arb_box(), 2..6),
        depth in 0usize..4,
        threads in 2usize..6,
    ) {
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let strategy = Strategy::EarlyStop { depth };
        let (seq_cells, seq_stats) = decompose(&set, &base, strategy).unwrap();
        let par = Parallelism { threads, depth: None };
        let (par_cells, par_stats) = decompose_with(&set, &base, strategy, par).unwrap();
        prop_assert_eq!(signatures(&seq_cells), signatures(&par_cells));
        prop_assert_eq!(seq_stats.assumed_sat, par_stats.assumed_sat);
        prop_assert_eq!(seq_stats.sat_checks, par_stats.sat_checks);
    }

    #[test]
    fn witnesses_are_exclusive(preds in prop::collection::vec(arb_box(), 1..6)) {
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        for cell in &cells {
            let w = cell.witness.as_ref().expect("exact mode emits witnesses");
            for (j, pc) in set.constraints().iter().enumerate() {
                prop_assert_eq!(
                    pc.predicate.eval(w),
                    cell.is_active(j),
                    "witness must match the cell's activity pattern exactly"
                );
            }
        }
    }

    #[test]
    fn every_grid_point_in_exactly_one_cell_or_uncovered(
        preds in prop::collection::vec(arb_box(), 1..5)
    ) {
        // disjointness: a domain point matching some predicate belongs to
        // exactly one emitted cell's activity pattern
        let set = build_set(preds);
        let base = Region::full(set.schema());
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        for x in 0..=D {
            for y in 0..=D {
                let row = [x as f64, y as f64];
                let active: Vec<usize> = set
                    .constraints()
                    .iter()
                    .enumerate()
                    .filter(|(_, pc)| pc.predicate.eval(&row))
                    .map(|(j, _)| j)
                    .collect();
                let matching = cells
                    .iter()
                    .filter(|c| c.active.to_vec() == active)
                    .count();
                if active.is_empty() {
                    prop_assert_eq!(matching, 0, "all-negative points spawn no cell");
                } else {
                    prop_assert_eq!(matching, 1, "point ({},{}) pattern {:?}", x, y, active);
                }
            }
        }
    }

    #[test]
    fn pushdown_never_loses_query_cells(
        preds in prop::collection::vec(arb_box(), 1..5),
        qa in 0..=D, qb in 0..=D,
    ) {
        // decomposing inside the query region finds exactly the activity
        // patterns realized by points inside the region
        let set = build_set(preds);
        let (qlo, qhi) = (qa.min(qb) as f64, qa.max(qb) as f64);
        let mut base = Region::full(set.schema());
        base.intersect_atom(&Atom::between(0, qlo, qhi));
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        let sigs = signatures(&cells);
        for x in (qlo as i64)..=(qhi as i64) {
            for y in 0..=D {
                let row = [x as f64, y as f64];
                let active: Vec<usize> = set
                    .constraints()
                    .iter()
                    .enumerate()
                    .filter(|(_, pc)| pc.predicate.eval(&row))
                    .map(|(j, _)| j)
                    .collect();
                if !active.is_empty() {
                    prop_assert!(
                        sigs.contains(&active),
                        "pattern {:?} at ({},{}) missing under pushdown", active, x, y
                    );
                }
            }
        }
    }

    #[test]
    fn interval_domains_respected(preds in prop::collection::vec(arb_box(), 1..5)) {
        // a restricted domain excludes cells outside it
        let mut set = build_set(preds);
        let mut domain = Region::full(set.schema());
        domain.set_interval(0, Interval::closed(0.0, 3.0));
        set.set_domain(domain.clone());
        let (cells, _) = decompose(&set, &domain, Strategy::DfsRewrite).unwrap();
        for cell in &cells {
            let w = cell.witness.as_ref().unwrap();
            prop_assert!(w[0] <= 3.0, "witness escaped the domain");
        }
    }
}
