//! Property-based tests for the session layer: for arbitrary overlapping
//! constraint sets and arbitrary queries, a [`Session`]'s
//! specialize-from-cache answer must equal a from-scratch
//! [`BoundEngine::bound`] of the same query — same ranges, same closure
//! verdicts, same errors — with or without the cell cache, in batches,
//! and across repeated queries (warm-start chains must never drift).

use pc_core::{
    BoundEngine, BoundError, BoundOptions, FrequencyConstraint, PcSet, PredicateConstraint,
    Session, SessionOptions, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use proptest::prelude::*;

/// Attribute 0 spans 0..=XMAX, attribute 1 (the aggregated value)
/// 0..=VMAX.
const XMAX: i64 = 10;
const VMAX: i64 = 30;

fn schema() -> Schema {
    Schema::new(vec![("x", AttrType::Int), ("v", AttrType::Int)])
}

prop_compose! {
    /// A constraint over a random (x, v) box with a value range and an
    /// upper frequency bound — sometimes also a lower bound.
    fn arb_pc()(
        a in 0..=XMAX, b in 0..=XMAX,
        c in 0..=VMAX, d in 0..=VMAX,
        ku in 1u64..8,
        forced: bool,
    ) -> PredicateConstraint {
        let (xlo, xhi) = (a.min(b) as f64, a.max(b) as f64);
        let (vlo, vhi) = (c.min(d) as f64, c.max(d) as f64);
        let freq = if forced {
            FrequencyConstraint::between(1, ku)
        } else {
            FrequencyConstraint::at_most(ku)
        };
        PredicateConstraint::new(
            Predicate::always()
                .and(Atom::between(0, xlo, xhi + 1.0))
                .and(Atom::between(1, vlo, vhi + 1.0)),
            ValueConstraint::none().with(1, Interval::closed(vlo, vhi)),
            freq,
        )
    }
}

prop_compose! {
    /// A random aggregate query over a random x-range.
    fn arb_query()(
        agg_pick in 0usize..5,
        a in 0..=XMAX, b in 0..=XMAX,
        full: bool,
    ) -> AggQuery {
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min, AggKind::Max][agg_pick];
        let predicate = if full {
            Predicate::always()
        } else {
            let (lo, hi) = (a.min(b) as f64, a.max(b) as f64);
            Predicate::atom(Atom::between(0, lo, hi + 1.0))
        };
        AggQuery::new(agg, 1, predicate)
    }
}

fn build_set(pcs: Vec<PredicateConstraint>) -> PcSet {
    let mut set = PcSet::new(schema());
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, XMAX as f64));
    domain.set_interval(1, Interval::closed(0.0, VMAX as f64));
    for pc in pcs {
        set.push(pc);
    }
    set.set_domain(domain);
    set
}

fn results_equal(
    q: &AggQuery,
    a: &Result<pc_core::BoundReport, BoundError>,
    b: &Result<pc_core::BoundReport, BoundError>,
) -> Result<(), String> {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            // 1e-5, not 1e-6: the allocation B&B (parallel by default on
            // the pool) may prune a node tying the incumbent within its
            // 1e-6 tolerance in one run and explore it in the other
            let lo_ok = (x.range.lo - y.range.lo).abs() < 1e-5
                || (x.range.lo.is_infinite() && x.range.lo == y.range.lo);
            let hi_ok = (x.range.hi - y.range.hi).abs() < 1e-5
                || (x.range.hi.is_infinite() && x.range.hi == y.range.hi);
            if !lo_ok || !hi_ok {
                return Err(format!(
                    "{q:?}: fresh [{}, {}] vs session [{}, {}]",
                    x.range.lo, x.range.hi, y.range.lo, y.range.hi
                ));
            }
            if x.closed != y.closed {
                return Err(format!("{q:?}: closed {} vs {}", x.closed, y.closed));
            }
            Ok(())
        }
        (Err(x), Err(y)) if x == y => Ok(()),
        (x, y) => Err(format!("{q:?}: {x:?} vs {y:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Session-specialized bounds == fresh-decomposition bounds on random
    /// queries — the tentpole's exactness claim.
    #[test]
    fn session_equals_fresh_engine(
        pcs in prop::collection::vec(arb_pc(), 1..6),
        qs in prop::collection::vec(arb_query(), 1..5),
    ) {
        let set = build_set(pcs);
        let engine = BoundEngine::new(&set);
        let session = Session::new(set.clone());
        for q in &qs {
            let fresh = engine.bound(q);
            let served = session.bound(q);
            if let Err(msg) = results_equal(q, &fresh, &served) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// The cache knob is semantics-free: cache on == cache off, and a
    /// batch equals one-at-a-time serving in input order.
    #[test]
    fn bound_many_and_cache_knob_are_semantics_free(
        pcs in prop::collection::vec(arb_pc(), 1..5),
        qs in prop::collection::vec(arb_query(), 1..6),
    ) {
        let set = build_set(pcs);
        let cached = Session::new(set.clone());
        let uncached = Session::with_options(set, SessionOptions {
            cache_cells: false,
            ..SessionOptions::default()
        });
        let batch = cached.bound_many(&qs);
        prop_assert_eq!(batch.len(), qs.len());
        for (q, got) in qs.iter().zip(&batch) {
            let cold = uncached.bound(q);
            if let Err(msg) = results_equal(q, &cold, got) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// Serving the same query repeatedly through one session never
    /// drifts (warm-start chains and the shared cell cache are
    /// result-invariant).
    #[test]
    fn repeated_serving_is_stable(
        pcs in prop::collection::vec(arb_pc(), 1..5),
        q in arb_query(),
        threads in 1usize..5,
    ) {
        let set = build_set(pcs);
        let session = Session::with_options(set, SessionOptions {
            bound: BoundOptions { threads, ..BoundOptions::default() },
            ..SessionOptions::default()
        });
        let first = session.bound(&q);
        for _ in 0..3 {
            let again = session.bound(&q);
            if let Err(msg) = results_equal(&q, &first, &again) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }
}
