//! Property-based tests for the shared-decomposition GROUP-BY path: for
//! arbitrary overlapping constraint sets, every group's bound from the
//! shared path (one decomposition + per-key specialization + warm-started
//! parallel solves) must equal the bound a from-scratch per-key
//! `BoundEngine::bound` computes — same ranges, same closure verdicts,
//! same per-group errors.

use pc_core::{
    BoundEngine, BoundOptions, FrequencyConstraint, GroupBound, PcSet, PredicateConstraint,
    ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use proptest::prelude::*;

/// Group codes 0..=GMAX on attribute 0, values 0..=VMAX on attribute 1.
const GMAX: i64 = 7;
const VMAX: i64 = 30;

fn schema() -> Schema {
    Schema::new(vec![("g", AttrType::Cat), ("v", AttrType::Int)])
}

prop_compose! {
    /// A constraint over a random (group, value) box, with a value range
    /// and an upper frequency bound — sometimes also a lower bound.
    fn arb_pc()(
        a in 0..=GMAX, b in 0..=GMAX,
        c in 0..=VMAX, d in 0..=VMAX,
        ku in 1u64..8,
        forced: bool,
    ) -> PredicateConstraint {
        let (glo, ghi) = (a.min(b) as f64, a.max(b) as f64);
        let (vlo, vhi) = (c.min(d) as f64, c.max(d) as f64);
        let freq = if forced {
            FrequencyConstraint::between(1, ku)
        } else {
            FrequencyConstraint::at_most(ku)
        };
        PredicateConstraint::new(
            Predicate::always()
                .and(Atom::between(0, glo, ghi + 1.0))
                .and(Atom::between(1, vlo, vhi + 1.0)),
            ValueConstraint::none().with(1, Interval::closed(vlo, vhi)),
            freq,
        )
    }
}

fn build_set(pcs: Vec<PredicateConstraint>) -> PcSet {
    let mut set = PcSet::new(schema());
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, GMAX as f64));
    domain.set_interval(1, Interval::closed(0.0, VMAX as f64));
    for pc in pcs {
        set.push(pc);
    }
    set.set_domain(domain);
    set
}

fn reports_equal(a: &GroupBound, b: &GroupBound) -> Result<(), String> {
    if a.key != b.key {
        return Err(format!("key mismatch: {} vs {}", a.key, b.key));
    }
    match (&a.report, &b.report) {
        (Ok(x), Ok(y)) => {
            // 1e-5, not 1e-6: the allocation B&B (parallel by default on
            // the pool) may prune a node tying the incumbent within its
            // 1e-6 tolerance in one run and explore it in the other
            let lo_ok = (x.range.lo - y.range.lo).abs() < 1e-5
                || (x.range.lo.is_infinite() && x.range.lo == y.range.lo);
            let hi_ok = (x.range.hi - y.range.hi).abs() < 1e-5
                || (x.range.hi.is_infinite() && x.range.hi == y.range.hi);
            if !lo_ok || !hi_ok {
                return Err(format!(
                    "key {}: [{}, {}] vs [{}, {}]",
                    a.key, x.range.lo, x.range.hi, y.range.lo, y.range.hi
                ));
            }
            if x.closed != y.closed {
                return Err(format!(
                    "key {}: closed {} vs {}",
                    a.key, x.closed, y.closed
                ));
            }
            Ok(())
        }
        (Err(x), Err(y)) if x == y => Ok(()),
        (x, y) => Err(format!("key {}: {:?} vs {:?}", a.key, x, y)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shared_group_by_equals_per_key(
        pcs in prop::collection::vec(arb_pc(), 1..6),
        agg_pick in 0usize..5,
        qa in 0..=GMAX, qb in 0..=GMAX,
    ) {
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min, AggKind::Max][agg_pick];
        let set = build_set(pcs);
        // a base query restricting the group range exercises pushdown
        // interplay (partially covered groups, relaxed lower bounds)
        let (qlo, qhi) = (qa.min(qb) as f64, qa.max(qb) as f64);
        let query = AggQuery::new(
            agg,
            1,
            Predicate::atom(Atom::between(0, qlo, qhi + 1.0)),
        );
        let keys: Vec<f64> = (0..=GMAX).map(|k| k as f64).collect();

        let shared = BoundEngine::new(&set).bound_group_by(&query, 0, keys.clone());
        let baseline = BoundEngine::with_options(&set, BoundOptions {
            shared_group_by: false,
            ..BoundOptions::default()
        })
        .bound_group_by(&query, 0, keys.clone());

        prop_assert_eq!(shared.len(), baseline.len());
        for (s, b) in shared.iter().zip(&baseline) {
            if let Err(msg) = reports_equal(s, b) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    #[test]
    fn parallel_groups_equal_sequential(
        pcs in prop::collection::vec(arb_pc(), 1..5),
        threads in 2usize..7,
    ) {
        let set = build_set(pcs);
        let query = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let keys: Vec<f64> = (0..=GMAX).map(|k| k as f64).collect();
        let sequential = BoundEngine::with_options(&set, BoundOptions {
            threads: 1,
            ..BoundOptions::default()
        })
        .bound_group_by(&query, 0, keys.clone());
        let parallel = BoundEngine::with_options(&set, BoundOptions {
            threads,
            ..BoundOptions::default()
        })
        .bound_group_by(&query, 0, keys.clone());
        prop_assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            if let Err(msg) = reports_equal(s, p) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    #[test]
    fn warm_start_never_changes_bounds(
        pcs in prop::collection::vec(arb_pc(), 1..5),
        agg_pick in 0usize..5,
        lp_limit in 0usize..2,
    ) {
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min, AggKind::Max][agg_pick];
        let set = build_set(pcs);
        let query = AggQuery::new(agg, 1, Predicate::always());
        let keys: Vec<f64> = (0..=GMAX).map(|k| k as f64).collect();
        // lp_limit 0 forces the warm-startable LP path for every solve
        let lp_relax_cell_limit = if lp_limit == 0 { 0 } else { 150 };
        let warm = BoundEngine::with_options(&set, BoundOptions {
            lp_relax_cell_limit,
            ..BoundOptions::default()
        })
        .bound_group_by(&query, 0, keys.clone());
        let cold = BoundEngine::with_options(&set, BoundOptions {
            lp_relax_cell_limit,
            warm_start: false,
            ..BoundOptions::default()
        })
        .bound_group_by(&query, 0, keys.clone());
        for (w, c) in warm.iter().zip(&cold) {
            if let Err(msg) = reports_equal(w, c) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }
}

prop_compose! {
    /// A *key-local* constraint: the group attribute pinned to one key
    /// (a per-group floor/cap — the shape the retired `mostly_key_local`
    /// heuristic used to punt to the per-key path, now handled by the
    /// two-level splice).
    fn arb_local_pc()(
        g in 0..=GMAX,
        c in 0..=VMAX, d in 0..=VMAX,
        ku in 1u64..8,
        forced: bool,
    ) -> PredicateConstraint {
        let (vlo, vhi) = (c.min(d) as f64, c.max(d) as f64);
        let freq = if forced {
            FrequencyConstraint::between(1, ku)
        } else {
            FrequencyConstraint::at_most(ku)
        };
        PredicateConstraint::new(
            Predicate::always()
                .and(Atom::eq(0, g as f64))
                .and(Atom::between(1, vlo, vhi + 1.0)),
            ValueConstraint::none().with(1, Interval::closed(vlo, vhi)),
            freq,
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Two-level GROUP-BY == per-key GROUP-BY on key-local-heavy sets:
    /// mostly (or entirely) key-pinned constraints, optionally mixed with
    /// a few cross-cutting ones. These are the sets where the old
    /// `mostly_key_local` heuristic forced the per-key fallback; the
    /// two-level scheme must bound them identically through the shared
    /// path — shared constraints decomposed once, each key's locals
    /// spliced into its slice.
    #[test]
    fn two_level_equals_per_key_on_key_local_heavy_sets(
        locals in prop::collection::vec(arb_local_pc(), 2..7),
        shared in prop::collection::vec(arb_pc(), 0..3),
        agg_pick in 0usize..5,
    ) {
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min, AggKind::Max][agg_pick];
        let set = build_set(locals.into_iter().chain(shared).collect());
        let query = AggQuery::new(agg, 1, Predicate::always());
        let keys: Vec<f64> = (0..=GMAX).map(|k| k as f64).collect();

        let two_level = BoundEngine::new(&set).bound_group_by(&query, 0, keys.clone());
        let per_key = BoundEngine::with_options(&set, BoundOptions {
            shared_group_by: false,
            ..BoundOptions::default()
        })
        .bound_group_by(&query, 0, keys);

        prop_assert_eq!(two_level.len(), per_key.len());
        for (t, p) in two_level.iter().zip(&per_key) {
            if let Err(msg) = reports_equal(t, p) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }
}
