//! Property tests for sharded decomposition: over random catalogs mixing
//! tile-disjoint and cross-cutting constraints, every bound the sharded
//! engine computes (all five aggregates, arbitrary query regions,
//! GROUP-BY, and sessions under random mutation sequences) must equal the
//! unsharded oracle (`BoundOptions { shard: false }`) — the factoring
//! theorem is that connected components of the constraint-interaction
//! graph decompose and allocate independently. A fault-feature test
//! checks the isolation story: a budget trip inside one shard's build
//! degrades only that shard's contribution, and a skew unit test checks
//! the quantile re-ordering of heavy shards never moves a bound.

use pc_core::{
    BoundEngine, BoundError, BoundOptions, ConstraintId, FrequencyConstraint, PcSet,
    PredicateConstraint, QueryBudget, Session, SessionOptions, ValueConstraint,
    SHARD_RESPLIT_THRESHOLD,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use proptest::prelude::*;

/// Three tiles of width 4 on the x axis: [0,4), [4,8), [8,12).
const TILE: i64 = 4;
const TILES: i64 = 3;
const XMAX: i64 = TILE * TILES;
const VMAX: i64 = 20;

fn schema() -> Schema {
    Schema::new(vec![("x", AttrType::Int), ("v", AttrType::Int)])
}

fn build_set(pcs: Vec<PredicateConstraint>) -> PcSet {
    let mut set = PcSet::new(schema());
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, XMAX as f64));
    domain.set_interval(1, Interval::closed(0.0, VMAX as f64));
    for pc in pcs {
        set.push(pc);
    }
    set.set_domain(domain);
    set
}

fn pc_on(xlo: f64, xhi: f64, vlo: f64, vhi: f64, forced: bool, ku: u64) -> PredicateConstraint {
    let freq = if forced {
        FrequencyConstraint::between(1, ku)
    } else {
        FrequencyConstraint::at_most(ku)
    };
    PredicateConstraint::new(
        Predicate::always()
            .and(Atom::between(0, xlo, xhi))
            .and(Atom::between(1, vlo, vhi)),
        ValueConstraint::none().with(1, Interval::closed(vlo, vhi - 1.0)),
        freq,
    )
}

prop_compose! {
    /// A constraint whose x-box usually stays inside one tile (so random
    /// catalogs tend to factor into several interaction components) but
    /// sometimes spans tiles (merging components — the hard case).
    fn arb_pc()(
        tile in 0..TILES,
        a in 0..TILE, b in 0..TILE,
        c in 0..=VMAX, d in 0..=VMAX,
        ku in 1u64..8,
        forced: bool,
        cross in 0usize..10,
    ) -> PredicateConstraint {
        let (vlo, vhi) = (c.min(d) as f64, c.max(d) as f64 + 1.0);
        if cross < 3 {
            // cross-cutting: an arbitrary span that may bridge tiles
            let (xlo, xhi) = (
                (tile * TILE + a.min(b)) as f64,
                (tile * TILE + a.max(b)) as f64 + TILE as f64,
            );
            pc_on(xlo, xhi.min(XMAX as f64), vlo, vhi, forced, ku)
        } else {
            // tile-local: x-box inside tile `tile`
            let (xlo, xhi) = (
                (tile * TILE + a.min(b)) as f64,
                (tile * TILE + a.max(b)) as f64 + 1.0,
            );
            pc_on(xlo, xhi, vlo, vhi, forced, ku)
        }
    }
}

prop_compose! {
    fn arb_query()(
        agg_pick in 0usize..5,
        a in 0..=XMAX, b in 0..=XMAX,
        full: bool,
    ) -> AggQuery {
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min, AggKind::Max][agg_pick];
        let predicate = if full {
            Predicate::always()
        } else {
            let (lo, hi) = (a.min(b) as f64, a.max(b) as f64);
            Predicate::atom(Atom::between(0, lo, hi + 1.0))
        };
        AggQuery::new(agg, 1, predicate)
    }
}

fn flat_options() -> BoundOptions {
    BoundOptions {
        shard: false,
        ..BoundOptions::default()
    }
}

fn results_equal(
    q: &AggQuery,
    flat: &Result<pc_core::BoundReport, BoundError>,
    sharded: &Result<pc_core::BoundReport, BoundError>,
) -> Result<(), String> {
    match (flat, sharded) {
        (Ok(x), Ok(y)) => {
            let lo_ok = (x.range.lo - y.range.lo).abs() < 1e-5
                || (x.range.lo.is_infinite() && x.range.lo == y.range.lo);
            let hi_ok = (x.range.hi - y.range.hi).abs() < 1e-5
                || (x.range.hi.is_infinite() && x.range.hi == y.range.hi);
            if !lo_ok || !hi_ok {
                return Err(format!(
                    "{q:?}: flat [{}, {}] vs sharded [{}, {}]",
                    x.range.lo, x.range.hi, y.range.lo, y.range.hi
                ));
            }
            if x.closed != y.closed {
                return Err(format!("{q:?}: closed {} vs {}", x.closed, y.closed));
            }
            Ok(())
        }
        (Err(x), Err(y)) if x == y => Ok(()),
        (x, y) => Err(format!("{q:?}: flat {x:?} vs sharded {y:?}")),
    }
}

/// One catalog mutation; retire/replace targets resolve by index seed
/// into the live-id list at application time.
#[derive(Debug, Clone)]
enum Op {
    Add(PredicateConstraint),
    Retire(usize),
    Replace(usize, PredicateConstraint),
}

prop_compose! {
    fn arb_op()(
        pick in 0usize..6,
        seed in 0usize..8,
        pc in arb_pc(),
    ) -> Op {
        match pick {
            0..=2 => Op::Add(pc),
            3 | 4 => Op::Retire(seed),
            _ => Op::Replace(seed, pc),
        }
    }
}

fn apply(session: &Session, op: &Op) -> bool {
    let live: Vec<ConstraintId> = session.constraint_ids();
    match op {
        Op::Add(pc) => {
            session.add_constraint(pc.clone());
            true
        }
        Op::Retire(seed) => {
            if live.is_empty() {
                return false;
            }
            session
                .retire_constraint(live[seed % live.len()])
                .expect("live id retires");
            true
        }
        Op::Replace(seed, pc) => {
            if live.is_empty() {
                return false;
            }
            session
                .replace_constraint(live[seed % live.len()], pc.clone())
                .expect("live id replaces");
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One-shot engine: sharded bounds equal the unsharded oracle for
    /// every aggregate and query region, and the report carries the shard
    /// topology whenever the catalog genuinely factored.
    #[test]
    fn sharded_bounds_equal_unsharded_oracle(
        pcs in prop::collection::vec(arb_pc(), 1..7),
        qs in prop::collection::vec(arb_query(), 1..4),
    ) {
        let set = build_set(pcs);
        let components = pc_core::interaction_components(&set).len();
        let sharded = BoundEngine::new(&set);
        let flat = BoundEngine::with_options(&set, flat_options());
        for q in &qs {
            let s = sharded.bound(q);
            if let Err(msg) = results_equal(q, &flat.bound(q), &s) {
                return Err(TestCaseError::fail(msg));
            }
            if components > 1 {
                if let Ok(r) = &s {
                    prop_assert_eq!(r.stats.shards, components, "{:?}", q);
                    prop_assert_eq!(r.shard_sat_checks.len(), components, "{:?}", q);
                }
            }
        }
    }

    /// GROUP-BY: the sharded route (per-key over factored catalogs)
    /// answers every key exactly as the unsharded two-level scheme.
    #[test]
    fn sharded_group_by_equals_unsharded(
        pcs in prop::collection::vec(arb_pc(), 1..6),
        agg_pick in 0usize..5,
    ) {
        let set = build_set(pcs);
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg, AggKind::Min, AggKind::Max][agg_pick];
        let base = AggQuery::new(agg, 1, Predicate::always());
        let keys: Vec<f64> = (0..XMAX).map(|x| x as f64).collect();
        let sharded = BoundEngine::new(&set).bound_group_by(&base, 0, keys.clone());
        let flat = BoundEngine::with_options(&set, flat_options())
            .bound_group_by(&base, 0, keys);
        prop_assert_eq!(sharded.len(), flat.len());
        for (s, f) in sharded.iter().zip(&flat) {
            prop_assert_eq!(s.key, f.key);
            let q = AggQuery::new(agg, 1, Predicate::atom(Atom::eq(0, s.key)));
            if let Err(msg) = results_equal(&q, &f.report, &s.report) {
                return Err(TestCaseError::fail(msg));
            }
        }
    }

    /// Sessions under churn: after every mutation the sharded session
    /// (shard-local epoch derivation, possibly merging and splitting
    /// components) serves the same bounds as an unsharded session freshly
    /// built on the materialized catalog.
    #[test]
    fn sharded_sessions_survive_churn(
        pcs in prop::collection::vec(arb_pc(), 1..4),
        ops in prop::collection::vec(arb_op(), 1..5),
        qs in prop::collection::vec(arb_query(), 1..3),
    ) {
        let session = Session::new(build_set(pcs));
        // prime epoch 0 so every mutation derives shard-locally
        session.cell_set().expect("decomposable seed");
        for op in &ops {
            if !apply(&session, op) {
                continue;
            }
            let set = session.pc_set();
            let oracle = Session::with_options((*set).clone(), SessionOptions {
                bound: flat_options(),
                ..SessionOptions::default()
            });
            for q in &qs {
                if let Err(msg) = results_equal(q, &oracle.bound(q), &session.bound(q)) {
                    return Err(TestCaseError::fail(msg));
                }
            }
        }
    }
}

/// Quantile re-ordering of a heavy shard is purely a work heuristic: a
/// single connected component past [`SHARD_RESPLIT_THRESHOLD`] members
/// must bound exactly like the unsharded engine (which never re-orders).
#[test]
fn skew_reorder_never_moves_a_bound() {
    // a chain of overlapping boxes: one component, > threshold members,
    // skewed toward the low end of the axis
    let n = SHARD_RESPLIT_THRESHOLD + 2;
    let mut set = PcSet::new(schema());
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, (2 * n) as f64));
    domain.set_interval(1, Interval::closed(0.0, VMAX as f64));
    for i in 0..n {
        // skew: the first half packs densely (step 0.5), the rest spreads
        // out (step 1.5) — every consecutive pair of width-2 boxes overlaps
        let lo = if i < n / 2 {
            i as f64 * 0.5
        } else {
            (n / 2) as f64 * 0.5 + (i - n / 2) as f64 * 1.5
        };
        set.push(pc_on(lo, lo + 2.0, 0.0, 10.0, i % 3 == 0, 4));
    }
    set.set_domain(domain);
    assert_eq!(pc_core::interaction_components(&set).len(), 1);

    let session = Session::new(set.clone());
    let cells = session.sharded_cell_set().expect("decomposable");
    assert_eq!(cells.stats().shards, 1);
    assert_eq!(cells.stats().max_shard_constraints, n);

    let flat = BoundEngine::with_options(&set, flat_options());
    for agg in [AggKind::Count, AggKind::Sum, AggKind::Max] {
        for pred in [
            Predicate::always(),
            Predicate::atom(Atom::between(0, 0.0, (n / 2) as f64)),
        ] {
            let q = AggQuery::new(agg, 1, pred);
            results_equal(&q, &flat.bound(&q), &session.bound(&q)).unwrap();
        }
    }
}

/// The fault-isolation story: two shards, a budget sized so the first
/// builds clean and the second trips mid-decomposition. A query touching
/// only the clean shard still gets its exact range (the other shard
/// contributes nothing to it); a query spanning both degrades soundly —
/// its range contains the exact one.
#[test]
fn budget_trip_in_one_shard_degrades_only_that_shard() {
    // shard A: two forced constraints on tile [0, 3)
    let mut pcs = vec![
        pc_on(0.0, 2.0, 0.0, 10.0, true, 4),
        pc_on(1.0, 3.0, 2.0, 12.0, true, 5),
    ];
    // shard B: a chain of eight overlapping constraints on [6, 15)
    for i in 0..8 {
        let lo = 6.0 + i as f64;
        pcs.push(pc_on(lo, lo + 2.0, 0.0, 15.0, true, 3));
    }
    let mut set = PcSet::new(schema());
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, 16.0));
    domain.set_interval(1, Interval::closed(0.0, VMAX as f64));
    for pc in pcs {
        set.push(pc);
    }
    set.set_domain(domain);
    assert_eq!(pc_core::interaction_components(&set).len(), 2);

    // How much SAT work does shard A's build need on its own?
    let a_only = {
        let mut a = PcSet::new(schema());
        a.set_domain(set.domain().clone());
        a.push(set.constraints()[0].clone());
        a.push(set.constraints()[1].clone());
        let s = Session::with_options(
            a,
            SessionOptions {
                bound: BoundOptions {
                    threads: 1,
                    ..BoundOptions::default()
                },
                ..SessionOptions::default()
            },
        );
        s.cell_set().unwrap().stats().sat_checks
    };

    let options = SessionOptions {
        bound: BoundOptions {
            threads: 1, // deterministic shard build order (A first)
            ..BoundOptions::default()
        },
        ..SessionOptions::default()
    };
    let exact = Session::with_options(set.clone(), options);
    let a_query = AggQuery::count(Predicate::atom(Atom::between(0, 0.0, 3.0)));
    let span_query = AggQuery::count(Predicate::always());
    let exact_a = exact.bound(&a_query).unwrap();
    let exact_span = exact.bound(&span_query).unwrap();

    // Cold session, budget = exactly shard A's build: A decomposes clean,
    // B trips to frontier cells.
    let starved = Session::with_options(set, options);
    let budget = QueryBudget::armed().with_sat_cap(a_only);
    let r_a = starved.bound_budgeted(&a_query, &budget).unwrap();
    assert!(budget.is_tripped(), "shard B's build must exhaust the cap");
    // The clean shard's answer is *exact*, not just contained: shard B
    // never contributes to a query its boxes don't touch.
    assert!(
        (r_a.range.lo - exact_a.range.lo).abs() < 1e-9,
        "clean-shard lo {} must equal exact {}",
        r_a.range.lo,
        exact_a.range.lo
    );
    assert_eq!(r_a.range.hi, exact_a.range.hi, "clean-shard hi");

    // A query spanning both shards is sound but may be wider.
    let r_span = starved.bound_budgeted(&span_query, &budget).unwrap();
    assert!(
        r_span.range.lo <= exact_span.range.lo + 1e-9
            && r_span.range.hi >= exact_span.range.hi - 1e-9,
        "degraded {:?} must contain exact {:?}",
        r_span.range,
        exact_span.range
    );
    assert!(
        r_span.range.lo < exact_span.range.lo - 1e-9 || r_span.degraded,
        "the spanning query saw the tripped shard"
    );
}
