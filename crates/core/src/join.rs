//! Aggregate bounds across natural joins (§5).
//!
//! Given per-relation predicate constraints, the join of the missing
//! partitions must be bounded without materializing anything. Two methods:
//!
//! * [`naive_count_bound`] — the Cartesian-product bound of §5.1: the
//!   direct product of per-relation bounds. Valid but exponentially loose
//!   for cyclic queries (the triangle query gets `O(N³)` instead of the
//!   worst-case-optimal `O(N^{3/2})`).
//! * [`fec_count_bound`] / [`fec_sum_bound`] — the paper's novel §5.2
//!   bound from Friedgut's generalized weighted entropy inequality: for
//!   any fractional edge cover `c` of the query hypergraph,
//!   `SUM(A) ≤ SUM_a(A) × Π_{i≠a} COUNT(Rᵢ)^{cᵢ}` with `c_a = 1`. The
//!   tightest exponent vector is found by a small linear program
//!   (minimizing the log of the right-hand side) solved with `pc-solver`.

use crate::{BoundError, FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint};
use pc_predicate::{Atom, Predicate, Schema};
use pc_solver::{solve_lp, ConstraintOp, LinearProgram};
use std::collections::BTreeSet;

/// One relation of a join query: a name and its attribute names.
/// Attributes shared by name join naturally (the paper treats attributes
/// joined across relations as indistinguishable).
#[derive(Debug, Clone)]
pub struct JoinRelation {
    /// Relation name (display only).
    pub name: String,
    /// Attribute names; order is irrelevant.
    pub attrs: Vec<String>,
}

impl JoinRelation {
    /// Convenience constructor.
    pub fn new(name: &str, attrs: &[&str]) -> Self {
        JoinRelation {
            name: name.to_string(),
            attrs: attrs.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// The hypergraph of a natural join query.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    /// The participating relations.
    pub relations: Vec<JoinRelation>,
}

impl JoinSpec {
    /// Build from relations.
    pub fn new(relations: Vec<JoinRelation>) -> Self {
        JoinSpec { relations }
    }

    /// The triangle query `R(a,b) ⋈ S(b,c) ⋈ T(c,a)` studied in §6.6.3.
    pub fn triangle() -> Self {
        JoinSpec::new(vec![
            JoinRelation::new("R", &["a", "b"]),
            JoinRelation::new("S", &["b", "c"]),
            JoinRelation::new("T", &["c", "a"]),
        ])
    }

    /// The acyclic chain `R1(x1,x2) ⋈ R2(x2,x3) ⋈ … ⋈ Rk(xk,xk+1)`.
    pub fn chain(k: usize) -> Self {
        JoinSpec::new(
            (1..=k)
                .map(|i| {
                    JoinRelation::new(
                        &format!("R{i}"),
                        &[format!("x{i}").as_str(), format!("x{}", i + 1).as_str()],
                    )
                })
                .collect(),
        )
    }

    /// The distinct attribute names, sorted.
    pub fn attributes(&self) -> Vec<String> {
        let set: BTreeSet<&str> = self
            .relations
            .iter()
            .flat_map(|r| r.attrs.iter().map(String::as_str))
            .collect();
        set.into_iter().map(str::to_string).collect()
    }

    /// Solve for the fractional edge cover minimizing
    /// `Σᵢ cᵢ·log_weightᵢ`, subject to every attribute being covered
    /// (`Σ_{i∋s} cᵢ ≥ 1`) and optionally `c_fixed = 1`.
    fn solve_cover(
        &self,
        log_weights: &[f64],
        fixed: Option<usize>,
    ) -> Result<Vec<f64>, BoundError> {
        let n = self.relations.len();
        assert_eq!(log_weights.len(), n, "one weight per relation");
        let mut lp = LinearProgram::minimize(log_weights.to_vec());
        for attr in self.attributes() {
            let terms: Vec<(usize, f64)> = self
                .relations
                .iter()
                .enumerate()
                .filter(|(_, r)| r.attrs.contains(&attr))
                .map(|(i, _)| (i, 1.0))
                .collect();
            lp.add_constraint(terms, ConstraintOp::Ge, 1.0);
        }
        if let Some(a) = fixed {
            lp.add_constraint(vec![(a, 1.0)], ConstraintOp::Eq, 1.0);
        }
        let sol = solve_lp(&lp).map_err(BoundError::Solver)?;
        Ok(sol.x)
    }
}

/// §5.1 naive bound: the join size is at most the Cartesian product of the
/// per-relation cardinality bounds.
pub fn naive_count_bound(count_bounds: &[f64]) -> f64 {
    count_bounds.iter().product()
}

/// §5.1's direct-product construction, materialized: combine two
/// relations' constraint sets into one set over the concatenated schema,
/// where each pair `πᵣ × πₛ` takes the conjunction of predicates, the
/// concatenation of value ranges, and the product of frequency bounds.
///
/// The resulting set bounds any inner join of the two missing partitions
/// (every joined row satisfies some πᵣ on its left half and some πₛ on
/// its right half). It is the *loose* path the paper contrasts with the
/// fractional-edge-cover bound — exposed so the gap is measurable within
/// one API.
///
/// Attribute names are prefixed `left.` / `right.` to keep the combined
/// schema unambiguous (a natural join's equality condition is *not*
/// encoded — which is exactly why the bound is loose).
///
/// # Panics
/// Panics if the product of two frequency `ku`s overflows `u64` — bounds
/// that size carry no information anyway.
pub fn product_pcset(left: &PcSet, right: &PcSet) -> PcSet {
    let ls = left.schema();
    let rs = right.schema();
    let combined = Schema::new(
        ls.iter()
            .map(|(_, n, t)| (format!("left.{n}"), t))
            .chain(rs.iter().map(|(_, n, t)| (format!("right.{n}"), t)))
            .collect::<Vec<_>>(),
    );
    let offset = ls.width();
    let mut out = PcSet::new(combined);
    for pl in left.constraints() {
        for pr in right.constraints() {
            let mut pred = pl.predicate.clone();
            for atom in pr.predicate.atoms() {
                pred = pred.and(Atom::new(atom.attr + offset, atom.interval));
            }
            let mut values = ValueConstraint::none();
            for (attr, iv) in pl.values.ranges() {
                values = values.with(*attr, *iv);
            }
            for (attr, iv) in pr.values.ranges() {
                values = values.with(attr + offset, *iv);
            }
            let ku = pl
                .frequency
                .hi
                .checked_mul(pr.frequency.hi)
                .expect("frequency product overflow");
            out.push(PredicateConstraint::new(
                pred,
                values,
                FrequencyConstraint::between(pl.frequency.lo * pr.frequency.lo, ku),
            ));
        }
    }
    // the product of disjoint partitions is a disjoint partition
    out.set_disjoint_hint(left.disjoint_hint() && right.disjoint_hint());
    let mut domain = pc_predicate::Region::full(out.schema());
    for a in 0..ls.width() {
        domain.set_interval(a, *left.domain().interval(a));
    }
    for a in 0..rs.width() {
        domain.set_interval(a + offset, *right.domain().interval(a));
    }
    out.set_domain(domain);
    out
}

/// The §5.1 naive join COUNT bound computed *through the product set*
/// (rather than multiplying scalar bounds): builds [`product_pcset`] and
/// bounds `COUNT(*)` on it.
pub fn product_count_bound(left: &PcSet, right: &PcSet) -> Result<f64, BoundError> {
    let product = product_pcset(left, right);
    let engine = crate::BoundEngine::with_options(
        &product,
        crate::BoundOptions {
            check_closure: false,
            ..crate::BoundOptions::default()
        },
    );
    let q = pc_storage::AggQuery::count(Predicate::always());
    Ok(engine.bound(&q)?.range.hi)
}

/// The AGM-style worst-case-optimal count bound:
/// `|⋈ᵢ Rᵢ| ≤ Π COUNTᵢ^{cᵢ}` for the cost-minimizing fractional edge
/// cover `c`.
pub fn fec_count_bound(spec: &JoinSpec, count_bounds: &[f64]) -> Result<f64, BoundError> {
    if count_bounds.iter().any(|&c| c <= 0.0) {
        // an empty (or impossible) relation annihilates the join
        return Ok(0.0);
    }
    let logs: Vec<f64> = count_bounds.iter().map(|&c| c.max(1.0).ln()).collect();
    let cover = spec.solve_cover(&logs, None)?;
    let log_bound: f64 = cover.iter().zip(&logs).map(|(c, l)| c * l).sum();
    Ok(log_bound.exp())
}

/// §5.2 SUM bound: `SUM(A) ≤ SUM_a(A) × Π_{i≠a} COUNTᵢ^{cᵢ}` with
/// `c_a = 1` fixed, minimizing the right-hand side over fractional edge
/// covers. `agg_relation` indexes the relation providing attribute `A`;
/// `sum_bound` is that relation's standalone SUM upper bound and
/// `count_bounds[i]` each relation's COUNT upper bound.
pub fn fec_sum_bound(
    spec: &JoinSpec,
    agg_relation: usize,
    sum_bound: f64,
    count_bounds: &[f64],
) -> Result<f64, BoundError> {
    if sum_bound <= 0.0 || count_bounds.iter().any(|&c| c <= 0.0) {
        // an empty relation annihilates the join; with a non-positive SUM
        // bound the join SUM cannot exceed zero either
        return Ok(0.0);
    }
    // Weights: relation a's exponent is fixed at 1 and its weight must not
    // distort the optimization — its cost term is constant, so weight 0.
    let logs: Vec<f64> = count_bounds
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            if i == agg_relation {
                0.0
            } else {
                c.max(1.0).ln()
            }
        })
        .collect();
    let cover = spec.solve_cover(&logs, Some(agg_relation))?;
    let log_rest: f64 = cover
        .iter()
        .zip(&logs)
        .enumerate()
        .filter(|(i, _)| *i != agg_relation)
        .map(|(_, (c, l))| c * l)
        .sum();
    Ok(sum_bound * log_rest.exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        let rel = (a - b).abs() / b.abs().max(1.0);
        assert!(rel < 1e-6, "{a} != {b}");
    }

    #[test]
    fn triangle_fec_is_n_to_three_halves() {
        let spec = JoinSpec::triangle();
        for n in [10.0, 100.0, 1000.0, 10000.0] {
            let bound = fec_count_bound(&spec, &[n, n, n]).unwrap();
            assert_close(bound, n.powf(1.5));
            // the naive bound is N³ — exponentially looser
            assert_close(naive_count_bound(&[n, n, n]), n.powi(3));
        }
    }

    #[test]
    fn chain_fec_alternating_cover() {
        // Acyclic chain R1..R5: attributes x1..x6. Optimal integral cover
        // picks R1, R3, R5 → bound K³ (vs naive K⁵).
        let spec = JoinSpec::chain(5);
        for k in [10.0, 100.0, 1000.0] {
            let bound = fec_count_bound(&spec, &[k; 5]).unwrap();
            assert_close(bound, k.powi(3));
            assert_close(naive_count_bound(&[k; 5]), k.powi(5));
        }
    }

    #[test]
    fn two_way_join_cover_is_both() {
        // R(a,b) ⋈ S(b,c): a only in R, c only in S → c = (1,1), bound |R||S|
        let spec = JoinSpec::new(vec![
            JoinRelation::new("R", &["a", "b"]),
            JoinRelation::new("S", &["b", "c"]),
        ]);
        let bound = fec_count_bound(&spec, &[20.0, 30.0]).unwrap();
        assert_close(bound, 600.0);
    }

    #[test]
    fn four_clique_bound() {
        // §5.1 mentions the 4-clique; AGM for the 4-cycle of ternary
        // relations R(a,b,c) S(b,c,d) T(c,d,e) U(e,a,b): each attr appears
        // in ≥ 2 relations, cover 1/2 each → bound N².
        let spec = JoinSpec::new(vec![
            JoinRelation::new("R", &["a", "b", "c"]),
            JoinRelation::new("S", &["b", "c", "d"]),
            JoinRelation::new("T", &["c", "d", "e"]),
            JoinRelation::new("U", &["e", "a", "b"]),
        ]);
        let n = 100.0;
        let bound = fec_count_bound(&spec, &[n; 4]).unwrap();
        assert_close(bound, n.powi(2));
    }

    #[test]
    fn sum_bound_triangle() {
        // SUM over R's attribute with c_R = 1 fixed: remaining cover must
        // still cover c with S and T → c_S + c_T ≥ 1 on attribute c, and
        // b, a are covered by R. Optimal: pick the cheaper of S/T alone.
        let spec = JoinSpec::triangle();
        let bound = fec_sum_bound(&spec, 0, 500.0, &[10.0, 20.0, 30.0]).unwrap();
        assert_close(bound, 500.0 * 20.0); // S (count 20) beats T (30)
    }

    #[test]
    fn sum_bound_chain() {
        // SUM over R1's attribute in a 3-chain: R1 covers x1,x2; need x3,x4
        // → R3 alone covers x4 but x3 needs R2 or R3: R3(x3,x4) covers both.
        let spec = JoinSpec::chain(3);
        let bound = fec_sum_bound(&spec, 0, 100.0, &[5.0, 7.0, 11.0]).unwrap();
        assert_close(bound, 100.0 * 11.0);
    }

    #[test]
    fn empty_relation_annihilates() {
        let spec = JoinSpec::triangle();
        assert_eq!(fec_count_bound(&spec, &[0.0, 10.0, 10.0]).unwrap(), 0.0);
        assert_eq!(
            fec_sum_bound(&spec, 0, 100.0, &[10.0, 0.0, 10.0]).unwrap(),
            0.0
        );
    }

    #[test]
    fn product_pcset_bounds_the_cartesian_product() {
        use pc_predicate::{AttrType, Interval, Predicate, Region};
        use pc_storage::{AggKind, AggQuery};

        // R: one attr, two disjoint buckets of ≤ 3 and ≤ 4 rows
        let rs = Schema::new(vec![("x", AttrType::Int)]);
        let mut left = PcSet::new(rs.clone());
        for (lo, hi, k) in [(0.0, 4.0, 3u64), (5.0, 9.0, 4)] {
            left.push(PredicateConstraint::new(
                Predicate::atom(Atom::between(0, lo, hi)),
                ValueConstraint::none().with(0, Interval::closed(lo, hi)),
                FrequencyConstraint::at_most(k),
            ));
        }
        let mut dl = Region::full(&rs);
        dl.set_interval(0, Interval::closed(0.0, 9.0));
        left.set_domain(dl);
        left.set_disjoint_hint(true);

        // S: one attr, one bucket of ≤ 5 rows
        let ss = Schema::new(vec![("y", AttrType::Int)]);
        let mut right = PcSet::new(ss.clone());
        right.push(PredicateConstraint::new(
            Predicate::always(),
            ValueConstraint::none().with(0, Interval::closed(0.0, 9.0)),
            FrequencyConstraint::at_most(5),
        ));
        let mut dr = Region::full(&ss);
        dr.set_interval(0, Interval::closed(0.0, 9.0));
        right.set_domain(dr);
        right.set_disjoint_hint(true);

        let product = product_pcset(&left, &right);
        assert_eq!(product.len(), 2);
        assert_eq!(product.schema().index_of("left.x"), Some(0));
        assert_eq!(product.schema().index_of("right.y"), Some(1));

        // count bound = (3 + 4) × 5 = 35, the Cartesian product
        let hi = product_count_bound(&left, &right).unwrap();
        assert_eq!(hi, 35.0);

        // and SUM over the left attribute is bounded too
        let engine = crate::BoundEngine::new(&product);
        let r = engine
            .bound(&AggQuery::new(AggKind::Sum, 0, Predicate::always()))
            .unwrap();
        // 15 rows in bucket2-land at x ≤ 9 plus 15 bucket1 rows at x ≤ 4:
        // max = 3·5·4 + 4·5·9 = 240
        assert_eq!(r.range.hi, 240.0);
    }

    #[test]
    fn fec_never_exceeds_naive() {
        let spec = JoinSpec::triangle();
        for counts in [[3.0, 5.0, 7.0], [100.0, 10.0, 1000.0], [1.0, 1.0, 1.0]] {
            let fec = fec_count_bound(&spec, &counts).unwrap();
            let naive = naive_count_bound(&counts);
            assert!(fec <= naive * (1.0 + 1e-9), "{fec} > {naive}");
        }
    }
}
