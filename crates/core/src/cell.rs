use pc_predicate::Region;

/// One disjoint cell of the decomposition (§4.1): the sub-domain belonging
/// to exactly the `active` predicate constraints and excluded from all
/// others.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The box of the *included* predicates intersected with the base
    /// (query ∩ domain) region. The excluded predicates' negations are not
    /// representable as a box; `witness` proves the full conjunction
    /// non-empty.
    pub region: Region,
    /// Indices (into the [`crate::PcSet`]) of the predicate constraints
    /// whose predicates this cell satisfies. Never empty: the all-negated
    /// cell carries no constraints and is handled by the closure check.
    pub active: Vec<usize>,
    /// A concrete point inside the cell, when the decomposition proved
    /// satisfiability exactly. `None` for cells admitted by approximate
    /// early stopping (Optimization 4) — possible false positives that
    /// only ever widen bounds.
    pub witness: Option<Vec<f64>>,
}

impl Cell {
    /// True if constraint `pc` is active in this cell.
    pub fn is_active(&self, pc: usize) -> bool {
        self.active.contains(&pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{AttrType, Schema};

    #[test]
    fn activity_lookup() {
        let schema = Schema::new(vec![("x", AttrType::Float)]);
        let cell = Cell {
            region: Region::full(&schema),
            active: vec![0, 2],
            witness: None,
        };
        assert!(cell.is_active(0));
        assert!(!cell.is_active(1));
        assert!(cell.is_active(2));
    }
}
