use pc_predicate::Region;
use std::sync::Arc;

/// Which predicate constraints a cell satisfies, as a small bitset.
///
/// Decomposition emits up to `2ⁿ` cells whose identity is a subset of the
/// `n` constraint indices; storing that subset as machine words instead of
/// a `Vec<usize>` makes cell signatures allocation-free for `n ≤ 64` (one
/// inline word, the overwhelmingly common case) and keeps membership tests
/// O(1) instead of a linear scan. Indices above 63 spill into heap words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ActiveSet {
    /// Bits 0–63.
    inline: u64,
    /// Bits 64+, in 64-bit words (empty for small constraint sets).
    spill: Vec<u64>,
}

impl ActiveSet {
    /// The empty set.
    pub fn new() -> Self {
        ActiveSet::default()
    }

    /// Insert constraint index `i`.
    pub fn insert(&mut self, i: usize) {
        if i < 64 {
            self.inline |= 1 << i;
        } else {
            let word = i / 64 - 1;
            if self.spill.len() <= word {
                self.spill.resize(word + 1, 0);
            }
            self.spill[word] |= 1 << (i % 64);
        }
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        if i < 64 {
            self.inline & (1 << i) != 0
        } else {
            self.spill
                .get(i / 64 - 1)
                .is_some_and(|w| w & (1 << (i % 64)) != 0)
        }
    }

    /// Number of active constraints.
    pub fn len(&self) -> usize {
        self.inline.count_ones() as usize
            + self
                .spill
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// True if no constraint is active.
    pub fn is_empty(&self) -> bool {
        self.inline == 0 && self.spill.iter().all(|&w| w == 0)
    }

    /// The smallest active index, if any.
    pub fn first_index(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Active indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let inline = WordBits::new(self.inline, 0);
        let spill = self
            .spill
            .iter()
            .enumerate()
            .flat_map(|(w, &bits)| WordBits::new(bits, (w + 1) * 64));
        inline.chain(spill)
    }

    /// The indices as a sorted `Vec` (test/diagnostic convenience).
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl FromIterator<usize> for ActiveSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut set = ActiveSet::new();
        for i in iter {
            set.insert(i);
        }
        set
    }
}

/// Iterator over the set bits of one word.
struct WordBits {
    bits: u64,
    base: usize,
}

impl WordBits {
    fn new(bits: u64, base: usize) -> Self {
        WordBits { bits, base }
    }
}

impl Iterator for WordBits {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.base + tz)
    }
}

/// One disjoint cell of the decomposition (§4.1): the sub-domain belonging
/// to exactly the `active` predicate constraints and excluded from all
/// others.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The box of the *included* predicates intersected with the base
    /// (query ∩ domain) region. The excluded predicates' negations are not
    /// representable as a box; `witness` proves the full conjunction
    /// non-empty. Shared (`Arc`) because sibling cells of an untightened
    /// DFS branch — and group-by specializations — reuse the same box.
    pub region: Arc<Region>,
    /// Bitset of indices (into the [`crate::PcSet`]) of the predicate
    /// constraints whose predicates this cell satisfies. Never empty: the
    /// all-negated cell carries no constraints and is handled by the
    /// closure check.
    pub active: ActiveSet,
    /// A concrete point inside the cell, when the decomposition proved
    /// satisfiability exactly. `None` for cells admitted by approximate
    /// early stopping (Optimization 4) — possible false positives that
    /// only ever widen bounds.
    pub witness: Option<Vec<f64>>,
    /// Constraints whose include/exclude decision was *never made* for
    /// this cell. Empty for every cell of a completed decomposition. A
    /// budget-tripped decomposition emits its cut-off subtrees as
    /// *frontier cells*: rows matching such a cell satisfy everything in
    /// `active`, nothing the prefix excluded, and **any subset** of
    /// `undecided`. The bounding engine treats membership in an undecided
    /// constraint conservatively (counts toward no `≥ kl`, capped by no
    /// single `≤ ku`), so the bound stays sound and only gets looser —
    /// the same argument as early stopping's unverified admission.
    pub undecided: ActiveSet,
}

impl Cell {
    /// True if constraint `pc` is active in this cell.
    pub fn is_active(&self, pc: usize) -> bool {
        self.active.contains(pc)
    }

    /// True if this is a frontier cell of an interrupted decomposition
    /// (some constraints never got an include/exclude decision).
    pub fn is_frontier(&self) -> bool {
        !self.undecided.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{AttrType, Schema};

    #[test]
    fn activity_lookup() {
        let schema = Schema::new(vec![("x", AttrType::Float)]);
        let cell = Cell {
            region: Arc::new(Region::full(&schema)),
            active: [0usize, 2].into_iter().collect(),
            witness: None,
            undecided: ActiveSet::new(),
        };
        assert!(cell.is_active(0));
        assert!(!cell.is_active(1));
        assert!(cell.is_active(2));
        assert!(!cell.is_frontier());
    }

    #[test]
    fn active_set_small() {
        let mut s = ActiveSet::new();
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![0, 5, 63]);
        assert_eq!(s.first_index(), Some(0));
        assert!(s.contains(63) && !s.contains(62));
    }

    #[test]
    fn active_set_spills_past_64() {
        let mut s = ActiveSet::new();
        s.insert(64);
        s.insert(200);
        s.insert(3);
        assert_eq!(s.to_vec(), vec![3, 64, 200]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(200) && !s.contains(201) && !s.contains(128));
        assert_eq!(s.first_index(), Some(3));
    }

    #[test]
    fn equality_is_set_equality() {
        let a: ActiveSet = [1usize, 2, 3].into_iter().collect();
        let b: ActiveSet = [3usize, 2, 1].into_iter().collect();
        assert_eq!(a, b);
        let c: ActiveSet = [1usize, 2].into_iter().collect();
        assert_ne!(a, c);
    }
}
