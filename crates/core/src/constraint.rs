use pc_predicate::{Interval, Predicate, Region, Schema};
use pc_storage::Table;
use std::fmt;

/// A value constraint ν: per-attribute ranges that every row matching the
/// predicate must satisfy (§3.1). Attributes not listed are unconstrained.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ValueConstraint {
    ranges: Vec<(usize, Interval)>,
}

impl ValueConstraint {
    /// No constraints on any attribute.
    pub fn none() -> Self {
        ValueConstraint::default()
    }

    /// Build from `(attr, interval)` pairs; repeated attributes intersect.
    pub fn new(ranges: Vec<(usize, Interval)>) -> Self {
        ValueConstraint { ranges }
    }

    /// Add a range for one attribute.
    pub fn with(mut self, attr: usize, interval: Interval) -> Self {
        self.ranges.push((attr, interval));
        self
    }

    /// The `(attr, interval)` pairs.
    pub fn ranges(&self) -> &[(usize, Interval)] {
        &self.ranges
    }

    /// The implied interval for `attr` (FULL if unconstrained).
    pub fn interval_for(&self, attr: usize) -> Interval {
        self.ranges
            .iter()
            .filter(|(a, _)| *a == attr)
            .fold(Interval::FULL, |acc, (_, iv)| acc.intersect(iv))
    }

    /// True if the encoded row satisfies every range.
    pub fn check_row(&self, row: &[f64]) -> bool {
        self.ranges.iter().all(|(attr, iv)| iv.contains(row[*attr]))
    }
}

/// A frequency constraint κ = (kl, ku): between `lo` and `hi` missing rows
/// match the predicate (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrequencyConstraint {
    /// Minimum number of matching missing rows.
    pub lo: u64,
    /// Maximum number of matching missing rows.
    pub hi: u64,
}

impl FrequencyConstraint {
    /// `lo ≤ count ≤ hi`.
    ///
    /// # Panics
    /// Panics if `lo > hi` — an unconditionally unsatisfiable constraint
    /// is a construction error, not data.
    pub fn between(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "frequency bounds inverted: [{lo}, {hi}]");
        FrequencyConstraint { lo, hi }
    }

    /// `count ≤ hi` (no forced rows).
    pub fn at_most(hi: u64) -> Self {
        FrequencyConstraint { lo: 0, hi }
    }

    /// `count = n` exactly.
    pub fn exactly(n: u64) -> Self {
        FrequencyConstraint { lo: n, hi: n }
    }
}

/// A predicate constraint π = (ψ, ν, κ) — Definition 3.1.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateConstraint {
    /// The predicate ψ selecting which missing rows the constraint talks
    /// about.
    pub predicate: Predicate,
    /// The value ranges ν those rows must satisfy.
    pub values: ValueConstraint,
    /// The frequency range κ on how many such rows exist.
    pub frequency: FrequencyConstraint,
}

impl PredicateConstraint {
    /// Assemble a constraint.
    pub fn new(
        predicate: Predicate,
        values: ValueConstraint,
        frequency: FrequencyConstraint,
    ) -> Self {
        PredicateConstraint {
            predicate,
            values,
            frequency,
        }
    }

    /// The box of rows this constraint's *predicate and value ranges*
    /// jointly allow: ψ's region intersected with ν's ranges. Any missing
    /// row matching ψ must live in this region.
    pub fn allowed_region(&self, schema: &Schema) -> Region {
        let mut region = self.predicate.to_region(schema);
        for (attr, iv) in self.values.ranges() {
            region.set_interval(*attr, region.interval(*attr).intersect(iv));
        }
        region
    }

    /// Check the constraint against a concrete relation instance
    /// (`R |= π`, Definition 3.1): every matching row satisfies ν, and the
    /// number of matching rows is within κ.
    pub fn check(&self, table: &Table) -> Result<(), ConstraintViolation> {
        let mut matches = 0u64;
        let mut buf = vec![0.0; table.schema().width()];
        for r in 0..table.len() {
            table.encode_row_into(r, &mut buf);
            if self.predicate.eval(&buf) {
                matches += 1;
                if !self.values.check_row(&buf) {
                    return Err(ConstraintViolation::ValueOutOfRange { row: r });
                }
            }
        }
        if matches < self.frequency.lo || matches > self.frequency.hi {
            return Err(ConstraintViolation::FrequencyViolated {
                observed: matches,
                lo: self.frequency.lo,
                hi: self.frequency.hi,
            });
        }
        Ok(())
    }

    /// Human-readable rendering, e.g. the paper's
    /// `c1: (branch = 'Chicago') ⇒ (0 ≤ price ≤ 149.99), (0, 5)`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a PredicateConstraint, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} ⇒ ", self.0.predicate.display(self.1))?;
                if self.0.values.ranges().is_empty() {
                    write!(f, "⊤")?;
                } else {
                    for (i, (attr, iv)) in self.0.values.ranges().iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∧ ")?;
                        }
                        write!(f, "{} ∈ {}", self.1.attr_name(*attr), iv)?;
                    }
                }
                write!(f, ", ({}, {})", self.0.frequency.lo, self.0.frequency.hi)
            }
        }
        D(self, schema)
    }
}

/// Why a constraint failed on a concrete table.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstraintViolation {
    /// A row matched the predicate but fell outside a value range.
    ValueOutOfRange {
        /// Index of the offending row.
        row: usize,
    },
    /// The number of matching rows fell outside the frequency range.
    FrequencyViolated {
        /// How many rows actually matched.
        observed: u64,
        /// Declared minimum.
        lo: u64,
        /// Declared maximum.
        hi: u64,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::ValueOutOfRange { row } => {
                write!(
                    f,
                    "row {row} matches the predicate but violates a value range"
                )
            }
            ConstraintViolation::FrequencyViolated { observed, lo, hi } => {
                write!(f, "{observed} matching rows, outside [{lo}, {hi}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{Atom, AttrType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            ("utc", AttrType::Int),
            ("branch", AttrType::Cat),
            ("price", AttrType::Float),
        ])
    }

    /// The paper's c1: "the most expensive product in Chicago costs 149.99
    /// and no more than 5 are sold".
    fn chicago_pc() -> PredicateConstraint {
        PredicateConstraint::new(
            Predicate::atom(Atom::eq(1, 0.0)),
            ValueConstraint::none().with(2, Interval::closed(0.0, 149.99)),
            FrequencyConstraint::at_most(5),
        )
    }

    fn sales(rows: &[(i64, u32, f64)]) -> Table {
        let mut t = Table::new(schema());
        for &(utc, b, p) in rows {
            t.push_row(vec![Value::Int(utc), Value::Cat(b), Value::Float(p)]);
        }
        t
    }

    #[test]
    fn satisfied_constraint() {
        let t = sales(&[(1, 0, 3.02), (2, 1, 500.0), (3, 0, 149.99)]);
        // two Chicago rows within price range, frequency ≤ 5; the New York
        // row is outside the predicate so its price does not matter
        assert_eq!(chicago_pc().check(&t), Ok(()));
    }

    #[test]
    fn value_violation_detected() {
        let t = sales(&[(1, 0, 200.0)]);
        assert_eq!(
            chicago_pc().check(&t),
            Err(ConstraintViolation::ValueOutOfRange { row: 0 })
        );
    }

    #[test]
    fn frequency_violation_detected() {
        let rows: Vec<(i64, u32, f64)> = (0..6).map(|i| (i, 0, 1.0)).collect();
        let t = sales(&rows);
        assert_eq!(
            chicago_pc().check(&t),
            Err(ConstraintViolation::FrequencyViolated {
                observed: 6,
                lo: 0,
                hi: 5
            })
        );
    }

    #[test]
    fn lower_frequency_bound() {
        let pc = PredicateConstraint::new(
            Predicate::always(),
            ValueConstraint::none(),
            FrequencyConstraint::between(2, 10),
        );
        let t = sales(&[(1, 0, 1.0)]);
        assert!(matches!(
            pc.check(&t),
            Err(ConstraintViolation::FrequencyViolated { observed: 1, .. })
        ));
    }

    #[test]
    fn allowed_region_combines_predicate_and_values() {
        let s = schema();
        let region = chicago_pc().allowed_region(&s);
        assert!(region.contains_row(&[9.0, 0.0, 100.0]));
        assert!(!region.contains_row(&[9.0, 0.0, 200.0])); // price too high
        assert!(!region.contains_row(&[9.0, 1.0, 100.0])); // wrong branch
    }

    #[test]
    fn value_constraint_intersects_repeats() {
        let v = ValueConstraint::none()
            .with(2, Interval::closed(0.0, 100.0))
            .with(2, Interval::closed(50.0, 200.0));
        let iv = v.interval_for(2);
        assert_eq!((iv.lo, iv.hi), (50.0, 100.0));
        assert_eq!(v.interval_for(0), Interval::FULL);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_frequency_panics() {
        FrequencyConstraint::between(5, 2);
    }

    #[test]
    fn display_matches_paper_style() {
        let s = schema();
        let text = chicago_pc().display(&s).to_string();
        assert!(text.contains("branch"), "{text}");
        assert!(text.contains("(0, 5)"), "{text}");
    }
}
