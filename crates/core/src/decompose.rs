//! Cell decomposition (§4.1) with the paper's optimizations, a parallel
//! fork/join driver, and allocation-conscious region handling.
//!
//! For `n` predicate constraints there are up to `2ⁿ` cells — conjunctions
//! choosing, for every constraint, either its predicate or the negation.
//! Only satisfiable cells take part in the MILP. The strategies:
//!
//! * [`Strategy::Naive`] — test all `2ⁿ` conjunctions independently
//!   (the "No Optimization" series of Fig 7).
//! * [`Strategy::Dfs`] — Optimization 2: depth-first search over
//!   include/exclude decisions, pruning whole subtrees whose prefix is
//!   already unsatisfiable (a conjunction can only shrink).
//! * [`Strategy::DfsRewrite`] — Optimization 3 on top: when prefix `X` is
//!   satisfiable and `X ∧ ψ` is not, `X ∧ ¬ψ` is satisfiable *without a
//!   solver call* (`X` splits into exactly those two parts).
//! * [`Strategy::EarlyStop`] — Optimization 4: below depth `K`, stop
//!   verifying and admit every remaining cell as satisfiable.
//!   False-positive cells add allocation variables but no constraints, so
//!   bounds stay correct and only get (possibly) looser.
//!
//! Query-predicate pushdown (Optimization 1) enters through the `base`
//! region: cells are decomposed inside `query ∩ domain`, so constraints
//! not overlapping the query never spawn cells.
//!
//! # Parallelism
//!
//! The DFS strategies accept a [`Parallelism`] policy
//! ([`decompose_with`]). Whenever *both* branches of a node survive and
//! the remaining subtree is worth forking (more than
//! [`PAR_SEQ_CUTOFF`] undecided constraints), they run as independent
//! stealable tasks (`rayon::join` on the work-stealing pool), each
//! accumulating into its own cell vector and [`DecomposeStats`], merged
//! include-first afterwards — so the emitted cell order, the cell
//! signatures and regions, and every counter except
//! [`DecomposeStats::parallel_subtrees`] are *identical* to the
//! sequential run (property-tested in `tests/prop_decompose.rs`). The
//! one representation-level difference: a parallel policy also enables
//! the first-hit-wins parallel witness search inside each SAT check
//! ([`pc_predicate::sat::find_witness_with`]), so a cell's stored
//! *witness* may be a different — equally genuine — point of the same
//! cell than the sequential run's. Earlier
//! versions clamped forking to the top `⌈log₂ threads⌉` levels because
//! the backend spawned an OS thread per fork; with the pool a fork is a
//! deque push, so every split above the sequential cutoff forks and the
//! stealing discipline balances skewed subtrees on its own. The `X ∧ ¬Y`
//! rewrite and prefix pruning are per-branch decisions and survive the
//! split untouched.
//!
//! # Allocation discipline
//!
//! Regions travel the tree as [`Arc<Region>`]: a branch clones the box
//! only when one of its atoms genuinely tightens an interval
//! ([`Region::tightened_by`]); otherwise the child shares the parent's
//! allocation. Cell signatures are [`ActiveSet`] bitsets, not index
//! vectors.
//!
//! # Sharding: factoring over the constraint-interaction graph
//!
//! The `2ⁿ` worst case counts *interacting* constraints. Two constraints
//! whose attribute boxes (predicate region ∩ domain) are geometrically
//! disjoint can never both be active in a satisfiable cell, so the cell
//! set of the whole catalog *factors*: build the **constraint-interaction
//! graph** (vertices = constraints, edges = pairwise box overlap), take
//! its connected components, and decompose each component — a **shard** —
//! independently. Every satisfiable flat cell's active set lies inside
//! exactly one component (active constraints pairwise overlap, so they
//! form a clique), and excluding another shard's predicate is vacuous on
//! the cell's region; hence the flat cell set is precisely the disjoint
//! union of the shard-local cell sets, and a 1000-constraint catalog of
//! 14-constraint components costs the *sum* of its shards, not their
//! product. The shard layer lives in [`crate::shard`]; the engine routes
//! through it automatically ([`crate::BoundOptions::shard`]), and
//! [`DecomposeStats::shards`] / [`DecomposeStats::max_shard_constraints`]
//! report the factoring.

use crate::estimate::SplitOrdering;
use crate::{ActiveSet, Cell, PcSet};
use pc_budget::QueryBudget;
use pc_predicate::sat::SatOutcome;
use pc_predicate::{sat, Predicate, Region};
use std::fmt;
use std::sync::Arc;

/// Constraint-count ceiling for [`Strategy::Naive`]: `2ⁿ` cells past this
/// are pointless to enumerate (and would overflow the mask well before
/// exhausting patience).
pub const NAIVE_LIMIT: usize = 25;

/// Which decomposition algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate all `2ⁿ` cells independently.
    Naive,
    /// DFS with prefix-unsatisfiability pruning (Optimization 2).
    Dfs,
    /// DFS plus the `X ∧ ¬Y` rewrite (Optimization 3). The default.
    DfsRewrite,
    /// [`Strategy::DfsRewrite`] down to `depth`, then admit unverified
    /// cells (Optimization 4).
    EarlyStop {
        /// Depth (number of constraints decided) after which verification
        /// stops.
        depth: usize,
    },
}

/// Why a decomposition could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecomposeError {
    /// [`Strategy::Naive`] was asked to enumerate more than
    /// [`NAIVE_LIMIT`] constraints' worth of cells.
    TooManyConstraints {
        /// Constraints in the set.
        n: usize,
        /// The enforced ceiling.
        limit: usize,
    },
}

impl fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecomposeError::TooManyConstraints { n, limit } => write!(
                f,
                "naive decomposition of {n} constraints would enumerate 2^{n} cells \
                 (limit: {limit}); use a DFS strategy"
            ),
        }
    }
}

impl std::error::Error for DecomposeError {}

/// Counters describing the work a decomposition performed; the
/// "number of evaluated cells" metric of Fig 7 is [`DecomposeStats::sat_checks`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecomposeStats {
    /// Satisfiability-solver invocations.
    pub sat_checks: u64,
    /// Satisfiable cells emitted.
    pub cells: usize,
    /// Subtrees pruned by an unsatisfiable prefix.
    pub pruned_subtrees: u64,
    /// Checks skipped by the rewrite rule.
    pub rewrite_skips: u64,
    /// Cells admitted without verification by early stopping.
    pub assumed_sat: u64,
    /// Subtrees executed as independent parallel tasks (0 in sequential
    /// runs; the only counter that may differ between sequential and
    /// parallel runs of the same decomposition).
    pub parallel_subtrees: u64,
    /// GROUP-BY level-2 splices answered from the cross-key memo (the
    /// whole include/exclude DFS of one cell replayed from a structurally
    /// identical key, zero SAT calls).
    pub splice_memo_hits: u64,
    /// Cells an incremental epoch derivation touched — split by an added
    /// constraint's box, or merged/widened by a retired one (see
    /// [`crate::CellSet`]'s derive paths). Cells outside the churned
    /// box are shared untouched and not counted; a full decomposition
    /// reports 0.
    pub incremental_splits: u64,
    /// Frontier cells emitted because the [`QueryBudget`] tripped before
    /// the subtree below them was explored ([`Cell::undecided`]
    /// non-empty). `0` means the decomposition ran to completion; any
    /// other value marks the cell set as *degraded* — sound, but with
    /// bounds possibly looser than the exact decomposition's.
    pub frontier_cells: u64,
    /// Include/exclude splits decided under an estimate-guided order
    /// ([`crate::estimate`]) instead of declaration order. `0` when
    /// ordering was off (or the search never split).
    pub ordered_splits: u64,
    /// Connected components of the constraint-interaction graph the cell
    /// set was factored over ([`crate::shard::ShardedCellSet`]). `0` on
    /// the flat (unsharded) paths; `1` means the set was sharded but is a
    /// single component.
    pub shards: usize,
    /// The largest shard's constraint count — the quantity that actually
    /// drives the exponential worst case once the set is factored. `0` on
    /// the flat paths.
    pub max_shard_constraints: usize,
}

impl DecomposeStats {
    /// Fold another subtree's counters into this one (`cells` is derived
    /// from the merged cell vector by the caller, not summed here).
    pub fn absorb(&mut self, other: &DecomposeStats) {
        self.sat_checks += other.sat_checks;
        self.pruned_subtrees += other.pruned_subtrees;
        self.rewrite_skips += other.rewrite_skips;
        self.assumed_sat += other.assumed_sat;
        self.parallel_subtrees += other.parallel_subtrees;
        self.splice_memo_hits += other.splice_memo_hits;
        self.incremental_splits += other.incremental_splits;
        self.frontier_cells += other.frontier_cells;
        self.ordered_splits += other.ordered_splits;
        // Shard topology is a property of the whole set, not additive
        // work: folding two views keeps the widest one.
        self.shards = self.shards.max(other.shards);
        self.max_shard_constraints = self.max_shard_constraints.max(other.max_shard_constraints);
    }
}

/// Minimum number of *undecided* constraints below a node for its
/// include/exclude split to fork as pool tasks. Below this the subtree is
/// at most `2^PAR_SEQ_CUTOFF` satisfiability checks — cheaper to finish
/// inline than to make stealable.
pub const PAR_SEQ_CUTOFF: usize = 3;

/// How far to fan the decomposition DFS out across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads to target. `0` = auto-detect
    /// (`rayon::current_num_threads`), `1` = sequential.
    pub threads: usize,
    /// Optional cap on the number of DFS levels (from the root) at which
    /// forking is allowed. `None` (the default) forks at *every* split
    /// with more than [`PAR_SEQ_CUTOFF`] undecided constraints — the
    /// work-stealing pool makes forks cheap enough that a depth clamp is
    /// pure tuning, kept for A/B experiments.
    pub depth: Option<usize>,
}

impl Parallelism {
    /// Strictly sequential execution.
    pub const SEQUENTIAL: Parallelism = Parallelism {
        threads: 1,
        depth: None,
    };

    /// Auto-detected thread count, unlimited fork depth.
    pub const AUTO: Parallelism = Parallelism {
        threads: 0,
        depth: None,
    };

    /// The thread count after auto-detection.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        }
    }

    /// Levels of the DFS (counted from the root) at which both-branch
    /// nodes may fork. `threads: 1` always means sequential — an explicit
    /// `depth` cannot re-enable forking on a sequential policy. With
    /// `depth: None` every level may fork; the per-node
    /// [`PAR_SEQ_CUTOFF`] on remaining constraints is what keeps leaves
    /// inline.
    pub fn fork_levels(&self, n_constraints: usize) -> usize {
        if self.resolved_threads() <= 1 {
            return 0;
        }
        self.depth.unwrap_or(n_constraints).min(n_constraints)
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::SEQUENTIAL
    }
}

/// Decompose the constraint set inside `base` (= query region ∩ domain),
/// sequentially. See [`decompose_with`] for the parallel driver.
///
/// Cells whose active set is empty are not emitted; whether missing rows
/// may exist outside every predicate is the closure question, answered by
/// [`PcSet::is_closed_within`].
pub fn decompose(
    set: &PcSet,
    base: &Region,
    strategy: Strategy,
) -> Result<(Vec<Cell>, DecomposeStats), DecomposeError> {
    decompose_with(set, base, strategy, Parallelism::SEQUENTIAL)
}

/// Decompose with an explicit [`Parallelism`] policy.
///
/// The emitted cell signatures, regions, and order are identical to the
/// sequential run; only [`DecomposeStats::parallel_subtrees`] (and
/// possibly the identity of stored witnesses — see the module docs)
/// depends on the policy.
/// [`Strategy::Naive`] ignores the policy — it exists as the unoptimized
/// baseline and parallelizing it would only flatter it.
pub fn decompose_with(
    set: &PcSet,
    base: &Region,
    strategy: Strategy,
    par: Parallelism,
) -> Result<(Vec<Cell>, DecomposeStats), DecomposeError> {
    decompose_budgeted(set, base, strategy, par, &QueryBudget::unlimited())
}

/// Decompose under a [`QueryBudget`]: the cooperative-cancellation entry
/// point. The budget is checked at every DFS node (so a deadline or
/// cancel returns within one include/exclude split) and each
/// satisfiability probe charges one unit against the SAT-check cap.
///
/// When the budget trips the search does **not** discard partial work or
/// return an error: every subtree it never descended into is emitted as a
/// single *frontier cell* — region and `active` from the node's prefix,
/// [`Cell::undecided`] listing the constraints `[idx..n)` that were never
/// split on. The result is a sound over-approximation of the exact cell
/// set (rows of a frontier cell may belong to any subset of its undecided
/// constraints; the bounding engine accounts for that conservatively), so
/// budget-tripped bounds still contain the exact answer — they are just
/// looser. [`DecomposeStats::frontier_cells`] > 0 flags the degradation.
pub fn decompose_budgeted(
    set: &PcSet,
    base: &Region,
    strategy: Strategy,
    par: Parallelism,
    budget: &QueryBudget,
) -> Result<(Vec<Cell>, DecomposeStats), DecomposeError> {
    decompose_ordered_budgeted(set, base, strategy, par, budget, None)
}

/// [`decompose_budgeted`] with an optional estimate-guided decision order
/// ([`crate::estimate::SplitOrdering`]): the DFS decides constraint
/// `ordering.constraint_at(depth)` at depth `depth` instead of constraint
/// `depth` — most-selective-first, so unsatisfiable branches die near the
/// root and frontier cells left by a budget trip are the least-determined
/// ones. Cell signatures still use catalog indices, so the emitted cell
/// *set* (signatures, regions, satisfiability) is identical to the
/// declaration-order run — only the DFS visit order, the per-cell witness
/// identity, and the work counters change (see [`crate::estimate`] for
/// the argument). Split survival is staged on `ordering` for the caller
/// to publish after an untripped run. [`Strategy::Naive`] ignores the
/// order (mask enumeration has no prefix structure to help).
pub fn decompose_ordered_budgeted(
    set: &PcSet,
    base: &Region,
    strategy: Strategy,
    par: Parallelism,
    budget: &QueryBudget,
    ordering: Option<&SplitOrdering>,
) -> Result<(Vec<Cell>, DecomposeStats), DecomposeError> {
    let mut stats = DecomposeStats::default();
    let mut cells = Vec::new();
    let n = set.len();
    debug_assert!(
        ordering.is_none_or(|o| o.order().len() == n),
        "ordering must cover the whole set"
    );
    if base.is_empty() {
        return Ok((cells, stats));
    }
    match strategy {
        Strategy::Naive => {
            if n > NAIVE_LIMIT {
                return Err(DecomposeError::TooManyConstraints {
                    n,
                    limit: NAIVE_LIMIT,
                });
            }
            for mask in 0u64..(1 << n) {
                if !budget.proceed() {
                    // Naive has no prefix structure to cut at: cover every
                    // unenumerated mask with one all-undecided frontier
                    // cell over the whole base. Overlap with the cells
                    // already emitted only loosens the bound.
                    push_frontier(
                        Arc::new(base.clone()),
                        ActiveSet::new(),
                        (0..n).collect(),
                        &mut cells,
                        &mut stats,
                    );
                    break;
                }
                let mut region = base.clone();
                let mut active = ActiveSet::new();
                let mut negs: Vec<&Predicate> = Vec::new();
                for (i, pc) in set.constraints().iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        active.insert(i);
                        for atom in pc.predicate.atoms() {
                            region.intersect_atom(atom);
                        }
                    } else {
                        negs.push(&pc.predicate);
                    }
                }
                match sat::find_witness_budgeted(&region, &negs, false, budget) {
                    SatOutcome::Sat(witness) => {
                        stats.sat_checks += 1;
                        if !active.is_empty() {
                            cells.push(Cell {
                                region: Arc::new(region),
                                active,
                                witness: Some(witness),
                                undecided: ActiveSet::new(),
                            });
                        }
                    }
                    SatOutcome::Unsat => stats.sat_checks += 1,
                    SatOutcome::Tripped => {
                        push_frontier(
                            Arc::new(base.clone()),
                            ActiveSet::new(),
                            (0..n).collect(),
                            &mut cells,
                            &mut stats,
                        );
                        break;
                    }
                }
            }
        }
        Strategy::Dfs | Strategy::DfsRewrite | Strategy::EarlyStop { .. } => {
            let (rewrite, stop_depth) = match strategy {
                Strategy::Dfs => (false, usize::MAX),
                Strategy::DfsRewrite => (true, usize::MAX),
                Strategy::EarlyStop { depth } => (true, depth),
                Strategy::Naive => unreachable!(),
            };
            let fork_levels = par.fork_levels(n);
            dfs(
                &Frame {
                    set,
                    rewrite,
                    stop_depth,
                    fork_levels,
                    // A parallel policy also lets each node's SAT check
                    // fan its branch disjuncts out as stealable tasks
                    // (sat::find_witness_with) — the checks stay inline
                    // below the solver's own width cutoff.
                    par_witness: fork_levels > 0,
                    budget,
                    ordering,
                },
                Arc::new(base.clone()),
                Vec::new(),
                ActiveSet::new(),
                0,
                &mut cells,
                &mut stats,
            );
        }
    }
    stats.cells = cells.len();
    Ok((cells, stats))
}

/// Emit the frontier cell covering the unexplored subtree rooted at a
/// node: `undecided` lists every constraint the prefix never split on
/// (under an estimate-guided order, the *remaining order entries* — not a
/// contiguous index range).
fn push_frontier(
    region: Arc<Region>,
    active: ActiveSet,
    undecided: ActiveSet,
    cells: &mut Vec<Cell>,
    stats: &mut DecomposeStats,
) {
    debug_assert!(!undecided.is_empty(), "a frontier must have open splits");
    // Unlike ordinary cells, an active-empty frontier cell IS emitted: its
    // rows may satisfy any subset of the undecided constraints, so it is
    // not the all-negated region the closure check accounts for.
    cells.push(Cell {
        region,
        active,
        witness: None,
        undecided,
    });
    stats.frontier_cells += 1;
}

/// Invariant parameters of one decomposition, threaded through the DFS by
/// reference instead of as six separate arguments.
struct Frame<'a> {
    set: &'a PcSet,
    rewrite: bool,
    stop_depth: usize,
    /// DFS levels (from the root) at which both-branch nodes may fork; 0
    /// means sequential.
    fork_levels: usize,
    /// Whether SAT checks may use the parallel witness search.
    par_witness: bool,
    /// Cooperative budget, checked once per DFS node and charged once per
    /// satisfiability probe. [`QueryBudget::unlimited`] in the classic
    /// entry points.
    budget: &'a QueryBudget,
    /// Estimate-guided decision order: depth `d` decides constraint
    /// `ordering.constraint_at(d)` instead of constraint `d`. `None` =
    /// declaration order. Also the staging area for survival updates.
    ordering: Option<&'a SplitOrdering>,
}

impl Frame<'_> {
    /// Fork the split at `idx`? Only within the allowed levels, and only
    /// when the subtree still holds enough undecided constraints to
    /// amortize a stealable task.
    fn should_fork(&self, idx: usize) -> bool {
        idx < self.fork_levels && self.set.len() - idx > PAR_SEQ_CUTOFF
    }

    /// The catalog index of the constraint decided at DFS depth `idx`.
    fn constraint_at(&self, idx: usize) -> usize {
        self.ordering.map_or(idx, |o| o.constraint_at(idx))
    }

    /// The undecided set of a frontier cut at depth `idx`: every
    /// constraint the prefix has not yet split on, in whatever order the
    /// run decides them.
    fn frontier_undecided(&self, idx: usize) -> ActiveSet {
        match self.ordering {
            Some(o) => o.order()[idx..].iter().copied().collect(),
            None => (idx..self.set.len()).collect(),
        }
    }

    /// Budget-aware satisfiability probe: `Some(sat?)` when the check ran,
    /// `None` when the budget tripped (before or during the search — a
    /// tripped probe must never be read as "unsatisfiable").
    fn probe(&self, region: &Region, negs: &[&Predicate]) -> Option<bool> {
        match sat::find_witness_budgeted(region, negs, self.par_witness, self.budget) {
            SatOutcome::Sat(_) => Some(true),
            SatOutcome::Unsat => Some(false),
            SatOutcome::Tripped => None,
        }
    }
}

/// DFS over include/exclude decisions for constraint `idx`, with the
/// invariant that the current prefix (region ∧ ¬excluded) is satisfiable
/// (or assumed so past `stop_depth`). A node whose branches *both*
/// survive forks them as stealable pool tasks whenever
/// [`Frame::should_fork`] allows.
#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    frame: &Frame<'a>,
    region: Arc<Region>,
    excluded: Vec<&'a Predicate>,
    active: ActiveSet,
    idx: usize,
    cells: &mut Vec<Cell>,
    stats: &mut DecomposeStats,
) {
    let set = frame.set;
    if idx == set.len() {
        if !active.is_empty() {
            let witness = if frame.stop_depth == usize::MAX {
                // exact mode: prefix satisfiability was verified; reproduce
                // the witness for downstream consumers (cheap relative to
                // the checks already done)
                match sat::find_witness_budgeted(
                    &region,
                    &excluded,
                    frame.par_witness,
                    frame.budget,
                ) {
                    SatOutcome::Sat(w) => Some(w),
                    // Unsat cannot happen (the prefix was verified);
                    // a trip here only loses the stored witness — the
                    // cell itself is fully decided.
                    SatOutcome::Unsat | SatOutcome::Tripped => None,
                }
            } else {
                None
            };
            cells.push(Cell {
                region,
                active,
                witness,
                undecided: ActiveSet::new(),
            });
        }
        return;
    }
    // One budget check per node: a trip cuts the whole subtree below this
    // split and records it as a single frontier cell.
    if !frame.budget.proceed() {
        push_frontier(region, active, frame.frontier_undecided(idx), cells, stats);
        return;
    }
    // Under an estimate-guided order, depth `idx` decides the idx-th most
    // selective constraint; signatures always use the catalog index.
    let ci = frame.constraint_at(idx);
    let pc = &set.constraints()[ci];

    // Include branch box: clone-on-tighten — most constraints repeat
    // intervals the prefix already fixed, and those branches share the
    // parent's allocation.
    let inc_region = match region.tightened_by(pc.predicate.atoms()) {
        Some(tightened) => Arc::new(tightened),
        None => Arc::clone(&region),
    };

    let (include_sat, exclude_sat);
    if idx >= frame.stop_depth {
        // Past the early-stop depth: admit both branches unverified.
        stats.assumed_sat += 2;
        include_sat = true;
        exclude_sat = true;
    } else {
        // Include: X ∧ ψ.
        include_sat = match frame.probe(&inc_region, &excluded) {
            Some(s) => {
                stats.sat_checks += 1;
                s
            }
            None => {
                push_frontier(region, active, frame.frontier_undecided(idx), cells, stats);
                return;
            }
        };
        // Exclude: X ∧ ¬ψ.
        exclude_sat = if frame.rewrite && !include_sat {
            // Rewrite rule: X is satisfiable (DFS invariant) and X ∧ ψ is
            // not, so every point of X avoids ψ — X ∧ ¬ψ is satisfiable
            // for free.
            stats.rewrite_skips += 1;
            true
        } else {
            let mut probe_negs = excluded.clone();
            probe_negs.push(&pc.predicate);
            match frame.probe(&region, &probe_negs) {
                Some(s) => {
                    stats.sat_checks += 1;
                    s
                }
                None => {
                    push_frontier(region, active, frame.frontier_undecided(idx), cells, stats);
                    return;
                }
            }
        };
        if !include_sat {
            stats.pruned_subtrees += 1;
        }
        if !exclude_sat {
            stats.pruned_subtrees += 1;
        }
        // Stage the split's survival for the estimate layer (published by
        // the caller only if the whole run finishes untripped).
        if let Some(ordering) = frame.ordering {
            ordering.record_split(ci, include_sat as u64 + exclude_sat as u64);
            stats.ordered_splits += 1;
        }
    }

    match (include_sat, exclude_sat) {
        (true, true) if frame.should_fork(idx) => {
            // Fork: each subtree gets its own accumulator; merge
            // include-first so the output order matches sequential.
            let mut inc_active = active.clone();
            inc_active.insert(ci);
            let inc_excluded = excluded.clone();
            let mut exc = excluded;
            exc.push(&pc.predicate);
            let (mut inc_out, mut exc_out) = (
                (Vec::new(), DecomposeStats::default()),
                (Vec::new(), DecomposeStats::default()),
            );
            rayon::join(
                || {
                    dfs(
                        frame,
                        inc_region,
                        inc_excluded,
                        inc_active,
                        idx + 1,
                        &mut inc_out.0,
                        &mut inc_out.1,
                    )
                },
                || {
                    dfs(
                        frame,
                        region,
                        exc,
                        active,
                        idx + 1,
                        &mut exc_out.0,
                        &mut exc_out.1,
                    )
                },
            );
            stats.parallel_subtrees += 2;
            stats.absorb(&inc_out.1);
            stats.absorb(&exc_out.1);
            cells.append(&mut inc_out.0);
            cells.append(&mut exc_out.0);
        }
        (true, true) => {
            let mut inc_active = active.clone();
            inc_active.insert(ci);
            dfs(
                frame,
                inc_region,
                excluded.clone(),
                inc_active,
                idx + 1,
                cells,
                stats,
            );
            let mut exc = excluded;
            exc.push(&pc.predicate);
            dfs(frame, region, exc, active, idx + 1, cells, stats);
        }
        (true, false) => {
            let mut inc_active = active;
            inc_active.insert(ci);
            dfs(
                frame,
                inc_region,
                excluded,
                inc_active,
                idx + 1,
                cells,
                stats,
            );
        }
        (false, true) => {
            let mut exc = excluded;
            exc.push(&pc.predicate);
            dfs(frame, region, exc, active, idx + 1, cells, stats);
        }
        (false, false) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyConstraint, PredicateConstraint, ValueConstraint};
    use pc_predicate::{Atom, AttrType, Schema};

    fn schema() -> Schema {
        Schema::new(vec![("utc", AttrType::Int), ("price", AttrType::Float)])
    }

    fn pc_on_utc(lo: f64, hi: f64) -> PredicateConstraint {
        PredicateConstraint::new(
            pc_predicate::Predicate::atom(Atom::bucket(0, lo, hi)),
            ValueConstraint::none(),
            FrequencyConstraint::at_most(100),
        )
    }

    fn paper_444_set() -> PcSet {
        // §4.4 overlapping example: t1 = [11, 12), t2 = [11, 13)
        PcSet::new(schema())
            .with(pc_on_utc(11.0, 12.0))
            .with(pc_on_utc(11.0, 13.0))
    }

    fn cell_signatures(cells: &[Cell]) -> Vec<Vec<usize>> {
        let mut sigs: Vec<Vec<usize>> = cells.iter().map(|c| c.active.to_vec()).collect();
        sigs.sort();
        sigs
    }

    #[test]
    fn paper_example_two_satisfiable_cells() {
        let set = paper_444_set();
        let base = Region::full(set.schema());
        for strategy in [Strategy::Naive, Strategy::Dfs, Strategy::DfsRewrite] {
            let (cells, _) = decompose(&set, &base, strategy).unwrap();
            // c1 = t1∧t2 and c2 = ¬t1∧t2; c3 = t1∧¬t2 is unsatisfiable
            assert_eq!(
                cell_signatures(&cells),
                vec![vec![0, 1], vec![1]],
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn strategies_agree_on_random_overlaps() {
        let set = PcSet::new(schema())
            .with(pc_on_utc(0.0, 10.0))
            .with(pc_on_utc(5.0, 15.0))
            .with(pc_on_utc(8.0, 20.0))
            .with(pc_on_utc(0.0, 20.0));
        let base = Region::full(set.schema());
        let (naive, naive_stats) = decompose(&set, &base, Strategy::Naive).unwrap();
        let (dfs, dfs_stats) = decompose(&set, &base, Strategy::Dfs).unwrap();
        let (rw, rw_stats) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        assert_eq!(cell_signatures(&naive), cell_signatures(&dfs));
        assert_eq!(cell_signatures(&naive), cell_signatures(&rw));
        // the rewrite can only remove checks relative to plain DFS; naive
        // always evaluates exactly 2^n cells (DFS wins at scale when whole
        // subtrees prune — see the Fig 7 experiment — but on 4 dense
        // constraints its 2·(2ⁿ−1) node checks can exceed 2ⁿ)
        assert!(dfs_stats.sat_checks >= rw_stats.sat_checks);
        assert_eq!(naive_stats.sat_checks, 16);
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let set = PcSet::new(schema())
            .with(pc_on_utc(0.0, 10.0))
            .with(pc_on_utc(5.0, 15.0))
            .with(pc_on_utc(8.0, 20.0))
            .with(pc_on_utc(0.0, 20.0))
            .with(pc_on_utc(12.0, 30.0));
        let base = Region::full(set.schema());
        let (seq, seq_stats) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        for threads in [2usize, 4, 8] {
            let par = Parallelism {
                threads,
                depth: None,
            };
            let (pcells, pstats) = decompose_with(&set, &base, Strategy::DfsRewrite, par).unwrap();
            // same cells in the same order, not just as a set
            assert_eq!(
                seq.iter().map(|c| c.active.to_vec()).collect::<Vec<_>>(),
                pcells.iter().map(|c| c.active.to_vec()).collect::<Vec<_>>(),
                "threads = {threads}"
            );
            assert_eq!(seq_stats.sat_checks, pstats.sat_checks);
            assert_eq!(seq_stats.rewrite_skips, pstats.rewrite_skips);
            assert_eq!(seq_stats.pruned_subtrees, pstats.pruned_subtrees);
            assert_eq!(seq_stats.cells, pstats.cells);
            assert!(pstats.parallel_subtrees > 0, "fan-out must engage");
        }
    }

    #[test]
    fn fork_levels_derivation() {
        // sequential policies never fork, even with an explicit depth
        assert_eq!(Parallelism::SEQUENTIAL.fork_levels(20), 0);
        let sequential_with_depth = Parallelism {
            threads: 1,
            depth: Some(3),
        };
        assert_eq!(sequential_with_depth.fork_levels(20), 0);
        // parallel policies fork at every level by default …
        let p = |threads| Parallelism {
            threads,
            depth: None,
        };
        assert_eq!(p(2).fork_levels(20), 20);
        assert_eq!(p(8).fork_levels(20), 20);
        // … unless an explicit cap says otherwise (clamped to the tree)
        let capped = Parallelism {
            threads: 8,
            depth: Some(5),
        };
        assert_eq!(capped.fork_levels(20), 5);
        assert_eq!(capped.fork_levels(3), 3);
    }

    #[test]
    fn sequential_cutoff_keeps_small_trees_inline() {
        // a subtree of ≤ PAR_SEQ_CUTOFF undecided constraints never forks
        let frame = |n: usize| Frame {
            set: Box::leak(Box::new({
                let mut s = PcSet::new(schema());
                for i in 0..n {
                    s.push(pc_on_utc(i as f64, i as f64 + 2.0));
                }
                s
            })),
            rewrite: true,
            stop_depth: usize::MAX,
            fork_levels: n,
            par_witness: false,
            budget: Box::leak(Box::new(QueryBudget::unlimited())),
            ordering: None,
        };
        let f = frame(PAR_SEQ_CUTOFF);
        assert!(!f.should_fork(0), "tiny tree stays sequential");
        let f = frame(PAR_SEQ_CUTOFF + 1);
        assert!(f.should_fork(0), "root of a big tree forks");
        assert!(!f.should_fork(1), "but its bottom levels do not");
    }

    #[test]
    fn naive_overflow_is_an_error_not_a_panic() {
        let mut set = PcSet::new(schema());
        for i in 0..(NAIVE_LIMIT + 1) {
            set.push(pc_on_utc(i as f64, i as f64 + 2.0));
        }
        let base = Region::full(set.schema());
        let err = decompose(&set, &base, Strategy::Naive).unwrap_err();
        assert_eq!(
            err,
            DecomposeError::TooManyConstraints {
                n: NAIVE_LIMIT + 1,
                limit: NAIVE_LIMIT
            }
        );
        assert!(err.to_string().contains("naive decomposition"));
        // the DFS strategies handle the same set fine
        assert!(decompose(&set, &base, Strategy::DfsRewrite).is_ok());
    }

    #[test]
    fn witnesses_are_genuine() {
        let set = paper_444_set();
        let base = Region::full(set.schema());
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        for cell in &cells {
            let w = cell
                .witness
                .as_ref()
                .expect("exact mode provides witnesses");
            assert!(cell.region.contains_row(w));
            for (i, pc) in set.constraints().iter().enumerate() {
                assert_eq!(
                    pc.predicate.eval(w),
                    cell.is_active(i),
                    "witness membership must match activity"
                );
            }
        }
    }

    #[test]
    fn pushdown_excludes_non_overlapping() {
        let set = paper_444_set();
        // query touches only utc ∈ [12, 13): t1 cannot be active
        let mut base = Region::full(set.schema());
        base.intersect_atom(&Atom::bucket(0, 12.0, 13.0));
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        assert_eq!(cell_signatures(&cells), vec![vec![1]]);
    }

    #[test]
    fn early_stop_superset_of_exact() {
        let set = PcSet::new(schema())
            .with(pc_on_utc(0.0, 10.0))
            .with(pc_on_utc(20.0, 30.0)) // disjoint from the first
            .with(pc_on_utc(5.0, 25.0));
        let base = Region::full(set.schema());
        let (exact, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        let (approx, stats) = decompose(&set, &base, Strategy::EarlyStop { depth: 1 }).unwrap();
        let exact_sigs = cell_signatures(&exact);
        let approx_sigs = cell_signatures(&approx);
        for sig in &exact_sigs {
            assert!(
                approx_sigs.contains(sig),
                "early stop must not lose satisfiable cells"
            );
        }
        assert!(approx_sigs.len() >= exact_sigs.len());
        assert!(stats.assumed_sat > 0);
    }

    #[test]
    fn empty_base_no_cells() {
        let set = paper_444_set();
        let mut base = Region::full(set.schema());
        base.intersect_atom(&Atom::bucket(0, 100.0, 100.0));
        let (cells, stats) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        assert!(cells.is_empty());
        assert_eq!(stats.sat_checks, 0);
    }

    #[test]
    fn no_constraints_no_cells() {
        let set = PcSet::new(schema());
        let base = Region::full(set.schema());
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        assert!(cells.is_empty());
    }

    /// Every exact cell must be *covered* by some budgeted cell: the
    /// witness lies in the budgeted cell's region, every budgeted-active
    /// constraint holds at it, and any disagreement is confined to the
    /// budgeted cell's undecided set.
    fn assert_covers_exact(set: &PcSet, exact: &[Cell], budgeted: &[Cell]) {
        for e in exact {
            let w = e.witness.as_ref().expect("exact mode carries witnesses");
            let covered = budgeted.iter().any(|b| {
                b.region.contains_row(w)
                    && set.constraints().iter().enumerate().all(|(j, pc)| {
                        let holds = pc.predicate.eval(w);
                        if b.active.contains(j) {
                            holds
                        } else {
                            b.undecided.contains(j) || !holds
                        }
                    })
            });
            assert!(
                covered,
                "exact cell {:?} lost by the budgeted run",
                e.active
            );
        }
    }

    #[test]
    fn unlimited_budget_is_the_plain_decomposition() {
        let set = paper_444_set();
        let base = Region::full(set.schema());
        for strategy in [Strategy::Naive, Strategy::DfsRewrite] {
            let (plain, plain_stats) = decompose(&set, &base, strategy).unwrap();
            let (budgeted, stats) = decompose_budgeted(
                &set,
                &base,
                strategy,
                Parallelism::SEQUENTIAL,
                &QueryBudget::unlimited(),
            )
            .unwrap();
            assert_eq!(cell_signatures(&plain), cell_signatures(&budgeted));
            assert_eq!(plain_stats.sat_checks, stats.sat_checks);
            assert_eq!(stats.frontier_cells, 0);
            assert!(budgeted.iter().all(|c| !c.is_frontier()));
        }
    }

    #[test]
    fn sat_cap_trip_degrades_to_a_sound_frontier() {
        let set = PcSet::new(schema())
            .with(pc_on_utc(0.0, 10.0))
            .with(pc_on_utc(5.0, 15.0))
            .with(pc_on_utc(8.0, 20.0))
            .with(pc_on_utc(0.0, 20.0));
        let base = Region::full(set.schema());
        let (exact, exact_stats) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        // trip at every cap below the exact run's check count: the result
        // must always remain a sound over-approximation
        let mut tripped_at_least_once = false;
        for cap in 0..exact_stats.sat_checks {
            let budget = QueryBudget::armed().with_sat_cap(cap);
            let (cells, stats) = decompose_budgeted(
                &set,
                &base,
                Strategy::DfsRewrite,
                Parallelism::SEQUENTIAL,
                &budget,
            )
            .unwrap();
            if stats.frontier_cells > 0 {
                tripped_at_least_once = true;
                assert!(budget.is_tripped());
                assert!(cells.iter().any(|c| c.is_frontier()));
            }
            assert_covers_exact(&set, &exact, &cells);
        }
        assert!(tripped_at_least_once, "caps below exhaustive must trip");
    }

    #[test]
    fn cancel_cuts_the_search_to_one_frontier_cell() {
        let set = PcSet::new(schema())
            .with(pc_on_utc(0.0, 10.0))
            .with(pc_on_utc(5.0, 15.0))
            .with(pc_on_utc(8.0, 20.0));
        let base = Region::full(set.schema());
        let budget = QueryBudget::armed();
        budget.cancel_token().expect("armed budget").cancel();
        let (cells, stats) = decompose_budgeted(
            &set,
            &base,
            Strategy::DfsRewrite,
            Parallelism::SEQUENTIAL,
            &budget,
        )
        .unwrap();
        // cancelled before the first split: everything is one frontier
        assert_eq!(stats.frontier_cells, 1);
        assert_eq!(stats.sat_checks, 0);
        assert_eq!(cells.len(), 1);
        assert!(cells[0].active.is_empty());
        assert_eq!(cells[0].undecided.to_vec(), vec![0, 1, 2]);
        let (exact, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        assert_covers_exact(&set, &exact, &cells);
    }

    #[test]
    fn naive_trip_covers_unenumerated_masks() {
        let set = paper_444_set();
        let base = Region::full(set.schema());
        let (exact, _) = decompose(&set, &base, Strategy::Naive).unwrap();
        for cap in 0..4 {
            let budget = QueryBudget::armed().with_sat_cap(cap);
            let (cells, stats) = decompose_budgeted(
                &set,
                &base,
                Strategy::Naive,
                Parallelism::SEQUENTIAL,
                &budget,
            )
            .unwrap();
            assert_eq!(stats.frontier_cells, 1, "cap {cap}");
            assert_covers_exact(&set, &exact, &cells);
        }
    }

    #[test]
    fn parallel_budgeted_run_stays_sound() {
        let set = PcSet::new(schema())
            .with(pc_on_utc(0.0, 10.0))
            .with(pc_on_utc(5.0, 15.0))
            .with(pc_on_utc(8.0, 20.0))
            .with(pc_on_utc(0.0, 20.0))
            .with(pc_on_utc(12.0, 30.0));
        let base = Region::full(set.schema());
        let (exact, _) = decompose(&set, &base, Strategy::DfsRewrite).unwrap();
        let par = Parallelism {
            threads: 4,
            depth: None,
        };
        for cap in [0u64, 2, 5, 9] {
            let budget = QueryBudget::armed().with_sat_cap(cap);
            let (cells, _) =
                decompose_budgeted(&set, &base, Strategy::DfsRewrite, par, &budget).unwrap();
            assert_covers_exact(&set, &exact, &cells);
        }
    }
}
