//! Cell decomposition (§4.1) with the paper's optimizations.
//!
//! For `n` predicate constraints there are up to `2ⁿ` cells — conjunctions
//! choosing, for every constraint, either its predicate or the negation.
//! Only satisfiable cells take part in the MILP. The strategies:
//!
//! * [`Strategy::Naive`] — test all `2ⁿ` conjunctions independently
//!   (the "No Optimization" series of Fig 7).
//! * [`Strategy::Dfs`] — Optimization 2: depth-first search over
//!   include/exclude decisions, pruning whole subtrees whose prefix is
//!   already unsatisfiable (a conjunction can only shrink).
//! * [`Strategy::DfsRewrite`] — Optimization 3 on top: when prefix `X` is
//!   satisfiable and `X ∧ ψ` is not, `X ∧ ¬ψ` is satisfiable *without a
//!   solver call* (`X` splits into exactly those two parts).
//! * [`Strategy::EarlyStop`] — Optimization 4: below depth `K`, stop
//!   verifying and admit every remaining cell as satisfiable.
//!   False-positive cells add allocation variables but no constraints, so
//!   bounds stay correct and only get (possibly) looser.
//!
//! Query-predicate pushdown (Optimization 1) enters through the `base`
//! region: cells are decomposed inside `query ∩ domain`, so constraints
//! not overlapping the query never spawn cells.

use crate::{Cell, PcSet};
use pc_predicate::{sat, Predicate, Region};

/// Which decomposition algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Evaluate all `2ⁿ` cells independently.
    Naive,
    /// DFS with prefix-unsatisfiability pruning (Optimization 2).
    Dfs,
    /// DFS plus the `X ∧ ¬Y` rewrite (Optimization 3). The default.
    DfsRewrite,
    /// [`Strategy::DfsRewrite`] down to `depth`, then admit unverified
    /// cells (Optimization 4).
    EarlyStop {
        /// Depth (number of constraints decided) after which verification
        /// stops.
        depth: usize,
    },
}

/// Counters describing the work a decomposition performed; the
/// "number of evaluated cells" metric of Fig 7 is [`DecomposeStats::sat_checks`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecomposeStats {
    /// Satisfiability-solver invocations.
    pub sat_checks: u64,
    /// Satisfiable cells emitted.
    pub cells: usize,
    /// Subtrees pruned by an unsatisfiable prefix.
    pub pruned_subtrees: u64,
    /// Checks skipped by the rewrite rule.
    pub rewrite_skips: u64,
    /// Cells admitted without verification by early stopping.
    pub assumed_sat: u64,
}

/// Decompose the constraint set inside `base` (= query region ∩ domain).
///
/// Cells whose active set is empty are not emitted; whether missing rows
/// may exist outside every predicate is the closure question, answered by
/// [`PcSet::is_closed_within`].
pub fn decompose(set: &PcSet, base: &Region, strategy: Strategy) -> (Vec<Cell>, DecomposeStats) {
    let mut stats = DecomposeStats::default();
    let mut cells = Vec::new();
    let n = set.len();
    if base.is_empty() {
        return (cells, stats);
    }
    match strategy {
        Strategy::Naive => {
            assert!(
                n <= 25,
                "naive decomposition of {n} constraints would enumerate 2^{n} cells"
            );
            for mask in 0u64..(1 << n) {
                let mut region = base.clone();
                let mut active = Vec::new();
                let mut negs: Vec<&Predicate> = Vec::new();
                for (i, pc) in set.constraints().iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        active.push(i);
                        for atom in pc.predicate.atoms() {
                            region.intersect_atom(atom);
                        }
                    } else {
                        negs.push(&pc.predicate);
                    }
                }
                stats.sat_checks += 1;
                if let Some(witness) = sat::find_witness(&region, &negs) {
                    if !active.is_empty() {
                        cells.push(Cell {
                            region,
                            active,
                            witness: Some(witness),
                        });
                    }
                }
            }
        }
        Strategy::Dfs => {
            dfs(
                set,
                base.clone(),
                Vec::new(),
                Vec::new(),
                0,
                false,
                usize::MAX,
                &mut cells,
                &mut stats,
            );
        }
        Strategy::DfsRewrite => {
            dfs(
                set,
                base.clone(),
                Vec::new(),
                Vec::new(),
                0,
                true,
                usize::MAX,
                &mut cells,
                &mut stats,
            );
        }
        Strategy::EarlyStop { depth } => {
            dfs(
                set,
                base.clone(),
                Vec::new(),
                Vec::new(),
                0,
                true,
                depth,
                &mut cells,
                &mut stats,
            );
        }
    }
    stats.cells = cells.len();
    (cells, stats)
}

/// DFS over include/exclude decisions for constraint `idx`, with the
/// invariant that the current prefix (region ∧ ¬excluded) is satisfiable
/// (or assumed so past `stop_depth`).
#[allow(clippy::too_many_arguments)]
fn dfs<'a>(
    set: &'a PcSet,
    region: Region,
    excluded: Vec<&'a Predicate>,
    active: Vec<usize>,
    idx: usize,
    rewrite: bool,
    stop_depth: usize,
    cells: &mut Vec<Cell>,
    stats: &mut DecomposeStats,
) {
    if idx == set.len() {
        if !active.is_empty() {
            let witness = if stop_depth == usize::MAX {
                // exact mode: prefix satisfiability was verified; reproduce
                // the witness for downstream consumers (cheap relative to
                // the checks already done)
                sat::find_witness(&region, &excluded)
            } else {
                None
            };
            cells.push(Cell {
                region,
                active,
                witness,
            });
        }
        return;
    }
    let pc = &set.constraints()[idx];

    // Past the early-stop depth: admit both branches without verification.
    if idx >= stop_depth {
        stats.assumed_sat += 2;
        let mut inc_region = region.clone();
        for atom in pc.predicate.atoms() {
            inc_region.intersect_atom(atom);
        }
        let mut inc_active = active.clone();
        inc_active.push(idx);
        dfs(
            set,
            inc_region,
            excluded.clone(),
            inc_active,
            idx + 1,
            rewrite,
            stop_depth,
            cells,
            stats,
        );
        let mut exc = excluded;
        exc.push(&pc.predicate);
        dfs(
            set,
            region,
            exc,
            active,
            idx + 1,
            rewrite,
            stop_depth,
            cells,
            stats,
        );
        return;
    }

    // Include branch: X ∧ ψ.
    let mut inc_region = region.clone();
    for atom in pc.predicate.atoms() {
        inc_region.intersect_atom(atom);
    }
    stats.sat_checks += 1;
    let include_sat = sat::is_sat(&inc_region, &excluded);
    if include_sat {
        let mut inc_active = active.clone();
        inc_active.push(idx);
        dfs(
            set,
            inc_region,
            excluded.clone(),
            inc_active,
            idx + 1,
            rewrite,
            stop_depth,
            cells,
            stats,
        );
    } else {
        stats.pruned_subtrees += 1;
    }

    // Exclude branch: X ∧ ¬ψ.
    let exclude_sat = if rewrite && !include_sat {
        // Rewrite rule: X is satisfiable (DFS invariant) and X ∧ ψ is not,
        // so every point of X avoids ψ — X ∧ ¬ψ is satisfiable for free.
        stats.rewrite_skips += 1;
        true
    } else {
        let mut probe = excluded.clone();
        probe.push(&pc.predicate);
        stats.sat_checks += 1;
        sat::is_sat(&region, &probe)
    };
    if exclude_sat {
        let mut exc = excluded;
        exc.push(&pc.predicate);
        dfs(
            set,
            region,
            exc,
            active,
            idx + 1,
            rewrite,
            stop_depth,
            cells,
            stats,
        );
    } else {
        stats.pruned_subtrees += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyConstraint, PredicateConstraint, ValueConstraint};
    use pc_predicate::{Atom, AttrType, Schema};

    fn schema() -> Schema {
        Schema::new(vec![("utc", AttrType::Int), ("price", AttrType::Float)])
    }

    fn pc_on_utc(lo: f64, hi: f64) -> PredicateConstraint {
        PredicateConstraint::new(
            pc_predicate::Predicate::atom(Atom::bucket(0, lo, hi)),
            ValueConstraint::none(),
            FrequencyConstraint::at_most(100),
        )
    }

    fn paper_444_set() -> PcSet {
        // §4.4 overlapping example: t1 = [11, 12), t2 = [11, 13)
        PcSet::new(schema())
            .with(pc_on_utc(11.0, 12.0))
            .with(pc_on_utc(11.0, 13.0))
    }

    fn cell_signatures(cells: &[Cell]) -> Vec<Vec<usize>> {
        let mut sigs: Vec<Vec<usize>> = cells.iter().map(|c| c.active.clone()).collect();
        sigs.sort();
        sigs
    }

    #[test]
    fn paper_example_two_satisfiable_cells() {
        let set = paper_444_set();
        let base = Region::full(set.schema());
        for strategy in [Strategy::Naive, Strategy::Dfs, Strategy::DfsRewrite] {
            let (cells, _) = decompose(&set, &base, strategy);
            // c1 = t1∧t2 and c2 = ¬t1∧t2; c3 = t1∧¬t2 is unsatisfiable
            assert_eq!(
                cell_signatures(&cells),
                vec![vec![0, 1], vec![1]],
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn strategies_agree_on_random_overlaps() {
        let set = PcSet::new(schema())
            .with(pc_on_utc(0.0, 10.0))
            .with(pc_on_utc(5.0, 15.0))
            .with(pc_on_utc(8.0, 20.0))
            .with(pc_on_utc(0.0, 20.0));
        let base = Region::full(set.schema());
        let (naive, naive_stats) = decompose(&set, &base, Strategy::Naive);
        let (dfs, dfs_stats) = decompose(&set, &base, Strategy::Dfs);
        let (rw, rw_stats) = decompose(&set, &base, Strategy::DfsRewrite);
        assert_eq!(cell_signatures(&naive), cell_signatures(&dfs));
        assert_eq!(cell_signatures(&naive), cell_signatures(&rw));
        // the rewrite can only remove checks relative to plain DFS; naive
        // always evaluates exactly 2^n cells (DFS wins at scale when whole
        // subtrees prune — see the Fig 7 experiment — but on 4 dense
        // constraints its 2·(2ⁿ−1) node checks can exceed 2ⁿ)
        assert!(dfs_stats.sat_checks >= rw_stats.sat_checks);
        assert_eq!(naive_stats.sat_checks, 16);
    }

    #[test]
    fn witnesses_are_genuine() {
        let set = paper_444_set();
        let base = Region::full(set.schema());
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite);
        for cell in &cells {
            let w = cell
                .witness
                .as_ref()
                .expect("exact mode provides witnesses");
            assert!(cell.region.contains_row(w));
            for (i, pc) in set.constraints().iter().enumerate() {
                assert_eq!(
                    pc.predicate.eval(w),
                    cell.is_active(i),
                    "witness membership must match activity"
                );
            }
        }
    }

    #[test]
    fn pushdown_excludes_non_overlapping() {
        let set = paper_444_set();
        // query touches only utc ∈ [12, 13): t1 cannot be active
        let mut base = Region::full(set.schema());
        base.intersect_atom(&Atom::bucket(0, 12.0, 13.0));
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite);
        assert_eq!(cell_signatures(&cells), vec![vec![1]]);
    }

    #[test]
    fn early_stop_superset_of_exact() {
        let set = PcSet::new(schema())
            .with(pc_on_utc(0.0, 10.0))
            .with(pc_on_utc(20.0, 30.0)) // disjoint from the first
            .with(pc_on_utc(5.0, 25.0));
        let base = Region::full(set.schema());
        let (exact, _) = decompose(&set, &base, Strategy::DfsRewrite);
        let (approx, stats) = decompose(&set, &base, Strategy::EarlyStop { depth: 1 });
        let exact_sigs = cell_signatures(&exact);
        let approx_sigs = cell_signatures(&approx);
        for sig in &exact_sigs {
            assert!(
                approx_sigs.contains(sig),
                "early stop must not lose satisfiable cells"
            );
        }
        assert!(approx_sigs.len() >= exact_sigs.len());
        assert!(stats.assumed_sat > 0);
    }

    #[test]
    fn empty_base_no_cells() {
        let set = paper_444_set();
        let mut base = Region::full(set.schema());
        base.intersect_atom(&Atom::bucket(0, 100.0, 100.0));
        let (cells, stats) = decompose(&set, &base, Strategy::DfsRewrite);
        assert!(cells.is_empty());
        assert_eq!(stats.sat_checks, 0);
    }

    #[test]
    fn no_constraints_no_cells() {
        let set = PcSet::new(schema());
        let base = Region::full(set.schema());
        let (cells, _) = decompose(&set, &base, Strategy::DfsRewrite);
        assert!(cells.is_empty());
    }
}
