//! The session layer: a long-lived, **versioned** serving handle over a
//! mutable constraint catalog.
//!
//! [`BoundEngine::bound`] rebuilds the cell decomposition — the engine's
//! exponential-worst-case step — on every call. That is the right shape
//! for one-shot contingency questions and exactly the wrong shape for a
//! serving system answering heavy query traffic against one PC set. A
//! [`Session`] amortizes the expensive work across queries *and* across
//! constraint churn:
//!
//! # Catalog and epochs
//!
//! A session **owns** its constraints as a catalog of stable
//! [`ConstraintId`]s. [`Session::add_constraint`],
//! [`Session::retire_constraint`], and [`Session::replace_constraint`]
//! mutate the catalog; each mutation produces a new **epoch** — an
//! immutable snapshot (`Arc<PcSet>` + `Arc<ShardedCellSet>`) stamped with a
//! monotonically increasing [`Session::epoch`] number. Queries **pin**
//! the epoch current when they start and run entirely against it
//! (snapshot isolation): a mutation never changes the answer of an
//! in-flight [`Session::bound`] or [`Session::bound_many`], and a whole
//! batch is answered against one epoch. Mutations serialize against each
//! other and only briefly block *new* pins.
//!
//! # Shard-local incremental epoch derivation
//!
//! A new epoch's cells are not re-decomposed from scratch. The epoch
//! holds a [`ShardedCellSet`] — the decomposition factored over the
//! connected components of the constraint-interaction graph
//! ([`crate::shard`]) — so the first question a mutation asks is
//! *which shards does the churned constraint's box overlap?* Every
//! shard it misses carries to the new epoch untouched by `Arc`: cells,
//! witnesses, and cached domain-wide summary bounds all survive
//! verbatim. Only the owning shard(s) pay:
//!
//! * an **add** overlapping *no* shard appends a fresh singleton shard
//!   (one cell, zero SAT checks); overlapping *one* shard delta-derives
//!   just that shard; overlapping *several* merges them into one
//!   component and re-decomposes only the merged members;
//! * a **retire** is resolved inside the owning shard, which may split
//!   back into several components (each derived cell lands in the
//!   fragment its active clique lives in — no SAT checks either way);
//!   the other shards just shift their member indices.
//!
//! Within the owning shard, PC decomposition is monotone in the
//! constraint list (the same argument behind the two-level GROUP-BY
//! splice), so its cells are **delta-derived**:
//!
//! * **add** — only the cells the new constraint's box cuts are split
//!   (one include/exclude level, cached witnesses settling one branch
//!   free, at most one SAT check for the other); untouched cells are
//!   shared with the previous epoch by `Arc`, witnesses included, plus
//!   one check for the new-constraint-only signature
//!   ([`CellSet::derive_add`](CellSet));
//! * **retire** — **zero** SAT checks: unchanged cells keep everything
//!   (signature indices shift down), a retired cell folds into its
//!   exclude-sibling or survives with its region re-widened to what a
//!   fresh decomposition would give, witness carried;
//! * the closure verdict/counterexample carries the same way: coverage
//!   only moves inside the churned constraint's box, so a cached
//!   counterexample (or the closed verdict) re-checks only when that box
//!   overlaps it.
//!
//! Each epoch's [`CellSet::stats`] report the *derivation's own* work
//! ([`crate::DecomposeStats::incremental_splits`] counts the touched
//! cells), which is what the `constraint_churn` bench compares against
//! the rebuild-per-epoch ablation ([`SessionOptions::incremental`] off).
//! Derivation only happens when the previous epoch's cells were actually
//! built — mutations before the first query stay free, and the first
//! query then decomposes the current catalog directly.
//!
//! # Serving machinery (per epoch)
//!
//! * each query **specializes** the pinned epoch's cells to its region —
//!   interval intersections to drop and share cells, plus an exact SAT
//!   re-check for only the cells the region genuinely cuts (see
//!   [`crate::specialize`]);
//! * the epoch-level **closure verdict is hoisted**: a sub-region of a
//!   closed region is closed; for a non-closed epoch the cached
//!   *counterexample point* proves any query containing it non-closed
//!   without a SAT call;
//! * simplex **warm starts chain across queries and across epochs**: the
//!   session keeps per-worker [`WarmCaches`] alive for its whole
//!   lifetime. With [`crate::BoundOptions::tableau_carry`] (the default)
//!   each chain slot holds the whole **canonical tableau**; a successor
//!   LP with identical constraint structure re-prices it under its new
//!   objective, and — new with the versioned API — a successor whose
//!   rows differ by the *one constraint an epoch added or retired* is
//!   **adapted in place**: the changed row is appended to / deleted from
//!   the carried tableau with a dual restore (see
//!   `pc_solver::solve_lp_tableau`), instead of falling all the way back
//!   to a cold rebuild. A larger structural mismatch still demotes to
//!   the basis tier and from there to cold, so churn can cost work but
//!   never correctness.
//!
//! # What mutations invalidate (and what they don't)
//!
//! Shared, untouched cells keep their identity across epochs — including
//! their cached witnesses. Split or re-widened cells may carry *new*
//! witnesses (equally genuine points of the same cell), so witness
//! identity is only stable for cells the churned box never touched —
//! the same caveat as the parallel witness search
//! ([`crate::decompose`]). A derived epoch's *cells* are exactly a fresh
//! decomposition's, and its bounds equal a session freshly built on the
//! mutated catalog up to solver tolerance (~1e-6 — the branch & bound
//! pruning tolerance plus warm-start floating-point noise, the same
//! caveat [`crate::BoundOptions::threads`] documents; a warm or adapted
//! tableau can land on a different vertex of a degenerate optimum) —
//! property-tested in `tests/prop_epoch.rs` over random add/retire
//! sequences, sequentially and on the pinned multi-worker pool. Under the approximate [`crate::Strategy::EarlyStop`] derived
//! epochs keep unverified cells admitted (bounds may stay wider than a
//! fresh rebuild's, never unsoundly narrower).
//!
//! `pc batch` drives all of this from the command line: `+ <constraint>`
//! and `- <id>` directive lines interleave catalog churn with the query
//! stream, and the `query_throughput` bench records the
//! incremental-vs-rebuild ablation to `BENCH_serve.json`.

use crate::bounds::{pooled_map_catch, ShardSlice, WarmCache, WarmCaches};
use crate::decompose::DecomposeStats;
use crate::estimate::Estimates;
use crate::shard::ShardedCellSet;
use crate::specialize::CellSet;
use crate::{
    BoundEngine, BoundError, BoundOptions, BoundReport, GroupBound, PcSet, PredicateConstraint,
};
use pc_budget::pressure::{AdmissionVerdict, PressureGauge, SchedReport, SchedTicket};
use pc_budget::{CancelToken, QueryBudget, TripReason};
use pc_storage::AggQuery;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Stable handle of one catalog constraint, assigned by the session at
/// admission and never reused. Renders as `c<N>` (`pc batch` retire
/// directives parse either `c3` or `3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstraintId(u64);

impl fmt::Display for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl FromStr for ConstraintId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let digits = s.strip_prefix('c').unwrap_or(s);
        digits
            .parse::<u64>()
            .map(ConstraintId)
            .map_err(|_| format!("`{s}` is not a constraint id (expected cN or N)"))
    }
}

/// A mutation named a [`ConstraintId`] the catalog does not hold (never
/// admitted, or already retired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownConstraint(pub ConstraintId);

impl fmt::Display for UnknownConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no live constraint {} in the session catalog", self.0)
    }
}

impl std::error::Error for UnknownConstraint {}

/// Session configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionOptions {
    /// Engine knobs shared by every query of the session.
    pub bound: BoundOptions,
    /// Decompose each epoch once and answer queries by specializing the
    /// cached cells (the default). Disabled, every query decomposes its
    /// own region from scratch — the cold baseline, kept as an honest
    /// A/B switch (`pc … --no-session-cache`); warm-start chaining across
    /// queries stays on either way unless `bound.warm_start` is off.
    pub cache_cells: bool,
    /// Derive each mutation's epoch incrementally from the previous one
    /// (the default): re-split only the cells the churned constraint's
    /// box cuts, share the rest. Disabled, every mutation schedules a
    /// full re-decomposition — the rebuild-per-epoch baseline the
    /// `constraint_churn` bench ablates against. Never affects results,
    /// only [`crate::DecomposeStats`] work.
    pub incremental: bool,
    /// Tag every budgeted query's pool tasks with its deadline so the
    /// work-stealing pool serves them earliest-deadline-first (the
    /// default). Purely a scheduling hint — answers are unchanged
    /// (property-tested in `tests/prop_sched.rs`); queries with no
    /// deadline are untagged and scheduling is plain FIFO/LIFO either
    /// way. Off = the FIFO baseline the `deadline_stress/burst_*` bench
    /// rows ablate against.
    pub deadline_sched: bool,
    /// Admission control + load shedding (the default; engages only for
    /// queries with an armed deadline): the session's [`PressureGauge`]
    /// judges each arrival against the queued backlog, re-routing
    /// queries that cannot finish exactly down the degradation ladder at
    /// admission, and answering hopeless ones from the cheapest sound
    /// path immediately (see [`pc_budget::pressure`]). Every answer
    /// remains a superset of the exact range.
    pub admission: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            bound: BoundOptions::default(),
            cache_cells: true,
            incremental: true,
            deadline_sched: true,
            admission: true,
        }
    }
}

/// One immutable catalog snapshot: the materialized set, the live ids (in
/// constraint-index order), and the lazily built / eagerly derived cells.
struct Epoch {
    number: u64,
    set: Arc<PcSet>,
    ids: Vec<ConstraintId>,
    cells: OnceLock<Result<Arc<ShardedCellSet>, BoundError>>,
    /// Per-constraint selectivity estimates, maintained **per delta**: an
    /// add appends one entry, a retire drops one, a replace chains the
    /// two — every carried entry shares its live split-survival counter
    /// with the previous epoch by `Arc`, so ordering history accumulates
    /// across the session instead of restarting per epoch.
    estimates: Arc<Estimates>,
    /// Rejection cache: shed answers keyed by query shape. A shed answer
    /// is deterministic per epoch (pre-tripped budget, fixed options),
    /// and under overload rejections are the bulk of the traffic — the
    /// first rejection of a shape pays the one-granule walk, every
    /// repeat is a lookup. Dies with the epoch, so a catalog mutation
    /// can never serve a stale range.
    shed_cache: Mutex<HashMap<String, BoundReport>>,
}

/// A long-lived, mutable query-serving handle over a constraint catalog:
/// decompose once, specialize per query, delta-derive per mutation, chain
/// warm starts across queries and epochs. See the module docs.
///
/// All methods — including the catalog mutations — take `&self`; a
/// session is safe to share across threads. Queries pin the epoch current
/// when they start (snapshot isolation); mutations serialize.
pub struct Session {
    options: SessionOptions,
    current: Mutex<Arc<Epoch>>,
    /// Serializes catalog mutations *around* the expensive derivation so
    /// `current` — which every query's pin takes — is only ever held for
    /// an `Arc` read or swap. Lock order: `mutations` strictly before
    /// `current`.
    mutations: Mutex<()>,
    next_id: AtomicU64,
    warm: WarmCaches,
    /// Aggregate queued-deadline-pressure tracker driving admission
    /// control ([`SessionOptions::admission`]).
    pressure: PressureGauge,
    /// Cumulative shed-rejection-cache outcomes across every epoch (the
    /// caches themselves die with their epoch; the counters survive so
    /// `--stats` and the serve `stats` verb can report hit rates).
    shed_hits: AtomicU64,
    shed_misses: AtomicU64,
}

/// Cumulative shed-rejection-cache outcomes for one session — how many
/// shed answers were served from the per-epoch cache vs computed by the
/// pre-tripped one-granule walk. See [`Session::shed_cache_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedCacheStats {
    /// Shed answers served straight from the rejection cache.
    pub hits: u64,
    /// Shed answers that paid the one-granule walk (and populated the
    /// cache for the next repeat of the same shape).
    pub misses: u64,
}

impl Session {
    /// A session with default options. The seed constraints are admitted
    /// in order as ids `c0..cN-1`, at epoch 0.
    pub fn new(set: PcSet) -> Self {
        Session::with_options(set, SessionOptions::default())
    }

    /// A session with explicit options.
    pub fn with_options(set: PcSet, options: SessionOptions) -> Self {
        let seeded = set.len() as u64;
        let ids: Vec<ConstraintId> = (0..seeded).map(ConstraintId).collect();
        let estimates = Arc::new(Estimates::for_set(&set));
        Session {
            options,
            current: Mutex::new(Arc::new(Epoch {
                number: 0,
                set: Arc::new(set),
                ids,
                cells: OnceLock::new(),
                estimates,
                shed_cache: Mutex::new(HashMap::new()),
            })),
            mutations: Mutex::new(()),
            next_id: AtomicU64::new(seeded),
            warm: WarmCaches::new(options.bound.warm_start),
            pressure: PressureGauge::new(rayon::current_num_threads()),
            shed_hits: AtomicU64::new(0),
            shed_misses: AtomicU64::new(0),
        }
    }

    /// Cumulative shed-rejection-cache hit/miss counters (see
    /// [`ShedCacheStats`]). Monotone across epochs; a high hit rate under
    /// overload means rejections are answering from lookups instead of
    /// one-granule walks.
    pub fn shed_cache_stats(&self) -> ShedCacheStats {
        ShedCacheStats {
            hits: self.shed_hits.load(Ordering::Relaxed),
            misses: self.shed_misses.load(Ordering::Relaxed),
        }
    }

    /// The session's admission-control gauge (diagnostics: backlog and
    /// cumulative exact/degraded/shed counts).
    pub fn pressure(&self) -> &PressureGauge {
        &self.pressure
    }

    /// The session's configuration.
    pub fn options(&self) -> &SessionOptions {
        &self.options
    }

    /// The current epoch number: 0 at construction, +1 per catalog
    /// mutation.
    pub fn epoch(&self) -> u64 {
        self.pin().number
    }

    /// The live constraint ids, in the current epoch's constraint-index
    /// order.
    pub fn constraint_ids(&self) -> Vec<ConstraintId> {
        self.pin().ids.clone()
    }

    /// A snapshot of the current epoch's materialized constraint set.
    pub fn pc_set(&self) -> Arc<PcSet> {
        Arc::clone(&self.pin().set)
    }

    /// The current epoch's domain-wide decomposition as one flat
    /// (global-index) [`CellSet`], built on first use. Internally the
    /// epoch holds a [`ShardedCellSet`] — see [`Session::sharded_cell_set`]
    /// — whose flattening this lazily materializes. Fails with the
    /// decomposition's error (e.g. a [`crate::Strategy::Naive`]
    /// overflow), which every later query of this epoch then reports too.
    pub fn cell_set(&self) -> Result<Arc<CellSet>, BoundError> {
        let epoch = self.pin();
        Ok(self.cells_of(&epoch)?.flatten(&epoch.set))
    }

    /// The current epoch's decomposition factored over the
    /// constraint-interaction graph (one [`crate::shard::Shard`] per
    /// connected component), built on first use.
    pub fn sharded_cell_set(&self) -> Result<Arc<ShardedCellSet>, BoundError> {
        let epoch = self.pin();
        self.cells_of(&epoch)
    }

    /// Whether wide SAT checks may fan out (mirrors
    /// [`BoundEngine::par_witness`]).
    fn par_witness(&self) -> bool {
        self.options.bound.threads != 1
    }

    /// Pin the current epoch (the snapshot every query runs against).
    fn pin(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.lock().unwrap())
    }

    /// The pinned epoch's cells, building them on first use.
    fn cells_of(&self, epoch: &Epoch) -> Result<Arc<ShardedCellSet>, BoundError> {
        epoch
            .cells
            .get_or_init(|| self.build_cells(epoch, &QueryBudget::unlimited()))
            .clone()
    }

    /// The pinned epoch's cells under a query budget. An already-built
    /// epoch is served as-is (zero extra work). A cold epoch is built
    /// under the budget — and **published only when the build finished
    /// clean**: a degraded decomposition (frontier cells, skipped closure
    /// probe) answers the triggering query and is then thrown away, so
    /// one starved query can never poison the epoch cache every later
    /// query reads.
    fn cells_of_budgeted(
        &self,
        epoch: &Epoch,
        budget: &QueryBudget,
    ) -> Result<Arc<ShardedCellSet>, BoundError> {
        if budget.is_unlimited() {
            return self.cells_of(epoch);
        }
        if let Some(built) = epoch.cells.get() {
            return built.clone();
        }
        let built = self.build_cells(epoch, budget);
        if budget.is_tripped() {
            return built;
        }
        // Clean build: publish (first writer wins; a concurrent clean
        // build of the same epoch is identical up to witness choice).
        let _ = epoch.cells.set(built);
        epoch.cells.get().expect("just published").clone()
    }

    /// One domain-wide decomposition of `epoch`'s catalog — one pool task
    /// per interaction-graph component ([`ShardedCellSet::build`]) — plus
    /// the closure counterexample cache. Under an armed budget the
    /// closure probe — potentially the widest SAT query of all — is
    /// skipped once the budget trips, and the container marked so
    /// [`ShardedCellSet::closed`] answers "open" (sound) instead of
    /// lying.
    fn build_cells(
        &self,
        epoch: &Epoch,
        budget: &QueryBudget,
    ) -> Result<Arc<ShardedCellSet>, BoundError> {
        let base = epoch.set.domain().clone();
        let mut sharded = ShardedCellSet::build(
            &epoch.set,
            &self.options.bound,
            base.clone(),
            None,
            false,
            self.options.bound.ordering.then_some(&*epoch.estimates),
            budget,
        )?;
        // Cache the closure *counterexample*, not just the verdict: a
        // non-closed epoch would otherwise re-prove non-closure with the
        // widest SAT query on every bound. Closure is a global question,
        // probed once across all shards.
        let mut closure_skipped = false;
        let uncovered = if !self.options.bound.check_closure {
            None
        } else if !budget.proceed() {
            closure_skipped = true;
            None
        } else {
            epoch.set.uncovered_witness_with(&base, self.par_witness())
        };
        sharded.set_closure(uncovered, closure_skipped);
        Ok(Arc::new(sharded))
    }

    // ------------------------------------------------------------------
    // Catalog mutations
    // ------------------------------------------------------------------

    /// Admit a constraint into the catalog, producing a new epoch. The
    /// returned id is stable for the session's lifetime.
    pub fn add_constraint(&self, pc: PredicateConstraint) -> ConstraintId {
        self.add_constraint_budgeted(pc, &QueryBudget::unlimited())
    }

    /// [`Session::add_constraint`] with the incremental derivation
    /// metered by `budget`. The mutation itself **always succeeds** — the
    /// new epoch's catalog is installed regardless. What the budget
    /// governs is the eager cell derivation: if it trips mid-derivation,
    /// the partially-derived cells are **discarded** (never published as
    /// the epoch's cache) and the epoch's cells stay lazy, rebuilt by the
    /// first query that needs them. The catalog never serves a half-built
    /// [`CellSet`].
    pub fn add_constraint_budgeted(
        &self,
        pc: PredicateConstraint,
        budget: &QueryBudget,
    ) -> ConstraintId {
        self.add_constraint_stamped(pc, budget).0
    }

    /// [`Session::add_constraint_budgeted`], additionally returning the
    /// epoch number the mutation created — the number a serving tier
    /// stamps on the mutation's wire response, captured inside the
    /// mutation lock so concurrent mutations cannot misattribute it.
    pub fn add_constraint_stamped(
        &self,
        pc: PredicateConstraint,
        budget: &QueryBudget,
    ) -> (ConstraintId, u64) {
        let _mutation = self.mutations.lock().unwrap();
        // `prev` cannot move under us: only mutations swap `current`, and
        // they all serialize on the lock above — so the expensive
        // derivation runs with `current` free for query pins.
        let prev = self.pin();
        let id = ConstraintId(self.next_id.fetch_add(1, Ordering::SeqCst));
        let mut ids = prev.ids.clone();
        ids.push(id);
        let mut set = (*prev.set).clone();
        // a new constraint may overlap the existing ones arbitrarily; the
        // disjointness fast path must not survive on a stale hint
        set.set_disjoint_hint(false);
        set.push(pc.clone());
        let set = Arc::new(set);
        let estimates = Arc::new(prev.estimates.derive_add(&set));
        let cells = OnceLock::new();
        if let Some(prev_cells) = self.derivable(&prev) {
            // A failed shard re-decomposition (e.g. a merge overflowing
            // the naive strategy) stays unpublished; the error replays
            // from the lazy rebuild instead.
            if let Ok(derived) = self.derived_add(&prev_cells, &pc, &set, &estimates, budget) {
                if !budget.is_tripped() {
                    let _ = cells.set(Ok(Arc::new(derived)));
                }
            }
        }
        let number = prev.number + 1;
        self.install(
            &prev,
            Epoch {
                number,
                set,
                ids,
                cells,
                estimates,
                shed_cache: Mutex::new(HashMap::new()),
            },
        );
        (id, number)
    }

    /// Retire a constraint from the catalog, producing a new epoch.
    pub fn retire_constraint(&self, id: ConstraintId) -> Result<(), UnknownConstraint> {
        self.retire_constraint_stamped(id).map(|_| ())
    }

    /// [`Session::retire_constraint`], returning the epoch number the
    /// retirement created (see [`Session::add_constraint_stamped`]).
    pub fn retire_constraint_stamped(&self, id: ConstraintId) -> Result<u64, UnknownConstraint> {
        let _mutation = self.mutations.lock().unwrap();
        let prev = self.pin();
        let Some(index) = prev.ids.iter().position(|&i| i == id) else {
            return Err(UnknownConstraint(id));
        };
        let mut ids = prev.ids.clone();
        ids.remove(index);
        let mut set = (*prev.set).clone();
        let removed = set.remove_constraint(index);
        let set = Arc::new(set);
        let estimates = Arc::new(prev.estimates.derive_retire(index));
        let cells = OnceLock::new();
        if let Some(prev_cells) = self.derivable(&prev) {
            let uncovered = self.retired_uncovered(&prev_cells, &removed, &set);
            let derived = prev_cells.derive_retire(&set, index, &self.options.bound, uncovered);
            let _ = cells.set(Ok(Arc::new(derived)));
        }
        let number = prev.number + 1;
        self.install(
            &prev,
            Epoch {
                number,
                set,
                ids,
                cells,
                estimates,
                shed_cache: Mutex::new(HashMap::new()),
            },
        );
        Ok(number)
    }

    /// Swap one constraint for another in a **single** epoch (a retire
    /// and an add fused, so no query can observe the half-churned
    /// catalog). Returns the replacement's fresh id.
    pub fn replace_constraint(
        &self,
        id: ConstraintId,
        pc: PredicateConstraint,
    ) -> Result<ConstraintId, UnknownConstraint> {
        self.replace_constraint_budgeted(id, pc, &QueryBudget::unlimited())
    }

    /// [`Session::replace_constraint`] with the derivation metered by
    /// `budget` — same contract as [`Session::add_constraint_budgeted`]:
    /// the swap always lands; a tripped derivation is discarded and the
    /// new epoch's cells rebuild lazily.
    pub fn replace_constraint_budgeted(
        &self,
        id: ConstraintId,
        pc: PredicateConstraint,
        budget: &QueryBudget,
    ) -> Result<ConstraintId, UnknownConstraint> {
        self.replace_constraint_stamped(id, pc, budget)
            .map(|(new_id, _)| new_id)
    }

    /// [`Session::replace_constraint_budgeted`], returning the
    /// replacement id *and* the epoch number the swap created (see
    /// [`Session::add_constraint_stamped`]).
    pub fn replace_constraint_stamped(
        &self,
        id: ConstraintId,
        pc: PredicateConstraint,
        budget: &QueryBudget,
    ) -> Result<(ConstraintId, u64), UnknownConstraint> {
        let _mutation = self.mutations.lock().unwrap();
        let prev = self.pin();
        let Some(index) = prev.ids.iter().position(|&i| i == id) else {
            return Err(UnknownConstraint(id));
        };
        let new_id = ConstraintId(self.next_id.fetch_add(1, Ordering::SeqCst));
        let mut ids = prev.ids.clone();
        ids.remove(index);
        ids.push(new_id);
        let mut mid_set = (*prev.set).clone();
        let removed = mid_set.remove_constraint(index);
        let mut set = mid_set.clone();
        set.set_disjoint_hint(false);
        set.push(pc.clone());
        let (mid_set, set) = (Arc::new(mid_set), Arc::new(set));
        // chain the two estimate deltas exactly as the cells chain below
        let estimates = Arc::new(prev.estimates.derive_retire(index).derive_add(&set));
        let cells = OnceLock::new();
        if let Some(prev_cells) = self.derivable(&prev) {
            // chain the two deltas through the intermediate epoch-less set
            let mid_uncovered = self.retired_uncovered(&prev_cells, &removed, &mid_set);
            let mid = prev_cells.derive_retire(&mid_set, index, &self.options.bound, mid_uncovered);
            if let Ok(mut derived) = self.derived_add(&mid, &pc, &set, &estimates, budget) {
                derived.absorb_stats(mid.stats());
                if !budget.is_tripped() {
                    let _ = cells.set(Ok(Arc::new(derived)));
                }
            }
        }
        let number = prev.number + 1;
        self.install(
            &prev,
            Epoch {
                number,
                set,
                ids,
                cells,
                estimates,
                shed_cache: Mutex::new(HashMap::new()),
            },
        );
        Ok((new_id, number))
    }

    /// Swap the new epoch in — the only place `current` is written, held
    /// just long enough for the `Arc` assignment.
    fn install(&self, prev: &Arc<Epoch>, epoch: Epoch) {
        let mut cur = self.current.lock().unwrap();
        debug_assert!(
            Arc::ptr_eq(&cur, prev),
            "mutations serialize on the mutation lock"
        );
        *cur = Arc::new(epoch);
    }

    /// The add half of a derivation: closure counterexample carry (a
    /// closed base stays closed; a dodging counterexample carries; a
    /// swallowed one re-checks), then the **shard-local** incremental
    /// cell split ([`ShardedCellSet::derive_add`]): only the shard(s)
    /// whose boxes the new constraint overlaps re-derive, the rest carry
    /// by `Arc`. The base's *known-closed* verdict is passed down so the
    /// owning shard can skip the new-constraint-only probe outright (no
    /// point of a closed base avoids every old predicate).
    fn derived_add(
        &self,
        prev_cells: &ShardedCellSet,
        pc: &PredicateConstraint,
        set: &PcSet,
        estimates: &Arc<Estimates>,
        budget: &QueryBudget,
    ) -> Result<ShardedCellSet, BoundError> {
        let parallel = self.par_witness();
        let check_closure = self.options.bound.check_closure;
        let base_known_closed = check_closure && prev_cells.closed();
        let uncovered = if !check_closure {
            None
        } else {
            match prev_cells.uncovered() {
                // coverage grows: a closed epoch stays closed
                None => None,
                // the cached counterexample dodges the new predicate:
                // still uncovered, no SAT call
                Some(w) if !pc.predicate.eval(w) => Some(w.to_vec()),
                // the new constraint swallowed the counterexample — one
                // exact re-check decides (skipped once the budget trips:
                // the tripped derivation is discarded by the caller, so
                // the placeholder value is never served)
                Some(_) => {
                    if budget.proceed() {
                        set.uncovered_witness_with(set.domain(), parallel)
                    } else {
                        None
                    }
                }
            }
        };
        prev_cells.derive_add(
            set,
            &self.options.bound,
            uncovered,
            base_known_closed,
            self.options.bound.ordering.then_some(&**estimates),
            budget,
        )
    }

    /// The previous epoch's cells, when the new epoch should be derived
    /// from them: incremental mode on, the cell cache on, and the cells
    /// actually built (mutations before the first query stay free — the
    /// first query then decomposes the new catalog directly). A previous
    /// epoch whose build *errored* replays the error lazily instead.
    fn derivable(&self, prev: &Epoch) -> Option<Arc<ShardedCellSet>> {
        if !(self.options.incremental && self.options.cache_cells) {
            return None;
        }
        match prev.cells.get() {
            Some(Ok(cells)) => Some(Arc::clone(cells)),
            _ => None,
        }
    }

    /// Closure counterexample after retiring `removed`: an uncovered
    /// point stays uncovered when coverage shrinks; a previously closed
    /// epoch can only open a hole inside the retired constraint's box, so
    /// the re-check is confined there.
    fn retired_uncovered(
        &self,
        prev_cells: &ShardedCellSet,
        removed: &PredicateConstraint,
        new_set: &PcSet,
    ) -> Option<Vec<f64>> {
        if !self.options.bound.check_closure {
            return None;
        }
        match prev_cells.uncovered() {
            Some(w) => Some(w.to_vec()),
            None => {
                let mut within = prev_cells.base().clone();
                for atom in removed.predicate.atoms() {
                    within.intersect_atom(atom);
                }
                new_set.uncovered_witness_with(&within, self.par_witness())
            }
        }
    }

    // ------------------------------------------------------------------
    // Serving
    // ------------------------------------------------------------------

    /// Compute the result range of one query against the epoch current at
    /// the call, reusing its cached decomposition and the session's
    /// warm-start chains. Returns what [`BoundEngine::bound`] would
    /// against the same catalog snapshot, up to solver tolerance (see
    /// the module docs' invalidation section for the ~1e-6 caveat).
    pub fn bound(&self, query: &AggQuery) -> Result<BoundReport, BoundError> {
        self.bound_budgeted(query, &QueryBudget::unlimited())
    }

    /// [`Session::bound`] under a [`QueryBudget`]. The budget meters the
    /// whole serve path — epoch build (cold epochs only), per-query
    /// specialization, closure checks, and the allocation MILPs. On a
    /// trip the query still answers, sound but wider, with
    /// [`BoundReport::degraded`] set; a degraded epoch build serves only
    /// this query and is never published to the epoch cache (see
    /// [`crate::budget`] for the degradation ladder).
    pub fn bound_budgeted(
        &self,
        query: &AggQuery,
        budget: &QueryBudget,
    ) -> Result<BoundReport, BoundError> {
        let epoch = self.pin();
        self.bound_on(&epoch, query, self.warm.for_current_worker(), budget)
    }

    /// The per-query admission + scheduling wrapper around the serve
    /// body: judge the arrival against the pressure gauge, pick the
    /// ladder rung (exact / early-degraded / shed), tag the query's pool
    /// tasks with its deadline, run, and stamp the scheduling outcome
    /// ([`BoundReport::sched`], [`BoundReport::trip`]) on the report.
    fn bound_on(
        &self,
        epoch: &Epoch,
        query: &AggQuery,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
    ) -> Result<BoundReport, BoundError> {
        let deadline = budget.deadline();
        let sched_deadline = if self.options.deadline_sched {
            deadline
        } else {
            None
        };

        // Admission only judges queries that declared urgency; everything
        // else runs the full exact pipeline (their cost still registers
        // on the gauge so timed arrivals see them in the backlog).
        if !self.options.admission || deadline.is_none() {
            let mut result = rayon::with_task_deadline(sched_deadline, || {
                self.bound_serve(epoch, query, warm, budget, self.options.bound)
            });
            if let Ok(report) = &mut result {
                report.sched = Some(SchedReport::bypass(budget));
                if report.degraded && report.trip.is_none() {
                    report.trip = budget.trip_reason();
                }
            }
            return result;
        }

        let permit = self
            .pressure
            .admit(self.cost_factor(epoch, query), deadline);
        let verdict = permit.verdict();
        let sched = SchedReport {
            queue_wait: budget.armed_for().unwrap_or_default(),
            verdict,
            backlog: permit.backlog_at_admission(),
            estimated_cost: permit.estimated_cost(),
        };
        let result = self.run_rung(epoch, query, warm, budget, verdict, sched, sched_deadline);
        match &result {
            Ok(_) => permit.complete(),
            // Errors (including panics mapped by the batch layer) drop
            // the permit: the backlog un-charges without calibrating.
            Err(_) => drop(permit),
        }
        result
    }

    /// Arrival-time admission for open-loop serving: judge the query
    /// against the pressure gauge *now* — before it is enqueued — and
    /// return the detached ticket to hand to [`Session::bound_ticketed`]
    /// wherever the query eventually runs. Under sustained overload the
    /// queue is where deadlines die; judging at run start would admit
    /// every arrival into a queue none of them can survive. `None` when
    /// the query bypasses admission (no deadline, or admission off) —
    /// pass it through, [`Session::bound_ticketed`] handles both.
    pub fn admit(&self, query: &AggQuery, budget: &QueryBudget) -> Option<SchedTicket> {
        let deadline = budget.deadline();
        if !self.options.admission || deadline.is_none() {
            return None;
        }
        let epoch = self.pin();
        Some(
            self.pressure
                .admit_ticket(self.cost_factor(&epoch, query), deadline),
        )
    }

    /// Run a query already judged by [`Session::admit`]: execute the
    /// ticket's rung, settle the ticket (run time calibrates the gauge's
    /// service estimates; the queue wait it already spent does not), and
    /// stamp the scheduling outcome on the report. With no ticket this
    /// is [`Session::bound_budgeted`].
    pub fn bound_ticketed(
        &self,
        query: &AggQuery,
        budget: &QueryBudget,
        ticket: Option<SchedTicket>,
    ) -> Result<BoundReport, BoundError> {
        self.bound_ticketed_stamped(query, budget, ticket).1
    }

    /// [`Session::bound_ticketed`], additionally returning the number of
    /// the epoch the answer was computed against — the **snapshot stamp**
    /// a serving tier puts on every wire response. The stamp and the
    /// answer come from the same single pin, so under concurrent catalog
    /// churn the pair is consistent by construction.
    pub fn bound_ticketed_stamped(
        &self,
        query: &AggQuery,
        budget: &QueryBudget,
        ticket: Option<SchedTicket>,
    ) -> (u64, Result<BoundReport, BoundError>) {
        let epoch = self.pin();
        let number = epoch.number;
        let Some(ticket) = ticket else {
            let result = self.bound_on(&epoch, query, self.warm.for_current_worker(), budget);
            return (number, result);
        };
        let warm = self.warm.for_current_worker();
        let verdict = ticket.verdict();
        let sched = SchedReport {
            queue_wait: budget.armed_for().unwrap_or_default(),
            verdict,
            backlog: ticket.backlog_at_admission(),
            estimated_cost: ticket.estimated_cost(),
        };
        let sched_deadline = if self.options.deadline_sched {
            budget.deadline()
        } else {
            None
        };
        let run_started = Instant::now();
        // Pop-time demotion: the verdict was judged at arrival against a
        // *predicted* queue wait; by pop the wait is a fact. Re-check the
        // admission inequality with it — a query whose remaining slack no
        // longer covers its rung's estimated cost would burn pool work on
        // an answer that will degrade mid-run anyway, so answer from the
        // cheapest sound path (the rejection cache) instead. Expired
        // deadlines are the zero-slack special case.
        let demoted = verdict != AdmissionVerdict::Shed
            && budget.deadline().is_some_and(|d| {
                d.saturating_duration_since(run_started) < ticket.estimated_cost()
            });
        let verdict = if demoted {
            AdmissionVerdict::Shed
        } else {
            verdict
        };
        let sched = SchedReport { verdict, ..sched };
        let result = self.run_rung(&epoch, query, warm, budget, verdict, sched, sched_deadline);
        // A demoted run took the shed path, not the rung the ticket was
        // charged for — its (near-zero) elapsed time says nothing about
        // that rung's service cost and must not calibrate the gauge. The
        // observed queue wait, by contrast, is real either way and feeds
        // the drain-rate feedback.
        self.pressure.settle_waited(
            ticket,
            (result.is_ok() && !demoted).then(|| run_started.elapsed()),
            Some(sched.queue_wait),
        );
        (number, result)
    }

    /// Execute one rung of the admission ladder: Degraded skips straight
    /// to the cheap engine configuration (LP relaxation instead of
    /// branch & bound) under the caller's own budget; Shed runs under a
    /// budget born tripped, so every stage — the closure probe included —
    /// degrades within its first granule, which is the cheapest sound
    /// answer the engine has. Note `check_closure` stays as configured:
    /// turning it off *assumes* closure (a tightening), while a tripped
    /// budget skips the probe as "open" (a widening) — only the latter
    /// is sound. Both rungs only ever *widen* the range (property-tested
    /// in `prop_sched.rs`).
    #[allow(clippy::too_many_arguments)]
    fn run_rung(
        &self,
        epoch: &Epoch,
        query: &AggQuery,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
        verdict: AdmissionVerdict,
        sched: SchedReport,
        sched_deadline: Option<Instant>,
    ) -> Result<BoundReport, BoundError> {
        let mut opts = self.options.bound;
        let shed_budget;
        let mut shed_key = None;
        let run_budget = match verdict {
            AdmissionVerdict::Exact => budget,
            AdmissionVerdict::Degraded => {
                opts.lp_relax_cell_limit = 0;
                budget
            }
            AdmissionVerdict::Shed => {
                opts.lp_relax_cell_limit = 0;
                // Serial on the caller's worker: a shed query is a
                // *rejection* — spawning its (budget-tripped, trivial)
                // per-cell tasks through the pool would still cost every
                // queued job a trip through the contended deadline lane,
                // delaying the admitted queries the shed exists to protect.
                opts.threads = 1;
                let key = format!("{query:?}");
                if let Some(cached) = epoch.shed_cache.lock().unwrap().get(&key) {
                    self.shed_hits.fetch_add(1, Ordering::Relaxed);
                    let mut report = cached.clone();
                    report.sched = Some(sched);
                    return Ok(report);
                }
                self.shed_misses.fetch_add(1, Ordering::Relaxed);
                shed_key = Some(key);
                shed_budget = QueryBudget::pre_tripped(TripReason::Deadline);
                &shed_budget
            }
        };
        let mut result = rayon::with_task_deadline(sched_deadline, || {
            self.bound_serve(epoch, query, warm, run_budget, opts)
        });
        if let Ok(report) = &mut result {
            report.degraded |= verdict != AdmissionVerdict::Exact;
            report.sched = Some(sched);
            if report.degraded && report.trip.is_none() {
                report.trip = run_budget
                    .trip_reason()
                    .or(Some(TripReason::Deadline).filter(|_| verdict != AdmissionVerdict::Exact));
            }
            if let Some(key) = shed_key {
                epoch.shed_cache.lock().unwrap().insert(key, report.clone());
            }
        }
        result
    }

    /// Estimated relative cost of `query` against this epoch, from the
    /// estimate layer: the split-ordering scores (normalized box volume ×
    /// split-survival rate) of the constraints whose boxes the query
    /// region touches, over the whole catalog's. A query touching about
    /// half the catalog's mass scores ~1.0; the gauge multiplies this
    /// into its learned per-query service-time EWMA.
    fn cost_factor(&self, epoch: &Epoch, query: &AggQuery) -> f64 {
        let set = &*epoch.set;
        let mut target = query.predicate.to_region(set.schema());
        target.intersect(set.domain());
        let mut total = 0.0;
        let mut touched = 0.0;
        for (i, pc) in set.constraints().iter().enumerate() {
            let score = epoch.estimates.score(i).max(0.0);
            total += score;
            let mut pc_box = pc.predicate.to_region(set.schema());
            pc_box.intersect(set.domain());
            if pc_box.overlaps(&target) {
                touched += score;
            }
        }
        if total <= 0.0 {
            1.0
        } else {
            (1.0 + touched) / (1.0 + 0.5 * total)
        }
    }

    /// The serve body: specialize the pinned epoch's cells to the query
    /// and bound. `opts` is the admission layer's (possibly downgraded)
    /// engine configuration.
    fn bound_serve(
        &self,
        epoch: &Epoch,
        query: &AggQuery,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
        opts: BoundOptions,
    ) -> Result<BoundReport, BoundError> {
        let set = &*epoch.set;
        let engine = BoundEngine::with_options(set, opts);
        engine.set_estimates(Arc::clone(&epoch.estimates));
        if !self.options.cache_cells {
            // Cold cells, warm chains: the honest baseline for the cache
            // knob still benefits from cross-query basis reuse.
            return engine.bound_with_warm(query, warm, budget);
        }
        let sharded = self.cells_of_budgeted(epoch, budget)?;
        let mut target = query.predicate.to_region(set.schema());
        target.intersect(set.domain());

        if sharded.shards().len() <= 1 {
            // One interaction component (or sharding off): serve from the
            // flat cell set exactly as an unsharded session would.
            let cell_set = sharded.flatten(set);
            let mut stats = cell_set.stats();
            let cells = cell_set.specialize_budgeted(
                set,
                &target,
                &mut stats,
                engine.par_witness(),
                budget,
            );
            stats.cells = cells.len();

            let closed = self.closed_within(&sharded, set, &target, &engine, budget);
            let problem = engine.problem_from_cells_budgeted(
                query.attr, &target, cells, stats, closed, warm, budget,
            )?;
            return engine.bound_problem(query.agg, &problem);
        }

        // Compositional serve: only shards whose boxes the query region
        // touches pay specialization; an untouched shard contributes an
        // empty slice (no satisfiable cell of it meets the region), and a
        // shard wholly *inside* the region shares its domain-wide cells
        // verbatim — offering its cached per-aggregate summary too.
        let mut slices = Vec::with_capacity(sharded.shards().len());
        for shard in sharded.shards() {
            if !shard.touches(&target) {
                slices.push(ShardSlice {
                    sub: Arc::clone(shard.set()),
                    members: shard.members().to_vec(),
                    cells: Vec::new(),
                    stats: DecomposeStats::default(),
                    cache: None,
                });
                continue;
            }
            let contained = shard.contained_in(&target);
            let mut slice_stats = DecomposeStats::default();
            let cells = if contained {
                // every member box ⊆ target ⇒ every cell region ⊆ target:
                // specialization is the identity, share without the scan
                shard.cells().cells().to_vec()
            } else {
                shard.cells().specialize_budgeted(
                    shard.set(),
                    &target,
                    &mut slice_stats,
                    engine.par_witness(),
                    budget,
                )
            };
            slices.push(ShardSlice {
                sub: Arc::clone(shard.set()),
                members: shard.members().to_vec(),
                cells,
                stats: slice_stats,
                cache: contained.then(|| Arc::clone(shard)),
            });
        }
        let closed = self.closed_within(&sharded, set, &target, &engine, budget);
        engine.bound_sharded(
            query,
            &target,
            closed,
            false,
            slices,
            sharded.stats(),
            warm,
            budget,
        )
    }

    /// The hoisted per-query closure verdict — identical ladder for the
    /// flat and sharded serve paths (closure is a global question).
    fn closed_within(
        &self,
        sharded: &ShardedCellSet,
        set: &PcSet,
        target: &pc_predicate::Region,
        engine: &BoundEngine<'_>,
        budget: &QueryBudget,
    ) -> bool {
        if !engine.options().check_closure || sharded.closed() {
            // hoisted: a sub-region of a closed base is closed
            true
        } else if sharded.uncovered().is_some_and(|w| target.contains_row(w)) {
            // the cached counterexample lies inside the query: provably
            // not closed, no SAT call
            false
        } else if !budget.proceed() {
            // out of budget: the skipped check answers "open" — sound
            false
        } else {
            // non-closed epoch, but the query region may dodge the
            // uncovered part — one exact check decides
            set.is_closed_within_with(target, engine.par_witness())
        }
    }

    /// Bound a batch of queries, each as its own stealable pool task;
    /// results come back in input order. The **whole batch pins one
    /// epoch** — a concurrent mutation affects either every result or
    /// none (tested in `tests/prop_epoch.rs`). The cell cache is primed
    /// once before the fan-out so the workers specialize instead of
    /// racing to decompose.
    pub fn bound_many(&self, queries: &[AggQuery]) -> Vec<Result<BoundReport, BoundError>> {
        self.bound_many_budgeted(queries, &QueryBudget::unlimited())
    }

    /// [`Session::bound_many`] under one [`QueryBudget`] shared by the
    /// whole batch: every query's SAT checks and branch-and-bound nodes
    /// charge the same meter, and a deadline cuts the *batch*, not each
    /// query separately. Tripped queries degrade individually (sound,
    /// wider, [`BoundReport::degraded`] set) — the batch always returns
    /// one result per query, in input order.
    ///
    /// Each query runs behind a panic boundary: a query whose solve
    /// panics comes back as [`BoundError::Panicked`] while its siblings,
    /// the session, and the epoch cache stay intact (the panicking
    /// worker's warm-cache slot is cleared on next use, so no torn
    /// solver state survives).
    pub fn bound_many_budgeted(
        &self,
        queries: &[AggQuery],
        budget: &QueryBudget,
    ) -> Vec<Result<BoundReport, BoundError>> {
        self.bound_many_stamped(queries, budget).1
    }

    /// [`Session::bound_many_budgeted`], additionally returning the
    /// number of the single epoch the whole batch was answered from (the
    /// batch pins exactly once — snapshot isolation, property-tested in
    /// `prop_epoch.rs`), for serving tiers that stamp responses.
    pub fn bound_many_stamped(
        &self,
        queries: &[AggQuery],
        budget: &QueryBudget,
    ) -> (u64, Vec<Result<BoundReport, BoundError>>) {
        let epoch = self.pin();
        if self.options.cache_cells && !queries.is_empty() {
            // Prime the OnceLock up front; a per-query error replays
            // below. (Budgeted: a degraded build stays unpublished and
            // each worker rebuilds-or-degrades for itself.)
            let _ = self.cells_of_budgeted(&epoch, budget);
        }
        let engine = BoundEngine::with_options(&epoch.set, self.options.bound);
        let threads = engine.task_threads(queries.len());
        // Tag the fan-out with the batch's deadline: every per-query task
        // lands in the pool's EDF lane and is served by urgency against
        // other batches' tasks (`bound_on` re-tags per query anyway, but
        // the *spawns* themselves must carry the stamp to be prioritized).
        let tag = if self.options.deadline_sched {
            budget.deadline()
        } else {
            None
        };
        let results = rayon::with_task_deadline(tag, || {
            pooled_map_catch(queries, threads, &|query| {
                self.bound_on(&epoch, query, self.warm.for_current_worker(), budget)
            })
        })
        .into_iter()
        .map(|result| result.unwrap_or(Err(BoundError::Panicked)))
        .collect();
        (epoch.number, results)
    }

    /// Bound a GROUP-BY against the epoch current at the call. The
    /// two-level shared decomposition amortizes level 1 across the keys
    /// of one call (see [`BoundEngine::bound_group_by`]); the session
    /// goes further and derives the level-1 shared cells **from the
    /// epoch's domain-wide cell cache** — the key-local constraints
    /// retire in one zero-SAT pass — so repeated GROUP-BY calls against
    /// one epoch never re-run the level-1 decomposition at all.
    pub fn bound_group_by(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
    ) -> Vec<GroupBound> {
        self.bound_group_by_budgeted(base, group_attr, keys, &QueryBudget::unlimited())
    }

    /// [`Session::bound_group_by`] under one [`QueryBudget`] shared by
    /// the shared decomposition and every group's splice and solve — see
    /// [`BoundEngine::bound_group_by_budgeted`] for the per-group
    /// degradation ladder.
    pub fn bound_group_by_budgeted(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
        budget: &QueryBudget,
    ) -> Vec<GroupBound> {
        self.bound_group_by_stamped(base, group_attr, keys, budget)
            .1
    }

    /// [`Session::bound_group_by_budgeted`], additionally returning the
    /// number of the single epoch every group was answered from, for
    /// serving tiers that stamp responses.
    pub fn bound_group_by_stamped(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
        budget: &QueryBudget,
    ) -> (u64, Vec<GroupBound>) {
        let epoch = self.pin();
        let deadline = budget.deadline();
        // Admission judges the whole call as one unit (the keys share the
        // level-1 decomposition, so per-key admission would double-count
        // the shared work); a Shed verdict answers every key from a
        // pre-tripped budget, Degraded drops branch & bound for the call
        // (closure stays budget-governed — see `bound_on` on why forcing
        // `check_closure` off would be unsound). Per-key tasks inherit
        // the deadline tag.
        let keys: Vec<f64> = keys.into_iter().collect();
        let mut opts = self.options.bound;
        let shed_budget;
        let mut run_budget = budget;
        let permit = if self.options.admission && deadline.is_some() {
            let factor = self.cost_factor(&epoch, base) * (keys.len().max(1) as f64);
            let permit = self.pressure.admit(factor, deadline);
            match permit.verdict() {
                AdmissionVerdict::Exact => {}
                AdmissionVerdict::Degraded => {
                    opts.lp_relax_cell_limit = 0;
                }
                AdmissionVerdict::Shed => {
                    opts.lp_relax_cell_limit = 0;
                    shed_budget = QueryBudget::pre_tripped(TripReason::Deadline);
                    run_budget = &shed_budget;
                }
            }
            Some(permit)
        } else {
            None
        };
        let engine = BoundEngine::with_options(&epoch.set, opts);
        engine.set_estimates(Arc::clone(&epoch.estimates));
        // Serve level 1 from the epoch cache when it is (or can be) built
        // clean; a degraded build stays unpublished and this call falls
        // back to the engine's own level-1 decomposition.
        let cached = if self.options.cache_cells && self.options.bound.shared_group_by {
            self.cells_of_budgeted(&epoch, run_budget)
                .ok()
                .filter(|_| !run_budget.is_tripped())
                .map(|sharded| sharded.flatten(&epoch.set))
        } else {
            None
        };
        let tag = if self.options.deadline_sched {
            deadline
        } else {
            None
        };
        let bounds = rayon::with_task_deadline(tag, || {
            engine.bound_group_by_cached(base, group_attr, keys, cached.as_deref(), run_budget)
        });
        if let Some(permit) = permit {
            permit.complete();
        }
        (epoch.number, bounds)
    }
}

// ----------------------------------------------------------------------
// Multi-tenant registry
// ----------------------------------------------------------------------

/// The tenant name already has a catalog ([`SessionRegistry::create`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantExists(pub String);

impl std::fmt::Display for TenantExists {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant `{}` already exists", self.0)
    }
}

impl std::error::Error for TenantExists {}

/// In-flight bookkeeping behind [`SessionRegistry`]'s drain protocol:
/// how many queries are running, and the cancel token of each (keyed by
/// a registry-issued serial so drops are exact under concurrency).
#[derive(Default)]
struct Inflight {
    count: usize,
    tokens: HashMap<u64, CancelToken>,
}

/// A multi-tenant catalog directory plus the serving tier's **drain
/// protocol** — the piece of graceful shutdown that must live next to
/// the sessions rather than in the network layer.
///
/// * **Tenants**: one [`Session`] per name, created/dropped/listed under
///   a `RwLock` (reads are the per-request lookup path; mutations are
///   rare admin verbs). Each tenant owns its catalog, its epochs, its
///   warm caches, and its own [`PressureGauge`] — one tenant's overload
///   sheds *its* queries, not its neighbors'.
/// * **Drain**: every query registers via [`SessionRegistry::begin_query`]
///   before running and holds the returned [`QueryGuard`] for its
///   duration. [`SessionRegistry::begin_drain`] flips the registry into
///   draining (all later `begin_query` calls answer `None` — reject new
///   work) and fires the [`CancelToken`] of every in-flight query, which
///   trips their budgets at the next granule — they finish early with
///   sound degraded answers. [`SessionRegistry::drained_within`] then
///   waits (bounded) for the guards to drop.
pub struct SessionRegistry {
    tenants: RwLock<HashMap<String, Arc<Session>>>,
    inflight: Mutex<Inflight>,
    idle: Condvar,
    draining: AtomicBool,
    next_query: AtomicU64,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        SessionRegistry::new()
    }
}

impl SessionRegistry {
    /// An empty registry, accepting work.
    pub fn new() -> Self {
        SessionRegistry {
            tenants: RwLock::new(HashMap::new()),
            inflight: Mutex::new(Inflight::default()),
            idle: Condvar::new(),
            draining: AtomicBool::new(false),
            next_query: AtomicU64::new(0),
        }
    }

    /// Register `session` under `name`. Errors if the name is taken —
    /// admin verbs should fail loudly, not silently swap a live catalog
    /// out from under its connections.
    pub fn create(&self, name: &str, session: Session) -> Result<Arc<Session>, TenantExists> {
        let mut tenants = self.tenants.write().unwrap();
        if tenants.contains_key(name) {
            return Err(TenantExists(name.to_string()));
        }
        let session = Arc::new(session);
        tenants.insert(name.to_string(), Arc::clone(&session));
        Ok(session)
    }

    /// Drop the tenant; `true` if it existed. Connections still holding
    /// the `Arc` finish their in-flight queries against the final epoch;
    /// new lookups fail.
    pub fn drop_tenant(&self, name: &str) -> bool {
        self.tenants.write().unwrap().remove(name).is_some()
    }

    /// The tenant's session, if registered.
    pub fn get(&self, name: &str) -> Option<Arc<Session>> {
        self.tenants.read().unwrap().get(name).cloned()
    }

    /// Registered tenant names, sorted (stable listing for the wire).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tenants.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of queries currently in flight (guards alive).
    pub fn inflight(&self) -> usize {
        self.inflight.lock().unwrap().count
    }

    /// Whether [`SessionRegistry::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Admit one query into the in-flight set: `None` once draining
    /// (callers answer "shutting down" and send no work), otherwise a
    /// guard whose drop retires the query. The budget's [`CancelToken`]
    /// — if armed — is held for the guard's lifetime so a later drain
    /// can trip the query mid-run.
    pub fn begin_query(&self, budget: &QueryBudget) -> Option<QueryGuard<'_>> {
        let mut inflight = self.inflight.lock().unwrap();
        // Checked under the lock: `begin_drain` fires tokens under the
        // same lock, so a query admitted here is either cancelled by the
        // drain or finishes before the drain observes the set — never
        // missed.
        if self.is_draining() {
            return None;
        }
        let key = self.next_query.fetch_add(1, Ordering::Relaxed);
        inflight.count += 1;
        if let Some(token) = budget.cancel_token() {
            inflight.tokens.insert(key, token);
        }
        Some(QueryGuard {
            registry: self,
            key,
        })
    }

    /// Stop accepting queries and cancel every in-flight one. Idempotent.
    pub fn begin_drain(&self) {
        let inflight = self.inflight.lock().unwrap();
        self.draining.store(true, Ordering::SeqCst);
        for token in inflight.tokens.values() {
            token.cancel();
        }
    }

    /// Wait (bounded) for the in-flight set to empty. `true` when every
    /// query retired inside `timeout`; `false` means something is still
    /// running — the caller decides whether to detach or keep waiting.
    pub fn drained_within(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut inflight = self.inflight.lock().unwrap();
        while inflight.count > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, wait) = self.idle.wait_timeout(inflight, left).unwrap();
            inflight = guard;
            if wait.timed_out() && inflight.count > 0 {
                return false;
            }
        }
        true
    }
}

/// Liveness token for one in-flight query (see
/// [`SessionRegistry::begin_query`]); drop it when the query's response
/// is written.
pub struct QueryGuard<'a> {
    registry: &'a SessionRegistry,
    key: u64,
}

impl Drop for QueryGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = self.registry.inflight.lock().unwrap();
        inflight.count -= 1;
        inflight.tokens.remove(&self.key);
        if inflight.count == 0 {
            self.registry.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyConstraint, PcSet, PredicateConstraint, Strategy, ValueConstraint};
    use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
    use pc_storage::{AggKind, AggQuery};

    fn schema() -> Schema {
        Schema::new(vec![("utc", AttrType::Int), ("price", AttrType::Float)])
    }

    fn pc_utc(lo: f64, hi: f64, price_hi: f64, freq: FrequencyConstraint) -> PredicateConstraint {
        PredicateConstraint::new(
            Predicate::atom(Atom::bucket(0, lo, hi)),
            ValueConstraint::none().with(1, Interval::closed(0.99, price_hi)),
            freq,
        )
    }

    fn overlapping_set() -> PcSet {
        let mut set = PcSet::new(schema())
            .with(pc_utc(
                11.0,
                12.0,
                129.99,
                FrequencyConstraint::between(50, 100),
            ))
            .with(pc_utc(
                11.0,
                13.0,
                149.99,
                FrequencyConstraint::between(75, 125),
            ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(11.0, 13.0));
        set.set_domain(domain);
        set
    }

    fn queries() -> Vec<AggQuery> {
        vec![
            AggQuery::new(AggKind::Sum, 1, Predicate::always()),
            AggQuery::count(Predicate::always()),
            AggQuery::count(Predicate::atom(Atom::bucket(0, 11.0, 12.0))),
            AggQuery::new(
                AggKind::Sum,
                1,
                Predicate::atom(Atom::bucket(0, 12.0, 13.0)),
            ),
            AggQuery::new(AggKind::Avg, 1, Predicate::always()),
            AggQuery::new(AggKind::Max, 1, Predicate::always()),
        ]
    }

    /// Fresh-engine oracle against the session's current catalog.
    fn assert_matches_fresh(session: &Session, qs: &[AggQuery]) {
        let set = session.pc_set();
        let engine = BoundEngine::new(&set);
        for q in qs {
            let fresh = engine.bound(q);
            let served = session.bound(q);
            match (&fresh, &served) {
                (Ok(a), Ok(b)) => {
                    assert!(
                        (a.range.lo - b.range.lo).abs() < 1e-5
                            || (a.range.lo.is_infinite() && a.range.lo == b.range.lo),
                        "{q:?}: fresh {:?} vs served {:?}",
                        a.range,
                        b.range
                    );
                    assert!(
                        (a.range.hi - b.range.hi).abs() < 1e-5
                            || (a.range.hi.is_infinite() && a.range.hi == b.range.hi),
                        "{q:?}: fresh {:?} vs served {:?}",
                        a.range,
                        b.range
                    );
                    assert_eq!(a.closed, b.closed, "{q:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{q:?}"),
                (a, b) => panic!("{q:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn session_matches_fresh_engine() {
        let session = Session::new(overlapping_set());
        assert_matches_fresh(&session, &queries());
    }

    #[test]
    fn repeated_queries_pay_no_new_sat_checks() {
        let session = Session::new(overlapping_set());
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let first = session.bound(&q).unwrap();
        let second = session.bound(&q).unwrap();
        assert_eq!(first.range, second.range);
        // the full-domain query is answered by sharing every cached cell:
        // the only sat_checks are the cached decomposition's own
        assert_eq!(
            second.stats.sat_checks,
            session.cell_set().unwrap().stats().sat_checks
        );
    }

    #[test]
    fn bound_many_preserves_order_and_results() {
        let session = Session::new(overlapping_set());
        let qs = queries();
        let batch = session.bound_many(&qs);
        assert_eq!(batch.len(), qs.len());
        for (q, got) in qs.iter().zip(&batch) {
            let want = session.bound(q);
            match (&want, got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.range, b.range, "{q:?}");
                    assert_eq!(a.closed, b.closed, "{q:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("{q:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn cache_disabled_still_matches() {
        let session = Session::with_options(
            overlapping_set(),
            SessionOptions {
                cache_cells: false,
                ..SessionOptions::default()
            },
        );
        assert_matches_fresh(&session, &queries());
    }

    #[test]
    fn non_closed_sets_reuse_the_cached_counterexample() {
        // constraints cover utc ∈ [11, 13) but the domain spans [11, 15):
        // the epoch is not closed and the session caches a witness of the
        // uncovered part
        let mut set = overlapping_set();
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(11.0, 15.0));
        set.set_domain(domain);
        let session = Session::new(set);

        let cs = session.cell_set().unwrap();
        let w = cs.uncovered().expect("epoch is not closed").to_vec();

        // a query containing the counterexample is non-closed for free; a
        // query dodging the uncovered part pays one exact check — both
        // must match the fresh engine
        assert_matches_fresh(
            &session,
            &[
                AggQuery::count(Predicate::always()),
                AggQuery::count(Predicate::atom(Atom::bucket(0, 11.0, 12.0))),
            ],
        );
        // sanity on the cached point itself
        let set = session.pc_set();
        assert!(set.domain().contains_row(&w));
        for pc in set.constraints() {
            assert!(!pc.predicate.eval(&w));
        }
    }

    #[test]
    fn naive_overflow_surfaces_per_query() {
        let mut set = PcSet::new(schema());
        for i in 0..(crate::decompose::NAIVE_LIMIT + 1) {
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, i as f64, i as f64 + 2.0)),
                ValueConstraint::none(),
                FrequencyConstraint::at_most(5),
            ));
        }
        let session = Session::with_options(
            set,
            SessionOptions {
                bound: BoundOptions {
                    strategy: Strategy::Naive,
                    ..BoundOptions::default()
                },
                ..SessionOptions::default()
            },
        );
        let q = AggQuery::count(Predicate::always());
        assert!(matches!(session.bound(&q), Err(BoundError::Decompose(_))));
        // and again — the cached error replays without re-decomposing
        assert!(session.bound(&q).is_err());
    }

    // ------------------------------------------------------------------
    // Catalog mutations
    // ------------------------------------------------------------------

    #[test]
    fn ids_and_epochs_are_stable() {
        let session = Session::new(overlapping_set());
        assert_eq!(session.epoch(), 0);
        assert_eq!(
            session.constraint_ids(),
            vec![ConstraintId(0), ConstraintId(1)]
        );
        let id = session.add_constraint(pc_utc(12.0, 13.0, 80.0, FrequencyConstraint::at_most(60)));
        assert_eq!(id, ConstraintId(2));
        assert_eq!(session.epoch(), 1);
        session.retire_constraint(ConstraintId(0)).unwrap();
        assert_eq!(session.epoch(), 2);
        assert_eq!(
            session.constraint_ids(),
            vec![ConstraintId(1), ConstraintId(2)]
        );
        // retired ids are gone for good
        assert_eq!(
            session.retire_constraint(ConstraintId(0)),
            Err(UnknownConstraint(ConstraintId(0)))
        );
        // display + parse round-trip
        assert_eq!(id.to_string(), "c2");
        assert_eq!("c2".parse::<ConstraintId>().unwrap(), id);
        assert_eq!("2".parse::<ConstraintId>().unwrap(), id);
        assert!("x2".parse::<ConstraintId>().is_err());
    }

    #[test]
    fn add_and_retire_match_fresh_engine() {
        let session = Session::new(overlapping_set());
        let qs = queries();
        // prime the epoch so mutations derive incrementally
        session.cell_set().unwrap();
        assert_matches_fresh(&session, &qs);

        let id = session.add_constraint(pc_utc(11.5, 12.5, 90.0, FrequencyConstraint::at_most(40)));
        assert_matches_fresh(&session, &qs);
        // the derived epoch really was incremental, not a rebuild
        let stats = session.cell_set().unwrap().stats();
        assert!(stats.incremental_splits > 0, "{stats:?}");

        session.retire_constraint(id).unwrap();
        assert_matches_fresh(&session, &qs);
        assert_eq!(session.cell_set().unwrap().stats().sat_checks, 0);

        let replaced = session
            .replace_constraint(
                ConstraintId(0),
                pc_utc(11.0, 12.0, 110.0, FrequencyConstraint::between(40, 90)),
            )
            .unwrap();
        assert_eq!(session.constraint_ids(), vec![ConstraintId(1), replaced]);
        assert_matches_fresh(&session, &qs);
    }

    #[test]
    fn closure_verdict_tracks_churn() {
        // start closed; retiring the wide cover opens a hole; adding it
        // back closes it again — all against the fresh oracle
        let session = Session::new(overlapping_set());
        session.cell_set().unwrap();
        assert!(session.cell_set().unwrap().closed());

        session.retire_constraint(ConstraintId(1)).unwrap();
        let cs = session.cell_set().unwrap();
        assert!(!cs.closed(), "retiring the [11,13) cover must open a hole");
        let w = cs.uncovered().unwrap();
        assert!(session.pc_set().domain().contains_row(w));
        assert_matches_fresh(&session, &[AggQuery::count(Predicate::always())]);

        session.add_constraint(pc_utc(
            11.0,
            13.0,
            149.99,
            FrequencyConstraint::between(75, 125),
        ));
        assert!(session.cell_set().unwrap().closed());
        assert_matches_fresh(&session, &queries());
    }

    #[test]
    fn mutations_before_first_query_stay_lazy() {
        let session = Session::new(overlapping_set());
        let id = session.add_constraint(pc_utc(12.0, 13.0, 80.0, FrequencyConstraint::at_most(60)));
        session.retire_constraint(id).unwrap();
        assert_eq!(session.epoch(), 2);
        // nothing was decomposed yet; the first query decomposes the
        // current catalog directly (no derivation chain to pay)
        assert_matches_fresh(&session, &queries());
        assert_eq!(session.cell_set().unwrap().stats().incremental_splits, 0);
    }

    #[test]
    fn degraded_epoch_build_is_never_published() {
        let session = Session::new(overlapping_set());
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let exact = BoundEngine::new(&session.pc_set()).bound(&q).unwrap();

        // Cold epoch + starved budget: the build degrades to frontier
        // cells, the query still answers a sound (wider) range…
        let budget = QueryBudget::armed().with_sat_cap(0);
        let r = session.bound_budgeted(&q, &budget).unwrap();
        assert!(budget.is_tripped());
        assert!(r.degraded);
        assert!(
            r.range.lo <= exact.range.lo + 1e-9 && r.range.hi >= exact.range.hi - 1e-9,
            "degraded {:?} must contain exact {:?}",
            r.range,
            exact.range
        );

        // …and the degraded cell set was thrown away: the next unbudgeted
        // query builds (and publishes) a clean epoch.
        let clean = session.bound(&q).unwrap();
        assert!(!clean.degraded);
        assert!((clean.range.lo - exact.range.lo).abs() < 1e-5);
        assert!((clean.range.hi - exact.range.hi).abs() < 1e-5);
        assert_eq!(session.cell_set().unwrap().stats().frontier_cells, 0);
    }

    #[test]
    fn warm_epoch_serves_budgeted_queries_from_the_cache() {
        let session = Session::new(overlapping_set());
        session.cell_set().unwrap(); // publish a clean epoch
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let exact = session.bound(&q).unwrap();
        // A warm epoch costs no decomposition, so a generous budget rides
        // the cache and stays exact.
        let budget = QueryBudget::armed()
            .with_sat_cap(10_000)
            .with_node_cap(1_000_000);
        let r = session.bound_budgeted(&q, &budget).unwrap();
        assert!(!r.degraded);
        assert_eq!(r.range, exact.range);
    }

    #[test]
    fn tripped_derivation_is_discarded_for_lazy_rebuild() {
        let session = Session::new(overlapping_set());
        session.cell_set().unwrap(); // prime so mutations derive
        let budget = QueryBudget::armed().with_sat_cap(1_000);
        budget.cancel_token().unwrap().cancel(); // trip before any work
        session.add_constraint_budgeted(
            pc_utc(11.5, 12.5, 90.0, FrequencyConstraint::at_most(40)),
            &budget,
        );
        assert_eq!(session.epoch(), 1, "the mutation itself always lands");
        // the discarded derivation forces a from-scratch (clean) rebuild
        let cells = session.cell_set().unwrap();
        assert_eq!(cells.stats().incremental_splits, 0);
        assert_eq!(cells.stats().frontier_cells, 0);
        assert_matches_fresh(&session, &queries());
    }

    #[test]
    fn budgeted_batch_degrades_but_answers_every_query() {
        let session = Session::new(overlapping_set());
        let qs = queries();
        let exact = session.bound_many(&qs);
        let budget = QueryBudget::armed().with_sat_cap(0);
        let degraded = session.bound_many_budgeted(&qs, &budget);
        assert_eq!(degraded.len(), qs.len());
        for (q, (e, d)) in qs.iter().zip(exact.iter().zip(&degraded)) {
            match (e, d) {
                (Ok(e), Ok(d)) => {
                    assert!(
                        d.range.lo <= e.range.lo + 1e-9 && d.range.hi >= e.range.hi - 1e-9,
                        "{q:?}: degraded {:?} must contain exact {:?}",
                        d.range,
                        e.range
                    );
                }
                // a starved query may degrade where the exact run errored
                // (EmptyAggregate proofs need SAT work) — but never the
                // other way around
                (Err(_), Ok(_)) => {}
                (Ok(e), Err(d)) => panic!("{q:?}: exact {e:?} but degraded errored {d:?}"),
                (Err(_), Err(_)) => {}
            }
        }
    }

    #[test]
    fn rebuild_ablation_matches_incremental() {
        let build = |incremental| {
            Session::with_options(
                overlapping_set(),
                SessionOptions {
                    incremental,
                    ..SessionOptions::default()
                },
            )
        };
        let fast = build(true);
        let slow = build(false);
        let qs = queries();
        for s in [&fast, &slow] {
            s.cell_set().unwrap();
            s.add_constraint(pc_utc(11.5, 12.5, 90.0, FrequencyConstraint::at_most(40)));
        }
        for q in &qs {
            let a = fast.bound(q).unwrap();
            let b = slow.bound(q).unwrap();
            assert!(
                (a.range.lo - b.range.lo).abs() < 1e-5 && (a.range.hi - b.range.hi).abs() < 1e-5,
                "{q:?}: {:?} vs {:?}",
                a.range,
                b.range
            );
        }
        // and the ablation really did rebuild: a fresh decomposition
        // reports no incremental splits and more SAT checks
        let inc = fast.cell_set().unwrap().stats();
        let reb = slow.cell_set().unwrap().stats();
        assert!(inc.incremental_splits > 0);
        assert_eq!(reb.incremental_splits, 0);
        assert!(inc.sat_checks < reb.sat_checks, "{inc:?} vs {reb:?}");
    }
}
