//! The session layer: serve many queries against one constraint set.
//!
//! [`BoundEngine::bound`] rebuilds the cell decomposition — the engine's
//! exponential-worst-case step — on every call. That is the right shape
//! for one-shot contingency questions and exactly the wrong shape for a
//! serving system answering heavy query traffic against one PC set. A
//! [`Session`] amortizes the expensive work across queries:
//!
//! * the constraint set is decomposed **once**, against its full domain,
//!   into an [`Arc`]-shared [`CellSet`] (built lazily on first use and
//!   reused by every subsequent query, including concurrent ones);
//! * each query is answered by **specializing** the cached cells to the
//!   query's region — interval intersections to drop and share cells,
//!   plus an exact SAT re-check for only the cells the region genuinely
//!   cuts (see [`crate::specialize`]);
//! * the base-level **closure verdict is hoisted**: a sub-region of a
//!   closed region is closed, so queries against a closed set skip the
//!   all-negated SAT check entirely; for a non-closed set the
//!   *counterexample point* is cached, so any query containing it is
//!   proven non-closed without a SAT call either — only queries that
//!   dodge the uncovered part pay an exact check;
//! * simplex **warm starts chain across queries**, not just within one:
//!   the session keeps per-worker [`WarmCaches`] alive for its whole
//!   lifetime, so the 80-probe AVG binary search of query *n + 1* starts
//!   from the state query *n* left behind. With
//!   [`crate::BoundOptions::tableau_carry`] (the default) each chain slot
//!   holds the whole **canonical tableau**, not just the basis: a
//!   successor LP with identical constraint structure (every probe of an
//!   AVG search; repeated traffic against the same specialization) is
//!   answered by re-pricing the carried tableau under its new objective —
//!   zero standardization, zero rebuild, zero crash pivots — and only a
//!   structural mismatch demotes the slot to its basis. The same knob
//!   carries parent tableaux into branch & bound children inside each
//!   allocation MILP (O(1) pivots per node; see `pc_solver::milp`), and
//!   [`crate::BoundReport::solver`] reports the carried/rebuilt/pivot
//!   counters per query.
//!
//! Specialization is exact (the module docs of [`crate::specialize`]
//! carry the argument), so a session returns the same ranges as a fresh
//! [`BoundEngine::bound`] of every query — property-tested in
//! `tests/prop_session.rs`. Under the approximate
//! [`crate::Strategy::EarlyStop`] the session may admit more unverified
//! cells than a per-query decomposition and report wider (still sound)
//! ranges.
//!
//! [`Session::bound_many`] runs a batch as stealable pool tasks (results
//! in input order); `pc batch` streams a query file through one session
//! from the command line, and the `query_throughput` bench records the
//! cold-vs-session speedup to `BENCH_serve.json`.

use crate::bounds::{pooled_map, WarmCache, WarmCaches};
use crate::specialize::CellSet;
use crate::{BoundEngine, BoundError, BoundOptions, BoundReport, GroupBound};
use pc_storage::AggQuery;
use std::sync::{Arc, OnceLock};

/// Session configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionOptions {
    /// Engine knobs shared by every query of the session.
    pub bound: BoundOptions,
    /// Decompose the full domain once and answer queries by specializing
    /// the cached cells (the default). Disabled, every query decomposes
    /// its own region from scratch — the cold baseline, kept as an honest
    /// A/B switch (`pc … --no-session-cache`); warm-start chaining across
    /// queries stays on either way unless `bound.warm_start` is off.
    pub cache_cells: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            bound: BoundOptions::default(),
            cache_cells: true,
        }
    }
}

/// A long-lived query-serving handle over one [`crate::PcSet`]: decompose
/// once, specialize per query, chain warm starts across queries. See the
/// module docs.
///
/// All methods take `&self`; a session is safe to share across threads
/// (the lazily built cell cache is a [`OnceLock`], the warm-start stores
/// are per-worker).
pub struct Session<'a> {
    engine: BoundEngine<'a>,
    cache_cells: bool,
    cells: OnceLock<Result<Arc<CellSet>, BoundError>>,
    warm: WarmCaches,
}

impl<'a> Session<'a> {
    /// A session with default options.
    pub fn new(set: &'a crate::PcSet) -> Self {
        Session::with_options(set, SessionOptions::default())
    }

    /// A session with explicit options.
    pub fn with_options(set: &'a crate::PcSet, options: SessionOptions) -> Self {
        Session {
            engine: BoundEngine::with_options(set, options.bound),
            cache_cells: options.cache_cells,
            cells: OnceLock::new(),
            warm: WarmCaches::new(options.bound.warm_start),
        }
    }

    /// The underlying engine (for one-off calls that bypass the cache).
    pub fn engine(&self) -> &BoundEngine<'a> {
        &self.engine
    }

    /// The session's cached domain-wide decomposition, built on first
    /// use. Fails with the decomposition's error (e.g. a
    /// [`crate::Strategy::Naive`] overflow), which every later query then
    /// reports too.
    pub fn cell_set(&self) -> Result<Arc<CellSet>, BoundError> {
        self.cells
            .get_or_init(|| {
                let set = self.engine.set;
                let base = set.domain().clone();
                let (cells, stats) = self.engine.cells_for_base(&base)?;
                // Cache the closure *counterexample*, not just the
                // verdict: a non-closed set would otherwise re-prove
                // non-closure with the widest SAT query on every bound.
                let uncovered = if self.engine.options.check_closure {
                    set.uncovered_witness_with(&base, self.engine.par_witness())
                } else {
                    None
                };
                Ok(Arc::new(CellSet::new(set, base, cells, stats, uncovered)))
            })
            .clone()
    }

    /// Compute the result range of one query, reusing the session's
    /// cached decomposition and warm-start chains. Returns exactly what
    /// [`BoundEngine::bound`] would (see the module docs).
    pub fn bound(&self, query: &AggQuery) -> Result<BoundReport, BoundError> {
        self.bound_with(query, self.warm.for_current_worker())
    }

    fn bound_with(
        &self,
        query: &AggQuery,
        warm: Option<WarmCache>,
    ) -> Result<BoundReport, BoundError> {
        if !self.cache_cells {
            // Cold cells, warm chains: the honest baseline for the cache
            // knob still benefits from cross-query basis reuse.
            return self.engine.bound_with_warm(query, warm);
        }
        let cell_set = self.cell_set()?;
        let set = self.engine.set;
        let mut target = query.predicate.to_region(set.schema());
        target.intersect(set.domain());

        let mut stats = cell_set.stats();
        let cells = cell_set.specialize(set, &target, &mut stats, self.engine.par_witness());
        stats.cells = cells.len();

        let closed = if !self.engine.options.check_closure || cell_set.closed() {
            // hoisted: a sub-region of a closed base is closed
            true
        } else if cell_set.uncovered().is_some_and(|w| target.contains_row(w)) {
            // the cached counterexample lies inside the query: provably
            // not closed, no SAT call
            false
        } else {
            // non-closed base, but the query region may dodge the
            // uncovered part — one exact check decides
            set.is_closed_within_with(&target, self.engine.par_witness())
        };
        let problem = self
            .engine
            .problem_from_cells(query.attr, &target, cells, stats, closed, warm)?;
        self.engine.bound_problem(query.agg, &problem)
    }

    /// Bound a batch of queries through the session, each as its own
    /// stealable pool task; results come back in input order. The cell
    /// cache is primed once before the fan-out so the workers specialize
    /// instead of racing to decompose.
    pub fn bound_many(&self, queries: &[AggQuery]) -> Vec<Result<BoundReport, BoundError>> {
        if self.cache_cells && !queries.is_empty() {
            // Prime the OnceLock up front; a per-query error replays below.
            let _ = self.cell_set();
        }
        let threads = self.engine.task_threads(queries.len());
        pooled_map(queries, threads, &|query| {
            self.bound_with(query, self.warm.for_current_worker())
        })
    }

    /// Bound a GROUP-BY through the session's engine: the two-level
    /// shared decomposition already amortizes level 1 across the keys of
    /// one call (see [`BoundEngine::bound_group_by`]); the session adds
    /// its configuration, not a second cache layer.
    pub fn bound_group_by(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
    ) -> Vec<GroupBound> {
        self.engine.bound_group_by(base, group_attr, keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyConstraint, PcSet, PredicateConstraint, Strategy, ValueConstraint};
    use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
    use pc_storage::AggKind;

    fn schema() -> Schema {
        Schema::new(vec![("utc", AttrType::Int), ("price", AttrType::Float)])
    }

    fn overlapping_set() -> PcSet {
        let mut set = PcSet::new(schema())
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 11.0, 12.0)),
                ValueConstraint::none().with(1, Interval::closed(0.99, 129.99)),
                FrequencyConstraint::between(50, 100),
            ))
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 11.0, 13.0)),
                ValueConstraint::none().with(1, Interval::closed(0.99, 149.99)),
                FrequencyConstraint::between(75, 125),
            ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(11.0, 13.0));
        set.set_domain(domain);
        set
    }

    fn queries() -> Vec<AggQuery> {
        vec![
            AggQuery::new(AggKind::Sum, 1, Predicate::always()),
            AggQuery::count(Predicate::always()),
            AggQuery::count(Predicate::atom(Atom::bucket(0, 11.0, 12.0))),
            AggQuery::new(
                AggKind::Sum,
                1,
                Predicate::atom(Atom::bucket(0, 12.0, 13.0)),
            ),
            AggQuery::new(AggKind::Avg, 1, Predicate::always()),
            AggQuery::new(AggKind::Max, 1, Predicate::always()),
        ]
    }

    #[test]
    fn session_matches_fresh_engine() {
        let set = overlapping_set();
        let session = Session::new(&set);
        let engine = BoundEngine::new(&set);
        for q in queries() {
            let fresh = engine.bound(&q).unwrap();
            let served = session.bound(&q).unwrap();
            assert_eq!(fresh.range, served.range, "{q:?}");
            assert_eq!(fresh.closed, served.closed, "{q:?}");
        }
    }

    #[test]
    fn repeated_queries_pay_no_new_sat_checks() {
        let set = overlapping_set();
        let session = Session::new(&set);
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let first = session.bound(&q).unwrap();
        let second = session.bound(&q).unwrap();
        assert_eq!(first.range, second.range);
        // the full-domain query is answered by sharing every cached cell:
        // the only sat_checks are the cached decomposition's own
        assert_eq!(
            second.stats.sat_checks,
            session.cell_set().unwrap().stats().sat_checks
        );
    }

    #[test]
    fn bound_many_preserves_order_and_results() {
        let set = overlapping_set();
        let session = Session::new(&set);
        let qs = queries();
        let batch = session.bound_many(&qs);
        assert_eq!(batch.len(), qs.len());
        for (q, got) in qs.iter().zip(&batch) {
            let want = session.bound(q);
            match (&want, got) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.range, b.range, "{q:?}");
                    assert_eq!(a.closed, b.closed, "{q:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b),
                (a, b) => panic!("{q:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn cache_disabled_still_matches() {
        let set = overlapping_set();
        let session = Session::with_options(
            &set,
            SessionOptions {
                cache_cells: false,
                ..SessionOptions::default()
            },
        );
        let engine = BoundEngine::new(&set);
        for q in queries() {
            let fresh = engine.bound(&q).unwrap();
            let served = session.bound(&q).unwrap();
            assert_eq!(fresh.range, served.range, "{q:?}");
        }
    }

    #[test]
    fn non_closed_sets_reuse_the_cached_counterexample() {
        // constraints cover utc ∈ [11, 13) but the domain spans [11, 15):
        // the base is not closed and the session caches a witness of the
        // uncovered part
        let mut set = overlapping_set();
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(11.0, 15.0));
        set.set_domain(domain);
        let session = Session::new(&set);
        let engine = BoundEngine::new(&set);

        let w = session.cell_set().unwrap();
        let w = w.uncovered().expect("base is not closed").to_vec();

        // a query containing the counterexample is non-closed for free; a
        // query dodging the uncovered part pays one exact check — both
        // must match the fresh engine
        for q in [
            AggQuery::count(Predicate::always()),
            AggQuery::count(Predicate::atom(Atom::bucket(0, 11.0, 12.0))),
        ] {
            let fresh = engine.bound(&q).unwrap();
            let served = session.bound(&q).unwrap();
            assert_eq!(fresh.closed, served.closed, "{q:?}");
            assert_eq!(fresh.range, served.range, "{q:?}");
        }
        // sanity on the cached point itself
        assert!(set.domain().contains_row(&w));
        for pc in set.constraints() {
            assert!(!pc.predicate.eval(&w));
        }
    }

    #[test]
    fn naive_overflow_surfaces_per_query() {
        let mut set = PcSet::new(schema());
        for i in 0..(crate::decompose::NAIVE_LIMIT + 1) {
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, i as f64, i as f64 + 2.0)),
                ValueConstraint::none(),
                FrequencyConstraint::at_most(5),
            ));
        }
        let session = Session::with_options(
            &set,
            SessionOptions {
                bound: BoundOptions {
                    strategy: Strategy::Naive,
                    ..BoundOptions::default()
                },
                ..SessionOptions::default()
            },
        );
        let q = AggQuery::count(Predicate::always());
        assert!(matches!(session.bound(&q), Err(BoundError::Decompose(_))));
        // and again — the cached error replays without re-decomposing
        assert!(session.bound(&q).is_err());
    }
}
