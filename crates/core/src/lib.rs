//! The Predicate-Constraint (PC) framework — the paper's primary
//! contribution.
//!
//! A [`PredicateConstraint`] states: *"for all missing rows satisfying
//! predicate ψ, their attribute values lie in the ranges ν, and between kl
//! and ku such rows exist"* (Definition 3.1). A [`PcSet`] collects such
//! constraints; the [`BoundEngine`] computes the deterministic **result
//! range** — the min and max value any `COUNT / SUM / AVG / MIN / MAX`
//! aggregate query could take over all missing-data instances consistent
//! with the set (§4), via:
//!
//! 1. **Cell decomposition** ([`decompose()`](decompose())) of possibly-overlapping
//!    predicates into disjoint satisfiable cells, with the paper's four
//!    optimizations: query-predicate pushdown, DFS prefix pruning, the
//!    `X ∧ ¬Y` rewrite, and approximate early stopping — plus a parallel
//!    fork/join driver ([`decompose::decompose_with`]) that forks every
//!    surviving include/exclude split above a small sequential cutoff as
//!    stealable tasks on the work-stealing pool, with bit-identical
//!    results, bitset cell signatures ([`ActiveSet`]), and
//!    clone-on-tighten region sharing.
//! 2. A **mixed-integer linear program** (§4.2) allocating rows to cells,
//!    solved by `pc-solver`, with the greedy fast path for disjoint sets
//!    and simplex **warm starts** chained across related solves.
//! 3. **Join bounds** (§5): the naive Cartesian-product bound and the
//!    tighter fractional-edge-cover bound derived from Friedgut's
//!    generalized weighted entropy inequality.
//! 4. **Incremental GROUP-BY** ([`BoundEngine::bound_group_by`]): a
//!    two-level scheme — shared constraints decomposed once, each key's
//!    group-local constraints spliced into its specialized slice, groups
//!    solved in parallel — instead of a from-scratch decomposition per
//!    key.
//! 5. **Sharded decomposition** ([`shard`]): the cell set is factored
//!    over the connected components of the **constraint-interaction
//!    graph** (union-find over pairwise attribute-box overlap). Each
//!    component ("shard") decomposes independently as a parallel pool
//!    task, so the exponential decomposition cost is paid per shard,
//!    not for the whole catalog; `COUNT`/`SUM` bounds combine as sums
//!    of per-shard block-diagonal allocations, a query region only
//!    specializes the shards it geometrically touches, and a shard
//!    fully inside the region answers from its cached domain-wide
//!    interval. Heavy shards re-order their constraints along quantile
//!    boundaries before decomposing (skew-aware re-splitting).
//! 6. A **versioned session layer** ([`Session`]) for serving query
//!    traffic under constraint churn: the session owns a catalog of
//!    stable [`ConstraintId`]s, each mutation
//!    ([`Session::add_constraint`] / [`Session::retire_constraint`] /
//!    [`Session::replace_constraint`]) produces a new **epoch** whose
//!    `Arc`-shared [`specialize::CellSet`] is *derived incrementally*
//!    from the previous one (only cells the churned constraint's box
//!    cuts are re-checked; a retire is SAT-free), queries pin the epoch
//!    they start on (snapshot isolation), each query specializes the
//!    pinned cells to its region, and simplex warm starts chain *across*
//!    queries and epochs through per-worker caches (a churned LP adapts
//!    the carried tableau by one appended/deleted row).
//!    [`Session::bound_many`] fans a batch out over the work-stealing
//!    pool against a single pinned epoch.
//!    Epoch derivation is **shard-local**: a mutation re-derives only
//!    the shard(s) its box overlaps, the rest carry by `Arc`.
//! 7. **Estimate-guided search ordering** ([`estimate`]): per-constraint
//!    selectivity estimates on the catalog — normalized box volume,
//!    per-attribute width ratios, and a live split-survival counter —
//!    maintained incrementally with the session's epoch deltas and
//!    recombined per shard. All three searches consume them: the
//!    decomposition decides the most selective constraint first (DFS
//!    prefix pruning kills subtrees before the uninformative splits
//!    multiply them), the allocation MILP branches on the most selective
//!    cells' variables (fractionality × weight), and the witness search
//!    tries the most satisfiable-looking disjunct first. Ordering is a
//!    visit-order permutation only — cells, verdicts, bounds, and
//!    closure flags are bit-identical with it on or off
//!    ([`BoundOptions::ordering`]); the win is counted in SAT checks
//!    and branch & bound nodes ([`DecomposeStats::ordered_splits`],
//!    [`LpWork::incumbent_first`]). A budget-tripped run stages
//!    but never publishes its survival history — the unpublished-epoch
//!    rule applied to estimates.
//! 8. **Budgets and graceful degradation** ([`QueryBudget`], re-exported
//!    from [`budget`]): every engine entry point has a `_budgeted`
//!    variant accepting a deadline / SAT-check cap / branch & bound node
//!    cap / [`CancelToken`], checked cooperatively at task-granule
//!    boundaries through the whole stack. A tripped budget never errors
//!    and never hangs: the decomposition emits its frontier un-split,
//!    SAT probes are admitted unverified (the EarlyStop argument), the
//!    MILP falls back to its LP relaxation, and the answer comes back
//!    sound-but-wider with [`BoundReport::degraded`] set. A batch panics
//!    one query at a time ([`BoundError::Panicked`]) behind per-task
//!    unwind boundaries, and a degraded or interrupted epoch build is
//!    never published to the session's cell cache. See [`budget`] for
//!    the granularity guarantee and the degradation ladder.
//! 9. **Deadline-aware scheduling, admission control, and load
//!    shedding** ([`SessionOptions::deadline_sched`] /
//!    [`SessionOptions::admission`]): armed deadlines drive task order —
//!    a session fan-out tags its pool jobs with the query deadline and
//!    the vendored pool serves tagged work earliest-deadline-first
//!    (stealing respects priority: a worker blocked in a join only takes
//!    external work at least as urgent as what it is waiting on). In
//!    front of the pool, a **pressure gauge** ([`Session::pressure`],
//!    [`pc_budget::pressure`]) tracks per-verdict cost EWMAs and the
//!    aggregate deadline-keyed backlog, corrected by a learned
//!    drain-rate multiplier; each arrival is admitted **exact**,
//!    admitted **early-degraded** (LP-relaxation rung — closure checks
//!    are never skipped), or **shed** when even the degraded estimate
//!    cannot meet the deadline. A shed query still answers — it runs the
//!    pre-tripped one-granule walk (memoized per epoch), so its wider
//!    range stays sound and its latency stays flat. A pop-time
//!    feasibility re-check demotes stale admissions, and every query
//!    carries a [`SchedReport`] (verdict, queue wait, estimate) surfaced
//!    by `pc batch --stats`. Scheduling never moves an answer: EDF and
//!    FIFO orders are property-tested bit-identical, and shed/degraded
//!    ranges always contain the exact range.
//! 10. A **multi-tenant serving front-end** (`pc serve`, the `pc-serve`
//!     crate): a std-only TCP listener speaking a line-oriented text
//!     protocol over a [`SessionRegistry`] — one versioned [`Session`]
//!     catalog per tenant with stable `cN` constraint ids as the wire
//!     API. Query verbs fan onto the pool through each tenant's own
//!     admission gauge and serialize their [`SchedReport`]; mutation
//!     verbs interleave with in-flight reads under the epoch MVCC, and
//!     **every response stamps the epoch it answered from** (the
//!     `_stamped` session variants). The registry also owns the drain
//!     protocol behind graceful shutdown: draining rejects new work
//!     ([`SessionRegistry::begin_query`]) and fires the [`CancelToken`]
//!     of every in-flight query, which finish early with sound degraded
//!     answers. See the `pc-serve` crate docs for the wire reference.
//!
//! Parallelism, fan-out depth, and the group-by fast paths are all knobs
//! on [`BoundOptions`] (`threads`, `parallel_depth`, `shared_group_by`,
//! `warm_start`); under the exact strategies every configuration returns
//! identical bounds — the knobs trade machine resources for latency, not
//! accuracy. The one caveat is the deliberately approximate
//! [`Strategy::EarlyStop`], where the shared group-by path may admit more
//! unverified cells than per-key and report wider (still sound) ranges —
//! see [`BoundOptions::shared_group_by`].
//!
//! Constraints are *testable*: [`PcSet::validate`] checks a set against
//! historical data, returning every violation, which is the paper's
//! argument for reproducible contingency analysis.
//!
//! # Example
//!
//! The paper's §4.4 disjoint example, end to end:
//!
//! ```
//! use pc_core::*;
//! use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
//! use pc_storage::{AggKind, AggQuery};
//!
//! let schema = Schema::new(vec![("utc", AttrType::Int), ("price", AttrType::Float)]);
//! let mut set = PcSet::new(schema.clone());
//! // Nov-11: 50-100 sales, each in [0.99, 129.99]
//! set.push(PredicateConstraint::new(
//!     Predicate::atom(Atom::bucket(0, 11.0, 12.0)),
//!     ValueConstraint::none().with(1, Interval::closed(0.99, 129.99)),
//!     FrequencyConstraint::between(50, 100),
//! ));
//! // Nov-12: 50-100 sales, each in [0.99, 149.99]
//! set.push(PredicateConstraint::new(
//!     Predicate::atom(Atom::bucket(0, 12.0, 13.0)),
//!     ValueConstraint::none().with(1, Interval::closed(0.99, 149.99)),
//!     FrequencyConstraint::between(50, 100),
//! ));
//! let mut domain = Region::full(&schema);
//! domain.set_interval(0, Interval::half_open(11.0, 13.0));
//! set.set_domain(domain);
//!
//! let report = BoundEngine::new(&set)
//!     .bound(&AggQuery::new(AggKind::Sum, 1, Predicate::always()))
//!     .unwrap();
//! assert_eq!((report.range.lo, report.range.hi), (99.0, 27_998.0));
//! ```

#![warn(missing_docs)]

mod bounds;
mod cell;
mod constraint;
pub mod decompose;
pub mod dsl;
mod error;
pub mod estimate;
mod groupby;
pub mod join;
mod pcset;
mod session;
pub mod shard;
pub mod specialize;

pub use bounds::{
    BoundEngine, BoundOptions, BoundReport, LpWork, ResultRange, PARALLEL_MIN_CONSTRAINTS,
};
pub use cell::{ActiveSet, Cell};
pub use constraint::{FrequencyConstraint, PredicateConstraint, ValueConstraint};
pub use decompose::{
    decompose, decompose_with, DecomposeError, DecomposeStats, Parallelism, Strategy,
    PAR_SEQ_CUTOFF,
};
pub use dsl::{parse_constraint, parse_pcset};
pub use error::BoundError;
pub use estimate::{ConstraintEstimate, Estimates, SplitOrdering, SurvivalCounter};
pub use groupby::GroupBound;
pub use pc_budget as budget;
pub use pc_budget::pressure::{AdmissionVerdict, PressureGauge, PressureStats, SchedReport};
pub use pc_budget::{CancelToken, QueryBudget, TripReason};
pub use pcset::{PcSet, Violation};
pub use session::{
    ConstraintId, QueryGuard, Session, SessionOptions, SessionRegistry, ShedCacheStats,
    TenantExists, UnknownConstraint,
};
pub use shard::{interaction_components, Shard, ShardedCellSet, SHARD_RESPLIT_THRESHOLD};
pub use specialize::CellSet;
