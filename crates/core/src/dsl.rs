//! The paper's constraint notation as a parseable DSL, so constraint sets
//! can be written, versioned, and diffed as plain text — §1's argument
//! that PCs "can be checked, versioned, and tested just like any other
//! analysis code".
//!
//! One constraint per line, in the §3.1 notation:
//!
//! ```text
//! branch = 'Chicago' => 0.0 <= price AND price <= 149.99, (0, 5)
//! TRUE               => price <= 149.99, (0, 100)
//! 11 <= utc AND utc < 12 => 0.99 <= price AND price <= 129.99, (50, 100)
//! ```
//!
//! Grammar per line:
//!
//! ```text
//! constraint := pred '=>' ranges ',' '(' number ',' number ')'
//! pred       := TRUE | cond (AND cond)*
//! ranges     := TRUE | cond (AND cond)*
//! cond       := attr cmp literal | literal cmp attr | attr BETWEEN literal AND literal
//! ```
//!
//! Blank lines and `#` comments are skipped. Categorical labels resolve
//! against a dictionary provider (usually a [`pc_storage::Table`]).

use crate::{FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint};
use pc_predicate::text::{tokenize, Cursor, ParseError, Sym, Token};
use pc_predicate::{Atom, Interval, Predicate, Schema};
use pc_storage::Table;

/// Parse a whole constraint-set document against a table (for the schema
/// and categorical dictionaries).
pub fn parse_pcset(table: &Table, src: &str) -> Result<PcSet, ParseError> {
    let mut set = PcSet::new(table.schema().clone());
    let mut offset = 0usize;
    for line in src.lines() {
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            let pc = parse_constraint(table, line).map_err(|e| ParseError {
                at: offset + e.at,
                message: e.message,
            })?;
            set.push(pc);
        }
        offset += line.len() + 1;
    }
    Ok(set)
}

/// Parse one constraint line.
pub fn parse_constraint(table: &Table, src: &str) -> Result<PredicateConstraint, ParseError> {
    let tokens = tokenize(src)?;
    let mut c = Cursor::new(&tokens, src.len());

    let predicate = parse_conjunction(table, &mut c, true)?;
    c.expect_symbol(Sym::Arrow)?;
    let values = parse_values(table, &mut c)?;
    c.expect_symbol(Sym::Comma)?;
    c.expect_symbol(Sym::LParen)?;
    let at = c.at();
    let kl = c.expect_number()?;
    c.expect_symbol(Sym::Comma)?;
    let ku = c.expect_number()?;
    c.expect_symbol(Sym::RParen)?;
    if !c.done() {
        return Err(ParseError::new(c.at(), "unexpected trailing input"));
    }
    if kl < 0.0 || ku < 0.0 || kl.fract() != 0.0 || ku.fract() != 0.0 || kl > ku {
        return Err(ParseError::new(
            at,
            format!("frequency bounds must be ordered non-negative integers, got ({kl}, {ku})"),
        ));
    }
    Ok(PredicateConstraint::new(
        predicate,
        values,
        FrequencyConstraint::between(kl as u64, ku as u64),
    ))
}

/// `TRUE` or `cond AND cond AND …` up to (not consuming) `=>` or `,`.
fn parse_conjunction(
    table: &Table,
    c: &mut Cursor<'_>,
    stop_at_arrow: bool,
) -> Result<Predicate, ParseError> {
    if c.eat_keyword("TRUE") {
        return Ok(Predicate::always());
    }
    let mut pred = Predicate::always();
    loop {
        let atom = parse_cond(table, c)?;
        pred = pred.and(atom);
        if c.eat_keyword("AND") {
            continue;
        }
        break;
    }
    let _ = stop_at_arrow;
    Ok(pred)
}

fn parse_values(table: &Table, c: &mut Cursor<'_>) -> Result<ValueConstraint, ParseError> {
    if c.eat_keyword("TRUE") {
        return Ok(ValueConstraint::none());
    }
    let mut vc = ValueConstraint::none();
    loop {
        let atom = parse_cond(table, c)?;
        vc = vc.with(atom.attr, atom.interval);
        if c.eat_keyword("AND") {
            continue;
        }
        break;
    }
    Ok(vc)
}

fn resolve_attr(schema: &Schema, name: &str, at: usize) -> Result<usize, ParseError> {
    schema
        .index_of(name)
        .ok_or_else(|| ParseError::new(at, format!("no attribute named `{name}` in {schema}")))
}

fn literal(table: &Table, attr: usize, tok: Option<Token>, at: usize) -> Result<f64, ParseError> {
    match tok {
        Some(Token::Number(n)) => Ok(n),
        Some(Token::Str(s)) => {
            let dict = table.dictionary(attr).ok_or_else(|| {
                ParseError::new(at, "string literal on a non-categorical attribute")
            })?;
            dict.code(&s)
                .map(f64::from)
                .ok_or_else(|| ParseError::new(at, format!("unknown label '{s}'")))
        }
        other => Err(ParseError::new(
            at,
            format!("expected literal, found {other:?}"),
        )),
    }
}

fn parse_cond(table: &Table, c: &mut Cursor<'_>) -> Result<Atom, ParseError> {
    let at = c.at();
    match c.peek() {
        Some(Token::Ident(_)) => {
            let name = c.expect_ident()?;
            let attr = resolve_attr(table.schema(), &name, at)?;
            if c.eat_keyword("BETWEEN") {
                let lo_at = c.at();
                let lo = literal(table, attr, c.advance().cloned(), lo_at)?;
                c.expect_keyword("AND")?;
                let hi_at = c.at();
                let hi = literal(table, attr, c.advance().cloned(), hi_at)?;
                return Ok(Atom::between(attr, lo, hi));
            }
            let op = cmp(c)?;
            let lit_at = c.at();
            let lit = literal(table, attr, c.advance().cloned(), lit_at)?;
            Ok(atom(attr, op, lit))
        }
        _ => {
            let lit_at = c.at();
            let tok = c.advance().cloned();
            let op = cmp(c)?;
            let name_at = c.at();
            let name = c.expect_ident()?;
            let attr = resolve_attr(table.schema(), &name, name_at)?;
            let lit = literal(table, attr, tok, lit_at)?;
            let flipped = match op {
                Sym::Lt => Sym::Gt,
                Sym::Le => Sym::Ge,
                Sym::Gt => Sym::Lt,
                Sym::Ge => Sym::Le,
                o => o,
            };
            Ok(atom(attr, flipped, lit))
        }
    }
}

fn cmp(c: &mut Cursor<'_>) -> Result<Sym, ParseError> {
    let at = c.at();
    match c.advance() {
        Some(Token::Symbol(s @ (Sym::Eq | Sym::Lt | Sym::Le | Sym::Gt | Sym::Ge))) => Ok(*s),
        other => Err(ParseError::new(
            at,
            format!("expected comparison, found {other:?}"),
        )),
    }
}

fn atom(attr: usize, op: Sym, lit: f64) -> Atom {
    let interval = match op {
        Sym::Eq => Interval::point(lit),
        Sym::Lt => Interval::at_most(lit, true),
        Sym::Le => Interval::at_most(lit, false),
        Sym::Gt => Interval::at_least(lit, true),
        Sym::Ge => Interval::at_least(lit, false),
        _ => unreachable!("cmp() filters operators"),
    };
    Atom::new(attr, interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BoundEngine;
    use pc_predicate::{AttrType, Region, Value};
    use pc_storage::{AggKind, AggQuery};

    fn sales() -> Table {
        let schema = Schema::new(vec![
            ("utc", AttrType::Int),
            ("branch", AttrType::Cat),
            ("price", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        t.intern(1, "Chicago");
        t.intern(1, "New York");
        t.push_row(vec![Value::Int(1), Value::Cat(0), Value::Float(3.0)]);
        t
    }

    #[test]
    fn parse_paper_c1() {
        let t = sales();
        let pc = parse_constraint(
            &t,
            "branch = 'Chicago' => price <= 149.99 AND price >= 0, (0, 5)",
        )
        .unwrap();
        assert_eq!(pc.frequency, FrequencyConstraint::at_most(5));
        let iv = pc.values.interval_for(2);
        assert_eq!((iv.lo, iv.hi), (0.0, 149.99));
        assert!(pc.predicate.eval(&[9.0, 0.0, 1.0]));
        assert!(!pc.predicate.eval(&[9.0, 1.0, 1.0]));
    }

    #[test]
    fn parse_tautology_and_between() {
        let t = sales();
        let pc = parse_constraint(&t, "TRUE => price BETWEEN 0 AND 149.99, (0, 100)").unwrap();
        assert!(pc.predicate.is_always());
        assert_eq!(pc.frequency.hi, 100);
    }

    #[test]
    fn parse_document_and_bound() {
        let t = sales();
        let src = "\
# the §4.4 overlapping example
11 <= utc AND utc < 12 => 0.99 <= price AND price <= 129.99, (50, 100)
11 <= utc AND utc < 13 => 0.99 <= price AND price <= 149.99, (75, 125)
";
        let mut set = parse_pcset(&t, src).unwrap();
        assert_eq!(set.len(), 2);
        let mut domain = Region::full(t.schema());
        domain.set_interval(0, Interval::half_open(11.0, 13.0));
        set.set_domain(domain);
        let r = BoundEngine::new(&set)
            .bound(&AggQuery::new(AggKind::Sum, 2, Predicate::always()))
            .unwrap();
        assert!((r.range.lo - 74.25).abs() < 1e-6);
        assert!((r.range.hi - 17_748.75).abs() < 1e-6);
    }

    #[test]
    fn roundtrip_display_reparses() {
        let t = sales();
        let src = "branch = 'Chicago' => price BETWEEN 0 AND 149.99, (0, 5)";
        let pc = parse_constraint(&t, src).unwrap();
        // display uses math symbols; just check it renders and is stable
        let shown = pc.display(t.schema()).to_string();
        assert!(shown.contains("branch"), "{shown}");
    }

    #[test]
    fn error_positions_accumulate_across_lines() {
        let t = sales();
        let src = "TRUE => price <= 1, (0, 5)\nbranch = 'Boston' => TRUE, (0, 1)\n";
        let e = parse_pcset(&t, src).unwrap_err();
        assert!(e.message.contains("Boston"));
        assert!(
            e.at > 26,
            "error position must be on the second line, got {}",
            e.at
        );
    }

    #[test]
    fn bad_frequency_rejected() {
        let t = sales();
        for bad in [
            "TRUE => TRUE, (5, 2)",
            "TRUE => TRUE, (0.5, 2)",
            "TRUE => TRUE, (-1, 2)",
        ] {
            assert!(parse_constraint(&t, bad).is_err(), "{bad}");
        }
    }
}
