//! Sharded decomposition: factoring the cell set over the
//! constraint-interaction graph.
//!
//! # The interaction graph
//!
//! Two predicate constraints *interact* when their attribute boxes
//! (predicate region ∩ domain) overlap geometrically. A satisfiable cell's
//! active constraints pairwise overlap (their conjunction has a witness),
//! so every active set is a clique of the interaction graph and therefore
//! lies inside exactly one **connected component**. Excluding a predicate
//! from a *different* component is vacuous on the cell's region — the box
//! never reaches it. Hence the flat cell set is precisely the disjoint
//! union of the per-component cell sets, with identical regions, and the
//! exponential decomposition cost is paid per component ("shard"), not for
//! the whole catalog: a 1000-constraint catalog of 14-constraint
//! components costs the *sum* of its shards.
//!
//! [`interaction_components`] builds the graph with a union-find over the
//! pairwise box-overlap test (the same edge test as
//! [`PcSet::verify_disjoint`]). The component structure is *maintained
//! incrementally* across epochs rather than recomputed: an added
//! constraint unions the components its box touches ([`ShardedCellSet::derive_add`]),
//! a retired one re-runs the union-find only inside its own shard
//! ([`ShardedCellSet::derive_retire`]) — every other shard carries by
//! `Arc`.
//!
//! # Compositional answering
//!
//! [`ShardedCellSet`] stores one [`CellSet`] per shard (local constraint
//! indices, mapped back through [`Shard::members`]). Because the flat
//! cells are the disjoint union of the shard cells and no frequency row
//! couples two shards, the allocation MILP is block-diagonal: `COUNT` and
//! `SUM` bounds are the *sums* of per-shard bounds, `MIN`/`MAX`/`AVG`
//! combine through the per-shard cell summaries (see
//! `BoundEngine::bound_sharded` in `bounds.rs`). A query region only
//! specializes the shards it geometrically touches; a shard fully inside
//! the query region contributes its cached domain-wide `COUNT`/`SUM`
//! interval verbatim ([`Shard`] caches it), and a shard disjoint from the
//! region contributes nothing but its frequency rows.
//!
//! # Skew-aware re-splitting
//!
//! A connected component admits no geometric cut — any candidate boundary
//! is straddled by an overlapping pair, which is exactly why it is one
//! component. What *can* be steered is the DFS visit order: for a shard
//! whose interacting-constraint count exceeds
//! [`SHARD_RESPLIT_THRESHOLD`], members are re-ordered along
//! equi-cardinality quantile boundaries of their box midpoints
//! ([`pc_storage::quantile_boundaries`], Corr-PC §6.1.4), so
//! spatially clustered constraints sit adjacently in the DFS and
//! prefix-unsatisfiability pruning fires as early as possible. Ordering
//! never changes the emitted cells' signatures-as-sets, regions, or any
//! bound — it is purely a work heuristic (unit-tested in
//! `tests/prop_shard.rs`).

use crate::bounds::{pooled_map_catch, BoundEngine, BoundOptions};
use crate::decompose::DecomposeStats;
use crate::error::BoundError;
use crate::estimate::Estimates;
use crate::specialize::CellSet;
use crate::{ActiveSet, Cell, PcSet};
use pc_budget::QueryBudget;
use pc_predicate::Region;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Member count past which a shard's constraints are re-ordered along
/// quantile boundaries before decomposition (see the module docs — a
/// connected component cannot be geometrically cut, so the quantiles steer
/// DFS order instead).
pub const SHARD_RESPLIT_THRESHOLD: usize = 24;

/// Plain union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

/// Each constraint's attribute box: predicate region ∩ domain. Two
/// constraints interact iff their boxes overlap.
pub(crate) fn constraint_boxes(set: &PcSet) -> Vec<Region> {
    set.constraints()
        .iter()
        .map(|pc| {
            let mut r = pc.predicate.to_region(set.schema());
            r.intersect(set.domain());
            r
        })
        .collect()
}

/// Mean box width on `axis` relative to the boxes' collective span —
/// small means the axis separates non-interacting boxes well. Boxes
/// unbounded on the axis never end a sweep scan, so they charge the full
/// span; an axis with no finite box can't discriminate at all.
fn axis_score(boxes: &[Region], axis: usize) -> f64 {
    let (mut lo, mut hi, mut wsum, mut finite) = (f64::INFINITY, f64::NEG_INFINITY, 0.0, 0usize);
    for b in boxes {
        let iv = b.interval(axis);
        if iv.lo.is_finite() && iv.hi.is_finite() {
            lo = lo.min(iv.lo);
            hi = hi.max(iv.hi);
            wsum += iv.hi - iv.lo;
            finite += 1;
        }
    }
    if finite == 0 || hi <= lo {
        return f64::INFINITY;
    }
    let unbounded = (boxes.len() - finite) as f64;
    (wsum + unbounded * (hi - lo)) / ((hi - lo) * boxes.len() as f64)
}

/// Group local indices `0..boxes.len()` into connected components of the
/// pairwise-overlap graph, each ascending, ordered by smallest member.
///
/// An interval sweep along the most discriminating attribute skips pairs
/// already disjoint on that axis, so factored catalogs (many shards laid
/// out along one dimension) pay near-linear instead of quadratic work —
/// this runs on every one-shot bound of a multi-component set.
fn components_of(boxes: &[Region]) -> Vec<Vec<usize>> {
    let n = boxes.len();
    let mut uf = UnionFind::new(n);
    if n > 1 {
        let axis = (0..boxes[0].width())
            .min_by(|&a, &b| axis_score(boxes, a).total_cmp(&axis_score(boxes, b)))
            .unwrap_or(0);
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            boxes[a]
                .interval(axis)
                .lo
                .total_cmp(&boxes[b].interval(axis).lo)
        });
        for ii in 0..n {
            let i = order[ii];
            let hi = boxes[i].interval(axis).hi;
            for &j in &order[ii + 1..] {
                // sorted by axis lo: once past box i's hi, no later box
                // can meet it on the sweep axis (conservative for open
                // endpoints — the full overlap check is authoritative)
                if boxes[j].interval(axis).lo > hi {
                    break;
                }
                if boxes[i].overlaps(&boxes[j]) {
                    uf.union(i, j);
                }
            }
        }
    }
    let mut by_root: Vec<(usize, Vec<usize>)> = Vec::new();
    for i in 0..boxes.len() {
        let root = uf.find(i);
        match by_root.iter_mut().find(|(r, _)| *r == root) {
            Some((_, members)) => members.push(i),
            None => by_root.push((root, vec![i])),
        }
    }
    by_root.into_iter().map(|(_, members)| members).collect()
}

/// Connected components of the constraint-interaction graph of `set`:
/// vertices are constraint indices, edges are pairwise attribute-box
/// overlaps within the domain. Each component is returned ascending.
pub fn interaction_components(set: &PcSet) -> Vec<Vec<usize>> {
    components_of(&constraint_boxes(set))
}

/// One connected component of the interaction graph: its own [`PcSet`]
/// (local indices follow [`Shard::members`] order) with an independently
/// decomposed [`CellSet`], plus a cache of domain-wide `COUNT`/`SUM`
/// intervals reused verbatim by queries that contain the whole shard.
pub struct Shard {
    /// Global constraint indices of the members, in local-index order.
    members: Vec<usize>,
    /// Each member's attribute box (predicate region ∩ domain), parallel
    /// to `members`.
    boxes: Vec<Region>,
    /// The members as their own constraint set (same schema and domain).
    sub: Arc<PcSet>,
    /// The shard's decomposition over the container base, local indices.
    cells: Arc<CellSet>,
    /// Domain-wide per-aggregate intervals, keyed by `(agg tag, attr)`.
    /// Only clean (non-degraded, feasible) results are stored; entries are
    /// exact for any query region containing every member box.
    summary: Mutex<HashMap<(u8, usize), (f64, f64)>>,
}

impl Shard {
    /// Global constraint indices of this shard's members; position `i`
    /// is the constraint with local index `i` in [`Shard::set`].
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The shard's constraints as their own set (local indices).
    pub fn set(&self) -> &Arc<PcSet> {
        &self.sub
    }

    /// The shard's decomposition (cells carry local indices).
    pub fn cells(&self) -> &Arc<CellSet> {
        &self.cells
    }

    /// Whether any member box overlaps `region` — i.e. whether a query on
    /// `region` needs this shard's cells at all.
    pub(crate) fn touches(&self, region: &Region) -> bool {
        self.boxes.iter().any(|b| b.overlaps(region))
    }

    /// Whether `region` contains every member box, making domain-wide
    /// summaries exact for it.
    pub(crate) fn contained_in(&self, region: &Region) -> bool {
        self.boxes.iter().all(|b| region.contains_region(b))
    }

    pub(crate) fn cached_summary(&self, agg: u8, attr: usize) -> Option<(f64, f64)> {
        let map = self.summary.lock().unwrap_or_else(|p| p.into_inner());
        map.get(&(agg, attr)).copied()
    }

    pub(crate) fn store_summary(&self, agg: u8, attr: usize, lo: f64, hi: f64) {
        let mut map = self.summary.lock().unwrap_or_else(|p| p.into_inner());
        map.insert((agg, attr), (lo, hi));
    }
}

/// Extract `members` of `set` into their own [`PcSet`] sharing schema,
/// domain, and disjoint hint.
pub(crate) fn sub_set(set: &PcSet, members: &[usize]) -> PcSet {
    let mut sub = PcSet::new(set.schema().clone());
    sub.set_domain(set.domain().clone());
    for &m in members {
        sub.push(set.constraints()[m].clone());
    }
    sub.set_disjoint_hint(set.disjoint_hint());
    sub
}

/// Re-order a heavy shard's members along quantile boundaries of their
/// box midpoints on the widest-spread attribute, so the decomposition DFS
/// visits spatially clustered constraints adjacently (earliest possible
/// prefix pruning). No-op below [`SHARD_RESPLIT_THRESHOLD`].
fn skew_reorder(members: &mut [usize], all_boxes: &[Region]) {
    if members.len() <= SHARD_RESPLIT_THRESHOLD {
        return;
    }
    let width = match all_boxes.first() {
        Some(b) => b.width(),
        None => return,
    };
    let mid = |iv: &pc_predicate::Interval| -> f64 {
        let (lo, hi) = (iv.inf(), iv.sup());
        if lo.is_finite() && hi.is_finite() {
            (lo + hi) / 2.0
        } else if lo.is_finite() {
            lo
        } else if hi.is_finite() {
            hi
        } else {
            0.0
        }
    };
    // The attribute whose member-box midpoints spread the widest is the
    // one whose ordering discriminates best.
    let mut best: Option<(usize, f64)> = None;
    for attr in 0..width {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &m in members.iter() {
            let v = mid(all_boxes[m].interval(attr));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let spread = hi - lo;
        if spread.is_finite() && best.is_none_or(|(_, s)| spread > s) {
            best = Some((attr, spread));
        }
    }
    let Some((attr, spread)) = best else { return };
    if spread <= 0.0 {
        return;
    }
    let mids: Vec<f64> = members
        .iter()
        .map(|&m| mid(all_boxes[m].interval(attr)))
        .collect();
    let buckets = members.len().div_ceil(SHARD_RESPLIT_THRESHOLD);
    let bounds = pc_storage::quantile_boundaries(&mids, buckets);
    if bounds.is_empty() {
        return;
    }
    let mut keyed: Vec<(usize, usize, f64)> = members
        .iter()
        .zip(&mids)
        .map(|(&m, &v)| (m, bounds.partition_point(|&b| b <= v), v))
        .collect();
    keyed.sort_by(|a, b| {
        (a.1, a.2)
            .partial_cmp(&(b.1, b.2))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for (slot, (m, _, _)) in members.iter_mut().zip(keyed) {
        *slot = m;
    }
}

/// The sharded counterpart of [`CellSet`]: one independently decomposed
/// [`CellSet`] per connected component of the constraint-interaction
/// graph, plus the global closure verdict. See the module docs for why
/// the per-shard cells are exactly a partition of the flat cells.
pub struct ShardedCellSet {
    /// The region everything was decomposed against (the domain, for
    /// session epochs).
    base: Region,
    shards: Vec<Arc<Shard>>,
    /// Work counters of the *most recent* operation that produced this
    /// container (full build: summed across shards; epoch derivation: the
    /// touched shard's derivation only, carried shards contribute
    /// nothing), with `cells` = total cells across shards and the shard
    /// topology in [`DecomposeStats::shards`] /
    /// [`DecomposeStats::max_shard_constraints`].
    stats: DecomposeStats,
    /// Global closure counterexample: a domain point no predicate covers.
    uncovered: Option<Vec<f64>>,
    /// The building budget tripped before the closure probe ran — treated
    /// as open.
    closure_skipped: bool,
    /// Lazily flattened global view (cells remapped to global indices).
    flat: OnceLock<Arc<CellSet>>,
}

impl ShardedCellSet {
    /// Decompose `set` over `base`, one pool task per interaction-graph
    /// component, each budget-checked. With sharding disabled
    /// ([`BoundOptions::shard`] false) or a disjoint-hinted set the whole
    /// catalog becomes a single shard — exactly the flat behavior.
    pub(crate) fn build(
        set: &PcSet,
        options: &BoundOptions,
        base: Region,
        uncovered: Option<Vec<f64>>,
        closure_skipped: bool,
        estimates: Option<&Estimates>,
        budget: &QueryBudget,
    ) -> Result<ShardedCellSet, BoundError> {
        let components: Vec<Vec<usize>> = if !options.shard || set.disjoint_hint() || set.len() < 2
        {
            if set.is_empty() {
                Vec::new()
            } else {
                vec![(0..set.len()).collect()]
            }
        } else {
            interaction_components(set)
        };
        let boxes = constraint_boxes(set);
        let threads = BoundEngine::with_options(set, *options).task_threads(components.len());
        let built = pooled_map_catch(&components, threads, &|members: &Vec<usize>| {
            build_shard(
                set,
                options,
                &base,
                members.clone(),
                &boxes,
                estimates,
                budget,
            )
        });
        let mut shards = Vec::with_capacity(components.len());
        for result in built {
            shards.push(result.ok_or(BoundError::Panicked)??);
        }
        let mut stats = DecomposeStats::default();
        for shard in &shards {
            stats.absorb(&shard.cells.stats());
        }
        Ok(ShardedCellSet::assemble(
            base,
            shards,
            stats,
            uncovered,
            closure_skipped,
        ))
    }

    /// Stamp the container-level counters (total cells, shard topology)
    /// onto `stats` and wrap up.
    fn assemble(
        base: Region,
        shards: Vec<Arc<Shard>>,
        mut stats: DecomposeStats,
        uncovered: Option<Vec<f64>>,
        closure_skipped: bool,
    ) -> ShardedCellSet {
        stats.cells = shards.iter().map(|s| s.cells.cells().len()).sum();
        stats.shards = shards.len();
        stats.max_shard_constraints = shards.iter().map(|s| s.members.len()).max().unwrap_or(0);
        ShardedCellSet {
            base,
            shards,
            stats,
            uncovered,
            closure_skipped,
            flat: OnceLock::new(),
        }
    }

    /// The region the shards were decomposed against.
    pub fn base(&self) -> &Region {
        &self.base
    }

    /// The shards, one per interaction-graph component.
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Container-level work counters — see the field docs.
    pub fn stats(&self) -> DecomposeStats {
        self.stats
    }

    /// Whether the constraint set covers all of [`ShardedCellSet::base`]
    /// (closure is a global question — a single probe over all shards).
    pub fn closed(&self) -> bool {
        self.uncovered.is_none() && !self.closure_skipped
    }

    /// The cached closure counterexample, if the base is known open.
    pub fn uncovered(&self) -> Option<&[f64]> {
        self.uncovered.as_deref()
    }

    /// Install the global closure verdict (probed by the session *after*
    /// the shard builds, once, across all shards). Only callable before
    /// the container is shared — the flat view has not materialized yet.
    pub(crate) fn set_closure(&mut self, uncovered: Option<Vec<f64>>, skipped: bool) {
        debug_assert!(self.flat.get().is_none(), "set_closure after flatten");
        self.uncovered = uncovered;
        self.closure_skipped = skipped;
    }

    /// Fold another operation's work counters into this container's (used
    /// by fused replace: the retire half's work joins the add half's).
    /// Container-level topology counters keep their own values.
    pub(crate) fn absorb_stats(&mut self, other: DecomposeStats) {
        let (cells, shards, max_shard) = (
            self.stats.cells,
            self.stats.shards,
            self.stats.max_shard_constraints,
        );
        self.stats.absorb(&other);
        self.stats.cells = cells;
        self.stats.shards = shards;
        self.stats.max_shard_constraints = max_shard;
    }

    /// The flat (global-index) view: every shard's cells remapped through
    /// its member table into one [`CellSet`] over `set`. Computed once
    /// and cached; by the factoring theorem this is cell-for-cell the set
    /// a flat decomposition would produce (module docs).
    pub(crate) fn flatten(&self, set: &PcSet) -> Arc<CellSet> {
        Arc::clone(self.flat.get_or_init(|| {
            let mut cells = Vec::with_capacity(self.stats.cells);
            for shard in &self.shards {
                for cell in shard.cells.cells() {
                    cells.push(Cell {
                        region: Arc::clone(&cell.region),
                        active: remap_up(&cell.active, &shard.members),
                        witness: cell.witness.clone(),
                        undecided: remap_up(&cell.undecided, &shard.members),
                    });
                }
            }
            let mut flat = CellSet::new(
                set,
                self.base.clone(),
                cells,
                self.stats,
                self.uncovered.clone(),
            );
            if self.closure_skipped {
                flat.mark_closure_skipped();
            }
            Arc::new(flat)
        }))
    }

    /// Derive the container for `new_set` = the previous set plus one
    /// constraint (appended, global index `new_set.len() - 1`), touching
    /// only the shards the new box overlaps:
    ///
    /// * overlaps none — the constraint becomes its own singleton shard,
    ///   zero SAT calls;
    /// * overlaps one — that shard re-derives locally
    ///   ([`CellSet::derive_add_budgeted`]); since the box reaches no
    ///   other shard, shard-local exclusions are exhaustive and the
    ///   global `base_known_closed` verdict pushes down soundly;
    /// * overlaps `k ≥ 2` — those components merge into one and the
    ///   merged shard is decomposed afresh (an incremental chain would
    ///   re-introduce each partner's cells against stale exclusions).
    ///
    /// Untouched shards carry by `Arc`. Errors (budget-independent ones
    /// like [`DecomposeError`]) surface so the caller can fall back.
    pub(crate) fn derive_add(
        &self,
        new_set: &PcSet,
        options: &BoundOptions,
        uncovered: Option<Vec<f64>>,
        base_known_closed: bool,
        estimates: Option<&Estimates>,
        budget: &QueryBudget,
    ) -> Result<ShardedCellSet, BoundError> {
        let n = new_set.len() - 1;
        let pc = &new_set.constraints()[n];
        let mut new_box = pc.predicate.to_region(new_set.schema());
        new_box.intersect(new_set.domain());

        let single = !options.shard || self.shards.len() <= 1;
        let overlapping: Vec<usize> = if single {
            (0..self.shards.len()).collect()
        } else {
            (0..self.shards.len())
                .filter(|&s| self.shards[s].touches(&new_box))
                .collect()
        };

        let mut shards = Vec::with_capacity(self.shards.len() + 1);
        let stats;
        match overlapping.len() {
            // Disjoint from every existing shard: a fresh singleton
            // shard, no solver work at all.
            0 => {
                shards.extend(self.shards.iter().cloned());
                let members = vec![n];
                let sub = Arc::new(sub_set(new_set, &members));
                let mut cell_stats = DecomposeStats::default();
                let cells = if new_box.is_empty() {
                    Vec::new()
                } else {
                    let witness = new_box.pick_witness();
                    vec![Cell {
                        region: Arc::new(new_box.clone()),
                        active: [0usize].into_iter().collect(),
                        witness,
                        undecided: ActiveSet::new(),
                    }]
                };
                cell_stats.cells = cells.len();
                let cells = Arc::new(CellSet::new(
                    &sub,
                    self.base.clone(),
                    cells,
                    cell_stats,
                    None,
                ));
                shards.push(Arc::new(Shard {
                    boxes: vec![new_box],
                    members,
                    sub,
                    cells,
                    summary: Mutex::new(HashMap::new()),
                }));
                stats = DecomposeStats::default();
            }
            // The new box reaches exactly one shard: within it the
            // derivation is the flat one; outside it nothing changes.
            1 => {
                let s = overlapping[0];
                let shard = &self.shards[s];
                let mut members = shard.members.clone();
                members.push(n);
                let mut boxes = shard.boxes.clone();
                boxes.push(new_box);
                let sub = Arc::new(sub_set(new_set, &members));
                let parallel = options.threads != 1;
                let derived = shard.cells.derive_add_budgeted(
                    &sub,
                    parallel,
                    None,
                    base_known_closed,
                    budget,
                );
                stats = derived.stats();
                shards.extend(self.shards.iter().cloned());
                shards[s] = Arc::new(Shard {
                    members,
                    boxes,
                    sub,
                    cells: Arc::new(derived),
                    summary: Mutex::new(HashMap::new()),
                });
            }
            // The new constraint bridges k components: merge and
            // re-decompose the union as one shard.
            _ => {
                let mut members: Vec<usize> = Vec::new();
                for &s in &overlapping {
                    members.extend_from_slice(&self.shards[s].members);
                }
                members.sort_unstable();
                members.push(n);
                let merged = build_shard(
                    new_set,
                    options,
                    &self.base,
                    members,
                    &constraint_boxes(new_set),
                    estimates,
                    budget,
                )?;
                stats = merged.cells.stats();
                for (s, shard) in self.shards.iter().enumerate() {
                    if !overlapping.contains(&s) {
                        shards.push(Arc::clone(shard));
                    }
                }
                shards.push(merged);
            }
        }
        Ok(ShardedCellSet::assemble(
            self.base.clone(),
            shards,
            stats,
            uncovered,
            false,
        ))
    }

    /// Derive the container for `new_set` = the previous set with the
    /// constraint at global index `removed` gone (later indices shifted
    /// down). Only the owning shard re-derives
    /// ([`CellSet::derive_retire`], zero SAT calls); if losing the member
    /// disconnects it, the union-find re-runs *inside the shard only* and
    /// its cells partition among the fragments (each cell's active clique
    /// lies in exactly one). Every other shard carries by `Arc` with its
    /// member table shifted.
    pub(crate) fn derive_retire(
        &self,
        new_set: &PcSet,
        removed: usize,
        options: &BoundOptions,
        uncovered: Option<Vec<f64>>,
    ) -> ShardedCellSet {
        let shift = |members: &[usize]| -> Vec<usize> {
            members
                .iter()
                .map(|&m| if m > removed { m - 1 } else { m })
                .collect()
        };
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut stats = DecomposeStats::default();
        for shard in &self.shards {
            let Some(local) = shard.members.iter().position(|&m| m == removed) else {
                // Untouched: same constraints, shifted global names.
                shards.push(Arc::new(Shard {
                    members: shift(&shard.members),
                    boxes: shard.boxes.clone(),
                    sub: Arc::clone(&shard.sub),
                    cells: Arc::clone(&shard.cells),
                    summary: Mutex::new(
                        shard
                            .summary
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .clone(),
                    ),
                }));
                continue;
            };
            if shard.members.len() == 1 {
                continue; // The shard was the constraint; drop it.
            }
            let mut sub = (*shard.sub).clone();
            sub.remove_constraint(local);
            let mut members = shard.members.clone();
            members.remove(local);
            let members = shift(&members);
            let mut boxes = shard.boxes.clone();
            boxes.remove(local);
            let derived = shard.cells.derive_retire(&sub, local, None);
            stats = derived.stats();
            // Losing a member can disconnect the component: re-split
            // locally. (`options.shard` off keeps the single flat shard.)
            let fragments = if options.shard {
                components_of(&boxes)
            } else {
                vec![(0..sub.len()).collect()]
            };
            if fragments.len() <= 1 {
                shards.push(Arc::new(Shard {
                    members,
                    boxes,
                    sub: Arc::new(sub),
                    cells: Arc::new(derived),
                    summary: Mutex::new(HashMap::new()),
                }));
                continue;
            }
            // local index -> (fragment, index within fragment)
            let mut place = vec![(0usize, 0usize); sub.len()];
            for (f, fragment) in fragments.iter().enumerate() {
                for (pos, &li) in fragment.iter().enumerate() {
                    place[li] = (f, pos);
                }
            }
            let mut frag_cells: Vec<Vec<Cell>> = vec![Vec::new(); fragments.len()];
            for cell in derived.cells() {
                let lead = cell
                    .active
                    .first_index()
                    .expect("published cells have non-empty active sets");
                let (f, _) = place[lead];
                frag_cells[f].push(Cell {
                    region: Arc::clone(&cell.region),
                    active: cell.active.iter().map(|li| place[li].1).collect(),
                    witness: cell.witness.clone(),
                    undecided: cell.undecided.iter().map(|li| place[li].1).collect(),
                });
            }
            for (fragment, cells) in fragments.iter().zip(frag_cells) {
                let f_members: Vec<usize> = fragment.iter().map(|&li| members[li]).collect();
                let f_boxes: Vec<Region> = fragment.iter().map(|&li| boxes[li].clone()).collect();
                let f_sub = Arc::new(sub_set(new_set, &f_members));
                let f_stats = DecomposeStats {
                    cells: cells.len(),
                    ..DecomposeStats::default()
                };
                let f_cells = Arc::new(CellSet::new(
                    &f_sub,
                    self.base.clone(),
                    cells,
                    f_stats,
                    None,
                ));
                shards.push(Arc::new(Shard {
                    members: f_members,
                    boxes: f_boxes,
                    sub: f_sub,
                    cells: f_cells,
                    summary: Mutex::new(HashMap::new()),
                }));
            }
        }
        ShardedCellSet::assemble(self.base.clone(), shards, stats, uncovered, false)
    }
}

/// Remap a local bitset through the member table into global indices.
fn remap_up(local: &ActiveSet, members: &[usize]) -> ActiveSet {
    local.iter().map(|i| members[i]).collect()
}

/// Decompose one component into a [`Shard`] (skew re-ordering heavy ones
/// first). `all_boxes` is indexed by *global* constraint index. When the
/// caller holds catalog-wide [`Estimates`], the shard engine works from
/// their restriction to the (re-ordered) member list, so split-survival
/// history flows through the shared counters instead of restarting cold.
fn build_shard(
    set: &PcSet,
    options: &BoundOptions,
    base: &Region,
    mut members: Vec<usize>,
    all_boxes: &[Region],
    estimates: Option<&Estimates>,
    budget: &QueryBudget,
) -> Result<Arc<Shard>, BoundError> {
    skew_reorder(&mut members, all_boxes);
    let sub = Arc::new(sub_set(set, &members));
    let boxes: Vec<Region> = members.iter().map(|&m| all_boxes[m].clone()).collect();
    let engine = BoundEngine::with_options(&sub, *options);
    if let Some(est) = estimates {
        engine.set_estimates(Arc::new(est.restrict(&members)));
    }
    let (cells, stats) = engine.cells_for_base_budgeted(base, budget)?;
    let mut stats = stats;
    stats.cells = cells.len();
    let cells = Arc::new(CellSet::new(&sub, base.clone(), cells, stats, None));
    Ok(Arc::new(Shard {
        members,
        boxes,
        sub,
        cells,
        summary: Mutex::new(HashMap::new()),
    }))
}
