//! Cell-set specialization: decompose once, answer many queries.
//!
//! Cell decomposition is the engine's expensive step — exponential in the
//! worst case — yet its output depends only on the constraint set and the
//! region it was decomposed against, not on any particular query. This
//! module is the machinery that exploits that: a [`CellSet`] freezes one
//! decomposition (cells, their per-cell *relevant exclusions*, the
//! base-level closure verdict) so later queries can be answered by
//! **specializing** the cached cells instead of re-decomposing.
//!
//! Specialization of a cell `box ∧ ¬ψ₁ ∧ … ∧ ¬ψₖ` to a sub-region `Q`:
//!
//! * `box ∩ Q` empty → the cell cannot contribute; drop it on interval
//!   intersections alone.
//! * `box ⊆ Q` → the cell is untouched; share it (`Arc` region, witness
//!   and all).
//! * the cached witness lies inside `box ∩ Q` → satisfiability carries
//!   over for free.
//! * otherwise → one exact SAT re-check of the cell's conjunction inside
//!   `box ∩ Q`, against only the *relevant* exclusions (those whose box
//!   overlaps the cell box at all — the rest cannot capture any point of
//!   any sub-region of the cell).
//!
//! This is exact, not heuristic: `Q ⊆ base` means every activity pattern
//! satisfiable inside `Q` is satisfiable inside `base` (the same point
//! works), so the satisfiable patterns inside `Q` are precisely the
//! cached patterns whose conjunction stays satisfiable there — a
//! specialized [`CellSet`] yields the same bounds as a from-scratch
//! decomposition of `Q` (property-tested in `tests/prop_session.rs`).
//! The one deliberate exception is [`crate::Strategy::EarlyStop`]: cells
//! the base pass admitted unverified stay admitted in every overlapping
//! sub-region, so specialized bounds can be wider (never narrower) —
//! both remain sound, as early stopping only ever widens.
//!
//! Three consumers build on the same machinery:
//!
//! * [`crate::Session`] specializes one domain-wide [`CellSet`] to each
//!   query's region (tentpole of the serve path) — and, for the
//!   versioned catalog, **delta-derives** each mutation's epoch from the
//!   previous one (`derive_add` splits only the cells the new
//!   constraint's box cuts; `derive_retire` merges/re-widens with zero
//!   SAT checks — the same monotonicity argument as the splice below);
//! * the two-level GROUP-BY ([`crate::BoundEngine::bound_group_by`])
//!   specializes a *shared-constraint* decomposition to each group's
//!   slice through [`SliceSpecializer`] — slices of the form
//!   `group = key` admit a memo (two keys cut by the same exclusion
//!   subset have isomorphic cross-sections) — and then **splices** each
//!   key's group-local constraints into its slice with [`splice_locals`],
//!   a mini include/exclude DFS over the handful of constraints pinned to
//!   that key.

use crate::decompose::DecomposeStats;
use crate::{ActiveSet, Cell, PcSet, PredicateConstraint};
use pc_budget::QueryBudget;
use pc_predicate::sat::SatOutcome;
use pc_predicate::{sat, Interval, Predicate, Region};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// True if `pc`'s predicate box overlaps `region` in every atom's
/// dimension — the necessary condition for the exclusion to capture any
/// point of the region (atoms repeated on one attribute are checked
/// individually; a self-contradictory predicate passes the filter and is
/// then discarded inside the SAT solver, which folds them cumulatively).
pub(crate) fn overlaps_region(pc: &PredicateConstraint, region: &Region) -> bool {
    pc.predicate.atoms().iter().all(|a| {
        !region
            .interval(a.attr)
            .intersect(&a.interval)
            .is_empty(region.attr_type(a.attr))
    })
}

/// One frozen decomposition, ready to be specialized to sub-regions.
///
/// Holds the cells decomposed against `base`, the base-level closure
/// verdict (a sub-region of a closed region is closed, so one check
/// hoists over every query), and per-cell relevant-exclusion indices for
/// the SAT re-checks specialization needs.
#[derive(Debug)]
pub struct CellSet {
    base: Region,
    cells: Vec<Cell>,
    stats: DecomposeStats,
    /// A point of `base` covered by no predicate — the closure
    /// counterexample (`None` = closed, or closure checking disabled).
    uncovered: Option<Vec<f64>>,
    /// The closure probe was skipped because the building query's budget
    /// tripped: `uncovered: None` then means *unknown*, not closed.
    /// Only ever set on degraded, never-published cell sets.
    closure_skipped: bool,
    /// Per cell: indices (into the owning [`PcSet`]) of non-active
    /// constraints whose box overlaps the cell box at all.
    relevant_of: Vec<Vec<usize>>,
}

impl CellSet {
    /// Freeze a decomposition of `set` against `base`. `uncovered` is
    /// the base-level closure counterexample (`None` when the base is
    /// closed — or when closure checking is disabled, which downstream
    /// treats the same way).
    pub(crate) fn new(
        set: &PcSet,
        base: Region,
        cells: Vec<Cell>,
        stats: DecomposeStats,
        uncovered: Option<Vec<f64>>,
    ) -> Self {
        let relevant_of = cells
            .iter()
            .map(|cell| {
                set.constraints()
                    .iter()
                    .enumerate()
                    .filter(|(j, pc)| {
                        // An *undecided* constraint (frontier cell of a
                        // budget-tripped decomposition) is not an
                        // exclusion: the cell's rows may satisfy it.
                        !cell.active.contains(*j)
                            && !cell.undecided.contains(*j)
                            && overlaps_region(pc, &cell.region)
                    })
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        CellSet {
            base,
            cells,
            stats,
            uncovered,
            closure_skipped: false,
            relevant_of,
        }
    }

    /// Mark that the builder skipped the closure probe (budget trip):
    /// [`CellSet::closed`] must answer "not closed" even though no
    /// counterexample exists. Sound — an unknown verdict only widens.
    pub(crate) fn mark_closure_skipped(&mut self) {
        self.closure_skipped = true;
    }

    /// The region the cells were decomposed against.
    pub fn base(&self) -> &Region {
        &self.base
    }

    /// The decomposed cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Work counters of the one-time decomposition (for a delta-derived
    /// set: the derivation's own work only).
    pub fn stats(&self) -> DecomposeStats {
        self.stats
    }

    /// Whether the constraint set covers all of [`CellSet::base`].
    /// `false` when the building budget tripped before the closure probe
    /// could run — unknown is treated as open.
    pub fn closed(&self) -> bool {
        self.uncovered.is_none() && !self.closure_skipped
    }

    /// The cached point of [`CellSet::base`] no predicate covers, when
    /// the base is not closed. Any sub-region containing it is provably
    /// not closed without a SAT call.
    pub fn uncovered(&self) -> Option<&[f64]> {
        self.uncovered.as_deref()
    }

    /// Specialize the cached cells to `target` (⊆ base): the cells a
    /// decomposition of `target` would produce, at the cost of interval
    /// intersections plus a SAT re-check for only the cells `target`
    /// genuinely cuts. `stats.sat_checks` counts the re-checks.
    #[cfg(test)]
    pub(crate) fn specialize(
        &self,
        set: &PcSet,
        target: &Region,
        stats: &mut DecomposeStats,
        parallel: bool,
    ) -> Vec<Cell> {
        self.specialize_budgeted(set, target, stats, parallel, &QueryBudget::unlimited())
    }

    /// [`CellSet::specialize`] under a [`QueryBudget`]: the per-cell SAT
    /// re-checks charge the budget; once it trips, cut cells are admitted
    /// *unverified* (witness `None` — the early-stop contract: a cell
    /// that is actually unsatisfiable only widens the bounds) instead of
    /// paying for more checks. The caller reads the trip off the budget.
    pub(crate) fn specialize_budgeted(
        &self,
        set: &PcSet,
        target: &Region,
        stats: &mut DecomposeStats,
        parallel: bool,
        budget: &QueryBudget,
    ) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.cells.len());
        for (i, cell) in self.cells.iter().enumerate() {
            // Untouched cell: share the whole thing, witness included.
            if target.contains_region(&cell.region) {
                out.push(cell.clone());
                continue;
            }
            let narrowed = cell.region.intersected(target);
            if narrowed.is_empty() {
                continue;
            }
            let witness = match &cell.witness {
                Some(w) if narrowed.contains_row(w) => Some(w.clone()),
                Some(_) => {
                    // The box overlaps but the witness is elsewhere:
                    // re-verify the conjunction inside the narrowed box.
                    let negs: Vec<&Predicate> = self.relevant_of[i]
                        .iter()
                        .map(|&j| &set.constraints()[j].predicate)
                        .collect();
                    match sat::find_witness_budgeted(&narrowed, &negs, parallel, budget) {
                        SatOutcome::Sat(w) => {
                            stats.sat_checks += 1;
                            Some(w)
                        }
                        SatOutcome::Unsat => {
                            stats.sat_checks += 1;
                            continue;
                        }
                        // budget tripped: admit unverified, stay sound
                        SatOutcome::Tripped => {
                            stats.assumed_sat += 1;
                            None
                        }
                    }
                }
                // Early-stop cell admitted unverified in the base pass:
                // stays admitted (only ever widens bounds).
                None => None,
            };
            out.push(Cell {
                region: Arc::new(narrowed),
                active: cell.active.clone(),
                witness,
                undecided: cell.undecided.clone(),
            });
        }
        out
    }

    // ------------------------------------------------------------------
    // Incremental epoch derivation (the versioned session's delta path)
    // ------------------------------------------------------------------

    /// Derive the cell set of `new_set` — this set's constraints plus one
    /// more appended at index `new_set.len() - 1` — from the cached
    /// decomposition, re-splitting **only the cells the new constraint's
    /// box cuts**. PC decomposition is monotone in the constraint list
    /// (the same argument behind the GROUP-BY two-level splice): deciding
    /// the appended constraint last, every existing cell either misses
    /// its box entirely (the exclude branch is the cell itself, shared
    /// untouched, witness included) or splits into an include branch
    /// (region tightened by the new box, constraint added to the
    /// activity) and an exclude branch (region unchanged) — exactly one
    /// level of the include/exclude DFS, with the cached witness settling
    /// one branch for free and at most one exact SAT check deciding the
    /// other. The one signature no existing cell can produce — the
    /// new-constraint-only cell, where every *old* constraint is excluded
    /// — is checked separately inside the new box (the cached closure
    /// counterexample proves it satisfiable for free when the new
    /// predicate covers it).
    ///
    /// `uncovered` is the new epoch's closure counterexample, computed by
    /// the caller (coverage grows on add: a closed base stays closed, and
    /// a counterexample avoiding the new predicate carries over — only a
    /// counterexample the new constraint swallows forces a re-check).
    /// `base_known_closed` is the caller's verified closure verdict for
    /// the base: when true, the new-constraint-only cell is provably
    /// empty (every base point satisfies some old predicate) and its
    /// probe — the derivation's one potentially wide SAT check — is
    /// skipped outright.
    ///
    /// Cells the base pass admitted unverified ([`crate::Strategy::EarlyStop`])
    /// stay admitted on both surviving branches, preserving the
    /// early-stop contract (bounds may widen, never narrow unsoundly).
    /// Stats count only the derivation's own work;
    /// [`DecomposeStats::incremental_splits`] is the number of cut cells.
    #[cfg(test)]
    pub(crate) fn derive_add(
        &self,
        new_set: &PcSet,
        parallel: bool,
        uncovered: Option<Vec<f64>>,
        base_known_closed: bool,
    ) -> CellSet {
        self.derive_add_budgeted(
            new_set,
            parallel,
            uncovered,
            base_known_closed,
            &QueryBudget::unlimited(),
        )
    }

    /// [`CellSet::derive_add`] under a [`QueryBudget`]: each branch-check
    /// charges the budget; after a trip the remaining cut branches are
    /// admitted *unverified* (the early-stop contract — an unsatisfiable
    /// branch only ever widens bounds), so the derivation still finishes
    /// within one cell's granule. The caller decides what to do with a
    /// degraded derivation — [`crate::Session`] discards it rather than
    /// publishing it as the epoch's cells.
    pub(crate) fn derive_add_budgeted(
        &self,
        new_set: &PcSet,
        parallel: bool,
        uncovered: Option<Vec<f64>>,
        base_known_closed: bool,
        budget: &QueryBudget,
    ) -> CellSet {
        let n = new_set.len() - 1;
        let pc = &new_set.constraints()[n];
        let mut stats = DecomposeStats::default();
        let mut cells = Vec::with_capacity(self.cells.len() + 1);
        for (i, cell) in self.cells.iter().enumerate() {
            if !overlaps_region(pc, &cell.region) {
                // the new box misses the cell: no point of it can satisfy
                // the new predicate — the cell is its own exclude branch
                cells.push(cell.clone());
                continue;
            }
            stats.incremental_splits += 1;
            let inc_region = match cell.region.tightened_by(pc.predicate.atoms()) {
                Some(t) => Arc::new(t),
                None => Arc::clone(&cell.region),
            };
            match &cell.witness {
                // early-stop cell: geometric pruning only, both surviving
                // branches stay admitted unverified
                None => {
                    stats.assumed_sat += 2;
                    if !inc_region.is_empty() {
                        let mut active = cell.active.clone();
                        active.insert(n);
                        cells.push(Cell {
                            region: inc_region,
                            active,
                            witness: None,
                            undecided: cell.undecided.clone(),
                        });
                    }
                    cells.push(cell.clone());
                }
                Some(w) => {
                    // the cached witness proves one branch for free; the
                    // other pays at most one exact check against the
                    // cell's relevant exclusions. `None` = branch dropped,
                    // `Some(None)` = branch admitted unverified (trip).
                    let negs: Vec<&Predicate> = self.relevant_of[i]
                        .iter()
                        .map(|&j| &new_set.constraints()[j].predicate)
                        .collect();
                    let inc_witness: Option<Option<Vec<f64>>> = if inc_region.is_empty() {
                        None
                    } else if inc_region.contains_row(w) {
                        Some(Some(w.clone()))
                    } else {
                        match sat::find_witness_budgeted(&inc_region, &negs, parallel, budget) {
                            SatOutcome::Sat(iw) => {
                                stats.sat_checks += 1;
                                Some(Some(iw))
                            }
                            SatOutcome::Unsat => {
                                stats.sat_checks += 1;
                                None
                            }
                            SatOutcome::Tripped => {
                                stats.assumed_sat += 1;
                                Some(None)
                            }
                        }
                    };
                    let exc_witness: Option<Option<Vec<f64>>> = if !pc.predicate.eval(w) {
                        Some(Some(w.clone()))
                    } else {
                        let mut probe = negs.clone();
                        probe.push(&pc.predicate);
                        match sat::find_witness_budgeted(&cell.region, &probe, parallel, budget) {
                            SatOutcome::Sat(ew) => {
                                stats.sat_checks += 1;
                                Some(Some(ew))
                            }
                            SatOutcome::Unsat => {
                                stats.sat_checks += 1;
                                None
                            }
                            SatOutcome::Tripped => {
                                stats.assumed_sat += 1;
                                Some(None)
                            }
                        }
                    };
                    if let Some(iw) = inc_witness {
                        let mut active = cell.active.clone();
                        active.insert(n);
                        cells.push(Cell {
                            region: inc_region,
                            active,
                            witness: iw,
                            undecided: cell.undecided.clone(),
                        });
                    }
                    if let Some(ew) = exc_witness {
                        cells.push(Cell {
                            region: Arc::clone(&cell.region),
                            active: cell.active.clone(),
                            witness: ew,
                            undecided: cell.undecided.clone(),
                        });
                    }
                }
            }
        }
        // The new-constraint-only cell: ψ_new ∧ ¬(every old constraint),
        // inside the new box — the one signature the old decomposition
        // could not have emitted. A verified-closed base cannot hold it
        // (its points are exactly the base's uncovered points), so the
        // probe is skipped entirely there.
        let mut only = self.base.clone();
        for atom in pc.predicate.atoms() {
            only.intersect_atom(atom);
        }
        if !base_known_closed && !only.is_empty() {
            let relevant: Vec<&Predicate> = new_set.constraints()[..n]
                .iter()
                .filter(|old| overlaps_region(old, &only))
                .map(|old| &old.predicate)
                .collect();
            let witness: Option<Option<Vec<f64>>> = match &self.uncovered {
                // the cached closure counterexample satisfies no old
                // predicate; if the new box contains it, it *is* the cell
                Some(w) if only.contains_row(w) => Some(Some(w.clone())),
                _ => match sat::find_witness_budgeted(&only, &relevant, parallel, budget) {
                    SatOutcome::Sat(w) => {
                        stats.sat_checks += 1;
                        Some(Some(w))
                    }
                    SatOutcome::Unsat => {
                        stats.sat_checks += 1;
                        None
                    }
                    SatOutcome::Tripped => {
                        stats.assumed_sat += 1;
                        Some(None)
                    }
                },
            };
            if let Some(w) = witness {
                cells.push(Cell {
                    region: Arc::new(only),
                    active: [n].into_iter().collect(),
                    witness: w,
                    undecided: ActiveSet::new(),
                });
            }
        }
        stats.cells = cells.len();
        CellSet::new(new_set, self.base.clone(), cells, stats, uncovered)
    }

    /// Derive the cell set of `new_set` — this set's constraints with the
    /// one at `removed` taken out — from the cached decomposition, with
    /// **zero SAT checks**:
    ///
    /// * a cell *excluding* the retired constraint is unchanged (its
    ///   region was never tightened by the retired box, and its witness
    ///   still satisfies exactly its activity) — only the signature
    ///   indices shift down;
    /// * a cell *including* it folds into its exclude-sibling when that
    ///   sibling exists (the sibling already covers the merged signature
    ///   with the right region and witness), and otherwise survives with
    ///   its region **re-widened** to the base tightened by the remaining
    ///   active boxes — the exact region a fresh decomposition of the
    ///   reduced set would give it (keeping the retired tightening would
    ///   understate the value ranges rows in the cell can take). Its
    ///   witness carries: the point satisfies exactly the remaining
    ///   activity, and the retired predicate no longer matters.
    ///
    /// `uncovered` is the caller's closure counterexample for the shrunken
    /// set (an uncovered point stays uncovered when coverage shrinks; a
    /// previously closed base only needs re-checking *inside the retired
    /// box*, the only place a hole can open).
    pub(crate) fn derive_retire(
        &self,
        new_set: &PcSet,
        removed: usize,
        uncovered: Option<Vec<f64>>,
    ) -> CellSet {
        let remap = |active: &ActiveSet| -> ActiveSet {
            active
                .iter()
                .filter(|&i| i != removed)
                .map(|i| if i > removed { i - 1 } else { i })
                .collect()
        };
        // signatures that survive verbatim: cells not holding the retired
        // constraint (a retired sibling folds into one of these)
        let kept: std::collections::HashSet<&ActiveSet> = self
            .cells
            .iter()
            .filter(|c| !c.active.contains(removed))
            .map(|c| &c.active)
            .collect();
        let mut stats = DecomposeStats::default();
        let mut cells = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            if !cell.active.contains(removed) {
                cells.push(Cell {
                    region: Arc::clone(&cell.region),
                    active: remap(&cell.active),
                    witness: cell.witness.clone(),
                    undecided: remap(&cell.undecided),
                });
                continue;
            }
            stats.incremental_splits += 1;
            let reduced: ActiveSet = cell.active.iter().filter(|&i| i != removed).collect();
            if reduced.is_empty() || kept.contains(&reduced) {
                // all-excluded is the closure check's region, not a cell;
                // otherwise the exclude-sibling already is the merged cell
                continue;
            }
            // widen: the fresh region of the merged signature is the base
            // tightened by the *remaining* active boxes only
            let active = remap(&reduced);
            let mut region = self.base.clone();
            for i in active.iter() {
                for atom in new_set.constraints()[i].predicate.atoms() {
                    region.intersect_atom(atom);
                }
            }
            cells.push(Cell {
                region: Arc::new(region),
                active,
                witness: cell.witness.clone(),
                undecided: remap(&cell.undecided),
            });
        }
        stats.cells = cells.len();
        CellSet::new(new_set, self.base.clone(), cells, stats, uncovered)
    }

    /// [`CellSet::derive_retire`] generalized to retiring every
    /// constraint *not* in `kept` at once, still with **zero SAT checks**.
    /// `kept` is the sorted (ascending, this set's indices) list of
    /// surviving constraints and `new_set` the sub-set holding exactly
    /// those, in order — the cells come back in `new_set`'s (sub-)indices.
    ///
    /// The cell-merge argument is the single-retire one applied to the
    /// whole batch: a cell whose activity already lies inside `kept`
    /// survives verbatim; a cell holding retired constraints folds into
    /// the surviving cell of its reduced signature when one exists, and
    /// otherwise the *first* such cell survives with its region re-widened
    /// to the base tightened by the remaining active boxes (later cells of
    /// the same reduced signature fold into it). This is how the GROUP-BY
    /// level-1 cells derive from a session epoch's domain-wide cache: the
    /// key-local constraints retire in one pass instead of the shared
    /// subset re-decomposing per call.
    pub(crate) fn derive_retire_subset(
        &self,
        new_set: &PcSet,
        kept: &[usize],
        uncovered: Option<Vec<f64>>,
    ) -> CellSet {
        let pos: HashMap<usize, usize> = kept.iter().enumerate().map(|(s, &g)| (g, s)).collect();
        let remap = |active: &ActiveSet| -> ActiveSet {
            active.iter().filter_map(|i| pos.get(&i).copied()).collect()
        };
        // reduced signatures that survive verbatim (no retired member)
        let survivors: std::collections::HashSet<ActiveSet> = self
            .cells
            .iter()
            .filter(|c| c.active.iter().all(|i| pos.contains_key(&i)))
            .map(|c| remap(&c.active))
            .collect();
        let mut emitted = std::collections::HashSet::new();
        let mut stats = DecomposeStats::default();
        let mut cells = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let untouched = cell.active.iter().all(|i| pos.contains_key(&i));
            let active = remap(&cell.active);
            if untouched {
                cells.push(Cell {
                    region: Arc::clone(&cell.region),
                    active,
                    witness: cell.witness.clone(),
                    undecided: remap(&cell.undecided),
                });
                continue;
            }
            stats.incremental_splits += 1;
            if active.is_empty() || survivors.contains(&active) || !emitted.insert(active.clone()) {
                // all-excluded is not a cell; otherwise the surviving
                // sibling (or the first merged cell) already covers it
                continue;
            }
            let mut region = self.base.clone();
            for i in active.iter() {
                for atom in new_set.constraints()[i].predicate.atoms() {
                    region.intersect_atom(atom);
                }
            }
            cells.push(Cell {
                region: Arc::new(region),
                active,
                witness: cell.witness.clone(),
                undecided: remap(&cell.undecided),
            });
        }
        stats.cells = cells.len();
        CellSet::new(new_set, self.base.clone(), cells, stats, uncovered)
    }
}

/// Memo of slice cross-section verdicts: (cell index, group-active
/// exclusion mask) → witness template (`None` = that cross-section is
/// unsatisfiable). A verdict computed for one key transfers to every key
/// cut by the same exclusion subset, with the witness's group coordinate
/// remapped. The virtual ∅-cell of the two-level GROUP-BY memoizes under
/// cell index `usize::MAX`.
type SliceMemo = HashMap<(usize, u64), Option<Vec<f64>>>;

/// Cell index the virtual empty-shared cell memoizes under.
pub(crate) const VIRTUAL_CELL: usize = usize::MAX;

/// Structural signature of one key's local-constraint list: per local,
/// the sorted non-group atoms as `(attr, lo bits, lo_open, hi bits,
/// hi_open)`. Atoms on the group attribute are dropped — inside a
/// `group = key` point slice every atom of a constraint pinned to that
/// key is a no-op on the group coordinate — so two keys whose local caps
/// are "the same boxes modulo the group coordinate" (the common shape of
/// generated per-key assumptions) get equal signatures. `Arc`-shared:
/// the signature is computed once per key and cloned into memo keys.
pub(crate) type LocalsSig = Arc<Vec<Vec<(usize, u64, bool, u64, bool)>>>;

/// One leaf of a completed local-constraint splice in
/// structure-transferable form: which locals the leaf includes, plus its
/// witness template (`None` = unverified early-stop leaf). On replay the
/// include set reconstructs the leaf's region and activity against the
/// new key's own locals, and the witness's group coordinate is remapped.
struct SpliceLeaf {
    include_mask: u64,
    witness: Option<Vec<f64>>,
}

/// Memo of whole splice outcomes: (cell index, group-active exclusion
/// mask, locals signature) → the leaf list `splice_locals` emitted. A hit
/// replays the entire include/exclude DFS of that cell for a
/// structurally identical key with zero SAT calls (the ROADMAP's
/// cross-key splice memoization).
type SpliceMemo = HashMap<(usize, u64, LocalsSig), Arc<Vec<SpliceLeaf>>>;

/// Per-GROUP-BY specializer for `group = key` slices: the cached
/// decomposition's cells plus the per-cell relevant exclusions *with
/// their group-attribute intervals*, so each slice only re-checks against
/// exclusions actually active at its key, and verdicts are memoized
/// across keys on the group-active exclusion mask.
pub(crate) struct SliceSpecializer<'a> {
    cells: &'a [Cell],
    group_attr: usize,
    /// Whether the parallel witness search may engage in re-checks.
    parallel: bool,
    /// Per cell: relevant exclusions as (group-attr interval, predicate).
    relevant_of: Vec<Vec<(Interval, &'a Predicate)>>,
    /// Whether the cell's relevant exclusions fit the 64-bit memo mask.
    memoable: Vec<bool>,
    /// Every shared constraint as (group-attr interval, predicate) — the
    /// exclusion list of the virtual ∅-cell.
    all_shared: Vec<(Interval, &'a Predicate)>,
    memo: Mutex<SliceMemo>,
    /// Cross-key splice-outcome memo (see [`SpliceMemo`]).
    splice_memo: Mutex<SpliceMemo>,
}

impl<'a> SliceSpecializer<'a> {
    /// Build the per-cell relevant-exclusion tables for `cells`, a
    /// decomposition of the `shared_ids` subset of `set`'s constraints
    /// (active sets already remapped to global indices).
    pub(crate) fn new(
        set: &'a PcSet,
        shared_ids: &[usize],
        cells: &'a [Cell],
        group_attr: usize,
        parallel: bool,
    ) -> Self {
        let constraints = set.constraints();
        // Each predicate's group-attribute interval depends only on the
        // predicate: fold once per constraint, not once per (cell ×
        // constraint).
        let all_shared: Vec<(Interval, &Predicate)> = shared_ids
            .iter()
            .map(|&j| {
                let pred = &constraints[j].predicate;
                (pred.interval_for(group_attr), pred)
            })
            .collect();
        let mut relevant_of = Vec::with_capacity(cells.len());
        let mut memoable = Vec::with_capacity(cells.len());
        for cell in cells {
            let relevant: Vec<(Interval, &Predicate)> = shared_ids
                .iter()
                .zip(&all_shared)
                .filter(|(&j, _)| !cell.active.contains(j))
                .filter(|(&j, _)| overlaps_region(&constraints[j], &cell.region))
                .map(|(_, entry)| *entry)
                .collect();
            memoable.push(relevant.len() <= 64);
            relevant_of.push(relevant);
        }
        SliceSpecializer {
            cells,
            group_attr,
            parallel,
            relevant_of,
            memoable,
            all_shared,
            memo: Mutex::new(HashMap::new()),
            splice_memo: Mutex::new(HashMap::new()),
        }
    }

    /// Compute one key's locals signature (shared by every cell of that
    /// key's slice), or `None` when the list exceeds the 64-bit replay
    /// mask. See [`LocalsSig`] for why group-attribute atoms are dropped.
    pub(crate) fn locals_signature(
        locals: &[(usize, &PredicateConstraint)],
        group_attr: usize,
    ) -> Option<LocalsSig> {
        if locals.len() > 64 {
            return None;
        }
        let sig = locals
            .iter()
            .map(|(_, pc)| {
                let mut atoms: Vec<(usize, u64, bool, u64, bool)> = pc
                    .predicate
                    .atoms()
                    .iter()
                    .filter(|a| a.attr != group_attr)
                    .map(|a| {
                        (
                            a.attr,
                            a.interval.lo.to_bits(),
                            a.interval.lo_open,
                            a.interval.hi.to_bits(),
                            a.interval.hi_open,
                        )
                    })
                    .collect();
                atoms.sort_unstable();
                atoms
            })
            .collect();
        Some(Arc::new(sig))
    }

    /// The group-active exclusion mask of cell `src` (or the virtual
    /// ∅-cell) at `key`, when its relevant exclusions fit the 64-bit
    /// memo mask.
    fn mask_for(&self, src: usize, key: f64) -> Option<u64> {
        let (relevant, memoable) = if src == VIRTUAL_CELL {
            (&self.all_shared, self.all_shared.len() <= 64)
        } else {
            (&self.relevant_of[src], self.memoable[src])
        };
        memoable.then(|| {
            let mut mask = 0u64;
            for (bit, (g_iv, _)) in relevant.iter().enumerate() {
                if g_iv.contains(key) {
                    mask |= 1 << bit;
                }
            }
            mask
        })
    }

    /// Replay a memoized splice of cell `src` (or [`VIRTUAL_CELL`]) for
    /// `key`, pushing the reconstructed leaves into `out`. Returns `true`
    /// on a memo hit — the caller then skips `splice_locals` entirely
    /// (zero SAT calls; `stats.splice_memo_hits` counts it). Soundness of
    /// the transfer: two keys with the same source cell, the same
    /// group-active exclusion mask, and structurally identical locals
    /// have isomorphic slices (only the group coordinate differs), the
    /// DFS leaf set is witness-order-independent (a leaf is emitted iff
    /// its conjunction is satisfiable, and the SAT search is exact), and
    /// a leaf witness transfers because every predicate it must satisfy
    /// or violate does so in a non-group dimension — identical across the
    /// two keys — while its remapped group coordinate satisfies the point
    /// slice and every key-pinned atom by construction.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn replay_splice(
        &self,
        src: usize,
        key: f64,
        sig: Option<&LocalsSig>,
        base_region: &Arc<Region>,
        base_active: &ActiveSet,
        locals: &[(usize, &PredicateConstraint)],
        out: &mut Vec<Cell>,
        stats: &mut DecomposeStats,
    ) -> bool {
        let (Some(sig), Some(mask)) = (sig, self.mask_for(src, key)) else {
            return false;
        };
        let memo_key = (src, mask, Arc::clone(sig));
        let leaves = match self.splice_memo.lock().unwrap().get(&memo_key) {
            Some(leaves) => Arc::clone(leaves),
            None => return false,
        };
        // Frontier (budget-degraded) source cells keep their undecided
        // set on every replayed leaf — the transfer argument is identical
        // (undecidedness is a property of the shared prefix, not the key).
        let src_undecided = if src == VIRTUAL_CELL {
            ActiveSet::new()
        } else {
            self.cells[src].undecided.clone()
        };
        for leaf in leaves.iter() {
            let mut region = Arc::clone(base_region);
            let mut active = base_active.clone();
            for (p, (gid, pc)) in locals.iter().enumerate() {
                if leaf.include_mask & (1 << p) != 0 {
                    if let Some(tightened) = region.tightened_by(pc.predicate.atoms()) {
                        region = Arc::new(tightened);
                    }
                    active.insert(*gid);
                }
            }
            // Isomorphism keeps replayed regions non-empty; the guard is
            // pure insurance (dropping a leaf only widens nothing — an
            // empty region holds no rows).
            debug_assert!(!region.is_empty(), "replayed splice leaf went empty");
            if region.is_empty() {
                continue;
            }
            let witness = leaf.witness.as_ref().map(|w| {
                let mut w = w.clone();
                w[self.group_attr] = key;
                w
            });
            out.push(Cell {
                region,
                active,
                witness,
                undecided: src_undecided.clone(),
            });
        }
        stats.splice_memo_hits += 1;
        true
    }

    /// Record a completed splice of cell `src` at `key` (the `produced`
    /// slice of the output vector) so structurally identical keys can
    /// replay it.
    pub(crate) fn record_splice(
        &self,
        src: usize,
        key: f64,
        sig: Option<&LocalsSig>,
        locals: &[(usize, &PredicateConstraint)],
        produced: &[Cell],
    ) {
        let (Some(sig), Some(mask)) = (sig, self.mask_for(src, key)) else {
            return;
        };
        let leaves: Vec<SpliceLeaf> = produced
            .iter()
            .map(|cell| {
                let mut include_mask = 0u64;
                for (p, (gid, _)) in locals.iter().enumerate() {
                    if cell.active.contains(*gid) {
                        include_mask |= 1 << p;
                    }
                }
                SpliceLeaf {
                    include_mask,
                    witness: cell.witness.clone(),
                }
            })
            .collect();
        // Two group tasks racing on the same uncached key both pay the
        // splice (last insert wins, leaf sets are equal) — concurrency
        // can only add work, never lose a leaf.
        self.splice_memo
            .lock()
            .unwrap()
            .insert((src, mask, Arc::clone(sig)), Arc::new(leaves));
    }

    /// Specialize every cached cell to the `group = key` slice of
    /// `base_region`, returning `(source cell index, specialized cell)`
    /// pairs — the index lets the caller fetch the matching exclusion
    /// list for local-constraint splicing.
    pub(crate) fn specialize_slice(
        &self,
        key: f64,
        base_region: &Region,
        stats: &mut DecomposeStats,
    ) -> Vec<(usize, Cell)> {
        let key_iv = Interval::point(key);
        let ty = base_region.attr_type(self.group_attr);
        let mut out = Vec::with_capacity(self.cells.len());
        for (i, cell) in self.cells.iter().enumerate() {
            let cur = cell.region.interval(self.group_attr);
            let narrowed = cur.intersect(&key_iv);
            if narrowed.is_empty(ty) {
                // the cell's box misses this group entirely
                continue;
            }
            let region = if narrowed == *cur {
                Arc::clone(&cell.region)
            } else {
                let mut r = (*cell.region).clone();
                r.set_interval(self.group_attr, narrowed);
                Arc::new(r)
            };
            let witness = match &cell.witness {
                // the shared witness already lives in this group's slice
                Some(w) if region.contains_row(w) => Some(w.clone()),
                // box overlaps but the witness is elsewhere: re-verify,
                // memoized on the group-active exclusion mask
                Some(_) => {
                    match self.memoized_witness(i, &self.relevant_of[i], key, &region, stats) {
                        Some(w) => Some(w),
                        None => continue,
                    }
                }
                // early-stop cell: stays admitted unverified
                None => None,
            };
            out.push((
                i,
                Cell {
                    region,
                    active: cell.active.clone(),
                    witness,
                    undecided: cell.undecided.clone(),
                },
            ));
        }
        out
    }

    /// The exclusions that can capture points of cell `src`'s slice at
    /// `key`: relevant exclusions whose group interval contains the key.
    pub(crate) fn group_active_negs(&self, src: usize, key: f64) -> Vec<&'a Predicate> {
        self.relevant_of[src]
            .iter()
            .filter(|(g_iv, _)| g_iv.contains(key))
            .map(|(_, p)| *p)
            .collect()
    }

    /// The exclusion list of the virtual ∅-cell at `key`: every shared
    /// constraint group-active there (a constraint inactive on the group
    /// attribute at `key` excludes nothing from the slice).
    pub(crate) fn virtual_negs(&self, key: f64) -> Vec<&'a Predicate> {
        self.all_shared
            .iter()
            .filter(|(g_iv, _)| g_iv.contains(key))
            .map(|(_, p)| *p)
            .collect()
    }

    /// Witness for the virtual ∅-cell (`slice ∧ ¬every group-active
    /// shared constraint`) — the activity patterns with *no* shared
    /// constraint, which the shared decomposition never emits but a
    /// key-local constraint can populate. Memoized across keys exactly
    /// like cell cross-sections.
    pub(crate) fn virtual_witness(
        &self,
        key: f64,
        slice: &Region,
        stats: &mut DecomposeStats,
    ) -> Option<Vec<f64>> {
        let memoable = self.all_shared.len() <= 64;
        self.check_memoized(VIRTUAL_CELL, &self.all_shared, memoable, key, slice, stats)
    }

    /// Decide satisfiability of cell `src`'s conjunction inside the slice
    /// at `key`. Memoized on (cell, group-active exclusion mask): a
    /// cached verdict transfers to any other key with the same mask, with
    /// the witness's group coordinate remapped — two slices cut by the
    /// same exclusion subset have isomorphic cross-sections (only the
    /// group coordinate differs). The memo is shared by every group task;
    /// two workers racing on the same uncached mask both pay the check
    /// (last insert wins, verdicts are equal), so concurrency can only
    /// add `sat_checks`, never miss one.
    fn memoized_witness(
        &self,
        src: usize,
        relevant: &[(Interval, &Predicate)],
        key: f64,
        region: &Region,
        stats: &mut DecomposeStats,
    ) -> Option<Vec<f64>> {
        self.check_memoized(src, relevant, self.memoable[src], key, region, stats)
    }

    fn check_memoized(
        &self,
        src: usize,
        relevant: &[(Interval, &Predicate)],
        memoable: bool,
        key: f64,
        region: &Region,
        stats: &mut DecomposeStats,
    ) -> Option<Vec<f64>> {
        let negs: Vec<&Predicate> = relevant
            .iter()
            .filter(|(g_iv, _)| g_iv.contains(key))
            .map(|(_, p)| *p)
            .collect();
        if !memoable {
            // too many relevant exclusions for the 64-bit mask: still use
            // the (sound) group-active filter, just without memoization
            stats.sat_checks += 1;
            return sat::find_witness_with(region, &negs, self.parallel);
        }
        let mut mask = 0u64;
        for (bit, (g_iv, _)) in relevant.iter().enumerate() {
            if g_iv.contains(key) {
                mask |= 1 << bit;
            }
        }
        let cached = self.memo.lock().unwrap().get(&(src, mask)).cloned();
        if let Some(template) = cached {
            return template.map(|mut w| {
                w[self.group_attr] = key;
                w
            });
        }
        stats.sat_checks += 1;
        let witness = sat::find_witness_with(region, &negs, self.parallel);
        self.memo
            .lock()
            .unwrap()
            .insert((src, mask), witness.clone());
        witness
    }
}

/// Splice a key's group-local constraints into one specialized cell: a
/// mini include/exclude DFS over `locals` (global index, constraint),
/// starting from the cell's box, activity set, and — in exact mode — a
/// proven witness of `region ∧ ¬shared_negs`.
///
/// Each level decides one local constraint. The carried witness settles
/// one branch for free: if it satisfies the constraint it proves the
/// include branch, otherwise the exclude branch; the *other* branch pays
/// at most one exact SAT check (the include branch none at all when its
/// tightened box is empty). Sub-cells reaching the leaf with a non-empty
/// activity set are emitted with their prefix witness.
///
/// `verified = false` (the cell was admitted unverified by
/// [`crate::Strategy::EarlyStop`]) degrades to geometric pruning only:
/// every box-non-empty combination is admitted witness-less, matching the
/// early-stop contract (possible false positives, bounds only widen).
#[allow(clippy::too_many_arguments)]
pub(crate) fn splice_locals<'a>(
    region: Arc<Region>,
    active: &ActiveSet,
    undecided: &ActiveSet,
    witness: Option<Vec<f64>>,
    shared_negs: Vec<&'a Predicate>,
    locals: &[(usize, &'a PredicateConstraint)],
    parallel: bool,
    out: &mut Vec<Cell>,
    stats: &mut DecomposeStats,
) {
    let verified = witness.is_some();
    splice_dfs(
        locals,
        0,
        region,
        active.clone(),
        undecided,
        shared_negs,
        witness,
        verified,
        parallel,
        out,
        stats,
    );
}

#[allow(clippy::too_many_arguments)]
fn splice_dfs<'a>(
    locals: &[(usize, &'a PredicateConstraint)],
    idx: usize,
    region: Arc<Region>,
    active: ActiveSet,
    undecided: &ActiveSet,
    excluded: Vec<&'a Predicate>,
    witness: Option<Vec<f64>>,
    verified: bool,
    parallel: bool,
    out: &mut Vec<Cell>,
    stats: &mut DecomposeStats,
) {
    if idx == locals.len() {
        // The ∅-shared virtual cell with every local excluded is not a
        // cell (no active constraint): the closure check owns that
        // region. A frontier source cell (undecided non-empty) IS
        // emitted even with an empty activity — its rows may satisfy
        // undecided shared constraints.
        if !active.is_empty() || !undecided.is_empty() {
            out.push(Cell {
                region,
                active,
                witness,
                undecided: undecided.clone(),
            });
        }
        return;
    }
    let (gid, pc) = locals[idx];
    let inc_region = match region.tightened_by(pc.predicate.atoms()) {
        Some(tightened) => Arc::new(tightened),
        None => Arc::clone(&region),
    };

    if !verified {
        // Unverified prefix (early-stop admission): geometric pruning
        // only, both surviving branches stay unverified.
        stats.assumed_sat += 2;
        if !inc_region.is_empty() {
            let mut inc_active = active.clone();
            inc_active.insert(gid);
            splice_dfs(
                locals,
                idx + 1,
                inc_region,
                inc_active,
                undecided,
                excluded.clone(),
                None,
                false,
                parallel,
                out,
                stats,
            );
        }
        let mut exc = excluded;
        exc.push(&pc.predicate);
        splice_dfs(
            locals,
            idx + 1,
            region,
            active,
            undecided,
            exc,
            None,
            false,
            parallel,
            out,
            stats,
        );
        return;
    }

    let w = witness.as_ref().expect("verified prefix carries a witness");
    // The prefix witness lies in `region ∧ ¬excluded`; whichever branch
    // it falls on is proven for free (w in the include box ⟺ w satisfies
    // the predicate, since w is already in `region`).
    let inc_witness = if inc_region.is_empty() {
        None
    } else if inc_region.contains_row(w) {
        Some(w.clone())
    } else {
        stats.sat_checks += 1;
        sat::find_witness_with(&inc_region, &excluded, parallel)
    };
    let exc_witness = if !pc.predicate.eval(w) {
        Some(w.clone())
    } else {
        let mut probe = excluded.clone();
        probe.push(&pc.predicate);
        stats.sat_checks += 1;
        sat::find_witness_with(&region, &probe, parallel)
    };

    if let Some(iw) = inc_witness {
        let mut inc_active = active.clone();
        inc_active.insert(gid);
        splice_dfs(
            locals,
            idx + 1,
            inc_region,
            inc_active,
            undecided,
            excluded.clone(),
            Some(iw),
            true,
            parallel,
            out,
            stats,
        );
    }
    if let Some(ew) = exc_witness {
        let mut exc = excluded;
        exc.push(&pc.predicate);
        splice_dfs(
            locals,
            idx + 1,
            region,
            active,
            undecided,
            exc,
            Some(ew),
            true,
            parallel,
            out,
            stats,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decompose, BoundEngine, FrequencyConstraint, Strategy, ValueConstraint};
    use pc_predicate::{Atom, AttrType, Schema};
    use pc_storage::{AggKind, AggQuery};

    fn schema() -> Schema {
        Schema::new(vec![("x", AttrType::Int), ("v", AttrType::Float)])
    }

    fn pc_box(xlo: f64, xhi: f64, vhi: f64) -> PredicateConstraint {
        PredicateConstraint::new(
            Predicate::atom(Atom::bucket(0, xlo, xhi)),
            ValueConstraint::none().with(1, Interval::closed(0.0, vhi)),
            FrequencyConstraint::at_most(10),
        )
    }

    fn overlapping_set() -> PcSet {
        let mut set = PcSet::new(schema())
            .with(pc_box(0.0, 10.0, 50.0))
            .with(pc_box(5.0, 15.0, 60.0))
            .with(pc_box(8.0, 20.0, 70.0));
        let mut domain = Region::full(set.schema());
        domain.set_interval(0, Interval::half_open(0.0, 20.0));
        set.set_domain(domain);
        set
    }

    fn cell_set(set: &PcSet) -> CellSet {
        let base = set.domain().clone();
        let (cells, stats) = decompose(set, &base, Strategy::DfsRewrite).unwrap();
        let uncovered = set.uncovered_witness_with(&base, false);
        CellSet::new(set, base, cells, stats, uncovered)
    }

    #[test]
    fn specializing_to_base_is_identity() {
        let set = overlapping_set();
        let cs = cell_set(&set);
        let mut stats = cs.stats();
        let cells = cs.specialize(&set, cs.base(), &mut stats, false);
        assert_eq!(cells.len(), cs.cells().len());
        // no SAT re-checks: every cell is contained in the target
        assert_eq!(stats.sat_checks, cs.stats().sat_checks);
        for (a, b) in cells.iter().zip(cs.cells()) {
            assert_eq!(a.active, b.active);
            assert_eq!(a.witness, b.witness);
        }
    }

    #[test]
    fn specialized_cells_match_fresh_decomposition() {
        let set = overlapping_set();
        let cs = cell_set(&set);
        for (lo, hi) in [(0.0, 6.0), (4.0, 12.0), (9.0, 20.0), (12.0, 20.0)] {
            let mut target = set.domain().clone();
            target.set_interval(
                0,
                target.interval(0).intersect(&Interval::half_open(lo, hi)),
            );
            let mut stats = cs.stats();
            let specialized = cs.specialize(&set, &target, &mut stats, false);
            let (fresh, _) = decompose(&set, &target, Strategy::DfsRewrite).unwrap();
            let mut a: Vec<Vec<usize>> = specialized.iter().map(|c| c.active.to_vec()).collect();
            let mut b: Vec<Vec<usize>> = fresh.iter().map(|c| c.active.to_vec()).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "target [{lo}, {hi})");
            for cell in &specialized {
                let w = cell.witness.as_ref().expect("exact mode carries witnesses");
                assert!(cell.region.contains_row(w));
                for (j, pc) in set.constraints().iter().enumerate() {
                    assert_eq!(
                        pc.predicate.eval(w),
                        cell.is_active(j),
                        "target [{lo}, {hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn disjoint_target_drops_everything() {
        let set = overlapping_set();
        let cs = cell_set(&set);
        let mut target = set.domain().clone();
        target.set_interval(0, Interval::half_open(100.0, 120.0));
        let mut stats = cs.stats();
        assert!(cs.specialize(&set, &target, &mut stats, false).is_empty());
    }

    #[test]
    fn splice_matches_full_decomposition() {
        // shared constraint on x plus one key-local (point) constraint:
        // splicing the local into the shared cells must reproduce the
        // cells of decomposing both constraints together in the slice.
        let s = Schema::new(vec![("g", AttrType::Cat), ("v", AttrType::Float)]);
        let shared = PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 0.0, 3.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 50.0)),
            FrequencyConstraint::at_most(10),
        );
        let local = PredicateConstraint::new(
            Predicate::atom(Atom::eq(0, 1.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 80.0)),
            FrequencyConstraint::at_most(5),
        );
        let mut both = PcSet::new(s.clone())
            .with(shared.clone())
            .with(local.clone());
        let mut domain = Region::full(&s);
        domain.set_interval(0, Interval::closed(0.0, 3.0));
        both.set_domain(domain.clone());

        // slice g = 1
        let mut slice = domain.clone();
        slice.set_interval(0, Interval::point(1.0));
        let (want, _) = decompose(&both, &slice, Strategy::DfsRewrite).unwrap();

        // two-level by hand: decompose the shared constraint alone …
        let mut shared_only = PcSet::new(s).with(shared);
        shared_only.set_domain(domain);
        let (cells, _) = decompose(&shared_only, &slice, Strategy::DfsRewrite).unwrap();
        // … then splice the local (global index 1) into each shared cell
        let mut got = Vec::new();
        let mut stats = DecomposeStats::default();
        for cell in cells {
            splice_locals(
                cell.region,
                &cell.active,
                &cell.undecided,
                cell.witness,
                Vec::new(),
                &[(1, &local)],
                false,
                &mut got,
                &mut stats,
            );
        }
        let mut a: Vec<Vec<usize>> = want.iter().map(|c| c.active.to_vec()).collect();
        let mut b: Vec<Vec<usize>> = got.iter().map(|c| c.active.to_vec()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        for cell in &got {
            let w = cell
                .witness
                .as_ref()
                .expect("spliced cells carry witnesses");
            assert!(cell.region.contains_row(w));
        }
    }

    /// Sorted (signature, region) pairs for structural comparison.
    fn shape(cells: &[Cell]) -> Vec<(Vec<usize>, pc_predicate::Region)> {
        let mut out: Vec<_> = cells
            .iter()
            .map(|c| (c.active.to_vec(), (*c.region).clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    fn assert_genuine_witnesses(cells: &[Cell], set: &PcSet) {
        for cell in cells {
            let w = cell.witness.as_ref().expect("exact mode carries witnesses");
            assert!(cell.region.contains_row(w));
            for (j, pc) in set.constraints().iter().enumerate() {
                assert_eq!(pc.predicate.eval(w), cell.is_active(j), "{cell:?}");
            }
        }
    }

    #[test]
    fn derive_add_matches_fresh_decomposition() {
        let set = overlapping_set();
        let cs = cell_set(&set);
        // an overlapping cap, a cap contained in existing boxes, and a
        // cap reaching uncovered-by-existing-cells space
        for extra in [
            pc_box(3.0, 12.0, 65.0),
            pc_box(6.0, 9.0, 45.0),
            pc_box(12.0, 20.0, 90.0),
        ] {
            let mut bigger = set.clone();
            bigger.push(extra);
            let uncovered = bigger.uncovered_witness_with(bigger.domain(), false);
            let derived = cs.derive_add(&bigger, false, uncovered, cs.uncovered().is_none());
            let (fresh, fresh_stats) =
                decompose(&bigger, bigger.domain(), Strategy::DfsRewrite).unwrap();
            assert_eq!(shape(derived.cells()), shape(&fresh));
            assert_genuine_witnesses(derived.cells(), &bigger);
            assert!(
                derived.stats().sat_checks < fresh_stats.sat_checks,
                "incremental {} checks vs fresh {}",
                derived.stats().sat_checks,
                fresh_stats.sat_checks
            );
            assert!(derived.stats().incremental_splits > 0);
        }
    }

    #[test]
    fn derive_add_disjoint_box_shares_everything() {
        let set = overlapping_set();
        let cs = cell_set(&set);
        let mut bigger = set.clone();
        // box outside the domain: no cell is cut, no new-only cell exists
        bigger.push(pc_box(25.0, 30.0, 10.0));
        let derived = cs.derive_add(&bigger, false, None, cs.uncovered().is_none());
        assert_eq!(derived.stats().sat_checks, 0);
        assert_eq!(derived.stats().incremental_splits, 0);
        assert_eq!(derived.cells().len(), cs.cells().len());
    }

    #[test]
    fn derive_add_emits_the_new_only_cell_on_open_bases() {
        // base not closed (x ∈ [20, 25) uncovered): an added constraint
        // reaching the hole must produce the new-constraint-only cell —
        // with the cached counterexample as a free witness when it lies
        // in the new box
        let mut set = overlapping_set();
        let mut domain = set.domain().clone();
        domain.set_interval(0, Interval::half_open(0.0, 25.0));
        set.set_domain(domain);
        let cs = cell_set(&set);
        assert!(cs.uncovered().is_some(), "base must be open");
        let mut bigger = set.clone();
        bigger.push(pc_box(18.0, 24.0, 55.0));
        let uncovered = bigger.uncovered_witness_with(bigger.domain(), false);
        let derived = cs.derive_add(&bigger, false, uncovered, false);
        let (fresh, _) = decompose(&bigger, bigger.domain(), Strategy::DfsRewrite).unwrap();
        assert_eq!(shape(derived.cells()), shape(&fresh));
        assert_genuine_witnesses(derived.cells(), &bigger);
        let n = bigger.len() - 1;
        assert!(
            derived.cells().iter().any(|c| c.active.to_vec() == vec![n]),
            "the new-only signature must appear"
        );
    }

    #[test]
    fn derive_retire_matches_fresh_without_sat() {
        let set = overlapping_set();
        let cs = cell_set(&set);
        for removed in 0..set.len() {
            let mut smaller = set.clone();
            smaller.remove_constraint(removed);
            let uncovered = smaller.uncovered_witness_with(smaller.domain(), false);
            let derived = cs.derive_retire(&smaller, removed, uncovered);
            assert_eq!(derived.stats().sat_checks, 0, "retire is SAT-free");
            let (fresh, _) = decompose(&smaller, smaller.domain(), Strategy::DfsRewrite).unwrap();
            assert_eq!(shape(derived.cells()), shape(&fresh), "removed {removed}");
            assert_genuine_witnesses(derived.cells(), &smaller);
        }
    }

    #[test]
    fn derive_chain_survives_add_then_retire() {
        // derive twice in a row (the epoch chain): add then retire the
        // same constraint must land back on the original decomposition
        let set = overlapping_set();
        let cs = cell_set(&set);
        let mut bigger = set.clone();
        bigger.push(pc_box(3.0, 12.0, 65.0));
        let added = cs.derive_add(
            &bigger,
            false,
            bigger.uncovered_witness_with(bigger.domain(), false),
            cs.uncovered().is_none(),
        );
        let back = added.derive_retire(
            &set,
            set.len(),
            set.uncovered_witness_with(set.domain(), false),
        );
        assert_eq!(shape(back.cells()), shape(cs.cells()));
        assert_genuine_witnesses(back.cells(), &set);
    }

    #[test]
    fn session_style_bound_via_specialize_matches_engine() {
        let set = overlapping_set();
        let cs = cell_set(&set);
        let engine = BoundEngine::new(&set);
        for (lo, hi) in [(0.0, 20.0), (3.0, 11.0), (10.0, 20.0)] {
            let query = AggQuery::new(AggKind::Sum, 1, Predicate::atom(Atom::bucket(0, lo, hi)));
            let fresh = engine.bound(&query).unwrap();
            let mut target = query.predicate.to_region(set.schema());
            target.intersect(set.domain());
            let mut stats = cs.stats();
            let cells = cs.specialize(&set, &target, &mut stats, false);
            stats.cells = cells.len();
            let closed = cs.closed() || set.is_closed_within(&target);
            let problem = engine
                .problem_from_cells(query.attr, &target, cells, stats, closed, None)
                .unwrap();
            let specialized = engine.bound_problem(query.agg, &problem).unwrap();
            assert_eq!(fresh.range, specialized.range, "query [{lo}, {hi})");
            assert_eq!(fresh.closed, specialized.closed);
        }
    }
}
