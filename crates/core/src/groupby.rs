//! GROUP-BY support (§2): "a GROUP-BY clause can be considered as a union
//! of such queries without GROUP-BY" — each group value becomes one
//! bounded query with the group membership conjoined to the WHERE clause.
//!
//! # Shared decomposition
//!
//! The naive reading of that union decomposes the constraint set from
//! scratch for every group key — a 1 000-key categorical GROUP-BY pays for
//! 1 000 exponential-worst-case decompositions of the *same* constraints.
//! The engine instead (when [`crate::BoundOptions::shared_group_by`] is
//! on, the default):
//!
//! 1. decomposes **once** against `query ∩ domain`, the union of every
//!    group's region;
//! 2. **specializes** the surviving cells per key: a cell whose box
//!    misses the key's slice is dropped on an interval intersection, a
//!    cell whose stored witness lies inside the slice is kept for free,
//!    and only cells in between pay a satisfiability re-check of their
//!    conjunction inside the slice (memoized across groups in one shared
//!    store);
//! 3. solves **every group as its own stealable task** on the
//!    work-stealing pool, preserving output order. Earlier versions split
//!    the keys into `threads` fixed chunks, so one slow group (a dense
//!    slice paying a long branch & bound) stalled its whole chunk behind
//!    a barrier; with per-group tasks idle workers steal the remaining
//!    groups instead. Each pool worker chains **simplex warm starts**
//!    ([`pc_solver::solve_lp_warm`]) from one group's LPs to the next
//!    through a per-worker cache, so chains stay effectively
//!    single-threaded without a barrier coupling them.
//!
//! Specialization is exact, not heuristic: the activity patterns
//! satisfiable inside a slice are precisely the shared patterns whose
//! conjunction remains satisfiable there (a slice witness is also a base
//! witness), so every group's bound equals what a from-scratch
//! [`BoundEngine::bound`] of that group computes — property-tested in
//! `tests/prop_groupby.rs`. The one exception is the approximate
//! [`crate::Strategy::EarlyStop`]: unverified cells admitted by the shared
//! base pass stay admitted in every overlapping slice, so shared bounds
//! can be wider (never narrower) than per-key bounds there — both remain
//! sound, as early stopping only ever widens.

use crate::bounds::WarmCache;
use crate::{BoundEngine, BoundError, BoundReport, Cell, DecomposeStats};
use pc_predicate::{sat, Atom, Interval, Predicate, Region};
use pc_storage::AggQuery;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The result range of one group.
#[derive(Debug, Clone)]
pub struct GroupBound {
    /// The group's (encoded) key value.
    pub key: f64,
    /// The bound, or the per-group error (`EmptyAggregate` is common and
    /// expected for groups no missing row can reach).
    pub report: Result<BoundReport, BoundError>,
}

impl BoundEngine<'_> {
    /// Bound `SELECT agg(attr) … GROUP BY group_attr` for an explicit list
    /// of group keys (e.g. every dictionary code of a categorical
    /// attribute, or the distinct values observed historically).
    ///
    /// Each group is the base query with `group_attr = key` conjoined —
    /// exactly the union-of-queries semantics of §2. Group keys the
    /// constraints prove unreachable come back as
    /// [`BoundError::EmptyAggregate`] rather than a fabricated zero range,
    /// so callers can distinguish "no missing rows here" from "bounded".
    ///
    /// Groups are answered from one shared decomposition, in parallel,
    /// with warm-started LPs (see the module docs); results are returned
    /// in key order regardless of thread count, and each group's bound is
    /// identical to a standalone [`BoundEngine::bound`] of that group.
    pub fn bound_group_by(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
    ) -> Vec<GroupBound> {
        let keys: Vec<f64> = keys.into_iter().collect();
        if keys.is_empty() {
            return Vec::new();
        }
        if !self.options.shared_group_by || self.mostly_key_local(group_attr) {
            return self.bound_group_by_per_key(base, group_attr, &keys);
        }

        // 1. One decomposition for the union of all groups.
        let mut base_region = base.predicate.to_region(self.set.schema());
        base_region.intersect(self.set.domain());
        let shared = match self.cells_for_base(&base_region) {
            Ok(shared) => shared,
            Err(e) => {
                return keys
                    .iter()
                    .map(|&key| GroupBound {
                        key,
                        report: Err(e.clone()),
                    })
                    .collect()
            }
        };

        // Closure hoisting: a slice of a closed region is closed (it is a
        // subset), so one base-level check answers every group. Only a
        // non-closed base needs per-slice re-checks (a slice can dodge the
        // uncovered part).
        let base_closed = self.options.check_closure && self.set.is_closed_within(&base_region);
        let ctx = self.shared_ctx(&shared, group_attr, base_closed);

        // 2–3. Specialize and solve, one stealable task per key. The
        // specialization memo is shared by every group; warm-start chains
        // are per pool worker.
        let threads = self.group_threads(keys.len());
        let memo: Mutex<SliceMemo> = Mutex::new(HashMap::new());
        let caches = WarmCaches::new(self.options.warm_start);
        let solve = |key: f64| GroupBound {
            key,
            report: self.bound_group_slice(
                base,
                key,
                &ctx,
                &base_region,
                &memo,
                caches.for_current_worker(),
            ),
        };
        pooled_groups(&keys, threads, &solve)
    }

    /// Precompute the per-cell facts every group reuses: for each cell,
    /// the exclusions overlapping its box at all, paired with their
    /// group-attribute interval.
    fn shared_ctx<'c>(
        &'c self,
        shared: &'c (Vec<Cell>, DecomposeStats),
        group_attr: usize,
        base_closed: bool,
    ) -> SharedCtx<'c> {
        let (cells, stats) = shared;
        let constraints = self.set.constraints();
        // Each predicate's group-attribute interval depends only on the
        // predicate: fold once per constraint, not once per (cell ×
        // constraint).
        let g_iv_of: Vec<Interval> = constraints
            .iter()
            .map(|pc| {
                pc.predicate
                    .atoms()
                    .iter()
                    .filter(|a| a.attr == group_attr)
                    .fold(Interval::FULL, |acc, a| acc.intersect(&a.interval))
            })
            .collect();
        let mut relevant_of = Vec::with_capacity(cells.len());
        let mut memoable = Vec::with_capacity(cells.len());
        for cell in cells {
            // An exclusion whose box misses the cell box in any dimension
            // can never capture a point of any slice of this cell.
            let relevant: Vec<(Interval, &Predicate)> = constraints
                .iter()
                .enumerate()
                .filter(|(j, _)| !cell.active.contains(*j))
                .filter(|(_, pc)| {
                    pc.predicate.atoms().iter().all(|a| {
                        !cell
                            .region
                            .interval(a.attr)
                            .intersect(&a.interval)
                            .is_empty(cell.region.attr_type(a.attr))
                    })
                })
                .map(|(j, pc)| (g_iv_of[j], &pc.predicate))
                .collect();
            memoable.push(relevant.len() <= 64);
            relevant_of.push(relevant);
        }
        SharedCtx {
            cells,
            stats: *stats,
            relevant_of,
            memoable,
            group_attr,
            base_closed,
        }
    }

    /// The pre-tentpole baseline: one full `bound()` per key. Used for A/B
    /// comparison (`shared_group_by: false`), as the property-test oracle,
    /// and as the plan for mostly-key-local sets — which is why it spreads
    /// keys over the pool like the shared path. Per-key decompositions may
    /// fork *inside* a group task too: nested fan-out lands on the same
    /// work-stealing pool, so there is no thread oversubscription to
    /// avoid (the old chunked driver pinned inner work to one thread).
    fn bound_group_by_per_key(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: &[f64],
    ) -> Vec<GroupBound> {
        let threads = self.group_threads(keys.len());
        let solve = |key: f64| {
            let predicate = base
                .predicate
                .clone()
                .and(Atom::new(group_attr, Interval::point(key)));
            let query = AggQuery::new(base.agg, base.attr, predicate);
            GroupBound {
                key,
                report: self.bound(&query),
            }
        };
        pooled_groups(keys, threads, &solve)
    }

    /// Bound one group from the shared decomposition.
    fn bound_group_slice(
        &self,
        base: &AggQuery,
        key: f64,
        ctx: &SharedCtx<'_>,
        base_region: &Region,
        memo: &Mutex<SliceMemo>,
        warm: Option<WarmCache>,
    ) -> Result<BoundReport, BoundError> {
        let group_attr = ctx.group_attr;
        let key_iv = Interval::point(key);
        let ty = base_region.attr_type(group_attr);
        let mut slice = base_region.clone();
        slice.set_interval(group_attr, slice.interval(group_attr).intersect(&key_iv));

        let mut stats = ctx.stats;
        let mut cells = Vec::with_capacity(ctx.cells.len());
        for (cell_idx, cell) in ctx.cells.iter().enumerate() {
            let cur = cell.region.interval(group_attr);
            let narrowed = cur.intersect(&key_iv);
            if narrowed.is_empty(ty) {
                // the cell's box misses this group entirely
                continue;
            }
            let region = if narrowed == *cur {
                Arc::clone(&cell.region)
            } else {
                let mut r = (*cell.region).clone();
                r.set_interval(group_attr, narrowed);
                Arc::new(r)
            };
            let witness = match &cell.witness {
                // the shared witness already lives in this group's slice:
                // satisfiability carries over for free
                Some(w) if region.contains_row(w) => Some(w.clone()),
                // box overlaps but the witness is elsewhere: re-verify the
                // cell's conjunction inside the slice — memoized by which
                // exclusions are group-active, because two slices overlapped
                // by the same exclusion subset have isomorphic cross-sections
                // (only the group coordinate differs)
                Some(_) => {
                    match self.slice_witness(cell_idx, key, &region, ctx, memo, &mut stats) {
                        Some(w) => Some(w),
                        None => continue,
                    }
                }
                // early-stop cell, admitted unverified in the shared pass:
                // stays admitted (only ever widens bounds, like the
                // sequential EarlyStop semantics)
                None => None,
            };
            cells.push(Cell {
                region,
                active: cell.active.clone(),
                witness,
            });
        }
        stats.cells = cells.len();

        let closed = if !self.options.check_closure || ctx.base_closed {
            // disabled, or hoisted: every slice of a closed base is closed
            true
        } else {
            self.set.is_closed_within(&slice)
        };
        let problem = self.problem_from_cells(base.attr, &slice, cells, stats, closed, warm)?;
        self.bound_problem(base.agg, &problem)
    }

    /// Decide satisfiability of `cell ∧ ¬exclusions` inside the slice at
    /// `key`, returning a witness. Memoized on (cell, group-active
    /// exclusion mask): a cached verdict transfers to any other key with
    /// the same mask, with the witness's group coordinate remapped. The
    /// memo is shared by every group task; two workers racing on the same
    /// uncached mask both pay the check (last insert wins, verdicts are
    /// equal), so concurrency can only add `sat_checks`, never miss one.
    fn slice_witness(
        &self,
        cell_idx: usize,
        key: f64,
        region: &Region,
        ctx: &SharedCtx<'_>,
        memo: &Mutex<SliceMemo>,
        stats: &mut DecomposeStats,
    ) -> Option<Vec<f64>> {
        let relevant = &ctx.relevant_of[cell_idx];
        // Only group-active relevant exclusions can capture a point of
        // this slice; the rest are disjoint from it in some dimension.
        let negs: Vec<&Predicate> = relevant
            .iter()
            .filter(|(g_iv, _)| g_iv.contains(key))
            .map(|(_, p)| *p)
            .collect();
        if !ctx.memoable[cell_idx] {
            // too many relevant exclusions for the 64-bit mask: still use
            // the (sound) group-active filter, just without memoization
            stats.sat_checks += 1;
            return sat::find_witness(region, &negs);
        }
        let mut mask = 0u64;
        for (bit, (g_iv, _)) in relevant.iter().enumerate() {
            if g_iv.contains(key) {
                mask |= 1 << bit;
            }
        }
        let cached = memo.lock().unwrap().get(&(cell_idx, mask)).cloned();
        if let Some(template) = cached {
            return template.map(|mut w| {
                w[ctx.group_attr] = key;
                w
            });
        }
        stats.sat_checks += 1;
        let witness = sat::find_witness(region, &negs);
        memo.lock()
            .unwrap()
            .insert((cell_idx, mask), witness.clone());
        witness
    }

    /// True when most constraints pin the group attribute to a single
    /// value (per-key floors/caps). Such sets are poison for the shared
    /// path — the base decomposition must arrange *every* key's private
    /// constraints against each other, while per-key pushdown prunes all
    /// but one of them in a single check each. Bounds are identical either
    /// way; this only picks the cheaper plan. (A two-level decomposition
    /// that hoists key-local constraints out of the shared pass is the
    /// natural follow-up — see ROADMAP.)
    fn mostly_key_local(&self, group_attr: usize) -> bool {
        let n = self.set.len();
        if n == 0 {
            return false;
        }
        let local = self
            .set
            .constraints()
            .iter()
            .filter(|pc| {
                // fold only the group-attribute atoms (like
                // `shared_ctx`'s `g_iv_of`) — no full Region per
                // constraint just to read one interval
                let iv = pc.predicate.interval_for(group_attr);
                iv.sup() == iv.inf()
            })
            .count();
        local * 2 > n
    }

    /// Threads to spread groups over.
    fn group_threads(&self, n_keys: usize) -> usize {
        let par = crate::Parallelism {
            threads: self.options.threads,
            depth: None,
        };
        par.resolved_threads().min(n_keys).max(1)
    }
}

/// Precomputed, read-only facts shared by every group of one GROUP-BY.
struct SharedCtx<'a> {
    /// The shared decomposition's cells.
    cells: &'a [Cell],
    /// Its work counters (copied into every group's report).
    stats: DecomposeStats,
    /// Per cell: exclusions whose box overlaps the cell box at all, with
    /// their group-attribute interval (`FULL` when unconstrained on it).
    relevant_of: Vec<Vec<(Interval, &'a Predicate)>>,
    /// Whether the cell's relevant exclusions fit the 64-bit memo mask.
    memoable: Vec<bool>,
    group_attr: usize,
    /// Result of the hoisted base-level closure check.
    base_closed: bool,
}

/// Shared specialization memo: (cell, group-active exclusion mask) →
/// witness template (`None` = that cross-section is unsatisfiable). One
/// mutex'd store serves every group of a GROUP-BY — a verdict computed
/// for any key transfers to all keys with the same mask, regardless of
/// which worker solved them.
type SliceMemo = HashMap<(usize, u64), Option<Vec<f64>>>;

/// One warm-start cache per pool worker (plus one for the calling
/// thread): groups solved on the same worker chain their simplex bases
/// from one LP to the next without cross-thread contention, replacing the
/// per-chunk `Rc<RefCell>` chains of the chunked driver.
struct WarmCaches {
    slots: Option<Vec<WarmCache>>,
}

impl WarmCaches {
    fn new(enabled: bool) -> Self {
        let slots = enabled.then(|| {
            (0..=rayon::current_num_threads())
                .map(|_| Arc::new(Mutex::new(HashMap::new())))
                .collect()
        });
        WarmCaches { slots }
    }

    /// The cache owned by the executing worker (last slot for calls from
    /// outside the pool), or `None` when warm starting is disabled.
    fn for_current_worker(&self) -> Option<WarmCache> {
        let slots = self.slots.as_ref()?;
        let i = rayon::current_thread_index().unwrap_or(slots.len() - 1);
        Some(Arc::clone(&slots[i]))
    }
}

/// Solve every key as its own stealable pool task, returning results in
/// key order — the driver shared by the shared-decomposition and per-key
/// GROUP-BY paths. No chunk barriers: a slow group delays only itself,
/// and idle workers steal whatever groups remain.
fn pooled_groups<F>(keys: &[f64], threads: usize, solve: &F) -> Vec<GroupBound>
where
    F: Fn(f64) -> GroupBound + Sync,
{
    if threads <= 1 || keys.len() <= 1 {
        return keys.iter().map(|&key| solve(key)).collect();
    }
    let slots: Vec<Mutex<Option<GroupBound>>> = keys.iter().map(|_| Mutex::new(None)).collect();
    rayon::scope(|s| {
        for (slot, &key) in slots.iter().zip(keys) {
            s.spawn(move |_| {
                *slot.lock().unwrap() = Some(solve(key));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every group task ran to completion")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundOptions, FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint};
    use pc_predicate::{AttrType, Predicate, Region, Schema};
    use pc_storage::AggKind;

    fn branch_set() -> PcSet {
        let schema = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
        let mut domain = Region::full(&schema);
        domain.set_interval(0, Interval::closed(0.0, 2.0));
        let mut set = PcSet::new(schema);
        for (code, hi, k) in [(0u32, 149.99, 5u64), (1, 100.0, 10), (2, 50.0, 3)] {
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::eq(0, f64::from(code))),
                ValueConstraint::none().with(1, Interval::closed(0.0, hi)),
                FrequencyConstraint::at_most(k),
            ));
        }
        set.set_domain(domain);
        set.set_disjoint_hint(true);
        set
    }

    /// Overlapping constraints across branches: exercises the real
    /// decomposition + MILP machinery in both group-by paths.
    fn overlapping_branch_set() -> PcSet {
        let schema = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
        let mut domain = Region::full(&schema);
        domain.set_interval(0, Interval::closed(0.0, 3.0));
        let mut set = PcSet::new(schema);
        // per-branch constraints
        for (code, hi, k) in [(0u32, 149.99, 5u64), (1, 100.0, 10), (2, 50.0, 3)] {
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::eq(0, f64::from(code))),
                ValueConstraint::none().with(1, Interval::closed(0.0, hi)),
                FrequencyConstraint::at_most(k),
            ));
        }
        // cross-cutting constraints overlapping several branches
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 0.0, 2.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 120.0)),
            FrequencyConstraint::at_most(12),
        ));
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 1.0, 4.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 80.0)),
            FrequencyConstraint::between(2, 9),
        ));
        set.set_domain(domain);
        set
    }

    #[test]
    fn group_by_branch_sums() {
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let groups = engine.bound_group_by(&base, 0, [0.0, 1.0, 2.0]);
        assert_eq!(groups.len(), 3);
        let his: Vec<f64> = groups
            .iter()
            .map(|g| g.report.as_ref().unwrap().range.hi)
            .collect();
        assert!((his[0] - 5.0 * 149.99).abs() < 1e-6);
        assert!((his[1] - 10.0 * 100.0).abs() < 1e-6);
        assert!((his[2] - 3.0 * 50.0).abs() < 1e-6);
    }

    #[test]
    fn group_sum_upper_bounds_match_total() {
        // union semantics: the total SUM bound equals the sum of group
        // bounds for disjoint groups covering the domain
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let total = engine.bound(&base).unwrap().range.hi;
        let group_total: f64 = engine
            .bound_group_by(&base, 0, [0.0, 1.0, 2.0])
            .iter()
            .map(|g| g.report.as_ref().unwrap().range.hi)
            .sum();
        assert!((total - group_total).abs() < 1e-6);
    }

    #[test]
    fn unreachable_group_is_flagged() {
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        // MIN over a group outside the domain: provably empty
        let base = AggQuery::new(AggKind::Min, 1, Predicate::always());
        let groups = engine.bound_group_by(&base, 0, [7.0]);
        assert!(matches!(groups[0].report, Err(BoundError::EmptyAggregate)));
    }

    fn assert_reports_match(shared: &[GroupBound], per_key: &[GroupBound]) {
        assert_eq!(shared.len(), per_key.len());
        for (s, p) in shared.iter().zip(per_key) {
            assert_eq!(s.key, p.key);
            match (&s.report, &p.report) {
                (Ok(a), Ok(b)) => {
                    // 1e-5, not 1e-6: with the pool auto-enabled the
                    // allocation B&B may prune a node tying the incumbent
                    // within its 1e-6 tolerance in one run and explore it
                    // in the other
                    assert!(
                        (a.range.lo - b.range.lo).abs() < 1e-5
                            && (a.range.hi - b.range.hi).abs() < 1e-5,
                        "key {}: shared [{}, {}] vs per-key [{}, {}]",
                        s.key,
                        a.range.lo,
                        a.range.hi,
                        b.range.lo,
                        b.range.hi
                    );
                    assert_eq!(a.closed, b.closed, "key {}", s.key);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "key {}", s.key),
                (a, b) => panic!("key {}: shared {:?} vs per-key {:?}", s.key, a, b),
            }
        }
    }

    #[test]
    fn shared_path_matches_per_key_on_overlapping_sets() {
        let set = overlapping_branch_set();
        let keys = [0.0, 1.0, 2.0, 3.0, 7.0];
        for agg in [
            AggKind::Sum,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
            AggKind::Avg,
        ] {
            let base = AggQuery::new(agg, 1, Predicate::always());
            let shared_engine = BoundEngine::new(&set);
            let shared = shared_engine.bound_group_by(&base, 0, keys);
            let baseline_engine = BoundEngine::with_options(
                &set,
                BoundOptions {
                    shared_group_by: false,
                    ..BoundOptions::default()
                },
            );
            let per_key = baseline_engine.bound_group_by(&base, 0, keys);
            assert_reports_match(&shared, &per_key);
        }
    }

    #[test]
    fn parallel_groups_preserve_key_order_and_results() {
        let set = overlapping_branch_set();
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let keys: Vec<f64> = (0..4).map(f64::from).collect();
        let sequential = BoundEngine::with_options(
            &set,
            BoundOptions {
                threads: 1,
                ..BoundOptions::default()
            },
        )
        .bound_group_by(&base, 0, keys.clone());
        for threads in [2usize, 3, 8] {
            let parallel = BoundEngine::with_options(
                &set,
                BoundOptions {
                    threads,
                    ..BoundOptions::default()
                },
            )
            .bound_group_by(&base, 0, keys.clone());
            assert_reports_match(&parallel, &sequential);
        }
    }

    #[test]
    fn warm_start_off_matches_on() {
        let set = overlapping_branch_set();
        let base = AggQuery::new(AggKind::Avg, 1, Predicate::always());
        let keys = [0.0, 1.0, 2.0, 3.0];
        let warm = BoundEngine::new(&set).bound_group_by(&base, 0, keys);
        let cold = BoundEngine::with_options(
            &set,
            BoundOptions {
                warm_start: false,
                ..BoundOptions::default()
            },
        )
        .bound_group_by(&base, 0, keys);
        assert_reports_match(&warm, &cold);
    }

    #[test]
    fn empty_key_list_is_empty() {
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        assert!(engine.bound_group_by(&base, 0, []).is_empty());
    }
}
