//! GROUP-BY support (§2): "a GROUP-BY clause can be considered as a union
//! of such queries without GROUP-BY" — each group value becomes one
//! bounded query with the group membership conjoined to the WHERE clause.

use crate::{BoundEngine, BoundError, BoundReport};
use pc_predicate::{Atom, Interval};
use pc_storage::AggQuery;

/// The result range of one group.
#[derive(Debug, Clone)]
pub struct GroupBound {
    /// The group's (encoded) key value.
    pub key: f64,
    /// The bound, or the per-group error (`EmptyAggregate` is common and
    /// expected for groups no missing row can reach).
    pub report: Result<BoundReport, BoundError>,
}

impl BoundEngine<'_> {
    /// Bound `SELECT agg(attr) … GROUP BY group_attr` for an explicit list
    /// of group keys (e.g. every dictionary code of a categorical
    /// attribute, or the distinct values observed historically).
    ///
    /// Each group is the base query with `group_attr = key` conjoined —
    /// exactly the union-of-queries semantics of §2. Group keys the
    /// constraints prove unreachable come back as
    /// [`BoundError::EmptyAggregate`] rather than a fabricated zero range,
    /// so callers can distinguish "no missing rows here" from "bounded".
    pub fn bound_group_by(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
    ) -> Vec<GroupBound> {
        keys.into_iter()
            .map(|key| {
                let predicate = base
                    .predicate
                    .clone()
                    .and(Atom::new(group_attr, Interval::point(key)));
                let query = AggQuery::new(base.agg, base.attr, predicate);
                GroupBound {
                    key,
                    report: self.bound(&query),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint};
    use pc_predicate::{AttrType, Predicate, Region, Schema};
    use pc_storage::AggKind;

    fn branch_set() -> PcSet {
        let schema = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
        let mut domain = Region::full(&schema);
        domain.set_interval(0, Interval::closed(0.0, 2.0));
        let mut set = PcSet::new(schema);
        for (code, hi, k) in [(0u32, 149.99, 5u64), (1, 100.0, 10), (2, 50.0, 3)] {
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::eq(0, f64::from(code))),
                ValueConstraint::none().with(1, Interval::closed(0.0, hi)),
                FrequencyConstraint::at_most(k),
            ));
        }
        set.set_domain(domain);
        set.set_disjoint_hint(true);
        set
    }

    #[test]
    fn group_by_branch_sums() {
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let groups = engine.bound_group_by(&base, 0, [0.0, 1.0, 2.0]);
        assert_eq!(groups.len(), 3);
        let his: Vec<f64> = groups
            .iter()
            .map(|g| g.report.as_ref().unwrap().range.hi)
            .collect();
        assert!((his[0] - 5.0 * 149.99).abs() < 1e-6);
        assert!((his[1] - 10.0 * 100.0).abs() < 1e-6);
        assert!((his[2] - 3.0 * 50.0).abs() < 1e-6);
    }

    #[test]
    fn group_sum_upper_bounds_match_total() {
        // union semantics: the total SUM bound equals the sum of group
        // bounds for disjoint groups covering the domain
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let total = engine.bound(&base).unwrap().range.hi;
        let group_total: f64 = engine
            .bound_group_by(&base, 0, [0.0, 1.0, 2.0])
            .iter()
            .map(|g| g.report.as_ref().unwrap().range.hi)
            .sum();
        assert!((total - group_total).abs() < 1e-6);
    }

    #[test]
    fn unreachable_group_is_flagged() {
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        // MIN over a group outside the domain: provably empty
        let base = AggQuery::new(AggKind::Min, 1, Predicate::always());
        let groups = engine.bound_group_by(&base, 0, [7.0]);
        assert!(matches!(groups[0].report, Err(BoundError::EmptyAggregate)));
    }
}
