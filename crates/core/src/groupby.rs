//! GROUP-BY support (§2): "a GROUP-BY clause can be considered as a union
//! of such queries without GROUP-BY" — each group value becomes one
//! bounded query with the group membership conjoined to the WHERE clause.
//!
//! # Two-level shared decomposition
//!
//! The naive reading of that union decomposes the constraint set from
//! scratch for every group key — a 1 000-key categorical GROUP-BY pays for
//! 1 000 exponential-worst-case decompositions of the *same* constraints.
//! The engine instead (when [`crate::BoundOptions::shared_group_by`] is
//! on, the default) runs a **two-level** scheme:
//!
//! 1. **Level 1 — shared constraints, decomposed once.** Constraints are
//!    partitioned by their group-attribute interval: those pinned to a
//!    single key (*key-local* — per-key floors and caps, the common shape
//!    of per-group assumptions) are set aside; the rest (*shared*) are
//!    decomposed once against `query ∩ domain`, the union of every
//!    group's region. Key-local constraints never enter this
//!    decomposition, so a thousand per-key caps no longer blow up the
//!    shared include/exclude tree — the failure mode that used to force a
//!    `mostly_key_local` fallback to the per-key path, now retired.
//! 2. **Specialize** the surviving cells per key
//!    ([`crate::specialize::SliceSpecializer`]): a cell whose box misses
//!    the key's slice is dropped on an interval intersection, a cell
//!    whose stored witness lies inside the slice is kept for free, and
//!    only cells in between pay a satisfiability re-check — memoized
//!    across keys on the group-active exclusion mask.
//! 3. **Level 2 — splice the key's local constraints** into its slice
//!    ([`crate::specialize::splice_locals`]): a mini include/exclude DFS
//!    over the handful of constraints pinned to that key, run inside each
//!    specialized cell *and* inside the virtual ∅-cell (the part of the
//!    slice covered by no shared constraint, which only key-local
//!    constraints can populate; its satisfiability is memoized across
//!    keys like any other cross-section). The carried witnesses settle
//!    one branch of every split for free — and whole splice *outcomes*
//!    are memoized across keys too: keys whose local constraints are
//!    structurally identical (same boxes modulo the group coordinate,
//!    the common shape of generated per-key caps) replay each cell's
//!    entire DFS from the first such key's leaf list with zero SAT calls
//!    (`DecomposeStats::splice_memo_hits`), witnesses transferred by
//!    remapping the group coordinate.
//! 4. Solve **every group as its own stealable task** on the
//!    work-stealing pool, preserving output order, with per-worker
//!    simplex warm-start chains ([`pc_solver::solve_lp_warm`]).
//!
//! One catalog shape opts out of the shared scheme: a set whose
//! constraint-interaction graph has several connected components
//! ([`crate::shard`]). There the shared level-1 decomposition would pay
//! the whole flat cost up front while each key's slice touches only its
//! own shard(s), so the engine routes per key and lets each key's bound
//! factor over the interaction graph instead — decomposing just the
//! shards that key reaches.
//!
//! The scheme is exact, not heuristic: inside the `group = key` slice,
//! every key-local constraint of *another* key is automatically excluded
//! and automatically satisfied, so the satisfiable activity patterns are
//! exactly (shared pattern satisfiable in the slice) × (local
//! refinements) — and adding a local include/exclude only ever shrinks a
//! pattern's region, so enumerating locals under each satisfiable shared
//! pattern (plus the ∅-pattern) loses nothing. Every group's bound equals
//! what a from-scratch [`BoundEngine::bound`] of that group computes —
//! property-tested in `tests/prop_groupby.rs`, including the
//! key-local-heavy sets the old heuristic punted on. The one exception is
//! the approximate [`crate::Strategy::EarlyStop`]: unverified cells
//! admitted by the shared base pass stay admitted in every overlapping
//! slice (and their local splices stay unverified), so shared bounds can
//! be wider (never narrower) than per-key bounds there — both remain
//! sound, as early stopping only ever widens.

use crate::bounds::{pooled_map_catch, WarmCache, WarmCaches};
use crate::specialize::{overlaps_region, splice_locals, CellSet, SliceSpecializer, VIRTUAL_CELL};
use crate::{
    ActiveSet, BoundEngine, BoundError, BoundReport, Cell, DecomposeStats, PcSet,
    PredicateConstraint,
};
use pc_budget::QueryBudget;
use pc_predicate::{Atom, Interval, Region};
use pc_storage::AggQuery;
use std::collections::HashMap;
use std::sync::Arc;

/// The result range of one group.
#[derive(Debug, Clone)]
pub struct GroupBound {
    /// The group's (encoded) key value.
    pub key: f64,
    /// The bound, or the per-group error (`EmptyAggregate` is common and
    /// expected for groups no missing row can reach).
    pub report: Result<BoundReport, BoundError>,
}

/// Hash key for an `f64` group key (`-0.0` folded onto `0.0`).
fn key_bits(key: f64) -> u64 {
    if key == 0.0 { 0.0f64 } else { key }.to_bits()
}

/// The two-level partition of a constraint set with respect to one group
/// attribute, plus the level-1 decomposition of the shared part.
struct TwoLevel {
    /// Global indices of the shared (not key-pinned) constraints.
    shared_ids: Vec<usize>,
    /// Key → global indices of the constraints pinned to that key.
    locals_by_key: HashMap<u64, Vec<usize>>,
    /// Level-1 cells (active sets in *global* indices).
    cells: Vec<Cell>,
    stats: DecomposeStats,
}

impl BoundEngine<'_> {
    /// Bound `SELECT agg(attr) … GROUP BY group_attr` for an explicit list
    /// of group keys (e.g. every dictionary code of a categorical
    /// attribute, or the distinct values observed historically).
    ///
    /// Each group is the base query with `group_attr = key` conjoined —
    /// exactly the union-of-queries semantics of §2. Group keys the
    /// constraints prove unreachable come back as
    /// [`BoundError::EmptyAggregate`] rather than a fabricated zero range,
    /// so callers can distinguish "no missing rows here" from "bounded".
    ///
    /// Groups are answered from one shared two-level decomposition, in
    /// parallel, with warm-started LPs (see the module docs); results are
    /// returned in key order regardless of thread count, and each group's
    /// bound is identical to a standalone [`BoundEngine::bound`] of that
    /// group.
    pub fn bound_group_by(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
    ) -> Vec<GroupBound> {
        self.bound_group_by_budgeted(base, group_attr, keys, &QueryBudget::unlimited())
    }

    /// [`BoundEngine::bound_group_by`] under a [`QueryBudget`] shared by
    /// the whole call: the shared level-1 decomposition, every key's
    /// splice, and every group's MILP all charge the same meter. On a
    /// trip, groups not yet spliced degrade to a single *frontier* slice
    /// cell (every overlapping constraint undecided — sound, wider; see
    /// [`crate::decompose::decompose_budgeted`]) and finished machinery
    /// is kept, so every key still gets an answer, each flagged
    /// [`BoundReport::degraded`]. A group whose solve task panics comes
    /// back as [`BoundError::Panicked`] without touching its siblings.
    pub fn bound_group_by_budgeted(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
        budget: &QueryBudget,
    ) -> Vec<GroupBound> {
        self.bound_group_by_cached(base, group_attr, keys, None, budget)
    }

    /// [`BoundEngine::bound_group_by_budgeted`] with an optional
    /// already-built domain-wide decomposition of the full set — how a
    /// [`crate::Session`] serves GROUP-BY from its epoch cache. When
    /// `cached` is given, the level-1 shared cells are *derived* from it
    /// (the key-local constraints retire in one zero-SAT pass,
    /// [`CellSet::derive_retire_subset`]) instead of re-decomposed per
    /// call, and a multi-component catalog no longer routes per key — the
    /// flat cost the per-key routing avoids is already paid.
    pub(crate) fn bound_group_by_cached(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: impl IntoIterator<Item = f64>,
        cached: Option<&CellSet>,
        budget: &QueryBudget,
    ) -> Vec<GroupBound> {
        let keys: Vec<f64> = keys.into_iter().collect();
        if keys.is_empty() {
            return Vec::new();
        }
        if !self.options.shared_group_by {
            return self.bound_group_by_per_key(base, group_attr, &keys, budget);
        }
        if cached.is_none()
            && self.options.shard
            && !self.set.disjoint_hint()
            && self.set.len() >= 2
            && crate::shard::interaction_components(self.set).len() > 1
        {
            // Multi-shard catalog: the shared level-1 decomposition would
            // pay the whole superlinear flat cost up front, while each
            // key's slice geometrically touches only its own shard(s).
            // Route per key — every key's bound then factors over the
            // interaction graph (the engine's sharded path), decomposing
            // just the shards its slice reaches.
            return self.bound_group_by_per_key(base, group_attr, &keys, budget);
        }

        // 1. Partition into shared / key-local and decompose the shared
        //    part once for the union of all groups.
        let mut base_region = base.predicate.to_region(self.set.schema());
        base_region.intersect(self.set.domain());
        let two = match self.two_level_decompose(group_attr, &base_region, cached, budget) {
            Ok(two) => two,
            Err(e) => {
                return keys
                    .iter()
                    .map(|&key| GroupBound {
                        key,
                        report: Err(e.clone()),
                    })
                    .collect()
            }
        };

        // Closure hoisting: a slice of a closed region is closed (it is a
        // subset), so one base-level check answers every group. Only a
        // non-closed base needs per-slice re-checks (a slice can dodge the
        // uncovered part). Out of budget the check is skipped and the base
        // treated as open — sound (widens), reported as degraded.
        let base_closed = self.options.check_closure
            && budget.proceed()
            && self
                .set
                .is_closed_within_with(&base_region, self.par_witness());
        let spec = SliceSpecializer::new(
            self.set,
            &two.shared_ids,
            &two.cells,
            group_attr,
            self.par_witness(),
        );

        // 2–4. Specialize, splice, and solve, one stealable task per key.
        let threads = self.task_threads(keys.len());
        let caches = WarmCaches::new(self.options.warm_start);
        let solve = |key: &f64| GroupBound {
            key: *key,
            report: self.bound_group_slice(
                base,
                *key,
                group_attr,
                &two,
                &spec,
                &base_region,
                base_closed,
                caches.for_current_worker(),
                budget,
            ),
        };
        pooled_map_catch(&keys, threads, &solve)
            .into_iter()
            .zip(&keys)
            .map(|(result, &key)| {
                result.unwrap_or(GroupBound {
                    key,
                    report: Err(BoundError::Panicked),
                })
            })
            .collect()
    }

    /// Partition the constraints by group-attribute pinning and produce
    /// the level-1 cells of the shared subset (signatures in global
    /// constraint indices) — decomposed fresh, or derived zero-SAT from a
    /// caller-supplied domain-wide decomposition (the session epoch
    /// cache) by retiring the key-local constraints in one pass.
    fn two_level_decompose(
        &self,
        group_attr: usize,
        base_region: &Region,
        cached: Option<&CellSet>,
        budget: &QueryBudget,
    ) -> Result<TwoLevel, BoundError> {
        let constraints = self.set.constraints();
        let mut shared_ids = Vec::with_capacity(constraints.len());
        let mut locals_by_key: HashMap<u64, Vec<usize>> = HashMap::new();
        for (j, pc) in constraints.iter().enumerate() {
            // fold only the group-attribute atoms — no full Region per
            // constraint just to read one interval
            let iv = pc.predicate.interval_for(group_attr);
            if iv.inf() == iv.sup() && iv.inf().is_finite() {
                locals_by_key.entry(key_bits(iv.inf())).or_default().push(j);
            } else {
                shared_ids.push(j);
            }
        }

        if let Some(cache) = cached {
            let (cells, stats) = self.level1_from_cache(cache, &shared_ids, base_region, budget)?;
            return Ok(TwoLevel {
                shared_ids,
                locals_by_key,
                cells,
                stats,
            });
        }

        let (cells, stats) = if shared_ids.len() == constraints.len() {
            // nothing is key-local: the shared set is the whole set
            self.cells_for_base_budgeted(base_region, budget)?
        } else {
            // decompose the shared subset through a scratch engine, then
            // remap the sub-indices its cells carry to global ones
            let mut sub = PcSet::new(self.set.schema().clone());
            sub.set_domain(self.set.domain().clone());
            // pairwise disjointness is inherited by any subset
            sub.set_disjoint_hint(self.set.disjoint_hint());
            for &j in &shared_ids {
                sub.push(constraints[j].clone());
            }
            let (mut cells, stats) = BoundEngine::with_options(&sub, self.options)
                .cells_for_base_budgeted(base_region, budget)?;
            for cell in &mut cells {
                cell.active = cell.active.iter().map(|i| shared_ids[i]).collect();
            }
            (cells, stats)
        };
        Ok(TwoLevel {
            shared_ids,
            locals_by_key,
            cells,
            stats,
        })
    }

    /// Level-1 cells from an already-built domain-wide decomposition of
    /// the full set: retire every key-local constraint in one zero-SAT
    /// pass ([`CellSet::derive_retire_subset`]), then — only when the
    /// query predicate actually narrows the domain — specialize the
    /// derived cells to `base_region` (interval cuts plus a SAT re-check
    /// for just the genuinely cut cells). Either way no level-1
    /// include/exclude decomposition runs. The returned stats carry the
    /// cache's own counters (the session convention for served cells)
    /// plus the derivation work; signatures come back in global indices.
    fn level1_from_cache(
        &self,
        cache: &CellSet,
        shared_ids: &[usize],
        base_region: &Region,
        budget: &QueryBudget,
    ) -> Result<(Vec<Cell>, DecomposeStats), BoundError> {
        let constraints = self.set.constraints();
        let narrowed = base_region != cache.base();
        if shared_ids.len() == constraints.len() && !narrowed {
            // nothing key-local, whole-domain query: the cache verbatim
            return Ok((cache.cells().to_vec(), cache.stats()));
        }
        let mut sub = PcSet::new(self.set.schema().clone());
        sub.set_domain(self.set.domain().clone());
        sub.set_disjoint_hint(self.set.disjoint_hint());
        for &j in shared_ids {
            sub.push(constraints[j].clone());
        }
        let mut stats = cache.stats();
        let derived;
        let shared: &CellSet = if shared_ids.len() == constraints.len() {
            cache
        } else {
            derived = cache.derive_retire_subset(&sub, shared_ids, None);
            stats.absorb(&derived.stats());
            &derived
        };
        let mut cells = if narrowed {
            shared.specialize_budgeted(&sub, base_region, &mut stats, self.par_witness(), budget)
        } else {
            shared.cells().to_vec()
        };
        if shared_ids.len() != constraints.len() {
            for cell in &mut cells {
                cell.active = cell.active.iter().map(|i| shared_ids[i]).collect();
            }
        }
        Ok((cells, stats))
    }

    /// The pre-tentpole baseline: one full `bound()` per key. Used for A/B
    /// comparison (`shared_group_by: false`) and as the property-test
    /// oracle — which is why it spreads keys over the pool like the shared
    /// path. Per-key decompositions may fork *inside* a group task too:
    /// nested fan-out lands on the same work-stealing pool, so there is no
    /// thread oversubscription to avoid.
    fn bound_group_by_per_key(
        &self,
        base: &AggQuery,
        group_attr: usize,
        keys: &[f64],
        budget: &QueryBudget,
    ) -> Vec<GroupBound> {
        let threads = self.task_threads(keys.len());
        let solve = |key: &f64| {
            let predicate = base
                .predicate
                .clone()
                .and(Atom::new(group_attr, Interval::point(*key)));
            let query = AggQuery::new(base.agg, base.attr, predicate);
            GroupBound {
                key: *key,
                report: self.bound_budgeted(&query, budget),
            }
        };
        pooled_map_catch(keys, threads, &solve)
            .into_iter()
            .zip(keys)
            .map(|(result, &key)| {
                result.unwrap_or(GroupBound {
                    key,
                    report: Err(BoundError::Panicked),
                })
            })
            .collect()
    }

    /// Bound one group: specialize the level-1 cells to the key's slice,
    /// splice the key's local constraints in, and solve.
    #[allow(clippy::too_many_arguments)]
    fn bound_group_slice(
        &self,
        base: &AggQuery,
        key: f64,
        group_attr: usize,
        two: &TwoLevel,
        spec: &SliceSpecializer<'_>,
        base_region: &Region,
        base_closed: bool,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
    ) -> Result<BoundReport, BoundError> {
        let mut slice = base_region.clone();
        slice.set_interval(
            group_attr,
            slice.interval(group_attr).intersect(&Interval::point(key)),
        );

        let mut stats = two.stats;
        if !budget.proceed() {
            // Budget gone before this key's turn: skip the specialize +
            // splice SAT work entirely and degrade the whole slice to one
            // frontier cell — every constraint whose box reaches the
            // slice undecided. Rows of the slice satisfy *some* subset of
            // those constraints, which is exactly the frontier-cell
            // contract, so the bound stays sound (just wider).
            let mut cells = Vec::new();
            if !slice.is_empty() {
                let undecided: ActiveSet = self
                    .set
                    .constraints()
                    .iter()
                    .enumerate()
                    .filter(|(_, pc)| overlaps_region(pc, &slice))
                    .map(|(j, _)| j)
                    .collect();
                cells.push(Cell {
                    region: Arc::new(slice.clone()),
                    active: ActiveSet::new(),
                    witness: None,
                    undecided,
                });
                stats.frontier_cells += 1;
            }
            stats.cells = cells.len();
            let closed = !self.options.check_closure || base_closed;
            let problem = self.problem_from_cells_budgeted(
                base.attr, &slice, cells, stats, closed, warm, budget,
            )?;
            return self.bound_problem(base.agg, &problem);
        }
        let specialized = spec.specialize_slice(key, base_region, &mut stats);

        let cells = match two.locals_by_key.get(&key_bits(key)) {
            // No constraint is pinned to this key: the specialized cells
            // are the slice's full decomposition.
            None => specialized.into_iter().map(|(_, cell)| cell).collect(),
            Some(local_ids) => {
                let locals: Vec<(usize, &PredicateConstraint)> = local_ids
                    .iter()
                    .map(|&j| (j, &self.set.constraints()[j]))
                    .collect();
                // Cross-key splice memoization: keys whose local
                // constraints are structurally identical (same boxes
                // modulo the group coordinate — the common shape of
                // generated per-key caps) share whole splice outcomes;
                // a hit replays the cell's include/exclude DFS with zero
                // SAT calls.
                let sig = SliceSpecializer::locals_signature(&locals, group_attr);
                let mut cells = Vec::with_capacity(specialized.len() * 2);
                for (src, cell) in specialized {
                    if spec.replay_splice(
                        src,
                        key,
                        sig.as_ref(),
                        &cell.region,
                        &cell.active,
                        &locals,
                        &mut cells,
                        &mut stats,
                    ) {
                        continue;
                    }
                    let start = cells.len();
                    let negs = spec.group_active_negs(src, key);
                    splice_locals(
                        Arc::clone(&cell.region),
                        &cell.active,
                        &cell.undecided,
                        cell.witness,
                        negs,
                        &locals,
                        self.par_witness(),
                        &mut cells,
                        &mut stats,
                    );
                    spec.record_splice(src, key, sig.as_ref(), &locals, &cells[start..]);
                }
                // The virtual ∅-cell: slice points covered by no shared
                // constraint, reachable only through this key's locals.
                if !slice.is_empty() {
                    let virtual_region = Arc::new(slice.clone());
                    if !spec.replay_splice(
                        VIRTUAL_CELL,
                        key,
                        sig.as_ref(),
                        &virtual_region,
                        &ActiveSet::new(),
                        &locals,
                        &mut cells,
                        &mut stats,
                    ) {
                        if let Some(w) = spec.virtual_witness(key, &slice, &mut stats) {
                            let start = cells.len();
                            splice_locals(
                                virtual_region,
                                &ActiveSet::new(),
                                &ActiveSet::new(),
                                Some(w),
                                spec.virtual_negs(key),
                                &locals,
                                self.par_witness(),
                                &mut cells,
                                &mut stats,
                            );
                            spec.record_splice(
                                VIRTUAL_CELL,
                                key,
                                sig.as_ref(),
                                &locals,
                                &cells[start..],
                            );
                        }
                    }
                }
                cells
            }
        };
        stats.cells = cells.len();

        let closed = if !self.options.check_closure || base_closed {
            // disabled, or hoisted: every slice of a closed base is closed
            true
        } else if !budget.proceed() {
            // skipped check answers "open" — sound, degraded
            false
        } else {
            self.set.is_closed_within_with(&slice, self.par_witness())
        };
        let problem = self
            .problem_from_cells_budgeted(base.attr, &slice, cells, stats, closed, warm, budget)?;
        self.bound_problem(base.agg, &problem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundOptions, FrequencyConstraint, PredicateConstraint, ValueConstraint};
    use pc_predicate::{AttrType, Predicate, Region, Schema};
    use pc_storage::AggKind;

    fn branch_set() -> PcSet {
        let schema = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
        let mut domain = Region::full(&schema);
        domain.set_interval(0, Interval::closed(0.0, 2.0));
        let mut set = PcSet::new(schema);
        for (code, hi, k) in [(0u32, 149.99, 5u64), (1, 100.0, 10), (2, 50.0, 3)] {
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::eq(0, f64::from(code))),
                ValueConstraint::none().with(1, Interval::closed(0.0, hi)),
                FrequencyConstraint::at_most(k),
            ));
        }
        set.set_domain(domain);
        set.set_disjoint_hint(true);
        set
    }

    /// Overlapping constraints across branches: exercises the real
    /// decomposition + MILP machinery in both group-by paths.
    fn overlapping_branch_set() -> PcSet {
        let schema = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
        let mut domain = Region::full(&schema);
        domain.set_interval(0, Interval::closed(0.0, 3.0));
        let mut set = PcSet::new(schema);
        // per-branch constraints
        for (code, hi, k) in [(0u32, 149.99, 5u64), (1, 100.0, 10), (2, 50.0, 3)] {
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::eq(0, f64::from(code))),
                ValueConstraint::none().with(1, Interval::closed(0.0, hi)),
                FrequencyConstraint::at_most(k),
            ));
        }
        // cross-cutting constraints overlapping several branches
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 0.0, 2.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 120.0)),
            FrequencyConstraint::at_most(12),
        ));
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 1.0, 4.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 80.0)),
            FrequencyConstraint::between(2, 9),
        ));
        set.set_domain(domain);
        set
    }

    #[test]
    fn group_by_branch_sums() {
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let groups = engine.bound_group_by(&base, 0, [0.0, 1.0, 2.0]);
        assert_eq!(groups.len(), 3);
        let his: Vec<f64> = groups
            .iter()
            .map(|g| g.report.as_ref().unwrap().range.hi)
            .collect();
        assert!((his[0] - 5.0 * 149.99).abs() < 1e-6);
        assert!((his[1] - 10.0 * 100.0).abs() < 1e-6);
        assert!((his[2] - 3.0 * 50.0).abs() < 1e-6);
    }

    #[test]
    fn group_sum_upper_bounds_match_total() {
        // union semantics: the total SUM bound equals the sum of group
        // bounds for disjoint groups covering the domain
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let total = engine.bound(&base).unwrap().range.hi;
        let group_total: f64 = engine
            .bound_group_by(&base, 0, [0.0, 1.0, 2.0])
            .iter()
            .map(|g| g.report.as_ref().unwrap().range.hi)
            .sum();
        assert!((total - group_total).abs() < 1e-6);
    }

    #[test]
    fn unreachable_group_is_flagged() {
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        // MIN over a group outside the domain: provably empty
        let base = AggQuery::new(AggKind::Min, 1, Predicate::always());
        let groups = engine.bound_group_by(&base, 0, [7.0]);
        assert!(matches!(groups[0].report, Err(BoundError::EmptyAggregate)));
    }

    fn assert_reports_match(shared: &[GroupBound], per_key: &[GroupBound]) {
        assert_eq!(shared.len(), per_key.len());
        for (s, p) in shared.iter().zip(per_key) {
            assert_eq!(s.key, p.key);
            match (&s.report, &p.report) {
                (Ok(a), Ok(b)) => {
                    // 1e-5, not 1e-6: with the pool auto-enabled the
                    // allocation B&B may prune a node tying the incumbent
                    // within its 1e-6 tolerance in one run and explore it
                    // in the other
                    assert!(
                        (a.range.lo - b.range.lo).abs() < 1e-5
                            && (a.range.hi - b.range.hi).abs() < 1e-5,
                        "key {}: shared [{}, {}] vs per-key [{}, {}]",
                        s.key,
                        a.range.lo,
                        a.range.hi,
                        b.range.lo,
                        b.range.hi
                    );
                    assert_eq!(a.closed, b.closed, "key {}", s.key);
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "key {}", s.key),
                (a, b) => panic!("key {}: shared {:?} vs per-key {:?}", s.key, a, b),
            }
        }
    }

    #[test]
    fn shared_path_matches_per_key_on_overlapping_sets() {
        let set = overlapping_branch_set();
        let keys = [0.0, 1.0, 2.0, 3.0, 7.0];
        for agg in [
            AggKind::Sum,
            AggKind::Count,
            AggKind::Min,
            AggKind::Max,
            AggKind::Avg,
        ] {
            let base = AggQuery::new(agg, 1, Predicate::always());
            let shared_engine = BoundEngine::new(&set);
            let shared = shared_engine.bound_group_by(&base, 0, keys);
            let baseline_engine = BoundEngine::with_options(
                &set,
                BoundOptions {
                    shared_group_by: false,
                    ..BoundOptions::default()
                },
            );
            let per_key = baseline_engine.bound_group_by(&base, 0, keys);
            assert_reports_match(&shared, &per_key);
        }
    }

    #[test]
    fn two_level_handles_purely_key_local_sets() {
        // Every constraint pins the group attribute: the level-1
        // decomposition is empty and the virtual ∅-cell carries all the
        // work — exactly the shape the retired `mostly_key_local`
        // heuristic used to punt to the per-key path.
        let set = branch_set();
        let keys = [0.0, 1.0, 2.0, 7.0];
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Max] {
            let base = AggQuery::new(agg, 1, Predicate::always());
            let shared = BoundEngine::new(&set).bound_group_by(&base, 0, keys);
            let per_key = BoundEngine::with_options(
                &set,
                BoundOptions {
                    shared_group_by: false,
                    ..BoundOptions::default()
                },
            )
            .bound_group_by(&base, 0, keys);
            assert_reports_match(&shared, &per_key);
        }
    }

    #[test]
    fn two_level_splices_forced_key_local_constraints() {
        // A key-local *floor* (kl > 0) interacting with a shared cap:
        // the spliced cells must let the MILP see both rows at once.
        let schema = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
        let mut domain = Region::full(&schema);
        domain.set_interval(0, Interval::closed(0.0, 1.0));
        let mut set = PcSet::new(schema);
        // branch 0 must hold 4–6 rows priced in [10, 20]
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::eq(0, 0.0)),
            ValueConstraint::none().with(1, Interval::closed(10.0, 20.0)),
            FrequencyConstraint::between(4, 6),
        ));
        // everywhere: at most 9 rows priced in [0, 100]
        set.push(PredicateConstraint::new(
            Predicate::always(),
            ValueConstraint::none().with(1, Interval::closed(0.0, 100.0)),
            FrequencyConstraint::at_most(9),
        ));
        set.set_domain(domain);

        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let keys = [0.0, 1.0];
        let shared = BoundEngine::new(&set).bound_group_by(&base, 0, keys);
        let per_key = BoundEngine::with_options(
            &set,
            BoundOptions {
                shared_group_by: false,
                ..BoundOptions::default()
            },
        )
        .bound_group_by(&base, 0, keys);
        assert_reports_match(&shared, &per_key);
        // sanity: branch 0's floor is visible (lo ≥ 4 · 10)
        let g0 = shared[0].report.as_ref().unwrap();
        assert!(g0.range.lo >= 40.0 - 1e-9, "lo = {}", g0.range.lo);
    }

    #[test]
    fn structurally_identical_keys_share_splice_verdicts() {
        // Generated per-key caps: every branch gets the *same* local
        // constraint shape (same value box, same frequency range — only
        // the group coordinate differs), plus shared cross-cutting
        // constraints so the splice genuinely runs inside non-trivial
        // cells. The cross-key memo must replay later keys' splices
        // (splice_memo_hits > 0) without changing any bound.
        let schema = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
        let mut domain = Region::full(&schema);
        domain.set_interval(0, Interval::closed(0.0, 7.0));
        let mut set = PcSet::new(schema);
        for code in 0..8u32 {
            // identical boxes modulo the group coordinate, incl. a floor
            set.push(PredicateConstraint::new(
                Predicate::atom(Atom::eq(0, f64::from(code))),
                ValueConstraint::none().with(1, Interval::closed(10.0, 90.0)),
                FrequencyConstraint::between(1, 6),
            ));
        }
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 0.0, 5.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 120.0)),
            FrequencyConstraint::at_most(20),
        ));
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, 2.0, 7.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 80.0)),
            FrequencyConstraint::at_most(15),
        ));
        set.set_domain(domain);

        let keys: Vec<f64> = (0..8).map(f64::from).collect();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let base = AggQuery::new(agg, 1, Predicate::always());
            let shared = BoundEngine::new(&set).bound_group_by(&base, 0, keys.clone());
            let per_key = BoundEngine::with_options(
                &set,
                BoundOptions {
                    shared_group_by: false,
                    ..BoundOptions::default()
                },
            )
            .bound_group_by(&base, 0, keys.clone());
            assert_reports_match(&shared, &per_key);
            let hits: u64 = shared
                .iter()
                .filter_map(|g| g.report.as_ref().ok())
                .map(|r| r.stats.splice_memo_hits)
                .sum();
            assert!(
                hits > 0,
                "{agg:?}: structurally identical keys must replay splices"
            );
        }
    }

    #[test]
    fn parallel_groups_preserve_key_order_and_results() {
        let set = overlapping_branch_set();
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let keys: Vec<f64> = (0..4).map(f64::from).collect();
        let sequential = BoundEngine::with_options(
            &set,
            BoundOptions {
                threads: 1,
                ..BoundOptions::default()
            },
        )
        .bound_group_by(&base, 0, keys.clone());
        for threads in [2usize, 3, 8] {
            let parallel = BoundEngine::with_options(
                &set,
                BoundOptions {
                    threads,
                    ..BoundOptions::default()
                },
            )
            .bound_group_by(&base, 0, keys.clone());
            assert_reports_match(&parallel, &sequential);
        }
    }

    #[test]
    fn warm_start_off_matches_on() {
        let set = overlapping_branch_set();
        let base = AggQuery::new(AggKind::Avg, 1, Predicate::always());
        let keys = [0.0, 1.0, 2.0, 3.0];
        let warm = BoundEngine::new(&set).bound_group_by(&base, 0, keys);
        let cold = BoundEngine::with_options(
            &set,
            BoundOptions {
                warm_start: false,
                ..BoundOptions::default()
            },
        )
        .bound_group_by(&base, 0, keys);
        assert_reports_match(&warm, &cold);
    }

    #[test]
    fn budgeted_group_by_answers_every_key_soundly() {
        let set = overlapping_branch_set();
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let keys = [0.0, 1.0, 2.0, 3.0];
        let engine = BoundEngine::new(&set);
        let exact = engine.bound_group_by(&base, 0, keys);
        // Starved from the first SAT check: the shared decomposition
        // degrades to frontier cells and every key's splice is skipped —
        // yet every key still answers, each containing its exact range.
        let budget = QueryBudget::armed().with_sat_cap(0);
        let degraded = engine.bound_group_by_budgeted(&base, 0, keys, &budget);
        assert_eq!(degraded.len(), exact.len());
        for (e, d) in exact.iter().zip(&degraded) {
            assert_eq!(e.key, d.key);
            match (&e.report, &d.report) {
                (Ok(e), Ok(d)) => {
                    assert!(d.degraded, "budget tripped, the report must say so");
                    assert!(
                        d.range.lo <= e.range.lo + 1e-9 && d.range.hi >= e.range.hi - 1e-9,
                        "degraded {:?} must contain exact {:?}",
                        d.range,
                        e.range
                    );
                }
                // a starved key may answer wide where the exact run
                // proved emptiness — never the reverse
                (Err(_), Ok(_)) => {}
                (Ok(e), Err(d)) => panic!("exact {e:?} but degraded errored {d:?}"),
                (Err(_), Err(_)) => {}
            }
        }
    }

    #[test]
    fn empty_key_list_is_empty() {
        let set = branch_set();
        let engine = BoundEngine::new(&set);
        let base = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        assert!(engine.bound_group_by(&base, 0, []).is_empty());
    }
}
