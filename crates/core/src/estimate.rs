//! Per-constraint selectivity estimates driving search order.
//!
//! Every search in the engine used to run in **declaration order**:
//! decomposition explored include/exclude splits in catalog order, branch
//! & bound branched on the first fractional variable, and the witness DFS
//! tried disjuncts as written. On skewed catalogs that pays for the
//! *unselective* splits first — the branches that almost never die — and
//! prunes late. This module ports the Atreides-join idea (tribles-rust):
//! keep **O(1)-maintained estimates** per constraint and always decide
//! the most selective thing next, with no planner pass.
//!
//! # What is maintained
//!
//! One [`ConstraintEstimate`] per catalog constraint:
//!
//! * **normalized box volume** — the product over attributes of the
//!   constraint's allowed-box width divided by the domain width (an
//!   unbounded or degenerate domain axis contributes 1.0). Pure geometry,
//!   computed once per constraint in O(attrs).
//! * **per-attribute width ratios** — the factors of that product, kept
//!   so shard- or query-local orders can re-weight single axes.
//! * **a live split-survival counter** ([`SurvivalCounter`]) — how many
//!   include/exclude branches a decomposition opened on this constraint
//!   and how many survived (were satisfiable). Updated as decomposition
//!   runs, Laplace-smoothed, shared across epochs by `Arc`.
//!
//! The **score** of a constraint is `volume × (survivals+1)/(splits+2)`:
//! small volume or a history of dying branches ⇒ small score ⇒ decided
//! *first*, so unsatisfiable branches die near the root and — under a
//! budget trip — the frontier cells left undecided are the *least*
//! determined ones.
//!
//! # Per-delta maintenance cost
//!
//! [`Estimates::derive_add`] / [`Estimates::derive_retire`] touch only
//! their own entry: an add computes one new volume (O(attrs)) and clones
//! the entry vector (`Arc`-shared counters, so the clone is shallow); a
//! retire removes one entry. Shard merges and splits recombine per-member
//! stats through [`Estimates::restrict`], which *shares* the member
//! counters — survival observed while decomposing a merged shard flows
//! back into the catalog-wide estimates.
//!
//! # Why ordering is semantics-free
//!
//! A cell of the decomposition is identified by *which* constraints it
//! includes, not by the order they were decided: its region is the base
//! tightened by the intersection of the included boxes (intersection
//! commutes) and its satisfiability is a property of the conjunction.
//! Reordering the DFS therefore permutes the emitted cell list and may
//! pick different (equally genuine) witnesses, but the *set* of cells —
//! and every bound computed from them — is unchanged. The same argument
//! covers the B&B branch order (any order enumerates the same integer
//! lattice) and the witness-search disjunct order (a disjunction is
//! order-independent). Property-tested in `tests/prop_ordering.rs`.
//!
//! # Budget trips
//!
//! Survival updates are **staged** on the [`SplitOrdering`] handed to the
//! decomposition and published into the shared counters only when the
//! run's budget never tripped — mirroring the session rule that a tripped
//! epoch build is never published. A starved decomposition observes a
//! biased sample (branches it never probed look like deaths); discarding
//! the stage keeps the counters honest.

use crate::PcSet;
use pc_predicate::Interval;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Live include/exclude survival tally of one constraint, shared across
/// epochs (and shard rebuilds) by `Arc`. `splits` counts branches a
/// decomposition opened on the constraint, `survivals` how many were
/// satisfiable.
#[derive(Debug, Default)]
pub struct SurvivalCounter {
    splits: AtomicU64,
    survivals: AtomicU64,
}

impl SurvivalCounter {
    /// Branches opened so far.
    pub fn splits(&self) -> u64 {
        self.splits.load(Ordering::Relaxed)
    }

    /// Branches that survived (were satisfiable).
    pub fn survivals(&self) -> u64 {
        self.survivals.load(Ordering::Relaxed)
    }

    /// Add a finished run's staged tally.
    fn add(&self, splits: u64, survivals: u64) {
        if splits > 0 {
            self.splits.fetch_add(splits, Ordering::Relaxed);
            self.survivals.fetch_add(survivals, Ordering::Relaxed);
        }
    }

    /// Laplace-smoothed survival rate in (0, 1): ½ with no history, so
    /// geometry dominates until real observations arrive.
    pub fn rate(&self) -> f64 {
        (self.survivals() as f64 + 1.0) / (self.splits() as f64 + 2.0)
    }
}

/// Selectivity estimate of one constraint: geometry (volume, per-axis
/// width ratios) plus the live survival history.
#[derive(Debug, Clone)]
pub struct ConstraintEstimate {
    /// Normalized allowed-box volume over the domain, in `[0, 1]`.
    pub volume: f64,
    /// The per-attribute factors of `volume` (domain-relative widths).
    pub width_ratios: Vec<f64>,
    /// Shared live split-survival tally.
    pub survival: Arc<SurvivalCounter>,
}

impl ConstraintEstimate {
    /// The ordering score: smaller = more selective = decided earlier.
    pub fn score(&self) -> f64 {
        self.volume * self.survival.rate()
    }
}

/// Width of `iv` clipped to `domain`, as a fraction of the domain width.
/// Unbounded or degenerate domain axes give 1.0 (no information); a point
/// or empty clip gives 0.0 (maximally selective).
fn width_ratio(iv: &Interval, domain: &Interval) -> f64 {
    let dom_width = domain.hi - domain.lo;
    if !dom_width.is_finite() || dom_width <= 0.0 {
        return if iv.lo.is_infinite() && iv.hi.is_infinite() {
            1.0
        } else {
            // a finite cap on an unbounded axis: selective, but how much
            // is unknowable — rank it below full-width constraints
            0.5
        };
    }
    let clipped = iv.intersect(domain);
    let width = (clipped.hi - clipped.lo).max(0.0);
    (width / dom_width).clamp(0.0, 1.0)
}

/// The catalog's estimate table: one [`ConstraintEstimate`] per
/// constraint, in constraint-index order. Cheap to build (O(constraints ×
/// attrs)), cheap to maintain per epoch delta, and the single source every
/// search's ordering is derived from.
#[derive(Debug, Clone, Default)]
pub struct Estimates {
    entries: Vec<ConstraintEstimate>,
}

impl Estimates {
    /// Compute fresh estimates for every constraint of `set` (survival
    /// counters start empty — geometry decides until runs publish).
    pub fn for_set(set: &PcSet) -> Estimates {
        let schema = set.schema();
        let domain = set.domain();
        let entries = set
            .constraints()
            .iter()
            .map(|pc| {
                let allowed = pc.allowed_region(schema);
                let mut volume = 1.0;
                let width_ratios: Vec<f64> = (0..schema.width())
                    .map(|a| {
                        let r = width_ratio(allowed.interval(a), domain.interval(a));
                        volume *= r;
                        r
                    })
                    .collect();
                ConstraintEstimate {
                    volume,
                    width_ratios,
                    survival: Arc::new(SurvivalCounter::default()),
                }
            })
            .collect();
        Estimates { entries }
    }

    /// Number of constraints estimated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no constraints are estimated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The per-constraint entries, in constraint-index order.
    pub fn entries(&self) -> &[ConstraintEstimate] {
        &self.entries
    }

    /// The ordering score of constraint `i` (smaller = decided earlier).
    pub fn score(&self, i: usize) -> f64 {
        self.entries[i].score()
    }

    /// The estimate-guided decision order: constraint indices ascending by
    /// score, ties broken by index (deterministic — two runs over the same
    /// estimates produce the same order, which is what keeps sequential
    /// and parallel decomposition bit-identical).
    pub fn order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            self.score(a)
                .partial_cmp(&self.score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }

    /// Derive the estimate table of `set` — this table's constraints plus
    /// one appended — touching only the new entry (existing entries clone
    /// shallowly, `Arc` counters shared).
    pub fn derive_add(&self, set: &PcSet) -> Estimates {
        debug_assert_eq!(set.len(), self.entries.len() + 1);
        let fresh = Estimates::for_set(set);
        let mut entries = self.entries.clone();
        entries.push(fresh.entries[set.len() - 1].clone());
        Estimates { entries }
    }

    /// Derive the estimate table with the constraint at `removed` taken
    /// out: surviving entries keep their counters (indices shift down).
    pub fn derive_retire(&self, removed: usize) -> Estimates {
        let mut entries = self.entries.clone();
        entries.remove(removed);
        Estimates { entries }
    }

    /// The estimates of a member subset, in member order, **sharing** the
    /// members' survival counters — how shard merges and splits recombine
    /// per-member stats: survival observed while decomposing the sub-set
    /// publishes straight into the catalog-wide counters.
    pub fn restrict(&self, members: &[usize]) -> Estimates {
        Estimates {
            entries: members.iter().map(|&m| self.entries[m].clone()).collect(),
        }
    }

    /// Fold a finished run's staged tallies into the live counters. Only
    /// call for runs whose budget never tripped (see the module docs).
    pub fn publish(&self, ordering: &SplitOrdering) {
        debug_assert_eq!(ordering.stage.len(), self.entries.len());
        for (entry, stage) in self.entries.iter().zip(&ordering.stage) {
            entry.survival.add(
                stage.0.load(Ordering::Relaxed),
                stage.1.load(Ordering::Relaxed),
            );
        }
    }
}

/// One decomposition run's view of the estimates: the frozen decision
/// order (computed once, so the run is deterministic even while other
/// runs publish survival updates concurrently) plus a staged survival
/// tally that the caller publishes — or discards, after a budget trip —
/// when the run finishes.
#[derive(Debug)]
pub struct SplitOrdering {
    order: Vec<usize>,
    /// Per constraint (catalog index): staged (splits, survivals).
    stage: Vec<(AtomicU64, AtomicU64)>,
}

impl SplitOrdering {
    /// Freeze the current estimate-guided order for one run.
    pub fn from_estimates(estimates: &Estimates) -> SplitOrdering {
        let order = estimates.order();
        let stage = (0..order.len())
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect();
        SplitOrdering { order, stage }
    }

    /// The constraint decided at DFS depth `depth`.
    pub fn constraint_at(&self, depth: usize) -> usize {
        self.order[depth]
    }

    /// The frozen decision order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Stage one include/exclude split of constraint `i`: two branches
    /// opened, `survived` of them satisfiable. Thread-safe — the parallel
    /// decomposition records from every fork.
    pub fn record_split(&self, i: usize, survived: u64) {
        let (splits, survivals) = &self.stage[i];
        splits.fetch_add(2, Ordering::Relaxed);
        survivals.fetch_add(survived, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyConstraint, PredicateConstraint, ValueConstraint};
    use pc_predicate::{Atom, AttrType, Predicate, Region, Schema};

    fn schema() -> Schema {
        Schema::new(vec![("x", AttrType::Float), ("v", AttrType::Float)])
    }

    fn pc_box(lo: f64, hi: f64) -> PredicateConstraint {
        PredicateConstraint::new(
            Predicate::atom(Atom::bucket(0, lo, hi)),
            ValueConstraint::none(),
            FrequencyConstraint::at_most(10),
        )
    }

    fn set_with(domain_hi: f64, pcs: Vec<PredicateConstraint>) -> PcSet {
        let mut set = PcSet::new(schema());
        for pc in pcs {
            set.push(pc);
        }
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(0.0, domain_hi));
        set.set_domain(domain);
        set
    }

    #[test]
    fn narrow_boxes_score_below_wide_ones() {
        let set = set_with(
            100.0,
            vec![pc_box(0.0, 100.0), pc_box(10.0, 12.0), pc_box(0.0, 50.0)],
        );
        let est = Estimates::for_set(&set);
        assert!(est.score(1) < est.score(2));
        assert!(est.score(2) < est.score(0));
        // most selective first
        assert_eq!(est.order(), vec![1, 2, 0]);
    }

    #[test]
    fn unbounded_axes_contribute_no_information() {
        let set = set_with(100.0, vec![pc_box(0.0, 100.0)]);
        let est = Estimates::for_set(&set);
        // attr 1 ("v") is unbounded in both the box and the domain
        assert_eq!(est.entries()[0].width_ratios[1], 1.0);
        assert!(
            (est.score(0) - 0.5).abs() < 1e-12,
            "full box, empty history"
        );
    }

    #[test]
    fn survival_history_reorders() {
        let set = set_with(100.0, vec![pc_box(0.0, 60.0), pc_box(0.0, 50.0)]);
        let est = Estimates::for_set(&set);
        assert_eq!(est.order(), vec![1, 0]);
        // observe constraint 0's branches dying constantly
        let ordering = SplitOrdering::from_estimates(&est);
        for _ in 0..50 {
            ordering.record_split(0, 0);
            ordering.record_split(1, 2);
        }
        est.publish(&ordering);
        assert_eq!(est.order(), vec![0, 1], "history outweighs geometry");
    }

    #[test]
    fn deltas_touch_only_their_entry() {
        let set = set_with(100.0, vec![pc_box(0.0, 60.0), pc_box(0.0, 50.0)]);
        let est = Estimates::for_set(&set);
        let ordering = SplitOrdering::from_estimates(&est);
        ordering.record_split(0, 1);
        est.publish(&ordering);

        let mut bigger = set.clone();
        bigger.push(pc_box(20.0, 25.0));
        let added = est.derive_add(&bigger);
        assert_eq!(added.len(), 3);
        // the surviving entries share their counters with the old table
        assert_eq!(added.entries()[0].survival.splits(), 2);
        assert!(Arc::ptr_eq(
            &added.entries()[0].survival,
            &est.entries()[0].survival
        ));

        let retired = added.derive_retire(1);
        assert_eq!(retired.len(), 2);
        assert!(Arc::ptr_eq(
            &retired.entries()[1].survival,
            &added.entries()[2].survival
        ));
    }

    #[test]
    fn restriction_shares_counters() {
        let set = set_with(
            100.0,
            vec![pc_box(0.0, 60.0), pc_box(0.0, 50.0), pc_box(5.0, 6.0)],
        );
        let est = Estimates::for_set(&set);
        let sub = est.restrict(&[2, 0]);
        assert_eq!(sub.len(), 2);
        // publishing against the restriction lands in the global counters
        let ordering = SplitOrdering::from_estimates(&sub);
        ordering.record_split(0, 2);
        sub.publish(&ordering);
        assert_eq!(est.entries()[2].survival.splits(), 2);
        assert_eq!(est.entries()[0].survival.splits(), 0);
    }

    #[test]
    fn tripped_stage_is_simply_dropped() {
        let set = set_with(100.0, vec![pc_box(0.0, 60.0), pc_box(0.0, 50.0)]);
        let est = Estimates::for_set(&set);
        let ordering = SplitOrdering::from_estimates(&est);
        ordering.record_split(0, 0);
        // caller saw a tripped budget: never publishes
        drop(ordering);
        assert_eq!(est.entries()[0].survival.splits(), 0);
        assert!((est.entries()[0].survival.rate() - 0.5).abs() < 1e-12);
    }
}
