use crate::decompose::DecomposeError;
use pc_solver::SolverError;
use std::fmt;

/// Errors from the bounding engine.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundError {
    /// The constraint set admits *no* valid missing-data instance inside
    /// the query region (e.g. a frequency lower bound with nowhere to put
    /// the forced rows). The constraints themselves are contradictory.
    Infeasible,
    /// `AVG` / `MIN` / `MAX` was requested but every valid instance has
    /// zero missing rows matching the query, so the aggregate is undefined.
    EmptyAggregate,
    /// The underlying LP/MILP solver failed (limits, malformed model).
    Solver(SolverError),
    /// Cell decomposition refused to run (e.g. the naive strategy past its
    /// constraint ceiling).
    Decompose(DecomposeError),
    /// The query's solve task panicked. The panic was caught at the
    /// per-query task boundary ([`crate::Session::bound_many`] and the
    /// GROUP-BY fan-out): the poisoned query fails with this error while
    /// its siblings, the session, and the epoch catalog stay usable. The
    /// worker's warm-cache entry involved in the solve was dropped, never
    /// re-published, so no torn solver state survives.
    Panicked,
}

impl fmt::Display for BoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundError::Infeasible => {
                write!(
                    f,
                    "predicate constraints are contradictory within the query region"
                )
            }
            BoundError::EmptyAggregate => {
                write!(
                    f,
                    "no missing row can match the query; the aggregate is undefined"
                )
            }
            BoundError::Solver(e) => write!(f, "solver failure: {e}"),
            BoundError::Decompose(e) => write!(f, "decomposition failure: {e}"),
            BoundError::Panicked => {
                write!(f, "query task panicked; the query failed in isolation")
            }
        }
    }
}

impl std::error::Error for BoundError {}

impl From<SolverError> for BoundError {
    fn from(e: SolverError) -> Self {
        match e {
            SolverError::Infeasible => BoundError::Infeasible,
            other => BoundError::Solver(other),
        }
    }
}

impl From<DecomposeError> for BoundError {
    fn from(e: DecomposeError) -> Self {
        BoundError::Decompose(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_infeasible_maps_to_infeasible() {
        assert_eq!(
            BoundError::from(SolverError::Infeasible),
            BoundError::Infeasible
        );
        assert_eq!(
            BoundError::from(SolverError::Unbounded),
            BoundError::Solver(SolverError::Unbounded)
        );
    }

    #[test]
    fn display() {
        assert!(BoundError::Infeasible.to_string().contains("contradictory"));
        assert!(BoundError::EmptyAggregate.to_string().contains("undefined"));
    }
}
