//! The bounding engine (§4): from a [`PcSet`] and an aggregate query to a
//! deterministic result range.
//!
//! Pipeline: decompose the constraints into satisfiable cells inside the
//! query region (Optimization 1 pushdown included), derive per-cell value
//! bounds (`Uᵢ`/`Lᵢ` — the most restrictive of the active constraints'
//! value ranges, the cell box, and the query), then allocate rows to cells
//! with the MILP of §4.2 — or the greedy per-variable optimum when the set
//! is disjoint (the "Faster Algorithm in Special Cases").
//!
//! Soundness details the paper leaves implicit, made explicit here:
//!
//! * **Frequency lower bounds under pushdown.** Restricting attention to
//!   cells inside the query keeps every `≤ ku` constraint valid, but a
//!   `≥ kl` constraint may be satisfied by rows *outside* the query; `kl`
//!   is therefore only enforced when the constraint's entire allowed
//!   region lies inside the query region, and relaxed to 0 otherwise.
//! * **Closure.** If some point of the query region is covered by no
//!   predicate, missing rows may exist there in unbounded number with
//!   unbounded values, and the affected side(s) of the range become
//!   infinite. [`BoundReport::closed`] records this.
//! * **Value-infeasible cells.** A cell whose combined value ranges are
//!   empty can hold no rows; its allocation is pinned to zero (a
//!   tightening the MILP exploits, and the source of `Infeasible` errors
//!   when a frequency lower bound has nowhere to go).

use crate::decompose::{decompose_ordered_budgeted, Parallelism};
use crate::estimate::{Estimates, SplitOrdering};
use crate::{ActiveSet, BoundError, Cell, DecomposeStats, PcSet, Strategy};
use pc_budget::QueryBudget;
use pc_predicate::Region;
use pc_solver::{
    greedy, solve_lp_tableau, solve_milp_budgeted, CanonicalTableau, ConstraintOp, LinearProgram,
    MilpOptions, MilpProblem, SearchStats, Sense, WarmStart,
};
use pc_storage::{AggKind, AggQuery};
use std::cell::Cell as StdCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Below this many constraints a decomposition never fans out across
/// threads: the include/exclude tree is too small to be worth exposing to
/// the pool at all (forks are deque pushes now, but an Arc'd region and a
/// merge step per fork still cost more than a handful of SAT checks).
pub const PARALLEL_MIN_CONSTRAINTS: usize = 8;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct BoundOptions {
    /// Cell decomposition strategy (default: DFS + rewrite).
    pub strategy: Strategy,
    /// MILP search knobs.
    pub milp: MilpOptions,
    /// Whether to run the closure check; when disabled the report assumes
    /// closure (callers that constructed provably-closed sets skip the
    /// extra SAT call).
    pub check_closure: bool,
    /// Above this many allocation variables, solve the *LP relaxation*
    /// instead of the exact MILP. Integrality constraints only tighten the
    /// optimum, so the relaxation is still a hard bound — just possibly a
    /// slightly wider one. This is the practical lever for heavily
    /// overlapping sets (Rand-PC) where decomposition yields many cells.
    pub lp_relax_cell_limit: usize,
    /// Worker threads for decomposition fan-out, parallel GROUP-BY
    /// groups, and the parallel witness search inside wide SAT checks.
    /// `0` = auto-detect the machine's parallelism, `1` = strictly
    /// sequential (also forcing the allocation MILP sequential — see
    /// [`MilpOptions::threads`] for the solver-level knob, which inherits
    /// this value unless set explicitly). Decomposed cell signatures,
    /// regions, and order are bit-identical across thread counts and
    /// bounds agree up to the branch & bound pruning tolerance (~1e-6 — a
    /// parallel search may prune a node that would have improved the
    /// incumbent by less than that, exactly as a sequential search may in
    /// a different order). Cell *witnesses* may be different equally
    /// genuine points when the first-hit-wins parallel witness search
    /// engages, and work counters in [`DecomposeStats`] may differ
    /// (`parallel_subtrees`, and GROUP-BY `sat_checks` — two group tasks
    /// racing on the same uncached specialization both pay the check).
    pub threads: usize,
    /// Optional cap on the decomposition fork depth; `None` (default)
    /// forks every split above the sequential cutoff. See
    /// [`Parallelism::depth`].
    pub parallel_depth: Option<usize>,
    /// GROUP-BY strategy: decompose once against the base query and
    /// specialize the surviving cells per group key (with simplex warm
    /// starts chained between neighboring groups), instead of running a
    /// full decomposition per key. For the exact strategies (`Dfs`,
    /// `DfsRewrite`) bounds are identical either way; under the
    /// approximate [`Strategy::EarlyStop`] both paths stay *sound* but the
    /// shared path may admit more unverified cells and report wider
    /// ranges. Disable to A/B the fast path against the naive one.
    pub shared_group_by: bool,
    /// Chain simplex warm starts between related LP solves: consecutive
    /// groups of a GROUP-BY, the probes of one AVG binary search, and —
    /// through [`MilpOptions::warm_start`] — parent-to-child node
    /// relaxations inside branch & bound. Disabling this turns all of
    /// them off, *including* the tableau carry (the carry is the warm
    /// start's deeper tier; the engine knob is the whole-family switch,
    /// unlike the solver-level [`MilpOptions`] pair, where the
    /// contradictory `warm_start: false, tableau_carry: true` is rejected
    /// with an error).
    pub warm_start: bool,
    /// Carry whole canonical tableaux instead of just bases wherever the
    /// chained LPs allow it (on by default): parent-to-child inside
    /// branch & bound (append the branch bound as one row — O(1) pivots
    /// per node instead of an O(m) rebuild + crash), and across the LP
    /// solves of one chain when the constraint structure matches exactly
    /// (the AVG binary search re-prices the same tableau ~80 times with
    /// zero rebuilds; a [`crate::Session`]'s per-worker caches carry
    /// tableaux across *queries*). Structure mismatches degrade to the
    /// basis tier automatically. Honest A/B switch
    /// (`pc … --no-tableau-carry`): never affects results, only work —
    /// see [`BoundReport::solver`] for the counters.
    pub tableau_carry: bool,
    /// Factor the cell set over the constraint-interaction graph (on by
    /// default): connected components of the pairwise attribute-box
    /// overlap graph decompose independently as parallel shards and their
    /// bounds recombine exactly (see [`crate::shard`]). Sets that are one
    /// component (every constraint transitively overlapping) take the
    /// flat path unchanged; disjoint-hinted sets keep their own fast
    /// path. Under the exact strategies the sharded and flat answers are
    /// identical (property-tested); under [`Strategy::EarlyStop`] both
    /// are sound but may admit different unverified cells. Disable to A/B
    /// the factoring against the flat product.
    pub shard: bool,
    /// Estimate-guided search ordering (on by default; see
    /// [`crate::estimate`]): the decomposition decides include/exclude
    /// splits most-selective-constraint-first (smallest box-volume ×
    /// split-survival score next, so unsatisfiable branches die early and
    /// budget-tripped frontiers cover the least-determined constraints),
    /// and the allocation MILP branches on estimate-weighted
    /// fractionality instead of raw most-fractional. Semantics-free:
    /// the produced cell *set*, every verdict, and every bound are
    /// identical with the knob off (property-tested) — only the visit
    /// order, the SAT-check/node counts, and witness identity change.
    /// Disable to A/B declaration-order search, or to pin the historical
    /// cell order exactly.
    pub ordering: bool,
}

impl Default for BoundOptions {
    fn default() -> Self {
        BoundOptions {
            strategy: Strategy::DfsRewrite,
            milp: MilpOptions::default(),
            check_closure: true,
            lp_relax_cell_limit: 150,
            threads: 0,
            parallel_depth: None,
            shared_group_by: true,
            warm_start: true,
            tableau_carry: true,
            shard: true,
            ordering: true,
        }
    }
}

/// A deterministic result range: the aggregate is guaranteed in
/// `[lo, hi]` for every missing-data instance satisfying the constraints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultRange {
    /// Lower end (may be `-∞`).
    pub lo: f64,
    /// Upper end (may be `+∞`).
    pub hi: f64,
}

impl ResultRange {
    /// True if both ends are finite.
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// True if `v` falls inside the range (bound "success").
    pub fn contains(&self, v: f64) -> bool {
        self.lo - 1e-9 <= v && v <= self.hi + 1e-9
    }

    /// Shift both ends by a constant — combining a missing-data range with
    /// the certain partition's exact answer for `SUM`/`COUNT`.
    pub fn offset(&self, by: f64) -> ResultRange {
        ResultRange {
            lo: self.lo + by,
            hi: self.hi + by,
        }
    }
}

/// Aggregated LP/MILP work counters of one bounding call — the serving
/// layer's view of the warm-start tiers (see [`pc_solver::SolveStats`]
/// and [`pc_solver::SearchStats`] for the per-solve species). "Carried"
/// solves reused a canonical tableau (branch & bound children answered
/// in O(1) pivots, or a chained LP re-priced under a new objective);
/// "rebuilt" solves standardized and built a tableau from scratch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpWork {
    /// Total simplex pivots across every LP solve of the call.
    pub pivots: u64,
    /// Solves answered from a carried canonical tableau.
    pub carried: u64,
    /// Solves that rebuilt a tableau from scratch.
    pub rebuilt: u64,
    /// Branch & bound nodes explored by the call's allocation MILPs.
    pub nodes: u64,
    /// Incumbent installs made by a first-explored ("near") branch child
    /// across the call's searches — how often the best-first child order
    /// paid off (see [`SearchStats::incumbent_first_hits`]).
    pub incumbent_first: u64,
}

impl LpWork {
    fn absorb_search(&mut self, nodes: usize, s: SearchStats) {
        self.pivots += s.pivots();
        self.carried += s.carried_nodes;
        self.rebuilt += s.rebuilt_nodes;
        self.nodes += nodes as u64;
        self.incumbent_first += s.incumbent_first_hits;
    }

    fn absorb_lp(&mut self, s: pc_solver::SolveStats) {
        self.pivots += s.pivots;
        if s.rebuilt {
            self.rebuilt += 1;
        } else {
            self.carried += 1;
        }
    }
}

/// The output of a bounding call.
#[derive(Debug, Clone)]
pub struct BoundReport {
    /// The result range.
    pub range: ResultRange,
    /// Whether the constraint set covered the entire query region. `false`
    /// means one or both ends were forced to ±∞.
    pub closed: bool,
    /// Decomposition work counters.
    pub stats: DecomposeStats,
    /// LP/MILP work counters (pivots, carried vs rebuilt tableaux, branch
    /// & bound nodes) — the measured side of the warm-start tiers.
    pub solver: LpWork,
    /// `true` when the query's [`QueryBudget`] tripped somewhere along the
    /// pipeline and the engine degraded instead of erroring: the
    /// decomposition stopped at frontier cells, a closure check was
    /// skipped (assumed open), or a branch & bound search fell back to its
    /// LP relaxation. The range is still a **sound** container of the
    /// exact answer — only possibly looser than an unbudgeted run's.
    /// Always `false` for unlimited-budget calls.
    pub degraded: bool,
    /// Per-shard SAT-check counts when the call routed through the
    /// sharded path ([`BoundOptions::shard`], [`crate::shard`]), in shard
    /// order — the skew profile of the factored decomposition. Empty on
    /// the flat paths.
    pub shard_sat_checks: Vec<u64>,
    /// Why the budget tripped, when [`BoundReport::degraded`] is set and
    /// the cause is known: the budget's sticky first-trip record, or
    /// [`pc_budget::TripReason::Deadline`] for queries the admission
    /// layer degraded or shed pre-emptively. `None` on exact answers.
    pub trip: Option<pc_budget::TripReason>,
    /// Per-query scheduling observability (queue wait, admission verdict,
    /// backlog at admission) — stamped by the session's serve path;
    /// `None` on direct engine calls.
    pub sched: Option<pc_budget::pressure::SchedReport>,
}

/// Simplex state kept across the LP solves of a chain, keyed by
/// tableau-shape-determining facts (probe kind and dimensions) so a
/// prior is only offered to a structurally compatible successor.
/// Lookups additionally probe *neighboring* row counts through
/// [`take_cached`]: a serving epoch's add/retire moves one constraint's
/// rows while keeping the variables, and the solver's delta-adaptation
/// tier (`pc_solver::solve_lp_tableau`) absorbs exactly that — while
/// shapes farther apart than the adaptation ceiling keep their own
/// slots, so interleaved query shapes never evict each other's chains.
type WarmKey = (Sense, bool, usize, usize);

/// Take the warm entry for `key`: the exact slot first, else the closest
/// slot with the same probe kind and variable count whose row count is
/// within the solver's [`pc_solver::ADAPT_MAX_DELTA`] **and whose carried
/// tableau verifies as reusable for `lp`** (exact re-price or in-ceiling
/// row delta — the cross-epoch churn case). The reuse check is what keeps
/// neighbor probing from *evicting*: stealing a tableau the solver would
/// only demote-and-discard would destroy another query shape's chain for
/// nothing, so incompatible neighbors (and basis entries, whose shape
/// cannot fit a different row count anyway) stay put.
/// Lock a warm-start cache, recovering from mutex poisoning. A panicked
/// solve task can die between a cache `take` and the re-insert; whatever
/// it left behind is suspect (a torn or half-repriced tableau would be
/// *demoted* by the solver's reuse checks, but there is no reason to keep
/// gambling on it), so recovery clears the slot map — the next solves
/// rebuild their chains cold. Correctness is unaffected either way; this
/// only removes the poisoned-mutex panic from every later query.
pub(crate) fn lock_warm(cache: &WarmCache) -> MutexGuard<'_, HashMap<WarmKey, CachedWarm>> {
    cache.lock().unwrap_or_else(|poisoned| {
        let mut map = poisoned.into_inner();
        map.clear();
        map
    })
}

fn take_cached(cache: &WarmCache, key: WarmKey, lp: &LinearProgram) -> Option<CachedWarm> {
    let mut map = lock_warm(cache);
    if let Some(hit) = map.remove(&key) {
        return Some(hit);
    }
    let (sense, extra, nvars, rows) = key;
    let neighbor = map
        .iter()
        .filter(|(&(s, e, v, r), entry)| {
            s == sense
                && e == extra
                && v == nvars
                && r.abs_diff(rows) <= pc_solver::ADAPT_MAX_DELTA
                && matches!(entry, CachedWarm::Tableau(t) if t.can_reuse(lp))
        })
        .map(|(&k, _)| k)
        .min_by_key(|&(_, _, _, r)| r.abs_diff(rows));
    neighbor.and_then(|k| map.remove(&k))
}

/// What a chain slot holds between solves: the whole canonical tableau
/// when the engine carries ([`BoundOptions::tableau_carry`]), or just the
/// basis otherwise. A carried tableau whose structure no longer matches
/// the next program demotes itself to its basis inside the solver.
pub(crate) enum CachedWarm {
    Basis(WarmStart),
    Tableau(Box<CanonicalTableau>),
}

/// Shared warm-start store for one chain of related bounding calls (a
/// standalone `bound()`, the groups one pool worker solves in a
/// GROUP-BY, or the queries one worker serves in a [`crate::Session`]).
/// `Arc<Mutex>`: chains are *effectively* single-threaded — the drivers
/// hand each worker its own store — but tasks are stealable, so the
/// store must tolerate whichever thread ends up running them. The mutex
/// is uncontended in that design; a stale or racing basis can cost a
/// cold fallback, never correctness. Entries are *taken* (moved) for the
/// duration of a solve and re-inserted after — carrying a tableau must
/// not clone it.
pub(crate) type WarmCache = Arc<Mutex<HashMap<WarmKey, CachedWarm>>>;

/// One warm-start cache per pool worker (plus one for the calling
/// thread): tasks solved on the same worker chain their simplex bases
/// from one LP to the next without cross-thread contention. Shared by
/// the GROUP-BY drivers (per-group tasks) and [`crate::Session`] (one
/// long-lived set of chains across all of a session's queries).
pub(crate) struct WarmCaches {
    slots: Option<Vec<WarmCache>>,
}

impl WarmCaches {
    pub(crate) fn new(enabled: bool) -> Self {
        let slots = enabled.then(|| {
            (0..=rayon::current_num_threads())
                .map(|_| Arc::new(Mutex::new(HashMap::new())))
                .collect()
        });
        WarmCaches { slots }
    }

    /// The cache owned by the executing worker (last slot for calls from
    /// outside the pool), or `None` when warm starting is disabled.
    pub(crate) fn for_current_worker(&self) -> Option<WarmCache> {
        let slots = self.slots.as_ref()?;
        let i = rayon::current_thread_index().unwrap_or(slots.len() - 1);
        Some(Arc::clone(&slots[i]))
    }
}

/// Run `f` over every item as its own stealable pool task, returning
/// results in input order — the fan-out driver shared by the GROUP-BY
/// paths and [`crate::Session::bound_many`]. No chunk barriers: a slow
/// item delays only itself, and idle workers steal whatever remains.
///
/// **Panic isolation**: each task runs inside `catch_unwind`, so one
/// poisoned item cannot take down its siblings or unwind through the
/// pool. A panicked item's slot comes back as `None`; everything the
/// dead task had *taken* from a warm cache is simply dropped (never
/// re-inserted), so no torn solver state survives it.
pub(crate) fn pooled_map_catch<T, R, F>(items: &[T], threads: usize, f: &F) -> Vec<Option<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items
            .iter()
            .map(|item| catch_unwind(AssertUnwindSafe(|| f(item))).ok())
            .collect();
    }
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    rayon::scope(|s| {
        for (slot, item) in slots.iter().zip(items) {
            s.spawn(move |_| {
                // Catch *before* touching the slot: the slot mutex is
                // only ever locked around this store, so it cannot be
                // poisoned by a task panic.
                let result = catch_unwind(AssertUnwindSafe(|| f(item))).ok();
                *slot.lock().unwrap() = result;
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap())
        .collect()
}

/// The cell allocation problem shared by every aggregate.
pub(crate) struct CellProblem {
    cells: Vec<Cell>,
    /// Per-cell max/min achievable value of the aggregated attribute.
    u: Vec<f64>,
    l: Vec<f64>,
    /// Per-cell allocation cap (min `ku` of active constraints; 0 if the
    /// cell is value-infeasible).
    cap: Vec<f64>,
    /// Per constraint: `(kl_eff, ku, member cell indices)`.
    pc_rows: Vec<(f64, f64, Vec<usize>)>,
    /// Per-cell branch weights for the allocation MILP's
    /// estimate-guided branching ([`BoundOptions::ordering`]), in
    /// `[1, 2]`: a *selective* cell (small product of its active
    /// constraints' volume × survival scores) weighs ~2 and gets its
    /// fractional variable decided first — its allocation is the most
    /// constrained, so fixing it prunes fastest. `None` when ordering
    /// is off (the classic most-fractional rule).
    branch_weights: Option<Vec<f64>>,
    closed: bool,
    stats: DecomposeStats,
    /// Warm-start store threaded in by a GROUP-BY chain; `None` for
    /// standalone bounds.
    warm: Option<WarmCache>,
    /// LP/MILP work counters accumulated while solving this problem
    /// (interior-mutable: the per-aggregate bounds take `&CellProblem`).
    work: StdCell<LpWork>,
    /// The query's cooperative budget: charged per branch & bound node,
    /// consulted between AVG binary-search probes.
    budget: QueryBudget,
    /// Whether any stage degraded under the budget (frontier cells in the
    /// decomposition, a skipped closure check, or a budget-aborted MILP
    /// falling back to its LP relaxation). Interior-mutable for the same
    /// reason as `work`.
    degraded: StdCell<bool>,
}

/// One shard's contribution to a sharded bounding call (see
/// [`BoundEngine::bound_sharded`]): the shard's constraints as their own
/// set (local indices), the member table back into the global set, the
/// cells relevant to this query, and the work newly charged producing
/// them. `cache` is `Some` exactly when the query region contains the
/// whole shard, making the shard's domain-wide summaries exact for it.
pub(crate) struct ShardSlice {
    pub(crate) sub: Arc<PcSet>,
    pub(crate) members: Vec<usize>,
    pub(crate) cells: Vec<Cell>,
    pub(crate) stats: DecomposeStats,
    pub(crate) cache: Option<Arc<crate::shard::Shard>>,
}

impl CellProblem {
    fn record_search(&self, nodes: usize, s: SearchStats) {
        let mut w = self.work.get();
        w.absorb_search(nodes, s);
        self.work.set(w);
    }

    fn record_lp(&self, s: pc_solver::SolveStats) {
        let mut w = self.work.get();
        w.absorb_lp(s);
        self.work.set(w);
    }
}

/// Computes result ranges for aggregate queries against one [`PcSet`].
pub struct BoundEngine<'a> {
    pub(crate) set: &'a PcSet,
    pub(crate) options: BoundOptions,
    /// Per-constraint selectivity estimates driving the search ordering
    /// ([`BoundOptions::ordering`]). Injected by the owning
    /// [`crate::Session`] (whose epochs maintain them incrementally per
    /// delta) or by the sharded path (restricted to the shard's members,
    /// sharing the catalog-wide survival counters); a standalone engine
    /// computes them lazily on first use.
    estimates: OnceLock<Arc<Estimates>>,
}

impl<'a> BoundEngine<'a> {
    /// Engine with default options.
    pub fn new(set: &'a PcSet) -> Self {
        Self::with_options(set, BoundOptions::default())
    }

    /// Engine with explicit options.
    pub fn with_options(set: &'a PcSet, options: BoundOptions) -> Self {
        BoundEngine {
            set,
            options,
            estimates: OnceLock::new(),
        }
    }

    /// Inject externally maintained estimates (session epochs, shard
    /// restrictions). No-op if the engine already resolved its own.
    pub(crate) fn set_estimates(&self, estimates: Arc<Estimates>) {
        let _ = self.estimates.set(estimates);
    }

    /// The engine's estimate table, computing it from the set on first
    /// use when nothing was injected.
    pub(crate) fn estimates(&self) -> &Arc<Estimates> {
        self.estimates
            .get_or_init(|| Arc::new(Estimates::for_set(self.set)))
    }

    /// The engine's configuration.
    pub fn options(&self) -> &BoundOptions {
        &self.options
    }

    /// Compute the result range of `query` over the missing partition.
    pub fn bound(&self, query: &AggQuery) -> Result<BoundReport, BoundError> {
        self.bound_budgeted(query, &QueryBudget::unlimited())
    }

    /// [`BoundEngine::bound`] under a [`QueryBudget`]: a deadline, SAT or
    /// node cap, or explicit cancel interrupts the pipeline at its next
    /// cooperative check (per decomposition split, per branch & bound
    /// node, per AVG probe) and the call **degrades instead of erroring**
    /// — the report's range still contains the exact answer, with
    /// [`BoundReport::degraded`] set. See the [`crate::budget`] module
    /// docs for the exact check sites and soundness argument.
    pub fn bound_budgeted(
        &self,
        query: &AggQuery,
        budget: &QueryBudget,
    ) -> Result<BoundReport, BoundError> {
        // One bounding call can solve many structurally identical LPs (the
        // AVG binary search runs ~80 feasibility probes); give it its own
        // warm-start chain.
        let warm = if self.options.warm_start {
            Some(Arc::new(Mutex::new(HashMap::new())))
        } else {
            None
        };
        // Tag the call's pool tasks (decomposition forks, B&B fan-out)
        // with the budget's deadline so they ride the EDF lane; stamp the
        // trip reason on degraded reports.
        let mut result = rayon::with_task_deadline(budget.deadline(), || {
            self.bound_with_warm(query, warm, budget)
        });
        if let Ok(report) = &mut result {
            if report.degraded && report.trip.is_none() {
                report.trip = budget.trip_reason();
            }
        }
        result
    }

    /// [`BoundEngine::bound_budgeted`] with an externally owned warm-start
    /// chain — how a [`crate::Session`] threads one cache through many
    /// queries instead of each call starting cold.
    pub(crate) fn bound_with_warm(
        &self,
        query: &AggQuery,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
    ) -> Result<BoundReport, BoundError> {
        // Factor over the constraint-interaction graph when it actually
        // factors (≥ 2 components); single-component and disjoint-hinted
        // sets take the flat paths unchanged.
        if self.options.shard && !self.set.disjoint_hint() && self.set.len() >= 2 {
            let components = crate::shard::interaction_components(self.set);
            if components.len() > 1 {
                return self.bound_sharded_oneshot(query, components, warm, budget);
            }
        }
        let problem = self.build_problem(query, warm, budget)?;
        self.bound_problem(query.agg, &problem)
    }

    /// One-shot sharded bound: decompose each interaction-graph component
    /// independently (parallel pool tasks, shared budget) against the
    /// query region, then recombine. Components the region doesn't touch
    /// skip decomposition entirely — their constraints' frequency rows
    /// behave identically over zero member cells.
    fn bound_sharded_oneshot(
        &self,
        query: &AggQuery,
        components: Vec<Vec<usize>>,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
    ) -> Result<BoundReport, BoundError> {
        let schema = self.set.schema();
        let mut base = query.predicate.to_region(schema);
        base.intersect(self.set.domain());

        // Closure is a global question — one probe over the full set, not
        // per shard (mirrors `build_problem`'s ladder).
        let mut skipped_closure = false;
        let closed = if !self.options.check_closure {
            true
        } else if !budget.proceed() {
            skipped_closure = true;
            false
        } else {
            self.set.is_closed_within_with(&base, self.par_witness())
        };

        let boxes = crate::shard::constraint_boxes(self.set);
        let inputs: Vec<(Arc<PcSet>, Vec<usize>, bool)> = components
            .into_iter()
            .map(|members| {
                let touched = members.iter().any(|&m| boxes[m].overlaps(&base));
                let sub = Arc::new(crate::shard::sub_set(self.set, &members));
                (sub, members, touched)
            })
            .collect();
        let threads = self.task_threads(inputs.len());
        let options = self.options;
        // Restrict the catalog-wide estimates to each shard's members so
        // per-shard split ordering works from (and feeds back into) the
        // shared survival counters.
        let estimates = self.options.ordering.then(|| Arc::clone(self.estimates()));
        let built = pooled_map_catch(&inputs, threads, &|(sub, members, touched): &(
            Arc<PcSet>,
            Vec<usize>,
            bool,
        )| {
            let (cells, stats) = if *touched {
                let engine = BoundEngine::with_options(sub, options);
                if let Some(est) = &estimates {
                    engine.set_estimates(Arc::new(est.restrict(members)));
                }
                engine.cells_for_base_budgeted(&base, budget)?
            } else {
                (Vec::new(), DecomposeStats::default())
            };
            Ok::<ShardSlice, BoundError>(ShardSlice {
                sub: Arc::clone(sub),
                members: members.clone(),
                cells,
                stats,
                cache: None,
            })
        });
        let mut slices = Vec::with_capacity(built.len());
        for result in built {
            slices.push(result.ok_or(BoundError::Panicked)??);
        }
        self.bound_sharded(
            query,
            &base,
            closed,
            skipped_closure,
            slices,
            DecomposeStats::default(),
            warm,
            budget,
        )
    }

    /// Recombine per-shard cells into the query's bound. `COUNT`/`SUM`
    /// solve one block of the block-diagonal allocation MILP per shard
    /// and add the intervals (with per-shard domain-wide caching);
    /// `MIN`/`MAX`/`AVG` concatenate the shard cells — by the factoring
    /// theorem exactly the flat cell set — and reuse the flat per-cell
    /// summaries (the AVG probe's `Σxᵢ ≥ 1` row couples every shard, so
    /// its binary search runs joint). `base_stats` carries the
    /// container's counters when the cells came from a session cache.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn bound_sharded(
        &self,
        query: &AggQuery,
        base: &Region,
        closed: bool,
        skipped_closure: bool,
        slices: Vec<ShardSlice>,
        base_stats: DecomposeStats,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
    ) -> Result<BoundReport, BoundError> {
        let mut stats = base_stats;
        let shard_sat_checks: Vec<u64> = slices.iter().map(|s| s.stats.sat_checks).collect();
        for slice in &slices {
            stats.absorb(&slice.stats);
        }
        stats.cells = slices.iter().map(|s| s.cells.len()).sum();
        stats.shards = slices.len();
        stats.max_shard_constraints = slices.iter().map(|s| s.sub.len()).max().unwrap_or(0);

        match query.agg {
            AggKind::Count | AggKind::Sum => self.combine_additive(
                query,
                base,
                closed,
                skipped_closure,
                slices,
                stats,
                shard_sat_checks,
                warm,
                budget,
            ),
            AggKind::Min | AggKind::Max | AggKind::Avg => {
                let mut cells = Vec::with_capacity(stats.cells);
                for slice in &slices {
                    for cell in &slice.cells {
                        cells.push(Cell {
                            region: Arc::clone(&cell.region),
                            active: cell.active.iter().map(|i| slice.members[i]).collect(),
                            witness: cell.witness.clone(),
                            undecided: cell.undecided.iter().map(|i| slice.members[i]).collect(),
                        });
                    }
                }
                let p = self.problem_from_cells_budgeted(
                    query.attr, base, cells, stats, closed, warm, budget,
                )?;
                if skipped_closure {
                    p.degraded.set(true);
                }
                let mut report = self.bound_problem(query.agg, &p)?;
                report.shard_sat_checks = shard_sat_checks;
                Ok(report)
            }
        }
    }

    /// The `COUNT`/`SUM` side of [`BoundEngine::bound_sharded`]: no
    /// frequency row spans two shards, so the allocation MILP is
    /// block-diagonal and the global optimum is the sum of per-shard
    /// optima. A shard whose slice carries its cache handle (query region
    /// ⊇ every member box) serves or refills the query-independent
    /// domain-wide interval.
    #[allow(clippy::too_many_arguments)]
    fn combine_additive(
        &self,
        query: &AggQuery,
        base: &Region,
        closed: bool,
        skipped_closure: bool,
        slices: Vec<ShardSlice>,
        stats: DecomposeStats,
        shard_sat_checks: Vec<u64>,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
    ) -> Result<BoundReport, BoundError> {
        let base_degraded = skipped_closure || stats.frontier_cells > 0 || budget.is_tripped();
        let tag = if query.agg == AggKind::Count {
            0u8
        } else {
            1u8
        };
        if query.agg == AggKind::Sum && !closed {
            return Ok(BoundReport {
                range: ResultRange {
                    lo: f64::NEG_INFINITY,
                    hi: f64::INFINITY,
                },
                closed,
                stats,
                solver: LpWork::default(),
                degraded: base_degraded,
                shard_sat_checks,
                trip: None,
                sched: None,
            });
        }

        let mut lo = 0.0;
        let mut hi = 0.0;
        let mut work = LpWork::default();
        let mut degraded = base_degraded;
        for slice in slices {
            if let Some(shard) = &slice.cache {
                if let Some((slo, shi)) = shard.cached_summary(tag, query.attr) {
                    lo += slo;
                    hi += shi;
                    continue;
                }
            }
            let sub_engine = BoundEngine::with_options(&slice.sub, self.options);
            if self.options.ordering {
                // share the catalog-wide survival counters (members may be
                // skew-reordered; the slice's sub-set uses the same order)
                sub_engine.set_estimates(Arc::new(self.estimates().restrict(&slice.members)));
            }
            // Per-shard problems are built closure-free (`closed: true`);
            // the global closure verdict is applied once at the combine.
            let p = sub_engine.problem_from_cells_budgeted(
                query.attr,
                base,
                slice.cells,
                slice.stats,
                true,
                warm.clone(),
                budget,
            )?;
            let (slo, shi) = if p.cells.is_empty() {
                (0.0, 0.0)
            } else if query.agg == AggKind::Count {
                let ones = vec![1.0; p.cells.len()];
                let slo = sub_engine.allocate(&p, &ones, Sense::Minimize, false)?;
                let shi = if closed {
                    sub_engine.allocate(&p, &ones, Sense::Maximize, false)?
                } else {
                    0.0 // Unused: the combined upper end is forced to ∞.
                };
                (slo, shi)
            } else {
                let hi_unbounded =
                    p.u.iter()
                        .zip(&p.cap)
                        .any(|(&ui, &cap)| ui == f64::INFINITY && cap > 0.0);
                let lo_unbounded =
                    p.l.iter()
                        .zip(&p.cap)
                        .any(|(&li, &cap)| li == f64::NEG_INFINITY && cap > 0.0);
                let shi = if hi_unbounded {
                    f64::INFINITY
                } else {
                    let coef: Vec<f64> =
                        p.u.iter()
                            .zip(&p.cap)
                            .map(|(&ui, &cap)| if cap > 0.0 { ui } else { 0.0 })
                            .collect();
                    sub_engine.allocate(&p, &coef, Sense::Maximize, false)?
                };
                let slo = if lo_unbounded {
                    f64::NEG_INFINITY
                } else {
                    let coef: Vec<f64> =
                        p.l.iter()
                            .zip(&p.cap)
                            .map(|(&li, &cap)| if cap > 0.0 { li } else { 0.0 })
                            .collect();
                    sub_engine.allocate(&p, &coef, Sense::Minimize, false)?
                };
                (slo, shi)
            };
            let p_degraded = p.degraded.get();
            degraded |= p_degraded;
            work = {
                let mut w = work;
                let pw = p.work.get();
                w.pivots += pw.pivots;
                w.carried += pw.carried;
                w.rebuilt += pw.rebuilt;
                w.nodes += pw.nodes;
                w
            };
            if let Some(shard) = &slice.cache {
                if closed && !p_degraded && !budget.is_tripped() {
                    shard.store_summary(tag, query.attr, slo, shi);
                }
            }
            lo += slo;
            hi += shi;
        }
        let hi = if closed { hi } else { f64::INFINITY };
        Ok(BoundReport {
            range: ResultRange { lo, hi },
            closed,
            stats,
            solver: work,
            degraded,
            shard_sat_checks,
            trip: None,
            sched: None,
        })
    }

    /// Whether wide satisfiability checks (closure, specialization
    /// re-checks) may use the parallel witness search: any engine not
    /// pinned strictly sequential. The search itself stays inline below
    /// [`pc_predicate::sat::PAR_WITNESS_CUTOFF`] live exclusions and on a
    /// one-worker pool.
    pub(crate) fn par_witness(&self) -> bool {
        self.options.threads != 1
    }

    /// Threads to spread a batch of independent tasks (GROUP-BY groups,
    /// session queries) over.
    pub(crate) fn task_threads(&self, n_items: usize) -> usize {
        let par = crate::Parallelism {
            threads: self.options.threads,
            depth: None,
        };
        par.resolved_threads().min(n_items).max(1)
    }

    /// Dispatch a constructed problem to the per-aggregate bound.
    pub(crate) fn bound_problem(
        &self,
        agg: AggKind,
        problem: &CellProblem,
    ) -> Result<BoundReport, BoundError> {
        match agg {
            AggKind::Count => self.bound_count(problem),
            AggKind::Sum => self.bound_sum(problem),
            AggKind::Avg => self.bound_avg(problem),
            AggKind::Min => self.bound_min(problem),
            AggKind::Max => self.bound_max(problem),
        }
    }

    // ------------------------------------------------------------------
    // Problem construction
    // ------------------------------------------------------------------

    /// The decomposition fan-out policy for an `n`-constraint set under
    /// the engine's options.
    fn decompose_policy(&self, n: usize) -> Parallelism {
        if self.options.threads == 1 || n < PARALLEL_MIN_CONSTRAINTS {
            Parallelism::SEQUENTIAL
        } else {
            Parallelism {
                threads: self.options.threads,
                depth: self.options.parallel_depth,
            }
        }
    }

    /// Satisfiable cells inside `base`: the disjoint fast path or a
    /// (possibly parallel) decomposition, shared by
    /// [`BoundEngine::bound`] and the shared-decomposition GROUP-BY. A
    /// budget trip leaves the unexplored subtrees as frontier cells
    /// ([`DecomposeStats::frontier_cells`]). The disjoint fast path does
    /// no search and never trips.
    pub(crate) fn cells_for_base_budgeted(
        &self,
        base: &Region,
        budget: &QueryBudget,
    ) -> Result<(Vec<Cell>, DecomposeStats), BoundError> {
        if self.set.disjoint_hint() {
            return Ok(self.disjoint_cells(base));
        }
        // Estimate-guided split order: freeze a permutation from the
        // current estimate snapshot (so sequential and parallel runs stay
        // bit-identical), stage this run's split survivals on it, and
        // publish them back into the live counters only when the run
        // finished untripped — a budget-tripped decomposition observed a
        // biased prefix of its splits and must not poison the history
        // (the unpublished-epoch rule, applied to estimates).
        let ordering = (self.options.ordering && self.set.len() > 1)
            .then(|| SplitOrdering::from_estimates(self.estimates()));
        let result = decompose_ordered_budgeted(
            self.set,
            base,
            self.options.strategy,
            self.decompose_policy(self.set.len()),
            budget,
            ordering.as_ref(),
        );
        if let (Some(ord), Ok(_)) = (&ordering, &result) {
            if !budget.is_tripped() {
                self.estimates().publish(ord);
            }
        }
        result.map_err(BoundError::from)
    }

    fn build_problem(
        &self,
        query: &AggQuery,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
    ) -> Result<CellProblem, BoundError> {
        let schema = self.set.schema();
        // Optimization 1: push the query predicate into decomposition.
        let mut base = query.predicate.to_region(schema);
        base.intersect(self.set.domain());

        // A tripped budget skips the closure probe and assumes *open* —
        // the sound direction (affected range ends widen to ±∞).
        let mut skipped_closure = false;
        let closed = if !self.options.check_closure {
            true
        } else if !budget.proceed() {
            skipped_closure = true;
            false
        } else {
            self.set.is_closed_within_with(&base, self.par_witness())
        };

        let (cells, stats) = self.cells_for_base_budgeted(&base, budget)?;
        let problem =
            self.problem_from_cells_budgeted(query.attr, &base, cells, stats, closed, warm, budget);
        if skipped_closure {
            if let Ok(p) = &problem {
                p.degraded.set(true);
            }
        }
        problem
    }

    /// Assemble the allocation problem from an explicit cell list (either
    /// freshly decomposed or specialized from a shared GROUP-BY
    /// decomposition). `base` is the effective query region the cells live
    /// in — it decides which frequency lower bounds survive pushdown.
    #[cfg(test)]
    pub(crate) fn problem_from_cells(
        &self,
        attr: usize,
        base: &Region,
        cells: Vec<Cell>,
        stats: DecomposeStats,
        closed: bool,
        warm: Option<WarmCache>,
    ) -> Result<CellProblem, BoundError> {
        self.problem_from_cells_budgeted(
            attr,
            base,
            cells,
            stats,
            closed,
            warm,
            &QueryBudget::unlimited(),
        )
    }

    /// `problem_from_cells` carrying the query's budget. Frontier cells
    /// (budget-tripped decompositions) get conservative treatment — see
    /// the inline comments for the soundness argument of each rule.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn problem_from_cells_budgeted(
        &self,
        attr: usize,
        base: &Region,
        cells: Vec<Cell>,
        stats: DecomposeStats,
        closed: bool,
        warm: Option<WarmCache>,
        budget: &QueryBudget,
    ) -> Result<CellProblem, BoundError> {
        let schema = self.set.schema();
        let estimates = self.options.ordering.then(|| self.estimates());
        let mut u = Vec::with_capacity(cells.len());
        let mut l = Vec::with_capacity(cells.len());
        let mut cap = Vec::with_capacity(cells.len());
        let mut weights = estimates.map(|_| Vec::with_capacity(cells.len()));
        for cell in &cells {
            if let (Some(w), Some(est)) = (&mut weights, estimates) {
                // Selectivity of the cell = product of its active
                // constraints' scores (each in [0, 1]); mapped to a
                // bounded weight so fractionality still matters.
                let mut vol = 1.0f64;
                for j in cell.active.iter() {
                    vol *= est.score(j).clamp(0.0, 1.0);
                }
                w.push(2.0 - vol);
            }
            // Only *active* constraints narrow a cell's value interval and
            // cap — an undecided (frontier) constraint may be violated by
            // the cell's rows, so using its value ranges or `ku` as a
            // per-row restriction would be unsound. Skipping them only
            // loosens u/l/cap.
            let mut hi = cell.region.interval(attr).sup();
            let mut lo = cell.region.interval(attr).inf();
            let mut k = f64::INFINITY;
            let mut feasible = true;
            for j in cell.active.iter() {
                let pc = &self.set.constraints()[j];
                k = k.min(pc.frequency.hi as f64);
                for (va, iv) in pc.values.ranges() {
                    let narrowed = cell.region.interval(*va).intersect(iv);
                    if narrowed.is_empty(cell.region.attr_type(*va)) {
                        feasible = false;
                    }
                    if *va == attr {
                        hi = hi.min(iv.sup());
                        lo = lo.max(iv.inf());
                    }
                }
            }
            if cell.active.is_empty() && cell.is_frontier() {
                // Active-empty frontier cell: every row of it satisfies at
                // least one undecided constraint (rows covered by *no*
                // predicate belong to the closure question, not a cell),
                // and constraint `j` admits at most `ku_j` rows anywhere —
                // so Σ ku over the geometrically reachable undecided
                // constraints caps the cell. Unreachable ones contribute
                // nothing (cap 0 when none overlap: the cell is empty).
                k = cell
                    .undecided
                    .iter()
                    .filter(|&j| {
                        crate::specialize::overlaps_region(&self.set.constraints()[j], &cell.region)
                    })
                    .map(|j| self.set.constraints()[j].frequency.hi as f64)
                    .sum();
            }
            if hi < lo {
                feasible = false;
            }
            u.push(hi);
            l.push(lo);
            cap.push(if feasible { k } else { 0.0 });
        }

        // Per-constraint frequency rows with pushdown-safe lower bounds.
        let mut pc_rows = Vec::with_capacity(self.set.len());
        for (j, pc) in self.set.constraints().iter().enumerate() {
            // Frontier membership is conservative: a cell belongs to row
            // `j` only when `j` is *active* in it. Rows hiding in a
            // frontier cell that would satisfy `j` are then missing from
            // the `≤ ku` row — which only relaxes it (sound) — but they
            // could also be the rows meant to satisfy a `≥ kl`, so any
            // constraint undecided somewhere must have its lower bound
            // relaxed to 0 or the LP could overstate the minimum.
            let undecided_somewhere = cells.iter().any(|c| c.undecided.contains(j));
            let members: Vec<usize> = cells
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.is_active(j).then_some(i))
                .collect();
            let mut allowed = pc.allowed_region(schema);
            allowed.intersect(self.set.domain());
            let fully_inside = base.contains_region(&allowed);
            let kl_eff = if fully_inside && !undecided_somewhere {
                pc.frequency.lo as f64
            } else {
                0.0
            };
            if kl_eff > 0.0 {
                let capacity: f64 = members.iter().map(|&i| cap[i]).sum();
                if capacity < kl_eff {
                    return Err(BoundError::Infeasible);
                }
            }
            pc_rows.push((kl_eff, pc.frequency.hi as f64, members));
        }

        Ok(CellProblem {
            degraded: StdCell::new(stats.frontier_cells > 0 || budget.is_tripped()),
            cells,
            u,
            l,
            cap,
            pc_rows,
            branch_weights: weights,
            closed,
            stats,
            warm,
            work: StdCell::new(LpWork::default()),
            budget: budget.clone(),
        })
    }

    /// Fast path for disjoint sets: every constraint overlapping the base
    /// region is its own cell; no SAT calls at all.
    fn disjoint_cells(&self, base: &Region) -> (Vec<Cell>, DecomposeStats) {
        let schema = self.set.schema();
        let mut cells = Vec::new();
        for (j, pc) in self.set.constraints().iter().enumerate() {
            let mut region = pc.predicate.to_region(schema);
            region.intersect(base);
            if region.is_empty() {
                continue;
            }
            let witness = region.pick_witness();
            cells.push(Cell {
                region: Arc::new(region),
                active: [j].into_iter().collect(),
                witness,
                undecided: ActiveSet::new(),
            });
        }
        let stats = DecomposeStats {
            cells: cells.len(),
            ..DecomposeStats::default()
        };
        (cells, stats)
    }

    // ------------------------------------------------------------------
    // Shared allocation solver
    // ------------------------------------------------------------------

    /// Optimize `Σ coefᵢ·xᵢ` over feasible allocations. `extra_min_total`
    /// adds `Σ xᵢ ≥ 1` (used by AVG feasibility probes).
    ///
    /// Value-infeasible (cap = 0) cells are excluded from the program
    /// entirely; the remaining variables need no explicit upper bounds —
    /// each appears with coefficient 1 in its active constraints' `≤ ku`
    /// rows, which bound it. That keeps the tableau at
    /// `O(constraints) × O(cells)` instead of quadratic in cells.
    fn allocate(
        &self,
        p: &CellProblem,
        coef: &[f64],
        sense: Sense,
        extra_min_total: bool,
    ) -> Result<f64, BoundError> {
        // Greedy special case: every cell has exactly one active
        // constraint and every constraint at most one member cell — the
        // problem is separable per variable. The AVG probe's extra
        // `Σ xᵢ ≥ 1` coupling row stays greedy too: if the separable
        // optimum allocates nothing, force one row into the best cell.
        let diagonal = p
            .cells
            .iter()
            .all(|c| c.active.len() == 1 && c.undecided.is_empty())
            && p.pc_rows.iter().all(|(_, _, m)| m.len() <= 1);
        if diagonal {
            let mut freq = Vec::with_capacity(p.cells.len());
            for (i, cell) in p.cells.iter().enumerate() {
                let j = cell
                    .active
                    .first_index()
                    .expect("diagonal cell is non-empty");
                let (kl, ku, _) = p.pc_rows[j];
                let hi = ku.min(p.cap[i]);
                let lo = kl.min(hi);
                freq.push((lo, hi));
            }
            let mut sol = match sense {
                Sense::Maximize => greedy::maximize_disjoint(coef, &freq),
                Sense::Minimize => greedy::minimize_disjoint(coef, &freq),
            };
            if extra_min_total && sol.x.iter().sum::<f64>() < 1.0 {
                // all coefficients point away from allocating; place the
                // single required row where it costs least
                let best = (0..freq.len())
                    .filter(|&i| freq[i].1 >= 1.0)
                    .max_by(|&a, &b| {
                        let ca = if sense == Sense::Maximize {
                            coef[a]
                        } else {
                            -coef[a]
                        };
                        let cb = if sense == Sense::Maximize {
                            coef[b]
                        } else {
                            -coef[b]
                        };
                        ca.partial_cmp(&cb).expect("no NaN coefficients")
                    });
                match best {
                    Some(i) => {
                        sol.objective += coef[i];
                        sol.x[i] += 1.0;
                    }
                    None => return Err(BoundError::Infeasible),
                }
            }
            return Ok(sol.objective);
        }

        // Map live (cap > 0) cells to dense variable indices.
        let live: Vec<usize> = (0..p.cells.len()).filter(|&i| p.cap[i] > 0.0).collect();
        if live.is_empty() {
            if extra_min_total {
                return Err(BoundError::Infeasible);
            }
            return Ok(0.0);
        }
        let mut var_of = vec![usize::MAX; p.cells.len()];
        for (v, &i) in live.iter().enumerate() {
            var_of[i] = v;
        }
        let live_coef: Vec<f64> = live.iter().map(|&i| coef[i]).collect();
        let mut lp = match sense {
            Sense::Maximize => LinearProgram::maximize(live_coef),
            Sense::Minimize => LinearProgram::minimize(live_coef),
        };
        let mut in_row = vec![false; live.len()];
        for (kl, ku, members) in &p.pc_rows {
            let terms: Vec<(usize, f64)> = members
                .iter()
                .filter(|&&i| var_of[i] != usize::MAX)
                .map(|&i| (var_of[i], 1.0))
                .collect();
            if terms.is_empty() {
                continue;
            }
            for &(v, _) in &terms {
                in_row[v] = true;
            }
            lp.add_constraint(terms.clone(), ConstraintOp::Le, *ku);
            if *kl > 0.0 {
                lp.add_constraint(terms, ConstraintOp::Ge, *kl);
            }
        }
        // An active-empty frontier cell sits in no `≤ ku` row (membership
        // needs an *active* constraint), so its variable must carry its
        // cap as an explicit bound or the program is unbounded.
        for (v, &i) in live.iter().enumerate() {
            if !in_row[v] {
                lp.set_bounds(v, 0.0, p.cap[i]);
            }
        }
        if extra_min_total {
            let all: Vec<(usize, f64)> = (0..live.len()).map(|v| (v, 1.0)).collect();
            lp.add_constraint(all, ConstraintOp::Ge, 1.0);
        }
        if live.len() > self.options.lp_relax_cell_limit {
            // LP relaxation: a hard (if slightly wider) bound — see
            // `BoundOptions::lp_relax_cell_limit`.
            return Ok(self.solve_lp_maybe_warm(p, &lp, sense, extra_min_total)?);
        }
        // The chain carry reaches into branch & bound too: consecutive
        // allocation MILPs of one chain (the probes of an AVG binary
        // search foremost) share constraint structure and differ only in
        // objective, so each solve seeds the next solve's *root*
        // relaxation with its carried tableau. Same cache slots as the
        // plain LP chain; a structural mismatch demotes inside the solver.
        let milp_options = self.milp_options();
        let key: WarmKey = (sense, extra_min_total, lp.num_vars(), lp.constraints.len());
        let chain = milp_options
            .tableau_carry
            .then_some(&p.warm)
            .and_then(|w| w.as_ref());
        let prior = chain.and_then(|cache| match take_cached(cache, key, &lp) {
            Some(CachedWarm::Tableau(t)) => Some(*t),
            // a basis entry under a carry-enabled engine cannot occur
            // (carry-on chains always store tableaux); drop defensively
            Some(CachedWarm::Basis(_)) | None => None,
        });
        let mut milp_problem = MilpProblem::all_integer(lp.clone());
        if let Some(w) = &p.branch_weights {
            // Estimate-guided branching: the solver decides the most
            // selective cells' variables first (weights ride the live
            // variable mapping).
            milp_problem = milp_problem.with_branch_scores(live.iter().map(|&i| w[i]).collect());
        }
        match solve_milp_budgeted(&milp_problem, milp_options, prior, &p.budget) {
            Ok((sol, root)) => {
                p.record_search(sol.nodes, sol.search);
                if let (Some(cache), Some(root)) = (chain, root) {
                    lock_warm(cache).insert(key, CachedWarm::Tableau(Box::new(root)));
                }
                Ok(sol.objective)
            }
            // A pathological branch & bound tree is not a reason to fail a
            // *bounding* call: the LP relaxation dominates the integer
            // optimum in the optimization direction, so it is still sound.
            Err(pc_solver::SolverError::LimitExceeded(_)) => {
                Ok(self.solve_lp_maybe_warm(p, &lp, sense, extra_min_total)?)
            }
            // Budget trip mid-search: same LP-relaxation degradation, but
            // *reported* — the caller promised an answer by the deadline
            // and gets the sound, wider one.
            Err(pc_solver::SolverError::BudgetExhausted(_)) => {
                p.degraded.set(true);
                Ok(self.solve_lp_maybe_warm(p, &lp, sense, extra_min_total)?)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// The branch & bound configuration for this engine's allocation
    /// MILPs: the engine-level knobs flow into the solver-level ones, so
    /// `BoundOptions { threads, warm_start, tableau_carry }` configures
    /// the whole vertical slice without callers knowing the solver has
    /// its own knobs. A strictly sequential engine (`threads: 1`) forces
    /// a sequential search; otherwise `milp.threads` left at its
    /// sequential default inherits the engine's fan-out (set it
    /// explicitly to decouple the two). `warm_start: false` disables the
    /// whole warm family — node-to-node basis reuse, the LP chains, *and*
    /// the tableau carry (so the engine never hands the solver the
    /// contradictory `warm_start: false, tableau_carry: true` combination
    /// the solver rejects); `tableau_carry: false` alone keeps the basis
    /// tier and drops only tier 3. All three engine knobs stay honest A/B
    /// switches for the whole pipeline.
    fn milp_options(&self) -> MilpOptions {
        let threads = if self.options.threads == 1 {
            1
        } else if self.options.milp.threads == 1 {
            self.options.threads
        } else {
            self.options.milp.threads
        };
        let warm_start = self.options.warm_start && self.options.milp.warm_start;
        MilpOptions {
            threads,
            warm_start,
            tableau_carry: warm_start
                && self.options.tableau_carry
                && self.options.milp.tableau_carry,
            ..self.options.milp
        }
    }

    /// Solve an LP, consulting and refreshing the problem's warm-start
    /// cache when a chain supplied one. The cache key pins the probe kind
    /// and the tableau dimensions; the solver additionally verifies
    /// structural/basis compatibility and falls back tier by tier (carry
    /// → basis crash → cold), so a stale entry can cost time but never
    /// correctness. With [`BoundOptions::tableau_carry`] the slot holds
    /// the whole canonical tableau — moved out for the solve and moved
    /// back after — so an AVG binary search re-prices one tableau across
    /// all its probes and a [`crate::Session`] carries tableaux across
    /// queries, not just bases.
    fn solve_lp_maybe_warm(
        &self,
        p: &CellProblem,
        lp: &LinearProgram,
        sense: Sense,
        extra_min_total: bool,
    ) -> Result<f64, pc_solver::SolverError> {
        // Cache creation is already gated on `options.warm_start` at both
        // construction sites (`bound`, the group-by chunk driver).
        let Some(cache) = &p.warm else {
            let (sol, ct) = solve_lp_tableau(lp, None, None)?;
            p.record_lp(ct.stats());
            return Ok(sol.objective);
        };
        let key: WarmKey = (sense, extra_min_total, lp.num_vars(), lp.constraints.len());
        let (prior, basis) = match take_cached(cache, key, lp) {
            Some(CachedWarm::Tableau(t)) => (Some(*t), None),
            Some(CachedWarm::Basis(b)) => (None, Some(b)),
            None => (None, None),
        };
        let (sol, ct) = solve_lp_tableau(lp, prior, basis.as_ref())?;
        p.record_lp(ct.stats());
        let entry = if self.options.tableau_carry {
            CachedWarm::Tableau(Box::new(ct))
        } else {
            CachedWarm::Basis(ct.warm_start())
        };
        lock_warm(cache).insert(key, entry);
        Ok(sol.objective)
    }

    // ------------------------------------------------------------------
    // Per-aggregate bounds
    // ------------------------------------------------------------------

    fn bound_count(&self, p: &CellProblem) -> Result<BoundReport, BoundError> {
        let ones = vec![1.0; p.cells.len()];
        let lo = if p.cells.is_empty() {
            0.0
        } else {
            self.allocate(p, &ones, Sense::Minimize, false)?
        };
        let hi = if !p.closed {
            f64::INFINITY
        } else if p.cells.is_empty() {
            0.0
        } else {
            self.allocate(p, &ones, Sense::Maximize, false)?
        };
        Ok(report(lo, hi, p))
    }

    fn bound_sum(&self, p: &CellProblem) -> Result<BoundReport, BoundError> {
        if !p.closed {
            return Ok(report(f64::NEG_INFINITY, f64::INFINITY, p));
        }
        if p.cells.is_empty() {
            return Ok(report(0.0, 0.0, p));
        }
        // An unbounded value range in a usable cell blows the corresponding
        // side of the range.
        let hi_unbounded =
            p.u.iter()
                .zip(&p.cap)
                .any(|(&ui, &cap)| ui == f64::INFINITY && cap > 0.0);
        let lo_unbounded =
            p.l.iter()
                .zip(&p.cap)
                .any(|(&li, &cap)| li == f64::NEG_INFINITY && cap > 0.0);
        let hi = if hi_unbounded {
            f64::INFINITY
        } else {
            // Coefficients for infeasible (cap = 0) cells are irrelevant;
            // zero them to keep the LP numerically clean.
            let coef: Vec<f64> =
                p.u.iter()
                    .zip(&p.cap)
                    .map(|(&ui, &cap)| if cap > 0.0 { ui } else { 0.0 })
                    .collect();
            self.allocate(p, &coef, Sense::Maximize, false)?
        };
        let lo = if lo_unbounded {
            f64::NEG_INFINITY
        } else {
            let coef: Vec<f64> =
                p.l.iter()
                    .zip(&p.cap)
                    .map(|(&li, &cap)| if cap > 0.0 { li } else { 0.0 })
                    .collect();
            self.allocate(p, &coef, Sense::Minimize, false)?
        };
        Ok(report(lo, hi, p))
    }

    fn bound_max(&self, p: &CellProblem) -> Result<BoundReport, BoundError> {
        let usable: Vec<usize> = (0..p.cells.len()).filter(|&i| p.cap[i] >= 1.0).collect();
        if usable.is_empty() && p.closed {
            return Err(BoundError::EmptyAggregate);
        }
        let hi = if !p.closed {
            f64::INFINITY
        } else {
            usable
                .iter()
                .map(|&i| p.u[i])
                .fold(f64::NEG_INFINITY, f64::max)
        };
        // Conditional lower bound: every instance's MAX is at least the
        // cheapest placement of any forced row; with no forced rows, at
        // least one row is assumed (non-empty aggregate semantics).
        let forced: Vec<f64> = p
            .pc_rows
            .iter()
            .filter(|(kl, _, members)| *kl >= 1.0 && !members.is_empty())
            .map(|(_, _, members)| {
                members
                    .iter()
                    .filter(|&&i| p.cap[i] >= 1.0)
                    .map(|&i| p.l[i])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let lo = if !forced.is_empty() {
            forced.into_iter().fold(f64::NEG_INFINITY, f64::max)
        } else {
            usable.iter().map(|&i| p.l[i]).fold(f64::INFINITY, f64::min)
        };
        let lo = if p.closed { lo } else { f64::NEG_INFINITY };
        Ok(report(lo, hi, p))
    }

    fn bound_min(&self, p: &CellProblem) -> Result<BoundReport, BoundError> {
        let usable: Vec<usize> = (0..p.cells.len()).filter(|&i| p.cap[i] >= 1.0).collect();
        if usable.is_empty() && p.closed {
            return Err(BoundError::EmptyAggregate);
        }
        let lo = if !p.closed {
            f64::NEG_INFINITY
        } else {
            usable.iter().map(|&i| p.l[i]).fold(f64::INFINITY, f64::min)
        };
        let forced: Vec<f64> = p
            .pc_rows
            .iter()
            .filter(|(kl, _, members)| *kl >= 1.0 && !members.is_empty())
            .map(|(_, _, members)| {
                members
                    .iter()
                    .filter(|&&i| p.cap[i] >= 1.0)
                    .map(|&i| p.u[i])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        let hi = if !forced.is_empty() {
            forced.into_iter().fold(f64::INFINITY, f64::min)
        } else {
            usable
                .iter()
                .map(|&i| p.u[i])
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let hi = if p.closed { hi } else { f64::INFINITY };
        Ok(report(lo, hi, p))
    }

    fn bound_avg(&self, p: &CellProblem) -> Result<BoundReport, BoundError> {
        if !p.closed {
            return Ok(report(f64::NEG_INFINITY, f64::INFINITY, p));
        }
        let usable: Vec<usize> = (0..p.cells.len()).filter(|&i| p.cap[i] >= 1.0).collect();
        if usable.is_empty() {
            return Err(BoundError::EmptyAggregate);
        }
        let max_u = usable
            .iter()
            .map(|&i| p.u[i])
            .fold(f64::NEG_INFINITY, f64::max);
        let min_l = usable.iter().map(|&i| p.l[i]).fold(f64::INFINITY, f64::min);
        if max_u == f64::INFINITY || min_l == f64::NEG_INFINITY {
            let hi = if max_u == f64::INFINITY {
                f64::INFINITY
            } else {
                max_u
            };
            let lo = if min_l == f64::NEG_INFINITY {
                f64::NEG_INFINITY
            } else {
                min_l
            };
            return Ok(report(lo, hi, p));
        }

        let no_forced = p.pc_rows.iter().all(|(kl, _, _)| *kl == 0.0);
        if no_forced {
            // A single row in the best/worst cell realizes the extremes.
            return Ok(report(min_l, max_u, p));
        }

        // §4.2: binary search the feasible average. `max AVG ≥ r` iff some
        // allocation with ≥ 1 row has Σ xᵢ(Uᵢ − r) ≥ 0 (each allocated row
        // contributes at most Uᵢ − r to `sum − r·count`).
        let hi = self.search_avg(p, true, min_l, max_u)?;
        let lo = self.search_avg(p, false, min_l, max_u)?;
        Ok(report(lo, hi, p))
    }

    /// Binary-search the extreme feasible average. The returned endpoint
    /// is always taken from the *infeasible* side of the final bracket, so
    /// the tolerance can only widen the range, never clip the true
    /// optimum.
    fn search_avg(
        &self,
        p: &CellProblem,
        upper: bool,
        min_l: f64,
        max_u: f64,
    ) -> Result<f64, BoundError> {
        let feasible = |r: f64| -> Result<bool, BoundError> {
            // `max AVG ≥ r` iff some allocation with ≥1 row has
            // Σ xᵢ(Uᵢ − r) ≥ 0; `min AVG ≤ r` iff Σ xᵢ(Lᵢ − r) ≤ 0.
            let coef: Vec<f64> = if upper {
                p.u.iter()
                    .zip(&p.cap)
                    .map(|(&ui, &cap)| if cap > 0.0 { ui - r } else { 0.0 })
                    .collect()
            } else {
                p.l.iter()
                    .zip(&p.cap)
                    .map(|(&li, &cap)| if cap > 0.0 { li - r } else { 0.0 })
                    .collect()
            };
            let sense = if upper {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            let opt = self.allocate(p, &coef, sense, true)?;
            Ok(if upper { opt >= -1e-9 } else { opt <= 1e-9 })
        };

        let extreme = if upper { max_u } else { min_l };
        match feasible(extreme) {
            Ok(true) => return Ok(extreme),
            Ok(false) => {}
            // No allocation with ≥1 row exists at all (the probe's
            // constraints do not depend on r): the aggregate is empty.
            Err(BoundError::Infeasible) => return Err(BoundError::EmptyAggregate),
            Err(e) => return Err(e),
        }
        // Invariant: `good` side is feasible (every instance's average
        // lies in [min_l, max_u], so the opposite extreme is feasible),
        // `bad` side is not.
        let (mut good, mut bad) = if upper {
            (min_l, max_u)
        } else {
            (max_u, min_l)
        };
        let tol = (max_u - min_l).abs().max(1.0) * 1e-9;
        for _ in 0..80 {
            if (bad - good).abs() <= tol {
                break;
            }
            // Out of budget: stop refining the bracket. `bad` always
            // over-covers the optimum, so an early return is just a wider
            // (still sound) endpoint.
            if p.budget.is_tripped() {
                p.degraded.set(true);
                break;
            }
            let r = good + (bad - good) / 2.0;
            if feasible(r)? {
                good = r;
            } else {
                bad = r;
            }
        }
        // `bad` over-covers the optimum by at most `tol` — sound.
        Ok(bad)
    }
}

fn report(lo: f64, hi: f64, p: &CellProblem) -> BoundReport {
    BoundReport {
        range: ResultRange { lo, hi },
        closed: p.closed,
        stats: p.stats,
        solver: p.work.get(),
        degraded: p.degraded.get(),
        shard_sat_checks: Vec::new(),
        trip: None,
        sched: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FrequencyConstraint, PredicateConstraint, ValueConstraint};
    use pc_predicate::{Atom, AttrType, Interval, Predicate, Schema};

    fn schema() -> Schema {
        Schema::new(vec![("utc", AttrType::Int), ("price", AttrType::Float)])
    }

    /// §4.4 disjoint example.
    fn disjoint_set() -> PcSet {
        let mut set = PcSet::new(schema())
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 11.0, 12.0)),
                ValueConstraint::none().with(1, Interval::closed(0.99, 129.99)),
                FrequencyConstraint::between(50, 100),
            ))
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 12.0, 13.0)),
                ValueConstraint::none().with(1, Interval::closed(0.99, 149.99)),
                FrequencyConstraint::between(50, 100),
            ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(11.0, 13.0));
        set.set_domain(domain);
        set
    }

    /// §4.4 overlapping example.
    fn overlapping_set() -> PcSet {
        let mut set = PcSet::new(schema())
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 11.0, 12.0)),
                ValueConstraint::none().with(1, Interval::closed(0.99, 129.99)),
                FrequencyConstraint::between(50, 100),
            ))
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 11.0, 13.0)),
                ValueConstraint::none().with(1, Interval::closed(0.99, 149.99)),
                FrequencyConstraint::between(75, 125),
            ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(11.0, 13.0));
        set.set_domain(domain);
        set
    }

    fn sum_query() -> AggQuery {
        AggQuery::new(AggKind::Sum, 1, Predicate::always())
    }

    #[test]
    fn paper_disjoint_sum_range() {
        let set = disjoint_set();
        let r = BoundEngine::new(&set).bound(&sum_query()).unwrap();
        assert!(r.closed);
        assert!((r.range.lo - 99.0).abs() < 1e-6, "lo = {}", r.range.lo);
        assert!((r.range.hi - 27_998.0).abs() < 1e-6, "hi = {}", r.range.hi);
    }

    #[test]
    fn paper_overlapping_sum_range() {
        let set = overlapping_set();
        let r = BoundEngine::new(&set).bound(&sum_query()).unwrap();
        // [50·0.99 + 25·0.99, 50·129.99 + 75·149.99] = [74.25, 17748.75]
        assert!((r.range.lo - 74.25).abs() < 1e-6, "lo = {}", r.range.lo);
        assert!((r.range.hi - 17_748.75).abs() < 1e-6, "hi = {}", r.range.hi);
    }

    #[test]
    fn count_range_overlapping() {
        let set = overlapping_set();
        let q = AggQuery::count(Predicate::always());
        let r = BoundEngine::new(&set).bound(&q).unwrap();
        // count: t2 forces ≥ 75 total; t1 allows ≤ 100 in [11,12) and t2
        // caps the total at 125
        assert_eq!(r.range.lo, 75.0);
        assert_eq!(r.range.hi, 125.0);
    }

    #[test]
    fn pushdown_single_day() {
        let set = disjoint_set();
        // query only Nov-12: second PC alone, kl kept (fully inside)
        let q = AggQuery::new(
            AggKind::Sum,
            1,
            Predicate::atom(Atom::bucket(0, 12.0, 13.0)),
        );
        let r = BoundEngine::new(&set).bound(&q).unwrap();
        assert!((r.range.lo - 50.0 * 0.99).abs() < 1e-6);
        assert!((r.range.hi - 100.0 * 149.99).abs() < 1e-6);
    }

    #[test]
    fn pushdown_relaxes_partial_kl() {
        let set = overlapping_set();
        // query [11, 12): t2 straddles the boundary so its kl must relax;
        // t1 is fully inside and keeps kl = 50
        let q = AggQuery::count(Predicate::atom(Atom::bucket(0, 11.0, 12.0)));
        let r = BoundEngine::new(&set).bound(&q).unwrap();
        assert_eq!(r.range.lo, 50.0);
        assert_eq!(r.range.hi, 100.0);
    }

    #[test]
    fn closure_violation_inflates_upper() {
        // constraints only cover [11, 13) but the domain is the full line
        let set = {
            let mut s = disjoint_set();
            s.set_domain(Region::full(&schema()));
            s
        };
        let r = BoundEngine::new(&set)
            .bound(&AggQuery::count(Predicate::always()))
            .unwrap();
        assert!(!r.closed);
        assert_eq!(r.range.hi, f64::INFINITY);
        assert_eq!(r.range.lo, 100.0); // forced rows still counted
    }

    #[test]
    fn min_max_ranges() {
        let set = disjoint_set();
        let rmax = BoundEngine::new(&set)
            .bound(&AggQuery::new(AggKind::Max, 1, Predicate::always()))
            .unwrap();
        assert_eq!(rmax.range.hi, 149.99);
        // forced rows exist in both buckets; the adversary can price all
        // of them at 0.99 → guaranteed MAX ≥ 0.99
        assert!((rmax.range.lo - 0.99).abs() < 1e-9);

        let rmin = BoundEngine::new(&set)
            .bound(&AggQuery::new(AggKind::Min, 1, Predicate::always()))
            .unwrap();
        assert_eq!(rmin.range.lo, 0.99);
        // each bucket forces rows with value ≤ its upper bound; min over
        // buckets of U = 129.99
        assert!((rmin.range.hi - 129.99).abs() < 1e-9);
    }

    #[test]
    fn avg_range_disjoint() {
        let set = disjoint_set();
        let r = BoundEngine::new(&set)
            .bound(&AggQuery::new(AggKind::Avg, 1, Predicate::always()))
            .unwrap();
        // max avg: 100 rows at 129.99 + 50 rows at 149.99? No: maximize
        // (sum − r·count): best is 50 rows at 129.99 (forced, cheap) and
        // 100 at 149.99 → avg = (50·129.99 + 100·149.99)/150 = 143.32…
        let best = (50.0 * 129.99 + 100.0 * 149.99) / 150.0;
        assert!((r.range.hi - best).abs() < 1e-3, "hi = {}", r.range.hi);
        // min avg: everything at 0.99
        assert!((r.range.lo - 0.99).abs() < 1e-3, "lo = {}", r.range.lo);
    }

    #[test]
    fn infeasible_constraints_detected() {
        // force 10 rows in a bucket that another constraint caps at 0
        let mut set = PcSet::new(schema())
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 0.0, 10.0)),
                ValueConstraint::none(),
                FrequencyConstraint::between(10, 20),
            ))
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 0.0, 20.0)),
                ValueConstraint::none(),
                FrequencyConstraint::at_most(0),
            ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(0.0, 20.0));
        set.set_domain(domain);
        let err = BoundEngine::new(&set)
            .bound(&AggQuery::count(Predicate::always()))
            .unwrap_err();
        assert_eq!(err, BoundError::Infeasible);
    }

    #[test]
    fn conflicting_overlap_enforces_most_restrictive() {
        // c1: Chicago ≤ 5 rows ≤ 149.99; c2: everywhere ≤ 100 rows ≤ 149.99
        // (the §3.1 interaction example — Chicago can't exceed 5)
        let s = Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)]);
        let mut set = PcSet::new(s.clone())
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::eq(0, 0.0)),
                ValueConstraint::none().with(1, Interval::closed(0.0, 149.99)),
                FrequencyConstraint::at_most(5),
            ))
            .with(PredicateConstraint::new(
                Predicate::always(),
                ValueConstraint::none().with(1, Interval::closed(0.0, 149.99)),
                FrequencyConstraint::at_most(100),
            ));
        let mut domain = Region::full(&s);
        domain.set_interval(0, Interval::closed(0.0, 3.0));
        set.set_domain(domain);

        // all sales in Chicago: at most 5 rows → ≤ 5 × 149.99
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::atom(Atom::eq(0, 0.0)));
        let r = BoundEngine::new(&set).bound(&q).unwrap();
        assert!((r.range.hi - 5.0 * 149.99).abs() < 1e-6);

        // across all branches: ≤ 100 rows total
        let r = BoundEngine::new(&set)
            .bound(&AggQuery::count(Predicate::always()))
            .unwrap();
        assert_eq!(r.range.hi, 100.0);
    }

    #[test]
    fn value_infeasible_cell_capped_at_zero() {
        // two overlapping constraints with contradictory price ranges in
        // the overlap: rows there are impossible
        let mut set = PcSet::new(schema())
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 0.0, 10.0)),
                ValueConstraint::none().with(1, Interval::closed(0.0, 10.0)),
                FrequencyConstraint::at_most(100),
            ))
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 5.0, 15.0)),
                ValueConstraint::none().with(1, Interval::closed(50.0, 60.0)),
                FrequencyConstraint::at_most(100),
            ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(0.0, 15.0));
        set.set_domain(domain);
        let r = BoundEngine::new(&set)
            .bound(&AggQuery::count(Predicate::always()))
            .unwrap();
        // overlap cell [5,10) contributes nothing; 100 + 100 remain
        assert_eq!(r.range.hi, 200.0);
    }

    #[test]
    fn unconstrained_value_attr_gives_infinite_sum() {
        let mut set = PcSet::new(schema()).with(PredicateConstraint::new(
            Predicate::atom(Atom::bucket(0, 0.0, 10.0)),
            ValueConstraint::none(), // price unconstrained!
            FrequencyConstraint::at_most(5),
        ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(0.0, 10.0));
        set.set_domain(domain);
        let r = BoundEngine::new(&set).bound(&sum_query()).unwrap();
        assert_eq!(r.range.hi, f64::INFINITY);
        assert_eq!(r.range.lo, f64::NEG_INFINITY);
        // …but COUNT is still bounded
        let rc = BoundEngine::new(&set)
            .bound(&AggQuery::count(Predicate::always()))
            .unwrap();
        assert_eq!(rc.range.hi, 5.0);
    }

    #[test]
    fn empty_aggregate_error() {
        let mut set = PcSet::new(schema()).with(PredicateConstraint::new(
            Predicate::atom(Atom::bucket(0, 0.0, 10.0)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 1.0)),
            FrequencyConstraint::at_most(5),
        ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(0.0, 10.0));
        set.set_domain(domain);
        // query a region no missing row can reach
        let q = AggQuery::new(
            AggKind::Avg,
            1,
            Predicate::atom(Atom::bucket(0, 50.0, 60.0)),
        );
        let err = BoundEngine::new(&set).bound(&q).unwrap_err();
        assert_eq!(err, BoundError::EmptyAggregate);
    }

    #[test]
    fn tableau_carry_never_changes_ranges_and_counts_work() {
        // Floors force Ge rows (real phase 1) and an AVG binary search —
        // the chain shape the carry accelerates. Carry on and off must
        // agree on every range; the carry run must actually carry.
        let mut set = PcSet::new(schema())
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 11.0, 12.0)),
                ValueConstraint::none().with(1, Interval::closed(0.99, 129.99)),
                FrequencyConstraint::between(50, 100),
            ))
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 11.0, 13.0)),
                ValueConstraint::none().with(1, Interval::closed(0.99, 149.99)),
                FrequencyConstraint::between(75, 125),
            ))
            .with(PredicateConstraint::new(
                Predicate::atom(Atom::bucket(0, 12.0, 13.0)),
                ValueConstraint::none().with(1, Interval::closed(5.0, 80.0)),
                FrequencyConstraint::between(10, 60),
            ));
        let mut domain = Region::full(&schema());
        domain.set_interval(0, Interval::half_open(11.0, 13.0));
        set.set_domain(domain);

        let carry_engine = BoundEngine::new(&set);
        let basis_engine = BoundEngine::with_options(
            &set,
            BoundOptions {
                tableau_carry: false,
                ..BoundOptions::default()
            },
        );
        let mut carried_total = 0;
        for agg in [
            AggKind::Sum,
            AggKind::Count,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
        ] {
            let q = AggQuery::new(agg, 1, Predicate::always());
            let with = carry_engine.bound(&q).unwrap();
            let without = basis_engine.bound(&q).unwrap();
            assert!(
                (with.range.lo - without.range.lo).abs() < 1e-5
                    && (with.range.hi - without.range.hi).abs() < 1e-5,
                "{agg:?}: carry [{}, {}] vs basis [{}, {}]",
                with.range.lo,
                with.range.hi,
                without.range.lo,
                without.range.hi
            );
            assert_eq!(
                without.solver.carried, 0,
                "{agg:?}: basis run must not carry"
            );
            carried_total += with.solver.carried;
        }
        assert!(
            carried_total > 0,
            "the AVG chain must answer probes from carried tableaux"
        );
    }

    #[test]
    fn disjoint_hint_matches_full_decomposition() {
        let mut hinted = disjoint_set();
        hinted.set_disjoint_hint(true);
        let full = disjoint_set();
        for q in [
            sum_query(),
            AggQuery::count(Predicate::always()),
            AggQuery::new(AggKind::Max, 1, Predicate::always()),
        ] {
            let a = BoundEngine::new(&hinted).bound(&q).unwrap();
            let b = BoundEngine::new(&full).bound(&q).unwrap();
            assert_eq!(a.range, b.range, "{q:?}");
            assert_eq!(a.stats.sat_checks, 0, "hinted path must not call SAT");
        }
    }

    #[test]
    fn count_range_respects_true_result() {
        // sanity: a concrete instance's count lies in the range
        let set = overlapping_set();
        let q = AggQuery::count(Predicate::always());
        let r = BoundEngine::new(&set).bound(&q).unwrap().range;
        // instance: 50 rows on Nov-11, 30 on Nov-12 → t1: 50 ∈ [50,100] ✓,
        // t2: 80 ∈ [75,125] ✓
        assert!(r.contains(80.0));
        // 40 on Nov-11 would violate t1's lower bound — outside the range
        // is not required, but 130 total violates t2 and must be outside
        assert!(!r.contains(130.0));
    }

    // ------------------------------------------------------------------
    // Budgets and graceful degradation
    // ------------------------------------------------------------------

    #[test]
    fn unlimited_budget_never_reports_degraded() {
        let set = overlapping_set();
        let engine = BoundEngine::new(&set);
        for q in [sum_query(), AggQuery::count(Predicate::always())] {
            let r = engine.bound(&q).unwrap();
            assert!(!r.degraded, "{q:?} must not degrade without a budget");
        }
    }

    /// For every SAT-check cap from 0 up to the exact run's own usage, a
    /// budgeted bound must contain the exact range and must flag itself
    /// degraded whenever the budget actually tripped.
    #[test]
    fn sat_cap_degradation_is_sound_at_every_cap() {
        let set = overlapping_set();
        let engine = BoundEngine::new(&set);
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Max, AggKind::Min] {
            let q = AggQuery::new(agg, 1, Predicate::always());
            let exact = engine.bound(&q).unwrap();
            let full_checks = exact.stats.sat_checks.max(1);
            for cap in 0..=full_checks {
                let budget = QueryBudget::armed().with_sat_cap(cap);
                let r = engine.bound_budgeted(&q, &budget).unwrap();
                assert!(
                    r.range.lo <= exact.range.lo + 1e-9 && r.range.hi >= exact.range.hi - 1e-9,
                    "{agg:?} cap {cap}: degraded [{}, {}] must contain exact [{}, {}]",
                    r.range.lo,
                    r.range.hi,
                    exact.range.lo,
                    exact.range.hi
                );
                assert_eq!(
                    r.degraded,
                    budget.is_tripped(),
                    "{agg:?} cap {cap}: degraded flag must track the trip"
                );
            }
        }
    }

    #[test]
    fn node_cap_falls_back_to_lp_relaxation() {
        let set = overlapping_set();
        let engine = BoundEngine::new(&set);
        let q = AggQuery::count(Predicate::always());
        let exact = engine.bound(&q).unwrap();
        // Zero B&B nodes: every allocation MILP trips immediately and the
        // engine answers from the LP relaxation instead.
        let budget = QueryBudget::armed().with_node_cap(0);
        let r = engine.bound_budgeted(&q, &budget).unwrap();
        assert!(r.degraded, "node-cap trip must be reported");
        assert!(r.range.lo <= exact.range.lo && r.range.hi >= exact.range.hi);
        assert!(r.range.lo.is_finite() && r.range.hi.is_finite());
    }

    #[test]
    fn cancelled_query_still_answers_soundly() {
        let set = overlapping_set();
        let engine = BoundEngine::new(&set);
        let q = sum_query();
        let exact = engine.bound(&q).unwrap();
        let budget = QueryBudget::armed().with_sat_cap(u64::MAX);
        budget.cancel_token().unwrap().cancel();
        let r = engine.bound_budgeted(&q, &budget).unwrap();
        assert!(r.degraded);
        assert_eq!(budget.trip_reason(), Some(pc_budget::TripReason::Cancelled));
        assert!(r.range.lo <= exact.range.lo && r.range.hi >= exact.range.hi);
    }

    /// A budget-tripped decomposition observed a biased prefix of its
    /// splits, so it must not publish survival counters — the
    /// unpublished-epoch rule applied to estimates. An untripped run on
    /// the same engine must publish (the counters exist to learn).
    #[test]
    fn tripped_decomposition_publishes_no_survival_counters() {
        let set = overlapping_set();
        let engine = BoundEngine::new(&set);
        let snapshot = |e: &BoundEngine| -> Vec<(u64, u64)> {
            e.estimates()
                .entries()
                .iter()
                .map(|c| (c.survival.splits(), c.survival.survivals()))
                .collect()
        };
        let before = snapshot(&engine);
        let base = set.domain().clone();
        let budget = QueryBudget::armed().with_sat_cap(1);
        engine
            .cells_for_base_budgeted(&base, &budget)
            .expect("tripped decomposition still yields frontier cells");
        assert!(budget.is_tripped(), "cap 1 must trip on this catalog");
        assert_eq!(
            snapshot(&engine),
            before,
            "tripped run must not move survival history"
        );
        engine
            .cells_for_base_budgeted(&base, &QueryBudget::unlimited())
            .expect("untripped decomposition");
        let after = snapshot(&engine);
        assert!(
            after.iter().map(|&(s, _)| s).sum::<u64>()
                > before.iter().map(|&(s, _)| s).sum::<u64>(),
            "untripped run must publish split history: {after:?}"
        );
    }

    /// An unclosed closure check skipped under a tripped budget must
    /// answer "not closed" (hi = ∞ for COUNT), never "closed".
    #[test]
    fn skipped_closure_check_assumes_open() {
        let mut set = disjoint_set();
        set.set_domain(Region::full(&schema()));
        let engine = BoundEngine::new(&set);
        let q = AggQuery::count(Predicate::always());
        let budget = QueryBudget::armed().with_sat_cap(0);
        let r = engine.bound_budgeted(&q, &budget).unwrap();
        assert!(r.degraded);
        assert!(!r.closed);
        assert_eq!(r.range.hi, f64::INFINITY);
    }
}
