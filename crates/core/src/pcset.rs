use crate::constraint::{ConstraintViolation, PredicateConstraint};
use pc_predicate::{sat, Predicate, Region, Schema};
use pc_storage::Table;
use std::fmt;

/// A set of predicate constraints over one relation's missing partition
/// (§3.2), together with the attribute domain the constraints are meant to
/// cover.
///
/// The domain defaults to the full space; narrowing it (e.g. to the sensor
/// id range actually deployed) makes [`PcSet::is_closed`] meaningful for
/// discrete attributes with known cardinality.
#[derive(Debug, Clone)]
pub struct PcSet {
    schema: Schema,
    constraints: Vec<PredicateConstraint>,
    domain: Region,
    disjoint_hint: bool,
}

impl PcSet {
    /// An empty set over the full domain.
    pub fn new(schema: Schema) -> Self {
        let domain = Region::full(&schema);
        PcSet {
            schema,
            constraints: Vec::new(),
            domain,
            disjoint_hint: false,
        }
    }

    /// The schema the constraints talk about.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The declared attribute domain.
    pub fn domain(&self) -> &Region {
        &self.domain
    }

    /// Restrict the domain the set is expected to cover.
    pub fn set_domain(&mut self, domain: Region) {
        self.domain = domain;
    }

    /// Add a constraint.
    pub fn push(&mut self, pc: PredicateConstraint) {
        self.constraints.push(pc);
    }

    /// Builder-style [`PcSet::push`].
    pub fn with(mut self, pc: PredicateConstraint) -> Self {
        self.push(pc);
        self
    }

    /// Remove and return the constraint at `index`, shifting the later
    /// ones down — the serving layer's retire path (`crate::Session`
    /// remaps cached cell signatures to the shifted indices). Panics when
    /// out of range. Pairwise disjointness survives removal, so the hint
    /// is kept.
    pub fn remove_constraint(&mut self, index: usize) -> PredicateConstraint {
        self.constraints.remove(index)
    }

    /// Declare that the predicates are pairwise disjoint, enabling the
    /// paper's greedy fast path (§4.2) without the quadratic overlap scan.
    /// Generators that partition the space set this; [`PcSet::verify_disjoint`]
    /// can confirm it.
    pub fn set_disjoint_hint(&mut self, disjoint: bool) {
        self.disjoint_hint = disjoint;
    }

    /// Whether the set is known (hinted or verified) disjoint.
    pub fn disjoint_hint(&self) -> bool {
        self.disjoint_hint
    }

    /// The constraints.
    pub fn constraints(&self) -> &[PredicateConstraint] {
        &self.constraints
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True if the set has no constraints.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Exhaustively check pairwise disjointness of the predicates (their
    /// regions within the domain), updating the hint. Quadratic; intended
    /// for small sets or tests.
    pub fn verify_disjoint(&mut self) -> bool {
        let regions: Vec<Region> = self
            .constraints
            .iter()
            .map(|pc| {
                let mut r = pc.predicate.to_region(&self.schema);
                r.intersect(&self.domain);
                r
            })
            .collect();
        for i in 0..regions.len() {
            for j in i + 1..regions.len() {
                if regions[i].overlaps(&regions[j]) {
                    self.disjoint_hint = false;
                    return false;
                }
            }
        }
        self.disjoint_hint = true;
        true
    }

    /// Closure check (Definition 3.2) restricted to `within`: is every
    /// point of `domain ∩ within` covered by some predicate? Implemented
    /// as unsatisfiability of the all-negated cell.
    pub fn is_closed_within(&self, within: &Region) -> bool {
        self.is_closed_within_with(within, false)
    }

    /// [`PcSet::is_closed_within`] with the parallel witness-search
    /// opt-in: the all-negated cell excludes *every* constraint, which is
    /// the widest satisfiability query the engine issues — exactly where
    /// [`sat::find_witness_with`]'s per-disjunct fan-out pays.
    pub fn is_closed_within_with(&self, within: &Region, parallel: bool) -> bool {
        self.uncovered_witness_with(within, parallel).is_none()
    }

    /// A concrete point of `domain ∩ within` covered by no predicate —
    /// the counterexample behind a failed closure check (`None` means the
    /// region is closed). Callers that cache the witness can later
    /// re-prove *non*-closure of any sub-region containing it without a
    /// SAT call (see [`crate::Session`]).
    pub fn uncovered_witness_with(&self, within: &Region, parallel: bool) -> Option<Vec<f64>> {
        let base = self.domain.intersected(within);
        let negs: Vec<&Predicate> = self.constraints.iter().map(|pc| &pc.predicate).collect();
        sat::find_witness_with(&base, &negs, parallel)
    }

    /// Closure over the whole declared domain.
    pub fn is_closed(&self) -> bool {
        let full = Region::full(&self.schema);
        self.is_closed_within(&full)
    }

    /// Test every constraint against historical data (`R |= S`), returning
    /// all violations — the paper's "efficiently testable on historical
    /// data" property (§1, outcome 1).
    pub fn validate(&self, table: &Table) -> Vec<Violation> {
        self.constraints
            .iter()
            .enumerate()
            .filter_map(|(index, pc)| {
                pc.check(table).err().map(|violation| Violation {
                    constraint: index,
                    violation,
                })
            })
            .collect()
    }
}

/// A constraint index paired with how it failed.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Index into [`PcSet::constraints`].
    pub constraint: usize,
    /// The failure detail.
    pub violation: ConstraintViolation,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "constraint #{}: {}", self.constraint, self.violation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{FrequencyConstraint, ValueConstraint};
    use pc_predicate::{Atom, AttrType, Interval, Value};

    fn schema() -> Schema {
        Schema::new(vec![("branch", AttrType::Cat), ("price", AttrType::Float)])
    }

    fn pc(branch: u32, price_hi: f64, freq_hi: u64) -> PredicateConstraint {
        PredicateConstraint::new(
            Predicate::atom(Atom::eq(0, f64::from(branch))),
            ValueConstraint::none().with(1, Interval::closed(0.0, price_hi)),
            FrequencyConstraint::at_most(freq_hi),
        )
    }

    #[test]
    fn closure_requires_covering_domain() {
        let s = schema();
        let mut set = PcSet::new(s.clone())
            .with(pc(0, 149.99, 5))
            .with(pc(1, 100.0, 10));
        // domain: branch ∈ {0, 1} → covered, closed
        let mut domain = Region::full(&s);
        domain.set_interval(0, Interval::closed(0.0, 1.0));
        set.set_domain(domain.clone());
        assert!(set.is_closed());

        // widen domain to branch ∈ {0, 1, 2} → branch 2 uncovered
        let mut wide = Region::full(&s);
        wide.set_interval(0, Interval::closed(0.0, 2.0));
        set.set_domain(wide);
        assert!(!set.is_closed());
    }

    #[test]
    fn closure_within_query_region() {
        let s = schema();
        let mut set = PcSet::new(s.clone()).with(pc(0, 149.99, 5));
        let mut domain = Region::full(&s);
        domain.set_interval(0, Interval::closed(0.0, 1.0));
        set.set_domain(domain);
        // not closed overall (branch 1 uncovered) …
        assert!(!set.is_closed());
        // … but closed within a query touching only branch 0
        let mut q = Region::full(&s);
        q.set_interval(0, Interval::point(0.0));
        assert!(set.is_closed_within(&q));
    }

    #[test]
    fn verify_disjoint() {
        let s = schema();
        let mut set = PcSet::new(s.clone())
            .with(pc(0, 1.0, 1))
            .with(pc(1, 1.0, 1));
        assert!(set.verify_disjoint());
        let overlapping = PredicateConstraint::new(
            Predicate::always(),
            ValueConstraint::none(),
            FrequencyConstraint::at_most(100),
        );
        set.push(overlapping);
        assert!(!set.verify_disjoint());
        assert!(!set.disjoint_hint());
    }

    #[test]
    fn validate_reports_all_violations() {
        let s = schema();
        let set = PcSet::new(s.clone())
            .with(pc(0, 10.0, 1))
            .with(pc(1, 10.0, 5));
        let mut t = Table::new(s);
        // two branch-0 rows (violates freq ≤ 1), one with price 50
        // (violates the value range)
        t.push_row(vec![Value::Cat(0), Value::Float(5.0)]);
        t.push_row(vec![Value::Cat(0), Value::Float(50.0)]);
        t.push_row(vec![Value::Cat(1), Value::Float(3.0)]);
        let violations = set.validate(&t);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].constraint, 0);
        // value violation reported before frequency (fail-fast per row scan)
        assert!(matches!(
            violations[0].violation,
            ConstraintViolation::ValueOutOfRange { row: 1 }
        ));
    }

    #[test]
    fn validate_clean_table() {
        let s = schema();
        let set = PcSet::new(s.clone()).with(pc(0, 10.0, 3));
        let mut t = Table::new(s);
        t.push_row(vec![Value::Cat(0), Value::Float(5.0)]);
        assert!(set.validate(&t).is_empty());
    }
}
