//! Synthetic dataset twins, missing-data injectors, query workloads, and
//! PC generators for the experiment harness.
//!
//! The paper evaluates on three public datasets (Intel Wireless \[25\],
//! Airbnb NYC \[2\], Border Crossing \[23\]) that are not bundled here; each
//! generator reproduces the schema, scale knobs, skew, and — critically —
//! the *correlation between partition attributes and the aggregate
//! attribute* that drives every accuracy result. The missing-data
//! injectors reproduce the paper's correlated removal ("removing those
//! rows with maximum values of the light attribute"), and the PC
//! generators implement Corr-PC, Rand-PC, and Overlapping-PC (§6.1.4)
//! plus the Fig 6 noise injection.

#![warn(missing_docs)]

pub mod airbnb;
pub mod border;
pub mod intel;
pub mod missing;
pub mod pcgen;
pub mod queries;
pub mod synth_join;

pub use airbnb::AirbnbConfig;
pub use border::BorderConfig;
pub use intel::IntelConfig;
pub use missing::{remove_random_fraction, remove_top_fraction};
pub use pcgen::{corr_pc, overlapping_pc, perturb_values, rand_pc};
pub use queries::QueryGenerator;
