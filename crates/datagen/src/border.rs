//! Synthetic twin of the BTS Border Crossing dataset \[23\]: monthly
//! inbound-crossing summaries per port and vehicle measure. Counts are
//! heavy-tailed — a handful of ports (San Ysidro, El Paso, …) dwarf the
//! rest — and seasonal, so `port` and `date` correlate with `value`.

use pc_predicate::{AttrType, Schema, Value};
use pc_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator knobs for the Border-Crossing-like dataset.
#[derive(Debug, Clone, Copy)]
pub struct BorderConfig {
    /// Total rows.
    pub rows: usize,
    /// Number of distinct ports (the real dataset has ~115).
    pub ports: u32,
    /// Number of months of data.
    pub months: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BorderConfig {
    fn default() -> Self {
        BorderConfig {
            rows: 100_000,
            ports: 100,
            months: 48,
            seed: 0xB0BDE5,
        }
    }
}

/// Attribute indices of the generated schema.
pub mod cols {
    /// `port` (Cat)
    pub const PORT: usize = 0;
    /// `date` (Int — month index)
    pub const DATE: usize = 1;
    /// `measure` (Cat — vehicle type)
    pub const MEASURE: usize = 2;
    /// `value` (Int — crossings) — the aggregate attribute
    pub const VALUE: usize = 3;
}

/// The Border-Crossing-like schema.
pub fn schema() -> Schema {
    Schema::new(vec![
        ("port", AttrType::Cat),
        ("date", AttrType::Int),
        ("measure", AttrType::Cat),
        ("value", AttrType::Int),
    ])
}

/// Vehicle measures (matching the real dataset's categories).
pub const MEASURES: [&str; 6] = [
    "Personal Vehicles",
    "Personal Vehicle Passengers",
    "Pedestrians",
    "Trucks",
    "Buses",
    "Trains",
];

/// Generate the table.
pub fn generate(config: BorderConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut table = Table::new(schema());
    // intern labels up front so codes are stable
    for p in 0..config.ports {
        table.intern(cols::PORT, &format!("Port{p:03}"));
    }
    for m in MEASURES {
        table.intern(cols::MEASURE, m);
    }
    // Zipf-like port scales: port p gets scale ∝ 1/(p+1)
    let port_scale: Vec<f64> = (0..config.ports)
        .map(|p| 200_000.0 / f64::from(p + 1))
        .collect();
    let measure_scale = [1.0, 1.8, 0.5, 0.25, 0.03, 0.005];
    for _ in 0..config.rows {
        let port = rng.gen_range(0..config.ports);
        let date = rng.gen_range(0..config.months);
        let measure = rng.gen_range(0..MEASURES.len() as u32);
        // summer seasonality + noise
        let season = 1.0 + 0.35 * (std::f64::consts::TAU * f64::from(date % 12) / 12.0).sin();
        let lambda = port_scale[port as usize] * measure_scale[measure as usize] * season;
        let value = (lambda * (0.5 + rng.gen::<f64>())).round().max(0.0) as i64;
        table.push_row(vec![
            Value::Cat(port),
            Value::Int(i64::from(date)),
            Value::Cat(measure),
            Value::Int(value),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{Atom, Predicate};
    use pc_storage::{evaluate, AggKind, AggQuery};

    fn small() -> Table {
        generate(BorderConfig {
            rows: 20_000,
            seed: 11,
            ..BorderConfig::default()
        })
    }

    #[test]
    fn shape_and_dictionaries() {
        let t = small();
        assert_eq!(t.len(), 20_000);
        assert_eq!(t.dictionary(cols::PORT).unwrap().len(), 100);
        assert_eq!(
            t.dictionary(cols::MEASURE).unwrap().label(3),
            Some("Trucks")
        );
    }

    #[test]
    fn port_values_are_heavy_tailed() {
        let t = small();
        let top = evaluate(
            &t,
            &AggQuery::new(
                AggKind::Sum,
                cols::VALUE,
                Predicate::atom(Atom::eq(cols::PORT, 0.0)),
            ),
        )
        .value();
        let mid = evaluate(
            &t,
            &AggQuery::new(
                AggKind::Sum,
                cols::VALUE,
                Predicate::atom(Atom::eq(cols::PORT, 50.0)),
            ),
        )
        .value();
        assert!(top > 20.0 * mid, "zipf: port0 {top} vs port50 {mid}");
    }

    #[test]
    fn values_nonnegative() {
        let t = small();
        let (lo, _) = t.attr_range(cols::VALUE).unwrap();
        assert!(lo >= 0.0);
    }

    #[test]
    fn seasonality_visible() {
        let t = generate(BorderConfig {
            rows: 60_000,
            seed: 13,
            ..BorderConfig::default()
        });
        // month 3 (peak of sin at ~month 3) vs month 9 (trough)
        let peak = evaluate(
            &t,
            &AggQuery::new(
                AggKind::Avg,
                cols::VALUE,
                Predicate::atom(Atom::eq(cols::DATE, 3.0)),
            ),
        )
        .value();
        let trough = evaluate(
            &t,
            &AggQuery::new(
                AggKind::Avg,
                cols::VALUE,
                Predicate::atom(Atom::eq(cols::DATE, 9.0)),
            ),
        )
        .value();
        assert!(peak > trough, "seasonality: {peak} vs {trough}");
    }
}
