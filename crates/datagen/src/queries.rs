//! Random aggregate-query workloads: range predicates of random position
//! and width over chosen attributes, as in "1000 randomly chosen
//! predicates" (§6, Table 2).

use pc_predicate::{Atom, Predicate};
use pc_storage::{AggKind, AggQuery, Table};
use rand::Rng;

/// Generates random range-predicate aggregate queries over a table's
/// observed attribute domains.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    pred_attrs: Vec<usize>,
    domains: Vec<(f64, f64)>,
    /// Predicate width range as a fraction of each attribute's domain.
    pub width_range: (f64, f64),
}

impl QueryGenerator {
    /// Build from a table's value ranges on the given predicate
    /// attributes.
    pub fn from_table(table: &Table, pred_attrs: &[usize]) -> Self {
        let domains = pred_attrs
            .iter()
            .map(|&a| table.attr_range(a).unwrap_or((0.0, 1.0)))
            .collect();
        QueryGenerator {
            pred_attrs: pred_attrs.to_vec(),
            domains,
            width_range: (0.1, 0.5),
        }
    }

    /// One random query with the given aggregate.
    pub fn gen_query<R: Rng + ?Sized>(
        &self,
        agg: AggKind,
        agg_attr: usize,
        rng: &mut R,
    ) -> AggQuery {
        let mut pred = Predicate::always();
        for (&attr, &(dlo, dhi)) in self.pred_attrs.iter().zip(&self.domains) {
            let span = (dhi - dlo).max(f64::MIN_POSITIVE);
            let frac = rng.gen_range(self.width_range.0..=self.width_range.1);
            let w = span * frac;
            let lo = dlo + rng.gen_range(0.0..=(span - w).max(0.0));
            pred = pred.and(Atom::between(attr, lo, lo + w));
        }
        AggQuery::new(agg, agg_attr, pred)
    }

    /// A batch of `n` random queries.
    pub fn gen_workload<R: Rng + ?Sized>(
        &self,
        agg: AggKind,
        agg_attr: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<AggQuery> {
        (0..n).map(|_| self.gen_query(agg, agg_attr, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intel::{self, cols, IntelConfig};
    use pc_storage::{evaluate, AggResult};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn queries_hit_data() {
        let t = intel::generate(IntelConfig {
            rows: 3_000,
            seed: 2,
            ..IntelConfig::default()
        });
        let qg = QueryGenerator::from_table(&t, &[cols::DEVICE, cols::EPOCH]);
        let mut rng = StdRng::seed_from_u64(4);
        let queries = qg.gen_workload(AggKind::Count, cols::LIGHT, 50, &mut rng);
        assert_eq!(queries.len(), 50);
        let nonempty = queries
            .iter()
            .filter(|q| match evaluate(&t, q) {
                AggResult::Value(v) => v > 0.0,
                AggResult::Empty => false,
            })
            .count();
        assert!(
            nonempty > 40,
            "most random queries should match rows: {nonempty}/50"
        );
    }

    #[test]
    fn widths_respect_range() {
        let t = intel::generate(IntelConfig {
            rows: 500,
            seed: 2,
            ..IntelConfig::default()
        });
        let mut qg = QueryGenerator::from_table(&t, &[cols::EPOCH]);
        qg.width_range = (0.2, 0.2);
        let mut rng = StdRng::seed_from_u64(5);
        let q = qg.gen_query(AggKind::Sum, cols::LIGHT, &mut rng);
        let iv = q.predicate.interval_for(cols::EPOCH);
        let (dlo, dhi) = t.attr_range(cols::EPOCH).unwrap();
        let frac = (iv.hi - iv.lo) / (dhi - dlo);
        assert!((frac - 0.2).abs() < 0.01, "width fraction {frac}");
    }
}
