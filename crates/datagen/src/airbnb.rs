//! Synthetic twin of the Airbnb NYC 2019 listings dataset \[2\]:
//! latitude/longitude clustered by borough, log-normal prices whose scale
//! depends on the neighborhood, room type, and review counts.
//!
//! The paper calls this dataset "significantly skewed": a few Manhattan
//! listings carry extreme prices. That skew (and the spatial correlation
//! of price with lat/lon) is what Fig 10 exercises.

use pc_predicate::{AttrType, Schema, Value};
use pc_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator knobs for the Airbnb-like dataset.
#[derive(Debug, Clone, Copy)]
pub struct AirbnbConfig {
    /// Total listings.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AirbnbConfig {
    fn default() -> Self {
        AirbnbConfig {
            rows: 50_000,
            seed: 0xA1B2B,
        }
    }
}

/// Attribute indices of the generated schema.
pub mod cols {
    /// `latitude` (Float)
    pub const LATITUDE: usize = 0;
    /// `longitude` (Float)
    pub const LONGITUDE: usize = 1;
    /// `room_type` (Cat: entire home / private room / shared room)
    pub const ROOM_TYPE: usize = 2;
    /// `price` (Float, $/night) — the aggregate attribute
    pub const PRICE: usize = 3;
    /// `reviews` (Int)
    pub const REVIEWS: usize = 4;
}

/// The Airbnb-like schema.
pub fn schema() -> Schema {
    Schema::new(vec![
        ("latitude", AttrType::Float),
        ("longitude", AttrType::Float),
        ("room_type", AttrType::Cat),
        ("price", AttrType::Float),
        ("reviews", AttrType::Int),
    ])
}

/// Borough-like centers: (lat, lon, price scale, weight).
const CENTERS: [(f64, f64, f64, f64); 5] = [
    (40.78, -73.97, 220.0, 0.30), // Manhattan — expensive
    (40.68, -73.95, 110.0, 0.35), // Brooklyn
    (40.75, -73.87, 80.0, 0.18),  // Queens
    (40.85, -73.88, 65.0, 0.10),  // Bronx
    (40.58, -74.10, 70.0, 0.07),  // Staten Island
];

/// Generate the table.
pub fn generate(config: AirbnbConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut table = Table::new(schema());
    for _ in 0..config.rows {
        // pick a borough by weight
        let mut t = rng.gen::<f64>();
        let mut center = CENTERS[0];
        for c in CENTERS {
            if t < c.3 {
                center = c;
                break;
            }
            t -= c.3;
        }
        let (clat, clon, scale, _) = center;
        let lat = clat + 0.04 * gauss(&mut rng);
        let lon = clon + 0.04 * gauss(&mut rng);
        let room = match rng.gen_range(0..10) {
            0..=4 => 0u32, // entire home
            5..=8 => 1,    // private room
            _ => 2,        // shared room
        };
        let room_factor = match room {
            0 => 1.0,
            1 => 0.55,
            _ => 0.35,
        };
        // log-normal price with borough scale; heavy right tail
        let price = (scale * room_factor * (0.6 * gauss(&mut rng)).exp()).clamp(10.0, 10_000.0);
        let reviews = (50.0 * rng.gen::<f64>().powi(2)) as i64;
        table.push_row(vec![
            Value::Float(lat),
            Value::Float(lon),
            Value::Cat(room),
            Value::Float(price),
            Value::Int(reviews),
        ]);
    }
    table
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{Atom, Predicate};
    use pc_storage::{evaluate, AggKind, AggQuery};

    fn small() -> Table {
        generate(AirbnbConfig {
            rows: 20_000,
            seed: 3,
        })
    }

    #[test]
    fn shape() {
        let t = small();
        assert_eq!(t.len(), 20_000);
        let (plo, phi) = t.attr_range(cols::PRICE).unwrap();
        assert!(plo >= 10.0 && phi <= 10_000.0);
    }

    #[test]
    fn price_is_skewed() {
        let t = small();
        let avg = evaluate(
            &t,
            &AggQuery::new(AggKind::Avg, cols::PRICE, Predicate::always()),
        )
        .value();
        let max = evaluate(
            &t,
            &AggQuery::new(AggKind::Max, cols::PRICE, Predicate::always()),
        )
        .value();
        assert!(max > 6.0 * avg, "skew: max {max} vs avg {avg}");
    }

    #[test]
    fn manhattan_pricier_than_bronx() {
        let t = small();
        let manhattan = Predicate::always()
            .and(Atom::between(cols::LATITUDE, 40.74, 40.82))
            .and(Atom::between(cols::LONGITUDE, -74.01, -73.93));
        let bronx = Predicate::always()
            .and(Atom::between(cols::LATITUDE, 40.81, 40.89))
            .and(Atom::between(cols::LONGITUDE, -73.92, -73.84));
        let m = evaluate(&t, &AggQuery::new(AggKind::Avg, cols::PRICE, manhattan)).value();
        let b = evaluate(&t, &AggQuery::new(AggKind::Avg, cols::PRICE, bronx)).value();
        assert!(m > 1.5 * b, "manhattan {m} vs bronx {b}");
    }

    #[test]
    fn room_types_present() {
        let t = small();
        for room in 0..3 {
            let q = AggQuery::count(Predicate::atom(Atom::eq(cols::ROOM_TYPE, f64::from(room))));
            assert!(evaluate(&t, &q).value() > 100.0);
        }
    }
}
