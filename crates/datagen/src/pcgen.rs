//! PC generators (§6.1.4): Corr-PC, Rand-PC, Overlapping-PC, and the
//! Fig 6 noise injection.
//!
//! All generators summarize the *actual* missing partition — the paper's
//! protocol gives every framework true information about the missing data
//! in `O(n)` space and measures how useful that summary is for bounding.

use pc_core::{FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint};
use pc_predicate::{Atom, Interval, Predicate, Region};
use pc_storage::{GridPartitioner, Table};
use rand::Rng;

/// Summarize the rows at `rows` (indices into `missing`) into a value
/// constraint covering every attribute: observed min/max per attribute.
fn summarize_values(missing: &Table, rows: &[usize]) -> ValueConstraint {
    let width = missing.schema().width();
    let mut vc = ValueConstraint::none();
    if rows.is_empty() {
        return vc;
    }
    for attr in 0..width {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &r in rows {
            let v = missing.encoded(r, attr);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        vc = vc.with(attr, Interval::closed(lo, hi));
    }
    vc
}

/// **Corr-PC**: an equi-cardinality grid over the given (correlated)
/// attributes with `n` cells total; each cell becomes a PC whose frequency
/// is the exact count and whose value ranges are the observed per-attribute
/// min/max. The grid's outer buckets are unbounded, so the set is closed
/// over the full domain, and the predicates are disjoint (greedy fast path).
pub fn corr_pc(missing: &Table, attrs: &[usize], n: usize) -> PcSet {
    assert!(!attrs.is_empty(), "need at least one partition attribute");
    let per_dim = (n as f64).powf(1.0 / attrs.len() as f64).round().max(1.0) as usize;
    let buckets = vec![per_dim; attrs.len()];
    let grid = GridPartitioner::from_table(missing, attrs, &buckets);
    let cells = grid.assign(missing);
    let mut set = PcSet::new(missing.schema().clone());
    for (ci, rows) in cells.iter().enumerate() {
        let predicate = grid.cell_predicate(ci);
        let values = summarize_values(missing, rows);
        set.push(PredicateConstraint::new(
            predicate,
            values,
            FrequencyConstraint::exactly(rows.len() as u64),
        ));
    }
    set.set_disjoint_hint(true);
    set
}

/// The grid row-partition matching [`corr_pc`]'s cells — used to stratify
/// sampling baselines identically to the PC partitions (§6.1.1).
pub fn corr_partition(missing: &Table, attrs: &[usize], n: usize) -> Vec<Vec<usize>> {
    let per_dim = (n as f64).powf(1.0 / attrs.len() as f64).round().max(1.0) as usize;
    let buckets = vec![per_dim; attrs.len()];
    GridPartitioner::from_table(missing, attrs, &buckets).assign(missing)
}

/// **Rand-PC**: random overlapping boxes over the partition attributes
/// (true counts and value ranges within each box), plus a coarse covering
/// grid so the set stays closed ("we take extra care to ensure they
/// adequately cover the space").
pub fn rand_pc<R: Rng + ?Sized>(missing: &Table, attrs: &[usize], n: usize, rng: &mut R) -> PcSet {
    // spend ~1/4 of the budget on a coarse cover, the rest on random boxes
    let cover_cells = (n / 4).max(1);
    let mut set = corr_pc(missing, attrs, cover_cells);
    set.set_disjoint_hint(false); // random boxes overlap the grid

    let domains: Vec<(f64, f64)> = attrs
        .iter()
        .map(|&a| missing.attr_range(a).unwrap_or((0.0, 1.0)))
        .collect();
    let width = missing.schema().width();
    // the grid may round to a different cell count; aim for n total
    let remaining = n.saturating_sub(set.len());
    for _ in 0..remaining {
        let mut pred = Predicate::always();
        for (&attr, &(dlo, dhi)) in attrs.iter().zip(&domains) {
            let span = (dhi - dlo).max(f64::MIN_POSITIVE);
            let w = span * rng.gen_range(0.05..0.5);
            let lo = dlo + rng.gen_range(0.0..(span - w).max(f64::MIN_POSITIVE));
            pred = pred.and(Atom::between(attr, lo, lo + w));
        }
        // exact stats inside the box
        let mut rows = Vec::new();
        let mut enc = vec![0.0; width];
        for r in 0..missing.len() {
            missing.encode_row_into(r, &mut enc);
            if pred.eval(&enc) {
                rows.push(r);
            }
        }
        let values = summarize_values(missing, &rows);
        set.push(PredicateConstraint::new(
            pred,
            values,
            FrequencyConstraint::exactly(rows.len() as u64),
        ));
    }
    set
}

/// **Overlapping-PC**: the Corr-PC grid with every cell's box widened by
/// `expand` (fraction of its span per side), so neighbouring constraints
/// overlap. Statistics stay exact for the *widened* boxes. This is the
/// redundancy that makes the framework robust to noise in Fig 6: when one
/// constraint is corrupted, an overlapping neighbour still clamps the
/// range.
pub fn overlapping_pc(missing: &Table, attrs: &[usize], n: usize, expand: f64) -> PcSet {
    let per_dim = (n as f64).powf(1.0 / attrs.len() as f64).round().max(1.0) as usize;
    let buckets = vec![per_dim; attrs.len()];
    let grid = GridPartitioner::from_table(missing, attrs, &buckets);
    let base_cells = grid.assign(missing);
    let mut set = PcSet::new(missing.schema().clone());
    let width = missing.schema().width();
    for ci in 0..base_cells.len() {
        let tight = grid.cell_predicate(ci);
        // widen each finite endpoint by `expand` of the cell's span
        let mut pred = Predicate::always();
        for atom in tight.atoms() {
            let iv = atom.interval;
            let span = if iv.is_bounded() { iv.hi - iv.lo } else { 0.0 };
            let pad = span * expand;
            let lo = if iv.lo.is_finite() {
                iv.lo - pad
            } else {
                iv.lo
            };
            let hi = if iv.hi.is_finite() {
                iv.hi + pad
            } else {
                iv.hi
            };
            pred = pred.and(Atom::new(atom.attr, Interval::new(lo, false, hi, true)));
        }
        let mut rows = Vec::new();
        let mut enc = vec![0.0; width];
        for r in 0..missing.len() {
            missing.encode_row_into(r, &mut enc);
            if pred.eval(&enc) {
                rows.push(r);
            }
        }
        let values = summarize_values(missing, &rows);
        set.push(PredicateConstraint::new(
            pred,
            values,
            FrequencyConstraint::between(0, rows.len() as u64),
        ));
    }
    set
}

/// Fig 6 noise injection: add independent `N(0, σ_attr²)` noise to every
/// value-range endpoint (σ given per attribute). Inverted ranges are
/// re-ordered so constraints stay well-formed; frequencies are untouched.
/// The result may no longer hold on the data — that is the point.
pub fn perturb_values<R: Rng + ?Sized>(set: &PcSet, sigmas: &[f64], rng: &mut R) -> PcSet {
    let mut out = PcSet::new(set.schema().clone());
    out.set_domain(set.domain().clone());
    out.set_disjoint_hint(set.disjoint_hint());
    for pc in set.constraints() {
        let mut vc = ValueConstraint::none();
        for (attr, iv) in pc.values.ranges() {
            let sigma = sigmas.get(*attr).copied().unwrap_or(0.0);
            let mut lo = iv.lo + sigma * gauss(rng);
            let mut hi = iv.hi + sigma * gauss(rng);
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            vc = vc.with(*attr, Interval::closed(lo, hi));
        }
        out.push(PredicateConstraint::new(
            pc.predicate.clone(),
            vc,
            pc.frequency,
        ));
    }
    out
}

/// Fig 6 noise injection, *relative* flavour: each endpoint of the listed
/// attributes' value ranges receives `N(0, (k·w/4)²)` noise where `w` is
/// that range's own width (σ ≈ w/4 for a roughly uniform spread); other
/// attributes keep their exact ranges. Noise scaled to each constraint's
/// spread perturbs tight and loose constraints proportionally, which is
/// what produces the graded failure curves of Fig 6. (Noising the
/// partition attributes' ranges instead merely contradicts the predicates
/// themselves and collapses every query to `Infeasible` — an
/// all-or-nothing cliff with no information in it.)
pub fn perturb_values_relative<R: Rng + ?Sized>(
    set: &PcSet,
    attrs: &[usize],
    k: f64,
    rng: &mut R,
) -> PcSet {
    let mut out = PcSet::new(set.schema().clone());
    out.set_domain(set.domain().clone());
    out.set_disjoint_hint(set.disjoint_hint());
    for pc in set.constraints() {
        let mut vc = ValueConstraint::none();
        for (attr, iv) in pc.values.ranges() {
            if !attrs.contains(attr) {
                vc = vc.with(*attr, *iv);
                continue;
            }
            let width = if iv.is_bounded() { iv.hi - iv.lo } else { 0.0 };
            let sigma = k * width;
            let mut lo = iv.lo + sigma * gauss(rng);
            let mut hi = iv.hi + sigma * gauss(rng);
            if lo > hi {
                std::mem::swap(&mut lo, &mut hi);
            }
            vc = vc.with(*attr, Interval::closed(lo, hi));
        }
        out.push(PredicateConstraint::new(
            pc.predicate.clone(),
            vc,
            pc.frequency,
        ));
    }
    out
}

/// Per-attribute standard deviations of a table — the noise scale used by
/// the Fig 6 experiment (`k` SD noise = `k × attr_sd`).
pub fn attr_sigmas(table: &Table) -> Vec<f64> {
    let width = table.schema().width();
    let n = table.len().max(1) as f64;
    (0..width)
        .map(|a| {
            let mean: f64 = (0..table.len()).map(|r| table.encoded(r, a)).sum::<f64>() / n;
            let var: f64 = (0..table.len())
                .map(|r| (table.encoded(r, a) - mean).powi(2))
                .sum::<f64>()
                / n;
            var.sqrt()
        })
        .collect()
}

fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Restrict a PC set's domain to the bounding box of a table (useful when
/// the missing partition is known to live inside the observed attribute
/// ranges).
pub fn domain_from_table(set: &mut PcSet, table: &Table) {
    let mut domain = Region::full(set.schema());
    for attr in 0..set.schema().width() {
        if let Some((lo, hi)) = table.attr_range(attr) {
            domain.set_interval(attr, Interval::closed(lo, hi));
        }
    }
    set.set_domain(domain);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intel::{self, cols, IntelConfig};
    use crate::missing::remove_top_fraction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn missing_table() -> Table {
        let t = intel::generate(IntelConfig {
            rows: 5_000,
            seed: 21,
            ..IntelConfig::default()
        });
        let (missing, _) = remove_top_fraction(&t, cols::LIGHT, 0.3);
        missing
    }

    #[test]
    fn corr_pc_validates_and_closed() {
        let missing = missing_table();
        let set = corr_pc(&missing, &[cols::DEVICE, cols::EPOCH], 100);
        assert!(
            set.len() >= 81 && set.len() <= 121,
            "≈100 cells, got {}",
            set.len()
        );
        assert!(set.validate(&missing).is_empty(), "constraints must hold");
        assert!(set.is_closed(), "grid covers the full domain");
        assert!(set.disjoint_hint());
    }

    #[test]
    fn corr_partition_matches_cells() {
        let missing = missing_table();
        let strata = corr_partition(&missing, &[cols::DEVICE, cols::EPOCH], 100);
        let total: usize = strata.iter().map(Vec::len).sum();
        assert_eq!(total, missing.len());
    }

    #[test]
    fn rand_pc_validates_and_closed() {
        let missing = missing_table();
        let mut rng = StdRng::seed_from_u64(9);
        let set = rand_pc(&missing, &[cols::DEVICE, cols::EPOCH], 60, &mut rng);
        assert_eq!(set.len(), 60);
        assert!(set.validate(&missing).is_empty());
        assert!(set.is_closed(), "cover grid keeps the set closed");
        assert!(!set.disjoint_hint());
    }

    #[test]
    fn overlapping_pc_validates_and_overlaps() {
        let missing = missing_table();
        let mut set = overlapping_pc(&missing, &[cols::EPOCH], 10, 0.3);
        assert!(set.validate(&missing).is_empty());
        assert!(!set.verify_disjoint(), "cells must overlap after widening");
        assert!(set.is_closed());
    }

    #[test]
    fn perturbation_can_break_constraints() {
        let missing = missing_table();
        let set = corr_pc(&missing, &[cols::DEVICE, cols::EPOCH], 64);
        let sigmas: Vec<f64> = attr_sigmas(&missing).iter().map(|s| 2.0 * s).collect();
        let mut rng = StdRng::seed_from_u64(17);
        let noisy = perturb_values(&set, &sigmas, &mut rng);
        assert_eq!(noisy.len(), set.len());
        assert!(
            !noisy.validate(&missing).is_empty(),
            "2-SD noise should violate at least one constraint"
        );
    }

    #[test]
    fn zero_noise_is_identity_for_validation() {
        let missing = missing_table();
        let set = corr_pc(&missing, &[cols::DEVICE], 16);
        let mut rng = StdRng::seed_from_u64(3);
        let same = perturb_values(&set, &vec![0.0; missing.schema().width()], &mut rng);
        assert!(same.validate(&missing).is_empty());
    }
}
