//! Randomly populated edge tables for the §6.6.3 join experiments:
//! triangle counting on a directed graph and the acyclic chain join.

use pc_predicate::{AttrType, Schema, Value};
use pc_storage::Table;
use rand::Rng;

/// A random two-column edge table with `rows` *distinct* edges over a node
/// domain of `nodes` ids. Set semantics matter: the AGM / fractional-edge-
/// cover bound assumes relations are sets, and duplicate edges would
/// multiply join results past it.
///
/// # Panics
/// Panics if `rows > nodes²` (not enough distinct edges exist).
pub fn random_edges<R: Rng + ?Sized>(
    rows: usize,
    nodes: i64,
    attr_a: &str,
    attr_b: &str,
    rng: &mut R,
) -> Table {
    assert!(nodes >= 1);
    assert!(
        (rows as i64) <= nodes.saturating_mul(nodes),
        "cannot draw {rows} distinct edges from {nodes} nodes"
    );
    let schema = Schema::new(vec![
        (attr_a.to_string(), AttrType::Int),
        (attr_b.to_string(), AttrType::Int),
    ]);
    let mut t = Table::new(schema);
    let mut seen = std::collections::HashSet::with_capacity(rows);
    while seen.len() < rows {
        let e = (rng.gen_range(0..nodes), rng.gen_range(0..nodes));
        if seen.insert(e) {
            t.push_row(vec![Value::Int(e.0), Value::Int(e.1)]);
        }
    }
    t
}

/// The three edge tables of the triangle query `R(a,b) ⋈ S(b,c) ⋈ T(c,a)`,
/// each with `rows` random edges. Node domain `√rows`-ish keeps join sizes
/// non-trivial, mirroring the paper's randomly populated tables.
pub fn triangle_tables<R: Rng + ?Sized>(rows: usize, rng: &mut R) -> [Table; 3] {
    // ~50% edge density: dense enough for triangles, sparse enough to
    // stay clear of the degenerate complete graph
    let nodes = ((2.0 * rows as f64).sqrt().ceil() as i64).max(2);
    [
        random_edges(rows, nodes, "a", "b", rng),
        random_edges(rows, nodes, "b", "c", rng),
        random_edges(rows, nodes, "c", "a", rng),
    ]
}

/// The `k` tables of the chain `R1(x1,x2) ⋈ R2(x2,x3) ⋈ … ⋈ Rk(xk,xk+1)`,
/// each with `rows` random edges.
pub fn chain_tables<R: Rng + ?Sized>(k: usize, rows: usize, rng: &mut R) -> Vec<Table> {
    let nodes = ((2.0 * rows as f64).sqrt().ceil() as i64).max(2);
    (1..=k)
        .map(|i| random_edges(rows, nodes, &format!("x{i}"), &format!("x{}", i + 1), rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_storage::natural_join;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn edge_tables_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = random_edges(100, 10, "a", "b", &mut rng);
        assert_eq!(t.len(), 100);
        let (lo, hi) = t.attr_range(0).unwrap();
        assert!(lo >= 0.0 && hi <= 9.0);
    }

    #[test]
    fn triangle_ground_truth_below_agm() {
        let mut rng = StdRng::seed_from_u64(2);
        let [r, s, t] = triangle_tables(100, &mut rng);
        let rs = natural_join(&r, &s);
        let rst = natural_join(&rs, &t);
        let agm = (100.0_f64).powf(1.5);
        assert!(
            (rst.len() as f64) <= agm,
            "true triangles {} must respect the AGM bound {agm}",
            rst.len()
        );
    }

    #[test]
    fn chain_tables_schemas_connect() {
        let mut rng = StdRng::seed_from_u64(3);
        let tables = chain_tables(5, 50, &mut rng);
        assert_eq!(tables.len(), 5);
        for w in tables.windows(2) {
            let shared = w[0]
                .schema()
                .iter()
                .filter(|(_, name, _)| w[1].schema().index_of(name).is_some())
                .count();
            assert_eq!(shared, 1, "adjacent chain tables share exactly one attr");
        }
        // the chain actually joins
        let mut acc = tables[0].clone();
        for t in &tables[1..] {
            acc = natural_join(&acc, t);
        }
        // join size is data-dependent; just ensure the pipeline ran
        let _ = acc.len();
    }
}
