//! Missing-data injectors: split a ground-truth table into a missing
//! partition `R?` and a certain partition `R*` (§3's formal setting).
//!
//! The paper's headline removal is *correlated*: "Missing rows are
//! generated from the dataset in a correlated way — removing those rows
//! with maximum values of the light attribute." That is
//! [`remove_top_fraction`]; [`remove_random_fraction`] is the uncorrelated
//! control.

use pc_storage::Table;
use rand::seq::SliceRandom;
use rand::Rng;

/// Remove the fraction `frac` of rows with the **largest** values of
/// `attr`. Returns `(missing, present)`.
///
/// # Panics
/// Panics if `frac` is outside `[0, 1]`.
pub fn remove_top_fraction(table: &Table, attr: usize, frac: f64) -> (Table, Table) {
    assert!((0.0..=1.0).contains(&frac), "fraction out of range: {frac}");
    let n = table.len();
    let k = ((n as f64) * frac).round() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        table
            .encoded(b, attr)
            .partial_cmp(&table.encoded(a, attr))
            .expect("stored values are never NaN")
    });
    let missing: Vec<usize> = order[..k.min(n)].to_vec();
    table.split_rows(&missing)
}

/// Remove a uniformly random fraction of rows. Returns
/// `(missing, present)`.
pub fn remove_random_fraction<R: Rng + ?Sized>(
    table: &Table,
    frac: f64,
    rng: &mut R,
) -> (Table, Table) {
    assert!((0.0..=1.0).contains(&frac), "fraction out of range: {frac}");
    let n = table.len();
    let k = ((n as f64) * frac).round() as usize;
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(k.min(n));
    table.split_rows(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{AttrType, Schema, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![("v", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..n {
            t.push_row(vec![Value::Float(i as f64)]);
        }
        t
    }

    #[test]
    fn top_fraction_takes_largest() {
        let t = table(100);
        let (missing, present) = remove_top_fraction(&t, 0, 0.2);
        assert_eq!(missing.len(), 20);
        assert_eq!(present.len(), 80);
        let (mlo, _) = missing.attr_range(0).unwrap();
        let (_, phi) = present.attr_range(0).unwrap();
        assert_eq!(mlo, 80.0);
        assert_eq!(phi, 79.0);
    }

    #[test]
    fn random_fraction_sizes() {
        let t = table(1000);
        let mut rng = StdRng::seed_from_u64(1);
        let (missing, present) = remove_random_fraction(&t, 0.3, &mut rng);
        assert_eq!(missing.len(), 300);
        assert_eq!(present.len(), 700);
    }

    #[test]
    fn zero_and_full_fractions() {
        let t = table(10);
        let (m, p) = remove_top_fraction(&t, 0, 0.0);
        assert_eq!((m.len(), p.len()), (0, 10));
        let (m, p) = remove_top_fraction(&t, 0, 1.0);
        assert_eq!((m.len(), p.len()), (10, 0));
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_rejected() {
        remove_top_fraction(&table(5), 0, 1.5);
    }
}
