//! Synthetic twin of the Intel Berkeley Research Lab sensor dataset \[25\]:
//! 54 sensors logging epoch, temperature, humidity, light, and voltage.
//!
//! The structure that matters to the experiments is reproduced:
//!
//! * `light` follows a diurnal cycle (high during work hours, near zero at
//!   night) with per-device scale offsets — so `device_id` and `epoch`
//!   correlate strongly with `light`, which is what makes Corr-PC
//!   partitions on (device, time) informative.
//! * temperature/humidity drift slowly with additive noise.
//! * a small fraction of light readings spike (sensor faces a lamp),
//!   giving the heavy right tail that breaks sampling estimators.

use pc_predicate::{AttrType, Schema, Value};
use pc_storage::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator knobs for the Intel-like dataset.
#[derive(Debug, Clone, Copy)]
pub struct IntelConfig {
    /// Total rows to generate.
    pub rows: usize,
    /// Number of sensor devices (the real lab had 54).
    pub devices: u32,
    /// Epochs per simulated day (rows are spread uniformly over epochs).
    pub epochs_per_day: u32,
    /// Number of simulated days.
    pub days: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IntelConfig {
    fn default() -> Self {
        IntelConfig {
            rows: 50_000,
            devices: 54,
            epochs_per_day: 288, // one epoch per 5 minutes
            days: 7,
            seed: 0xC0FFEE,
        }
    }
}

/// Attribute indices of the generated schema.
pub mod cols {
    /// `device_id` (Int)
    pub const DEVICE: usize = 0;
    /// `epoch` (Int)
    pub const EPOCH: usize = 1;
    /// `temperature` (Float, °C)
    pub const TEMPERATURE: usize = 2;
    /// `humidity` (Float, %)
    pub const HUMIDITY: usize = 3;
    /// `light` (Float, lux) — the aggregate attribute of the experiments
    pub const LIGHT: usize = 4;
    /// `voltage` (Float, V)
    pub const VOLTAGE: usize = 5;
}

/// The Intel-like schema.
pub fn schema() -> Schema {
    Schema::new(vec![
        ("device_id", AttrType::Int),
        ("epoch", AttrType::Int),
        ("temperature", AttrType::Float),
        ("humidity", AttrType::Float),
        ("light", AttrType::Float),
        ("voltage", AttrType::Float),
    ])
}

/// Generate the table.
pub fn generate(config: IntelConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut table = Table::new(schema());
    let total_epochs = (config.epochs_per_day * config.days) as f64;
    // per-device light scale: some sensors sit near windows
    let device_scale: Vec<f64> = (0..config.devices)
        .map(|_| 0.4 + 1.2 * rng.gen::<f64>())
        .collect();
    for _ in 0..config.rows {
        let device = rng.gen_range(0..config.devices);
        let epoch = rng.gen_range(0..(config.epochs_per_day * config.days));
        let day_pos = f64::from(epoch % config.epochs_per_day) / f64::from(config.epochs_per_day);
        // diurnal curve peaking mid-day
        let diurnal = (std::f64::consts::PI * day_pos).sin().max(0.0).powi(2);
        let base_light = 60.0 + 500.0 * diurnal * device_scale[device as usize];
        let spike = if rng.gen::<f64>() < 0.02 {
            // lamp spike — the heavy tail
            800.0 + 600.0 * rng.gen::<f64>()
        } else {
            0.0
        };
        let light = (base_light + spike + 25.0 * rng.gen::<f64>()).max(0.0);
        let temperature =
            18.0 + 6.0 * diurnal + 0.5 * device_scale[device as usize] + rng.gen::<f64>();
        let humidity = 45.0 - 10.0 * diurnal + 5.0 * rng.gen::<f64>();
        let voltage = 2.3 + 0.4 * (1.0 - f64::from(epoch) / total_epochs) + 0.05 * rng.gen::<f64>();
        table.push_row(vec![
            Value::Int(i64::from(device)),
            Value::Int(i64::from(epoch)),
            Value::Float(temperature),
            Value::Float(humidity),
            Value::Float(light),
            Value::Float(voltage),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{Atom, Predicate};
    use pc_storage::{evaluate, AggKind, AggQuery};

    fn small() -> Table {
        generate(IntelConfig {
            rows: 20_000,
            seed: 7,
            ..IntelConfig::default()
        })
    }

    #[test]
    fn shape_and_ranges() {
        let t = small();
        assert_eq!(t.len(), 20_000);
        let (dlo, dhi) = t.attr_range(cols::DEVICE).unwrap();
        assert!(dlo >= 0.0 && dhi <= 53.0);
        let (llo, _) = t.attr_range(cols::LIGHT).unwrap();
        assert!(llo >= 0.0, "light is non-negative");
    }

    #[test]
    fn light_is_diurnal() {
        let t = small();
        // mid-day epochs (around 144 of 288) vs night epochs (near 0)
        let noon = AggQuery::new(
            AggKind::Avg,
            cols::LIGHT,
            Predicate::always().and(Atom::bucket(cols::EPOCH, 130.0, 160.0)),
        );
        let night = AggQuery::new(
            AggKind::Avg,
            cols::LIGHT,
            Predicate::always().and(Atom::bucket(cols::EPOCH, 0.0, 20.0)),
        );
        let noon_avg = evaluate(&t, &noon).value();
        let night_avg = evaluate(&t, &night).value();
        assert!(
            noon_avg > 2.0 * night_avg,
            "noon {noon_avg} should dwarf night {night_avg}"
        );
    }

    #[test]
    fn devices_have_distinct_scales() {
        let t = small();
        let mut avgs = Vec::new();
        for d in 0..10 {
            let q = AggQuery::new(
                AggKind::Avg,
                cols::LIGHT,
                Predicate::atom(Atom::eq(cols::DEVICE, f64::from(d))),
            );
            avgs.push(evaluate(&t, &q).value());
        }
        let spread = avgs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            - avgs.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            spread > 50.0,
            "device scales should differ, spread {spread}"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate(IntelConfig {
            rows: 100,
            seed: 5,
            ..IntelConfig::default()
        });
        let b = generate(IntelConfig {
            rows: 100,
            seed: 5,
            ..IntelConfig::default()
        });
        assert_eq!(a.encoded_row(57), b.encoded_row(57));
    }

    #[test]
    fn heavy_tail_exists() {
        let t = small();
        let q = AggQuery::count(Predicate::atom(Atom::new(
            cols::LIGHT,
            pc_predicate::Interval::at_least(800.0, false),
        )));
        let spikes = evaluate(&t, &q).value();
        assert!(spikes > 50.0, "expected lamp spikes, got {spikes}");
        assert!(spikes < 2000.0, "spikes must stay rare, got {spikes}");
    }
}
