//! Property-based tests for the PC generators: on *arbitrary* tables, the
//! generated constraint sets must validate against the data they
//! summarize, stay closed over the domain, and produce sound bounds.

use pc_core::BoundEngine;
use pc_datagen::pcgen;
use pc_predicate::{AttrType, Predicate, Schema, Value};
use pc_storage::{evaluate, AggKind, AggQuery, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn table_from(rows: &[(i64, i64)]) -> Table {
    let schema = Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Int)]);
    let mut t = Table::new(schema);
    for &(g, v) in rows {
        t.push_row(vec![Value::Int(g), Value::Int(v)]);
    }
    t
}

prop_compose! {
    fn arb_rows()(rows in prop::collection::vec((-20i64..20, -50i64..50), 1..60)) -> Vec<(i64, i64)> {
        rows
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn corr_pc_validates_and_closes(rows in arb_rows(), n in 1usize..20) {
        let t = table_from(&rows);
        let set = pcgen::corr_pc(&t, &[0], n);
        prop_assert!(set.validate(&t).is_empty(), "generated constraints must hold");
        prop_assert!(set.is_closed(), "grid must cover the domain");
    }

    #[test]
    fn corr_pc_bounds_contain_truth(rows in arb_rows(), n in 1usize..12) {
        let t = table_from(&rows);
        let set = pcgen::corr_pc(&t, &[0], n);
        let engine = BoundEngine::new(&set);
        for agg in [AggKind::Count, AggKind::Sum] {
            let q = AggQuery::new(agg, 1, Predicate::always());
            let truth = evaluate(&t, &q).unwrap_or(0.0);
            let r = engine.bound(&q).unwrap();
            prop_assert!(
                r.range.contains(truth),
                "{agg:?}: {truth} outside [{}, {}]", r.range.lo, r.range.hi
            );
        }
    }

    #[test]
    fn rand_pc_validates_and_closes(rows in arb_rows(), n in 4usize..16, seed in 0u64..50) {
        let t = table_from(&rows);
        let mut rng = StdRng::seed_from_u64(seed);
        let set = pcgen::rand_pc(&t, &[0], n, &mut rng);
        prop_assert!(set.validate(&t).is_empty());
        prop_assert!(set.is_closed(), "cover grid keeps closure");
    }

    #[test]
    fn overlapping_pc_validates(rows in arb_rows(), n in 2usize..8) {
        let t = table_from(&rows);
        let set = pcgen::overlapping_pc(&t, &[0], n, 0.5);
        prop_assert!(set.validate(&t).is_empty());
    }

    #[test]
    fn zero_perturbation_is_identity(rows in arb_rows(), seed in 0u64..50) {
        let t = table_from(&rows);
        let set = pcgen::corr_pc(&t, &[0], 8);
        let mut rng = StdRng::seed_from_u64(seed);
        let same = pcgen::perturb_values(&set, &[0.0, 0.0], &mut rng);
        prop_assert!(same.validate(&t).is_empty());
        let rel = pcgen::perturb_values_relative(&set, &[1], 0.0, &mut rng);
        prop_assert!(rel.validate(&t).is_empty());
    }
}
