//! Property tests for the shared budget-caps parser: `pc batch` lines,
//! CLI flags, and the `pc serve` wire protocol all validate through the
//! same `parse_cap_value`/`parse_line_caps`, so these properties are the
//! uniform-validation contract of the serve satellite — every positive
//! value round-trips, every zero/negative/overflowing value is rejected
//! with the same rule regardless of which directive carries it, and no
//! input can make the parser panic or accept a silently-clamped value.

use pc_budget::caps::{parse_cap_value, parse_line_caps, BudgetCaps};
use proptest::prelude::*;

const FLAGS: [&str; 3] = ["@timeout-ms", "@sat-cap", "@node-cap"];

prop_compose! {
    /// An arbitrary caps value: each field independently absent or any
    /// positive u64 (including u64::MAX — representable is acceptable).
    fn arb_caps()(
        t in prop::strategy::any::<u64>(), ts: bool,
        s in prop::strategy::any::<u64>(), ss: bool,
        n in prop::strategy::any::<u64>(), ns: bool,
    ) -> BudgetCaps {
        BudgetCaps {
            timeout_ms: ts.then_some(t.max(1)),
            sat_cap: ss.then_some(s.max(1)),
            node_cap: ns.then_some(n.max(1)),
        }
    }
}

prop_compose! {
    /// Noise strings over a directive-looking alphabet, to fuzz the line
    /// parser with near-miss input.
    fn arb_noise()(bytes in prop::collection::vec(0u8..16, 0..24)) -> String {
        const ALPHABET: &[u8; 16] = b"@=- 012345678tsq";
        bytes.iter().map(|&b| ALPHABET[b as usize] as char).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every positive u64 parses back to itself, under every flag name:
    /// no clamping, no flag-specific behavior.
    #[test]
    fn positive_values_roundtrip_under_every_flag(v in prop::strategy::any::<u64>(), f in 0usize..3) {
        let v = v.max(1);
        prop_assert_eq!(parse_cap_value(FLAGS[f], &v.to_string()), Ok(v));
    }

    /// Zero is rejected by every flag with the same rule.
    #[test]
    fn zero_rejected_uniformly(f in 0usize..3, pad in 0usize..4) {
        let raw = "0".repeat(pad + 1);
        let err = parse_cap_value(FLAGS[f], &raw).unwrap_err();
        prop_assert!(err.contains("minimum cap is 1"), "{}", err);
    }

    /// Negative values are rejected (never wrapped) by every flag.
    #[test]
    fn negative_rejected_uniformly(v in prop::strategy::any::<i64>(), f in 0usize..3) {
        prop_assume!(v < 0);
        let err = parse_cap_value(FLAGS[f], &v.to_string()).unwrap_err();
        prop_assert!(err.contains("negative"), "{}", err);
    }

    /// Values beyond u64::MAX are rejected (never saturated) by every
    /// flag: u64::MAX + 1 + delta, rendered via u128.
    #[test]
    fn overflow_rejected_uniformly(delta in prop::strategy::any::<u64>(), f in 0usize..3) {
        let big = u64::MAX as u128 + 1 + delta as u128;
        let err = parse_cap_value(FLAGS[f], &big.to_string()).unwrap_err();
        prop_assert!(err.contains("overflow"), "{}", err);
    }

    /// Line round-trip: any caps rendered as directives in front of any
    /// non-directive query parse back bit-equal, remainder intact.
    #[test]
    fn line_roundtrip(caps in arb_caps(), qn in 0usize..3) {
        let query = ["SELECT COUNT(*)", "q", "SELECT SUM(v) WHERE x <= 3"][qn];
        let dirs = caps.to_directives();
        let line = if dirs.is_empty() { query.to_string() } else { format!("{dirs} {query}") };
        let (parsed, rest) = parse_line_caps(&line).unwrap();
        prop_assert_eq!(parsed, caps);
        prop_assert_eq!(rest, query);
    }

    /// The built budget reflects the parsed caps exactly: unarmed iff no
    /// cap was given, deadline present iff timeout was.
    #[test]
    fn budget_arms_match_caps(caps in arb_caps()) {
        let budget = caps.budget();
        prop_assert_eq!(budget.is_unlimited(), caps.is_empty());
        prop_assert_eq!(budget.deadline().is_some(), caps.timeout_ms.is_some());
        let armed = caps.armed_budget();
        prop_assert!(!armed.is_unlimited());
        prop_assert!(armed.cancel_token().is_some());
    }

    /// Per-request override is field-wise: each field takes the override
    /// when present, the base otherwise.
    #[test]
    fn override_field_wise(base in arb_caps(), over in arb_caps()) {
        let merged = base.overridden_by(over);
        prop_assert_eq!(merged.timeout_ms, over.timeout_ms.or(base.timeout_ms));
        prop_assert_eq!(merged.sat_cap, over.sat_cap.or(base.sat_cap));
        prop_assert_eq!(merged.node_cap, over.node_cap.or(base.node_cap));
    }

    /// The line parser never panics, and anything it does accept has a
    /// non-empty remainder and strictly positive cap values.
    #[test]
    fn parser_total_and_never_accepts_zero(noise in arb_noise()) {
        if let Ok((caps, rest)) = parse_line_caps(&noise) {
            prop_assert!(!rest.is_empty());
            for v in [caps.timeout_ms, caps.sat_cap, caps.node_cap].into_iter().flatten() {
                prop_assert!(v >= 1);
            }
        }
    }
}
