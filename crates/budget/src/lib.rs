//! Query budgets, deadlines, and cooperative cancellation for the PC
//! engine — the robustness substrate every long-running path checks.
//!
//! # Why a separate crate
//!
//! Budgets are consulted from the bottom of the stack up: the SAT witness
//! search (`pc-predicate`), the branch & bound node loop (`pc-solver`),
//! and the decomposition / serving layers (`pc-core`). `pc-solver` does
//! not depend on `pc-predicate`, so the shared type lives below both.
//!
//! # Model
//!
//! A [`QueryBudget`] is a cheap, clonable handle (an `Option<Arc>` —
//! [`QueryBudget::unlimited`] is a `None` whose every check is a branch
//! on a constant) carrying up to four independent limits:
//!
//! * a **deadline** (wall-clock [`Instant`]),
//! * a **SAT-check cap** (decomposition / specialization / closure work),
//! * a **node cap** (branch & bound expansions),
//! * an **explicit cancel** flag, flipped from outside via the paired
//!   [`CancelToken`].
//!
//! # Granularity guarantee
//!
//! Checks are **cooperative** and sit at *task-granule* boundaries: once
//! per DFS split in decomposition, once per SAT satisfiability probe,
//! once per claimed B&B node, and once per branch of the parallel
//! witness fan-out. A trip is therefore observed within one granule —
//! one SAT probe, one LP re-solve — never mid-pivot, and a tripped
//! search returns without finishing the remaining exponential work. The
//! flip side: a single granule is not interruptible, so latency-to-return
//! is bounded by the largest single LP/SAT call, not by zero.
//!
//! # Trip semantics
//!
//! The first limit crossed **trips** the budget, permanently (sticky):
//! every subsequent [`QueryBudget::charge_sat`] / [`charge_node`] /
//! [`proceed`](QueryBudget::proceed) answers `false`, so sibling tasks of
//! a parallel fan-out all drain within their own granule. The consumer
//! decides what a trip means; the engine's policy (documented at each
//! site, property-tested in `pc-core`) is **degrade, don't error**:
//!
//! * a tripped decomposition emits its frontier un-split (sound, looser
//!   bounds — see `pc_core::decompose`),
//! * a tripped SAT probe counts as "assume satisfiable" / "assume not
//!   closed" (the EarlyStop admission argument: may widen, never
//!   narrows),
//! * a tripped branch & bound surfaces `BudgetExhausted` and the engine
//!   falls back to the LP relaxation (an outer bound of the MILP
//!   optimum),
//! * results computed under a trip carry `degraded: true`.
//!
//! [`charge_node`]: QueryBudget::charge_node

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub mod caps;
#[cfg(feature = "fault")]
pub mod fault;

pub mod pressure;

pub use caps::{parse_cap_value, parse_line_caps, BudgetCaps};

/// Why a budget tripped: the first limit crossed, sticky for the
/// budget's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The paired [`CancelToken`] was fired.
    Cancelled,
    /// The SAT-check cap was exhausted.
    SatCap,
    /// The branch & bound node cap was exhausted.
    NodeCap,
}

impl std::fmt::Display for TripReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripReason::Deadline => write!(f, "deadline"),
            TripReason::Cancelled => write!(f, "cancelled"),
            TripReason::SatCap => write!(f, "sat-check cap"),
            TripReason::NodeCap => write!(f, "node cap"),
        }
    }
}

/// Trip-state encoding in [`Inner::tripped`]: 0 = live, else reason + 1.
fn encode(reason: TripReason) -> u8 {
    match reason {
        TripReason::Deadline => 1,
        TripReason::Cancelled => 2,
        TripReason::SatCap => 3,
        TripReason::NodeCap => 4,
    }
}

fn decode(v: u8) -> Option<TripReason> {
    match v {
        1 => Some(TripReason::Deadline),
        2 => Some(TripReason::Cancelled),
        3 => Some(TripReason::SatCap),
        4 => Some(TripReason::NodeCap),
        _ => None,
    }
}

/// Shared state of one armed budget.
#[derive(Debug)]
struct Inner {
    deadline: Option<Instant>,
    sat_cap: u64,
    node_cap: u64,
    sat_used: AtomicU64,
    nodes_used: AtomicU64,
    cancelled: AtomicBool,
    /// Sticky first-trip record; see [`encode`].
    tripped: AtomicU8,
    /// When the budget was armed — the admission layer measures queue
    /// wait as "armed → admitted".
    armed_at: Instant,
    /// Parent budget for [`QueryBudget::restricted`] children: a child
    /// also trips (with the parent's reason) whenever the parent does,
    /// so a cancel or deadline on the original handle still lands.
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn fresh() -> Inner {
        Inner {
            deadline: None,
            sat_cap: u64::MAX,
            node_cap: u64::MAX,
            sat_used: AtomicU64::new(0),
            nodes_used: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            tripped: AtomicU8::new(0),
            armed_at: Instant::now(),
            parent: None,
        }
    }

    /// Record the first trip; later trips keep the original reason.
    fn trip(&self, reason: TripReason) {
        let _ =
            self.tripped
                .compare_exchange(0, encode(reason), Ordering::AcqRel, Ordering::Acquire);
    }

    /// Check the passive limits (deadline, cancel) and the sticky flag.
    /// `true` = proceed.
    fn proceed(&self) -> bool {
        if self.tripped.load(Ordering::Acquire) != 0 {
            return false;
        }
        if let Some(parent) = &self.parent {
            if !parent.proceed() {
                if let Some(reason) = decode(parent.tripped.load(Ordering::Acquire)) {
                    self.trip(reason);
                }
                return false;
            }
        }
        if self.cancelled.load(Ordering::Acquire) {
            self.trip(TripReason::Cancelled);
            return false;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip(TripReason::Deadline);
                return false;
            }
        }
        true
    }
}

/// A deadline / work-cap / cancellation budget for one query (or one
/// epoch derivation). Cheap to clone and share across the pool; the
/// default [`unlimited`](QueryBudget::unlimited) handle costs one branch
/// per check. See the module docs for the trip and granularity
/// semantics.
#[derive(Debug, Clone, Default)]
pub struct QueryBudget {
    inner: Option<Arc<Inner>>,
}

impl QueryBudget {
    /// The no-op budget: never trips, checks compile to a `None` test.
    pub const fn unlimited() -> QueryBudget {
        QueryBudget { inner: None }
    }

    /// An armed budget with no limits yet — useful as a pure
    /// cancellation handle (pair with [`cancel_token`]).
    ///
    /// [`cancel_token`]: QueryBudget::cancel_token
    pub fn armed() -> QueryBudget {
        QueryBudget {
            inner: Some(Arc::new(Inner::fresh())),
        }
    }

    /// Arm (if needed) and return the sole mutable reference to the
    /// inner state. Builder methods run before the handle is shared, so
    /// the `Arc` is never contended here.
    fn arm(&mut self) -> &mut Inner {
        let arc = self.inner.get_or_insert_with(|| Arc::new(Inner::fresh()));
        Arc::get_mut(arc).expect("budget builders run before the handle is shared")
    }

    /// Add a wall-clock deadline `timeout` from now.
    ///
    /// Saturates: a timeout too large to represent as an [`Instant`]
    /// (e.g. `Duration::MAX`) arms the budget with **no** deadline
    /// instead of panicking — "longer than the process can live" and
    /// "never" are the same limit.
    pub fn with_timeout(mut self, timeout: Duration) -> QueryBudget {
        match Instant::now().checked_add(timeout) {
            Some(deadline) => self.with_deadline(deadline),
            None => {
                // Still arm the handle (so cancel tokens work and the
                // builder's contract "returns an armed budget" holds).
                self.arm();
                self
            }
        }
    }

    /// Add an absolute wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> QueryBudget {
        self.arm().deadline = Some(deadline);
        self
    }

    /// Cap the number of SAT satisfiability probes.
    pub fn with_sat_cap(mut self, cap: u64) -> QueryBudget {
        self.arm().sat_cap = cap;
        self
    }

    /// Cap the number of branch & bound node expansions.
    pub fn with_node_cap(mut self, cap: u64) -> QueryBudget {
        self.arm().node_cap = cap;
        self
    }

    /// A token that cancels this budget from another thread. `None` for
    /// an [`unlimited`](QueryBudget::unlimited) budget (nothing to
    /// cancel — arm one with [`armed`](QueryBudget::armed) or any
    /// `with_*` builder first).
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.inner.as_ref().map(|inner| CancelToken {
            inner: Arc::clone(inner),
        })
    }

    /// True for the no-op handle (no checks will ever trip).
    pub fn is_unlimited(&self) -> bool {
        self.inner.is_none()
    }

    /// The armed wall-clock deadline, if any — the scheduler reads this
    /// to stamp the query's pool tasks and to judge admission.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// How long ago this budget was armed. The admission layer reports
    /// this as the query's queue wait (armed at arrival → admitted when
    /// a worker picks it up). `None` for the unlimited handle.
    pub fn armed_for(&self) -> Option<Duration> {
        self.inner.as_ref().map(|i| i.armed_at.elapsed())
    }

    /// A budget born tripped with `reason`: every check answers `false`
    /// from the first granule. The load-shedding path runs rejected
    /// queries under one of these — each pipeline stage degrades
    /// immediately (frontier cells un-split, SAT admits unverified, LP
    /// relaxation), producing the cheapest sound answer the engine has.
    pub fn pre_tripped(reason: TripReason) -> QueryBudget {
        let inner = Inner::fresh();
        inner.tripped.store(encode(reason), Ordering::Release);
        QueryBudget {
            inner: Some(Arc::new(inner)),
        }
    }

    /// A child budget with tighter work caps that still answers to this
    /// one: the child trips whenever the parent trips (cancel, deadline —
    /// with the parent's reason), carries the parent's deadline, but
    /// spends its **own** sat/node allowance. The admission layer runs
    /// early-degraded and shed queries under such children, so skipping
    /// down the degradation ladder never consumes the caller's budget.
    pub fn restricted(&self, sat_cap: u64, node_cap: u64) -> QueryBudget {
        let mut inner = Inner::fresh();
        inner.sat_cap = sat_cap;
        inner.node_cap = node_cap;
        if let Some(parent) = &self.inner {
            inner.deadline = parent.deadline;
            inner.armed_at = parent.armed_at;
            inner.parent = Some(Arc::clone(parent));
        }
        QueryBudget {
            inner: Some(Arc::new(inner)),
        }
    }

    /// Charge one SAT probe. `true` = proceed; `false` = the budget is
    /// (now) tripped and the caller should degrade within this granule.
    pub fn charge_sat(&self) -> bool {
        let Some(inner) = &self.inner else {
            return true;
        };
        if !inner.proceed() {
            return false;
        }
        if inner.sat_used.fetch_add(1, Ordering::AcqRel) >= inner.sat_cap {
            inner.trip(TripReason::SatCap);
            return false;
        }
        true
    }

    /// Charge one branch & bound node. Same contract as
    /// [`charge_sat`](QueryBudget::charge_sat).
    pub fn charge_node(&self) -> bool {
        let Some(inner) = &self.inner else {
            return true;
        };
        if !inner.proceed() {
            return false;
        }
        if inner.nodes_used.fetch_add(1, Ordering::AcqRel) >= inner.node_cap {
            inner.trip(TripReason::NodeCap);
            return false;
        }
        true
    }

    /// Check the passive limits (deadline, cancel, sticky trip) without
    /// charging any work — the fork-point check. `true` = proceed.
    pub fn proceed(&self) -> bool {
        match &self.inner {
            None => true,
            Some(inner) => inner.proceed(),
        }
    }

    /// Whether any limit has tripped (sticky).
    pub fn is_tripped(&self) -> bool {
        self.trip_reason().is_some()
    }

    /// The first limit crossed, if any.
    pub fn trip_reason(&self) -> Option<TripReason> {
        let inner = self.inner.as_ref()?;
        decode(inner.tripped.load(Ordering::Acquire))
    }

    /// SAT probes charged so far (diagnostics).
    pub fn sat_used(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.sat_used.load(Ordering::Acquire))
    }

    /// Branch & bound nodes charged so far (diagnostics).
    pub fn nodes_used(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.nodes_used.load(Ordering::Acquire))
    }
}

/// Fires the paired [`QueryBudget`]'s cancel flag. Clonable; any clone
/// cancels for all. The budget observes the cancel at its next check
/// (within one task granule) and stays tripped forever after.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// Cancel the paired budget. Idempotent; a budget that already
    /// tripped on another limit keeps its original reason.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
        // Trip eagerly so `is_tripped` observers don't wait for the next
        // worker-side check.
        self.inner.trip(TripReason::Cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = QueryBudget::unlimited();
        for _ in 0..1000 {
            assert!(b.charge_sat());
            assert!(b.charge_node());
            assert!(b.proceed());
        }
        assert!(!b.is_tripped());
        assert!(b.cancel_token().is_none());
        assert!(b.is_unlimited());
    }

    #[test]
    fn sat_cap_trips_sticky() {
        let b = QueryBudget::unlimited().with_sat_cap(3);
        assert!(b.charge_sat());
        assert!(b.charge_sat());
        assert!(b.charge_sat());
        assert!(!b.charge_sat());
        assert_eq!(b.trip_reason(), Some(TripReason::SatCap));
        // sticky: everything answers false now, including other limits
        assert!(!b.charge_sat());
        assert!(!b.charge_node());
        assert!(!b.proceed());
        assert_eq!(b.sat_used(), 4);
    }

    #[test]
    fn node_cap_trips() {
        let b = QueryBudget::unlimited().with_node_cap(2);
        assert!(b.charge_node());
        assert!(b.charge_node());
        assert!(!b.charge_node());
        assert_eq!(b.trip_reason(), Some(TripReason::NodeCap));
    }

    #[test]
    fn deadline_trips() {
        let b = QueryBudget::unlimited().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!b.proceed());
        assert_eq!(b.trip_reason(), Some(TripReason::Deadline));
    }

    #[test]
    fn cancel_trips_across_clones() {
        let b = QueryBudget::armed();
        let token = b.cancel_token().expect("armed budgets are cancellable");
        let clone = b.clone();
        assert!(clone.proceed());
        token.cancel();
        assert!(!clone.proceed());
        assert!(!b.charge_sat());
        assert_eq!(b.trip_reason(), Some(TripReason::Cancelled));
    }

    #[test]
    fn first_trip_wins() {
        let b = QueryBudget::unlimited().with_sat_cap(0);
        assert!(!b.charge_sat());
        b.cancel_token().unwrap().cancel();
        assert_eq!(b.trip_reason(), Some(TripReason::SatCap));
    }

    #[test]
    fn builders_compose() {
        let b = QueryBudget::unlimited()
            .with_timeout(Duration::from_secs(3600))
            .with_sat_cap(10)
            .with_node_cap(10);
        assert!(!b.is_unlimited());
        assert!(b.proceed());
        assert!(b.charge_sat() && b.charge_node());
    }

    #[test]
    fn huge_timeout_saturates_instead_of_panicking() {
        let b = QueryBudget::unlimited().with_timeout(Duration::MAX);
        assert!(!b.is_unlimited(), "saturated timeout still arms the handle");
        assert_eq!(b.deadline(), None, "unrepresentable deadline = no deadline");
        assert!(b.proceed());
        assert!(b.cancel_token().is_some());
        // a merely-large (but representable) timeout keeps its deadline
        let b = QueryBudget::unlimited().with_timeout(Duration::from_secs(86_400 * 365));
        assert!(b.deadline().is_some());
    }

    #[test]
    fn restricted_child_spends_its_own_caps() {
        let parent = QueryBudget::unlimited().with_sat_cap(1000);
        let child = parent.restricted(2, u64::MAX);
        assert!(child.charge_sat());
        assert!(child.charge_sat());
        assert!(!child.charge_sat());
        assert_eq!(child.trip_reason(), Some(TripReason::SatCap));
        // the parent is untouched: its allowance was never spent
        assert!(parent.proceed());
        assert_eq!(parent.sat_used(), 0);
    }

    #[test]
    fn restricted_child_follows_parent_cancel() {
        let parent = QueryBudget::armed();
        let child = parent.restricted(u64::MAX, u64::MAX);
        assert!(child.proceed());
        parent.cancel_token().unwrap().cancel();
        assert!(!child.proceed());
        assert_eq!(child.trip_reason(), Some(TripReason::Cancelled));
    }

    #[test]
    fn restricted_child_inherits_deadline_and_age() {
        let deadline = Instant::now() - Duration::from_millis(1);
        let parent = QueryBudget::unlimited().with_deadline(deadline);
        let child = parent.restricted(u64::MAX, u64::MAX);
        assert_eq!(child.deadline(), Some(deadline));
        assert!(!child.proceed());
        assert_eq!(child.trip_reason(), Some(TripReason::Deadline));
        assert!(child.armed_for().is_some());
    }

    #[test]
    fn trip_reason_displays() {
        for (r, s) in [
            (TripReason::Deadline, "deadline"),
            (TripReason::Cancelled, "cancelled"),
            (TripReason::SatCap, "sat"),
            (TripReason::NodeCap, "node"),
        ] {
            assert!(r.to_string().contains(s));
        }
    }
}
