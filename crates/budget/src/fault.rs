//! Test-only fault injection (the `fault` cargo feature).
//!
//! Engine hot paths carry `fault::point("site")` calls compiled in only
//! under the feature; tests [`arm`] a site with a [`Plan`] and the nth
//! hit panics or stalls *inside* the engine — proving the recovery
//! story (per-query isolation, warm-cache poison clearing, deadline
//! trips against a stalled solver) against real unwinds rather than
//! simulated errors.
//!
//! The registry is global, so tests that arm sites must serialize
//! (`fault` tests in this workspace share a test-local mutex) and
//! [`disarm_all`] in a drop guard to keep a panicking test from leaking
//! its plan into the next.
//!
//! Armed sites count **hits across all threads**; `PanicAfter(n)` fires
//! on the (n+1)th hit (0 = first). A fired plan disarms itself — one
//! injected fault per arm.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// What an armed site does when its hit count is reached.
#[derive(Debug, Clone, Copy)]
pub enum Plan {
    /// Panic (an `unwind`) on the nth hit (0-based).
    PanicAfter(u64),
    /// Sleep for the given duration on the nth hit (0-based) — models a
    /// straggling solver call for deadline tests.
    StallAfter(u64, Duration),
}

struct Armed {
    plan: Plan,
    hits: u64,
}

fn registry() -> &'static Mutex<HashMap<&'static str, Armed>> {
    static REGISTRY: OnceLock<Mutex<HashMap<&'static str, Armed>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arm `site` with `plan`, replacing any previous plan (hit count
/// resets).
pub fn arm(site: &'static str, plan: Plan) {
    registry()
        .lock()
        .unwrap()
        .insert(site, Armed { plan, hits: 0 });
}

/// Disarm one site.
pub fn disarm(site: &str) {
    registry().lock().unwrap().remove(site);
}

/// Disarm every site (test teardown).
pub fn disarm_all() {
    registry().lock().unwrap().clear();
}

/// An injection site. No-op unless armed; see the module docs for the
/// firing contract. Called by the engine, not by tests.
pub fn point(site: &str) {
    let fired = {
        let mut reg = registry().lock().unwrap();
        let Some(armed) = reg.get_mut(site) else {
            return;
        };
        let hit = armed.hits;
        armed.hits += 1;
        let threshold = match armed.plan {
            Plan::PanicAfter(n) | Plan::StallAfter(n, _) => n,
        };
        if hit < threshold {
            return;
        }
        let plan = armed.plan;
        reg.remove(site);
        plan
        // lock dropped before the panic/stall below
    };
    match fired {
        Plan::PanicAfter(_) => panic!("injected fault: {site}"),
        Plan::StallAfter(_, dur) => std::thread::sleep(dur),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_is_noop_and_panic_fires_once() {
        point("fault::test-site"); // unarmed: no-op
        arm("fault::test-site", Plan::PanicAfter(2));
        point("fault::test-site");
        point("fault::test-site");
        let caught = std::panic::catch_unwind(|| point("fault::test-site"));
        assert!(caught.is_err(), "third hit fires");
        // fired plans disarm themselves
        point("fault::test-site");
        disarm_all();
    }

    #[test]
    fn stall_sleeps_then_disarms() {
        arm(
            "fault::stall-site",
            Plan::StallAfter(0, Duration::from_millis(20)),
        );
        let t0 = std::time::Instant::now();
        point("fault::stall-site");
        assert!(t0.elapsed() >= Duration::from_millis(20));
        let t1 = std::time::Instant::now();
        point("fault::stall-site");
        assert!(t1.elapsed() < Duration::from_millis(20));
        disarm_all();
    }
}
