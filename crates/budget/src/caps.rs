//! The three budget caps as a value, plus the **one** parser for the
//! `@timeout-ms=N / @sat-cap=N / @node-cap=N` budget directives shared by
//! every front-end (`pc batch` query lines, `pc bound` CLI flags, and the
//! `pc serve` wire protocol). One parser means one validation story:
//! zero, negative, overflowing, duplicated, and malformed values are
//! rejected identically everywhere, at parse time, instead of each
//! front-end clamping (or forgetting to clamp) its own way.
//!
//! Validation rules ([`parse_cap_value`]):
//!
//! * values must be decimal digits — a leading `-` is called out as
//!   "negative" rather than the generic parse failure;
//! * `0` is rejected: a zero deadline/cap would trip every query before
//!   its first granule, turning the whole stream into shed answers — if
//!   that is really wanted, a pre-tripped budget says so explicitly
//!   ([`crate::QueryBudget::pre_tripped`]), a directive does not;
//! * values above `u64::MAX` are rejected as overflow (not wrapped, not
//!   saturated). A *representable* but astronomically large timeout is
//!   fine: [`crate::QueryBudget::with_timeout`] already treats an
//!   unrepresentable deadline as "no deadline";
//! * the same directive given twice on one line is rejected — silent
//!   last-wins has burned enough people.

use crate::QueryBudget;
use std::time::Duration;

/// The three budget caps, as a value: stream-wide CLI flags, a batch
/// line's `@` directives, and a wire request's `@` directives all share
/// this shape, so a per-request override is just a field-wise merge
/// ([`BudgetCaps::overridden_by`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetCaps {
    /// Wall-clock deadline, milliseconds from arming.
    pub timeout_ms: Option<u64>,
    /// SAT-probe cap.
    pub sat_cap: Option<u64>,
    /// Branch & bound node cap.
    pub node_cap: Option<u64>,
}

impl BudgetCaps {
    /// No cap set at all.
    pub fn is_empty(&self) -> bool {
        self.timeout_ms.is_none() && self.sat_cap.is_none() && self.node_cap.is_none()
    }

    /// A fresh budget from the caps, unarmed when no cap is set. Fresh
    /// per engine call on purpose: `timeout_ms` is a *deadline*, measured
    /// from arming, so one budget built at startup would silently charge
    /// file loading and every earlier batch against later queries.
    pub fn budget(&self) -> QueryBudget {
        self.apply(QueryBudget::unlimited())
    }

    /// A fresh **armed** budget from the caps: even cap-less requests get
    /// an armed handle, so a serving tier can register the
    /// [`crate::CancelToken`] and cancel in-flight work on shutdown.
    pub fn armed_budget(&self) -> QueryBudget {
        self.apply(QueryBudget::armed())
    }

    fn apply(&self, mut budget: QueryBudget) -> QueryBudget {
        if let Some(ms) = self.timeout_ms {
            budget = budget.with_timeout(Duration::from_millis(ms));
        }
        if let Some(cap) = self.sat_cap {
            budget = budget.with_sat_cap(cap);
        }
        if let Some(cap) = self.node_cap {
            budget = budget.with_node_cap(cap);
        }
        budget
    }

    /// These caps with another set's explicit fields taking precedence.
    pub fn overridden_by(&self, over: BudgetCaps) -> BudgetCaps {
        BudgetCaps {
            timeout_ms: over.timeout_ms.or(self.timeout_ms),
            sat_cap: over.sat_cap.or(self.sat_cap),
            node_cap: over.node_cap.or(self.node_cap),
        }
    }

    /// The caps in directive notation (`@timeout-ms=N …`), the inverse of
    /// [`parse_line_caps`]; empty string when no cap is set.
    pub fn to_directives(&self) -> String {
        let mut out = String::new();
        for (key, value) in [
            ("timeout-ms", self.timeout_ms),
            ("sat-cap", self.sat_cap),
            ("node-cap", self.node_cap),
        ] {
            if let Some(v) = value {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(&format!("@{key}={v}"));
            }
        }
        out
    }
}

/// Validate one budget-cap value uniformly (see the module docs for the
/// rules). `flag` names the directive/flag in error messages.
pub fn parse_cap_value(flag: &str, raw: &str) -> Result<u64, String> {
    let raw = raw.trim();
    if raw.starts_with('-') {
        return Err(format!(
            "{flag}: `{raw}` is negative (budget caps are positive integers)"
        ));
    }
    if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
        return Err(format!("{flag}: `{raw}` is not a number"));
    }
    let value: u64 = raw.parse().map_err(|_| {
        format!(
            "{flag}: `{raw}` overflows the 64-bit cap range (max {})",
            u64::MAX
        )
    })?;
    if value == 0 {
        return Err(format!(
            "{flag}: 0 would trip every query before its first granule; \
             the minimum cap is 1"
        ));
    }
    Ok(value)
}

/// Strip leading `@timeout-ms=N` / `@sat-cap=N` / `@node-cap=N`
/// directives off a query line, returning the overrides and the
/// remainder (the SQL). Directives must prefix a non-empty remainder;
/// each may appear at most once; values go through [`parse_cap_value`].
pub fn parse_line_caps(line: &str) -> Result<(BudgetCaps, &str), String> {
    let mut caps = BudgetCaps::default();
    let mut rest = line.trim_start();
    while let Some(tail) = rest.strip_prefix('@') {
        let (token, after) = match tail.split_once(char::is_whitespace) {
            Some((token, after)) => (token, after.trim_start()),
            None => (tail, ""),
        };
        let (key, value) = token
            .split_once('=')
            .ok_or_else(|| format!("@{token}: expected @name=value"))?;
        let slot = match key {
            "timeout-ms" => &mut caps.timeout_ms,
            "sat-cap" => &mut caps.sat_cap,
            "node-cap" => &mut caps.node_cap,
            other => {
                return Err(format!(
                    "unknown directive @{other} (timeout-ms/sat-cap/node-cap)"
                ))
            }
        };
        if slot.is_some() {
            return Err(format!("@{key} given twice on one line"));
        }
        *slot = Some(parse_cap_value(&format!("@{key}"), value)?);
        rest = after;
    }
    if rest.is_empty() {
        return Err("budget directives must prefix a query on the same line".into());
    }
    Ok((caps, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_and_preserves_remainder() {
        let (caps, rest) =
            parse_line_caps("@timeout-ms=50 @sat-cap=200 @node-cap=9 SELECT COUNT(*)").unwrap();
        assert_eq!(
            caps,
            BudgetCaps {
                timeout_ms: Some(50),
                sat_cap: Some(200),
                node_cap: Some(9),
            }
        );
        assert_eq!(rest, "SELECT COUNT(*)");
    }

    #[test]
    fn rejects_zero_negative_overflow_uniformly() {
        for bad in ["@timeout-ms=0 q", "@sat-cap=0 q", "@node-cap=0 q"] {
            let err = parse_line_caps(bad).unwrap_err();
            assert!(err.contains("minimum cap is 1"), "{bad}: {err}");
        }
        let err = parse_line_caps("@timeout-ms=-5 q").unwrap_err();
        assert!(err.contains("negative"), "{err}");
        let err = parse_line_caps("@node-cap=99999999999999999999999999 q").unwrap_err();
        assert!(err.contains("overflow"), "{err}");
    }

    #[test]
    fn rejects_duplicates_unknowns_and_bare_directives() {
        assert!(parse_line_caps("@timeout-ms=5 @timeout-ms=6 q")
            .unwrap_err()
            .contains("twice"));
        assert!(parse_line_caps("@frob=5 q")
            .unwrap_err()
            .contains("unknown"));
        assert!(parse_line_caps("@timeout-ms=5").is_err());
        assert!(parse_line_caps("@timeout-ms 5 q").is_err());
    }

    #[test]
    fn directive_roundtrip() {
        let caps = BudgetCaps {
            timeout_ms: Some(7),
            sat_cap: None,
            node_cap: Some(u64::MAX),
        };
        let line = format!("{} SELECT 1", caps.to_directives());
        let (parsed, rest) = parse_line_caps(&line).unwrap();
        assert_eq!(parsed, caps);
        assert_eq!(rest, "SELECT 1");
    }

    #[test]
    fn armed_budget_is_armed_even_capless() {
        assert!(BudgetCaps::default().budget().is_unlimited());
        let armed = BudgetCaps::default().armed_budget();
        assert!(!armed.is_unlimited());
        assert!(armed.cancel_token().is_some());
        assert_eq!(armed.deadline(), None);
    }

    #[test]
    fn override_is_field_wise() {
        let base = BudgetCaps {
            timeout_ms: Some(100),
            sat_cap: Some(10),
            node_cap: None,
        };
        let over = BudgetCaps {
            timeout_ms: Some(5),
            sat_cap: None,
            node_cap: Some(3),
        };
        assert_eq!(
            base.overridden_by(over),
            BudgetCaps {
                timeout_ms: Some(5),
                sat_cap: Some(10),
                node_cap: Some(3),
            }
        );
    }
}
