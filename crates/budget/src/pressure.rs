//! Admission control under deadline pressure: decide a query's fate
//! *before* it consumes resources.
//!
//! # The pressure model
//!
//! A [`PressureGauge`] tracks the engine's **aggregate queued deadline
//! pressure**: the estimated service times of every admitted,
//! not-yet-finished query, keyed by that query's deadline. The expected
//! wait a new arrival sees is the sum of charges *at least as urgent as
//! its own deadline* — under EDF scheduling, work with a later deadline
//! will yield to this arrival, so only more-urgent work queues ahead of
//! it, and each queued query's fan-out gets the whole pool in turn, so
//! their wall times add serially. A scalar backlog would charge an
//! urgent arrival for every lax query parked behind it and shed exactly
//! the queries the deadline lane exists to save. Per-query service time
//! is learned online — an EWMA of observed run times, calibrated
//! separately for exact and degraded executions — and scaled by a
//! per-query **cost factor** the caller derives from the estimate layer
//! (a query touching most of the constraint set costs more than one
//! touching a corner).
//!
//! Admission can judge at two points. The closed-loop form
//! ([`PressureGauge::admit`]) judges when a worker *starts* the query —
//! right for serve loops where arrival and start coincide. The open-loop
//! form ([`PressureGauge::admit_ticket`]) judges at *arrival*, before
//! the query is enqueued, and returns a detached [`SchedTicket`] the
//! eventual runner settles: under sustained overload the queue itself is
//! where deadlines die, so the verdict must come before the wait, not
//! after it.
//!
//! # The admission ladder
//!
//! [`PressureGauge::admit`] compares the arrival's deadline slack
//! against `expected wait + estimated cost` and returns the first rung
//! that fits:
//!
//! 1. **Exact** — the full pipeline fits in the slack; run untouched.
//! 2. **Degraded** — the exact path cannot finish, but the degraded
//!    ladder (LP relaxation, capped SAT re-checks) can: skip straight
//!    down at admission instead of burning the budget to discover the
//!    trip mid-flight.
//! 3. **Shed** — even the degraded path cannot meet the deadline:
//!    answer immediately from the cheapest sound path (a pre-tripped
//!    run: frontier cells un-split, SAT admits unverified, pure
//!    relaxation). The answer is wide but still *contains* the exact
//!    range — reject-with-degraded-answer, never an error.
//!
//! An uncalibrated gauge (no completed queries yet) estimates zero cost
//! and admits everything exactly — the first queries through are the
//! calibration set, and misjudging them costs at most their own budget
//! trip, which is the pre-admission status quo.
//!
//! # Soundness
//!
//! Admission only ever *re-routes* a query to a rung of the existing
//! degradation ladder; every rung returns a superset of the exact range
//! (property-tested in `pc-core`). The gauge can misestimate freely
//! without ever producing a wrong answer — only a wider one, or a
//! missed optimization.

use crate::QueryBudget;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What the admission layer decided for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Run the full exact pipeline.
    Exact,
    /// Skip down the degradation ladder at admission (LP relaxation,
    /// capped SAT re-checks): the exact path cannot meet the deadline.
    Degraded,
    /// Even the degraded path cannot meet the deadline: answer from the
    /// cheapest sound path immediately.
    Shed,
}

impl std::fmt::Display for AdmissionVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionVerdict::Exact => write!(f, "exact"),
            AdmissionVerdict::Degraded => write!(f, "degraded"),
            AdmissionVerdict::Shed => write!(f, "shed"),
        }
    }
}

/// Per-query scheduling observability: what admission saw and decided.
/// Attached to `BoundReport` and surfaced through `pc batch --stats`.
#[derive(Debug, Clone, Copy)]
pub struct SchedReport {
    /// Armed-to-admitted wall time: how long the query sat queued before
    /// a worker picked it up.
    pub queue_wait: Duration,
    /// The admission decision.
    pub verdict: AdmissionVerdict,
    /// Expected wait (serial drain of the at-least-as-urgent queued
    /// charges) at the moment of admission.
    pub backlog: Duration,
    /// The service-time estimate this query was charged against the
    /// gauge (zero while uncalibrated).
    pub estimated_cost: Duration,
}

impl SchedReport {
    /// A report for paths that bypass admission (no deadline armed, or
    /// admission disabled): exact verdict, whatever queue wait the
    /// budget observed.
    pub fn bypass(budget: &QueryBudget) -> SchedReport {
        SchedReport {
            queue_wait: budget.armed_for().unwrap_or(Duration::ZERO),
            verdict: AdmissionVerdict::Exact,
            backlog: Duration::ZERO,
            estimated_cost: Duration::ZERO,
        }
    }
}

/// Cumulative gauge counters (tests and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureStats {
    pub admitted_exact: u64,
    pub admitted_degraded: u64,
    pub shed: u64,
    /// Calibrated EWMA of exact service time (zero = uncalibrated).
    pub ewma_exact: Duration,
    /// Calibrated EWMA of degraded service time (zero = uncalibrated).
    pub ewma_degraded: Duration,
    /// Learned drain-rate multiplier (milli-units, 1000 = 1.0).
    pub drain_mult_milli: u64,
}

/// Nominal charge for a shed query: one task granule of work (decompose
/// nothing, admit everything unverified, one interval sweep).
const SHED_COST_US: u64 = 50;

/// Cost factors outside this range are clamped — a bad estimate must
/// not be able to wedge the gauge open or shut.
const FACTOR_MIN: f64 = 0.05;
const FACTOR_MAX: f64 = 20.0;

/// Aggregate queued-deadline-pressure tracker; see the module docs.
/// One gauge per serving `Session`, shared by every concurrent query.
/// Calibration state is atomic; the deadline-keyed charge profile takes
/// one short mutex hold per admit/settle (admissions are per-query, not
/// per-task — contention is bounded by query arrival rate).
#[derive(Debug)]
pub struct PressureGauge {
    /// Reference instant deadlines are keyed against.
    epoch: Instant,
    /// Outstanding charges (µs) keyed by deadline (µs since `epoch`;
    /// `u64::MAX` = no deadline). An arrival's expected wait sums the
    /// keys at or before its own deadline.
    queued: Mutex<BTreeMap<u64, u64>>,
    /// Sum of charged service-time estimates of in-flight queries (µs).
    backlog_us: AtomicU64,
    /// EWMA of observed exact service times (µs); 0 = no observation.
    ewma_exact_us: AtomicU64,
    /// EWMA of observed degraded service times (µs); 0 = no observation.
    ewma_degraded_us: AtomicU64,
    /// Feedback multiplier (milli-units, 1000 = 1.0) applied to the
    /// serial-drain wait prediction. The pool's *effective* drain rate
    /// swings with contention, thermal state, and co-tenancy — no fixed
    /// charging constant survives that — so the gauge learns the ratio
    /// of observed queue waits to its own predictions and scales future
    /// predictions by it. Over-admission raises observed waits, which
    /// raises the multiplier, which sheds more; over-shedding empties
    /// the queue and lets it fall back. Clamped to [1/4, 3]: the ceiling
    /// matters, because long waits are observed mostly by *loose*
    /// queries (urgent ones drain first by construction), and an
    /// unbounded multiplier learned from the loose majority would shed
    /// tight arrivals whose own expected wait is a fraction of theirs.
    drain_mult_milli: AtomicU64,
    admitted_exact: AtomicU64,
    admitted_degraded: AtomicU64,
    shed: AtomicU64,
}

impl PressureGauge {
    /// A fresh, uncalibrated gauge. `_workers` is accepted for call-site
    /// context but unused: queued queries drain serially under the
    /// deadline lane (each fan-out gets the whole pool), so the expected
    /// wait does not divide by the worker count.
    pub fn new(_workers: usize) -> PressureGauge {
        PressureGauge {
            epoch: Instant::now(),
            queued: Mutex::new(BTreeMap::new()),
            backlog_us: AtomicU64::new(0),
            ewma_exact_us: AtomicU64::new(0),
            ewma_degraded_us: AtomicU64::new(0),
            drain_mult_milli: AtomicU64::new(1000),
            admitted_exact: AtomicU64::new(0),
            admitted_degraded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Judge one arrival and charge it against the gauge. `cost_factor`
    /// scales the learned service-time EWMAs to this query's estimated
    /// size (1.0 = average; from the estimate layer). A query with no
    /// deadline is always admitted exactly (but still charged, so timed
    /// arrivals see it in the backlog).
    ///
    /// The returned permit must be kept alive for the query's duration
    /// and [`AdmissionPermit::complete`]d on success — dropping it
    /// un-charges the backlog without calibrating.
    pub fn admit(&self, cost_factor: f64, deadline: Option<Instant>) -> AdmissionPermit<'_> {
        AdmissionPermit {
            ticket: Some(self.admit_ticket(cost_factor, deadline)),
            gauge: self,
            started: Instant::now(),
        }
    }

    /// Arrival-time admission: judge and charge the gauge *now*, before
    /// the query is enqueued, and return a detached ticket. The runner
    /// must eventually [`settle`](Self::settle) the ticket (with its run
    /// time on success, `None` on failure) or the charge leaks.
    pub fn admit_ticket(&self, cost_factor: f64, deadline: Option<Instant>) -> SchedTicket {
        let factor = if cost_factor.is_finite() {
            cost_factor.clamp(FACTOR_MIN, FACTOR_MAX)
        } else {
            1.0
        };
        let scale = |ewma_us: u64| -> u64 { (ewma_us as f64 * factor).round() as u64 };
        let est_exact_us = scale(self.ewma_exact_us.load(Ordering::Relaxed));
        let est_degraded_us = scale(self.ewma_degraded_us.load(Ordering::Relaxed))
            .min(est_exact_us.max(SHED_COST_US));
        let key = self.deadline_key(deadline);

        let slack_us = match deadline {
            None => u64::MAX,
            Some(d) => d
                .saturating_duration_since(Instant::now())
                .as_micros()
                .min(u64::MAX as u128) as u64,
        };

        // Expected wait: only charges at least as urgent as this arrival
        // queue ahead of it under the deadline lane — and they drain
        // *serially*: the lane hands the earliest-deadline query's whole
        // fan-out to the pool, so queued queries run one after another,
        // each at full parallelism. Summing wall estimates (no division
        // by workers) is the drain time of everything ahead. Charge the
        // arrival inside the same lock hold so concurrent admits see
        // each other.
        let (verdict, charge_us, wait_us);
        {
            // Charges whose deadline has already passed don't count as
            // wait: the runner demotes expired queries to the one-granule
            // shed path at pop, so they drain in negligible time even
            // though their full charge is still outstanding.
            let now_key = self.deadline_key(Some(Instant::now()));
            let mut queued = self.queued.lock().unwrap();
            let urgent_us: u64 = if key < now_key {
                0
            } else {
                queued.range(now_key..=key).map(|(_, c)| c).sum()
            };
            // Serial drain, feedback-corrected: each queued query's own
            // fan-out saturates the pool in turn, so the urgent charges
            // ahead add up as wall time; the learned multiplier then
            // scales that by how fast the pool has actually been
            // draining relative to the estimates.
            let mult = self.drain_mult_milli.load(Ordering::Relaxed);
            wait_us = urgent_us.saturating_mul(mult) / 1000;
            (verdict, charge_us) = if wait_us.saturating_add(est_exact_us) <= slack_us {
                (AdmissionVerdict::Exact, est_exact_us)
            } else if wait_us.saturating_add(est_degraded_us) <= slack_us {
                (AdmissionVerdict::Degraded, est_degraded_us)
            } else {
                (AdmissionVerdict::Shed, SHED_COST_US)
            };
            *queued.entry(key).or_insert(0) += charge_us;
        }
        match verdict {
            AdmissionVerdict::Exact => &self.admitted_exact,
            AdmissionVerdict::Degraded => &self.admitted_degraded,
            AdmissionVerdict::Shed => &self.shed,
        }
        .fetch_add(1, Ordering::Relaxed);
        self.backlog_us.fetch_add(charge_us, Ordering::Relaxed);

        SchedTicket {
            verdict,
            charged_us: charge_us,
            wait_us,
            key,
        }
    }

    /// Release a ticket's charge; with `run_time` (success) the observed
    /// service time also calibrates the verdict's EWMA. `run_time` must
    /// cover the *run only*, not the queue wait — queueing is the
    /// gauge's own doing and must not inflate its service estimates.
    pub fn settle(&self, ticket: SchedTicket, run_time: Option<Duration>) {
        self.settle_waited(ticket, run_time, None)
    }

    /// [`settle`](Self::settle), plus the queue wait the query actually
    /// observed between admission and run start. Against the ticket's
    /// *predicted* wait this is the gauge's own forecast error, and it
    /// feeds the drain-rate multiplier. Shed tickets are excluded: a
    /// rejection pops out of deadline order (immediately), so its wait
    /// says nothing about how fast the queue drains.
    pub fn settle_waited(
        &self,
        ticket: SchedTicket,
        run_time: Option<Duration>,
        observed_wait: Option<Duration>,
    ) {
        if let Some(waited) = observed_wait {
            if ticket.verdict != AdmissionVerdict::Shed && ticket.wait_us >= 200 {
                let waited_us = waited.as_micros().min(u64::MAX as u128) as u64;
                let obs = (waited_us.saturating_mul(1000) / ticket.wait_us).clamp(250, 3000);
                // Racy symmetric EWMA (a racing store drops one
                // observation): new = old + (obs - old)/4.
                let old = self.drain_mult_milli.load(Ordering::Relaxed);
                let new = if obs >= old {
                    old + (obs - old) / 4
                } else {
                    old - (old - obs) / 4
                };
                self.drain_mult_milli
                    .store(new.clamp(250, 3000), Ordering::Relaxed);
            }
        }
        if let Some(run) = run_time {
            let observed_us = run.as_micros().min(u64::MAX as u128) as u64;
            match ticket.verdict {
                AdmissionVerdict::Exact => {
                    self.calibrate(&self.ewma_exact_us, observed_us);
                }
                AdmissionVerdict::Degraded => {
                    self.calibrate(&self.ewma_degraded_us, observed_us);
                }
                // Shed cost is nominal; nothing to learn.
                AdmissionVerdict::Shed => {}
            }
        }
        self.release(ticket.key, ticket.charged_us);
    }

    fn deadline_key(&self, deadline: Option<Instant>) -> u64 {
        match deadline {
            None => u64::MAX,
            Some(d) => d
                .saturating_duration_since(self.epoch)
                .as_micros()
                .min(u64::MAX as u128) as u64,
        }
    }

    /// Expected wait implied by the current backlog: the serial drain
    /// time of every outstanding charge (see [`Self::admit_ticket`] for
    /// why queued queries drain serially under the deadline lane).
    pub fn backlog(&self) -> Duration {
        Duration::from_micros(self.backlog_us.load(Ordering::Relaxed))
    }

    /// Cumulative counters and calibration state.
    pub fn stats(&self) -> PressureStats {
        PressureStats {
            admitted_exact: self.admitted_exact.load(Ordering::Relaxed),
            admitted_degraded: self.admitted_degraded.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            ewma_exact: Duration::from_micros(self.ewma_exact_us.load(Ordering::Relaxed)),
            ewma_degraded: Duration::from_micros(self.ewma_degraded_us.load(Ordering::Relaxed)),
            drain_mult_milli: self.drain_mult_milli.load(Ordering::Relaxed),
        }
    }

    fn release(&self, key: u64, charged_us: u64) {
        {
            let mut queued = self.queued.lock().unwrap();
            if let Some(c) = queued.get_mut(&key) {
                *c = c.saturating_sub(charged_us);
                if *c == 0 {
                    queued.remove(&key);
                }
            }
        }
        // Saturating: a racing mis-release must never wrap the backlog
        // to "infinitely loaded".
        let _ = self
            .backlog_us
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some(b.saturating_sub(charged_us))
            });
    }

    fn calibrate(&self, slot: &AtomicU64, observed_us: u64) {
        // Lossy racy asymmetric EWMA: fast down (new = (old+obs)/2), slow
        // up (new = old + (obs-old)/8). Under overload a query's observed
        // wall time includes whatever more-urgent work the pool nested
        // into its blocked frames, so high observations mostly measure
        // *contention*, not this query class's service demand; chasing
        // them would spiral the estimate up and shed queries the pool
        // could still serve. Low observations are genuine — a query
        // can't finish faster than its own work — so they pull hard.
        // A racing store just drops one observation.
        let old = slot.load(Ordering::Relaxed);
        let new = if old == 0 {
            observed_us.max(1)
        } else if observed_us < old {
            (old + observed_us) / 2
        } else {
            old.saturating_add((observed_us - old) / 8).max(1)
        };
        slot.store(new.max(1), Ordering::Relaxed);
    }
}

/// A detached admission decision: the verdict plus the charge it left on
/// the gauge. Returned by [`PressureGauge::admit_ticket`] at arrival and
/// carried (as plain data — no borrow of the gauge) to wherever the
/// query eventually runs, which must settle it exactly once.
#[derive(Debug)]
pub struct SchedTicket {
    verdict: AdmissionVerdict,
    charged_us: u64,
    wait_us: u64,
    key: u64,
}

impl SchedTicket {
    pub fn verdict(&self) -> AdmissionVerdict {
        self.verdict
    }

    /// The service-time estimate charged to the backlog.
    pub fn estimated_cost(&self) -> Duration {
        Duration::from_micros(self.charged_us)
    }

    /// The expected wait (serial drain of charges at least as urgent as
    /// this arrival) observed at admission.
    pub fn backlog_at_admission(&self) -> Duration {
        Duration::from_micros(self.wait_us)
    }
}

/// RAII charge against a [`PressureGauge`]: holds the admitted query's
/// estimated cost in the backlog until the query finishes. The
/// closed-loop wrapper over [`SchedTicket`] for callers whose arrival
/// and run start coincide.
#[derive(Debug)]
pub struct AdmissionPermit<'g> {
    gauge: &'g PressureGauge,
    ticket: Option<SchedTicket>,
    started: Instant,
}

impl AdmissionPermit<'_> {
    fn ticket(&self) -> &SchedTicket {
        self.ticket.as_ref().expect("present until settled")
    }

    pub fn verdict(&self) -> AdmissionVerdict {
        self.ticket().verdict
    }

    /// The service-time estimate charged to the backlog.
    pub fn estimated_cost(&self) -> Duration {
        self.ticket().estimated_cost()
    }

    /// The expected wait observed at admission.
    pub fn backlog_at_admission(&self) -> Duration {
        self.ticket().backlog_at_admission()
    }

    /// Release the charge and feed the observed service time back into
    /// the verdict's EWMA. Call on successful completion; a dropped
    /// (not completed) permit releases without calibrating, so panicked
    /// queries don't poison the estimates.
    pub fn complete(mut self) {
        let run = self.started.elapsed();
        if let Some(ticket) = self.ticket.take() {
            self.gauge.settle(ticket, Some(run));
        }
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        if let Some(ticket) = self.ticket.take() {
            self.gauge.settle(ticket, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calibrated(workers: usize, exact_us: u64, degraded_us: u64) -> PressureGauge {
        let g = PressureGauge::new(workers);
        g.ewma_exact_us.store(exact_us, Ordering::Relaxed);
        g.ewma_degraded_us.store(degraded_us, Ordering::Relaxed);
        g
    }

    #[test]
    fn uncalibrated_gauge_admits_everything_exact() {
        let g = PressureGauge::new(4);
        let deadline = Instant::now() + Duration::from_micros(1);
        let p = g.admit(1.0, Some(deadline));
        assert_eq!(p.verdict(), AdmissionVerdict::Exact);
        p.complete();
    }

    #[test]
    fn no_deadline_is_always_exact_but_charged() {
        let g = calibrated(1, 10_000, 2_000);
        let p = g.admit(1.0, None);
        assert_eq!(p.verdict(), AdmissionVerdict::Exact);
        assert!(g.backlog() >= Duration::from_micros(10_000));
        drop(p);
        assert_eq!(g.backlog(), Duration::ZERO);
    }

    #[test]
    fn ladder_exact_degraded_shed() {
        let g = calibrated(1, 10_000, 2_000);
        // plenty of slack: exact
        let p = g.admit(1.0, Some(Instant::now() + Duration::from_millis(100)));
        assert_eq!(p.verdict(), AdmissionVerdict::Exact);
        drop(p);
        // slack fits degraded but not exact
        let p = g.admit(1.0, Some(Instant::now() + Duration::from_micros(5_000)));
        assert_eq!(p.verdict(), AdmissionVerdict::Degraded);
        drop(p);
        // hopeless slack: shed
        let p = g.admit(1.0, Some(Instant::now() + Duration::from_micros(100)));
        assert_eq!(p.verdict(), AdmissionVerdict::Shed);
        drop(p);
        let s = g.stats();
        assert_eq!((s.admitted_exact, s.admitted_degraded, s.shed), (1, 1, 1));
    }

    #[test]
    fn backlog_pushes_later_arrivals_down_the_ladder() {
        let g = calibrated(1, 10_000, 100);
        let deadline = Instant::now() + Duration::from_millis(15);
        let first = g.admit(1.0, Some(deadline));
        assert_eq!(first.verdict(), AdmissionVerdict::Exact);
        // the same deadline no longer fits exact behind 10ms of backlog
        let second = g.admit(1.0, Some(deadline));
        assert_eq!(second.verdict(), AdmissionVerdict::Degraded);
        second.complete();
        first.complete();
    }

    #[test]
    fn cost_factor_scales_the_estimate() {
        let g = calibrated(1, 1_000, 100);
        // a 10× query does not fit where a 1× query would
        let p = g.admit(10.0, Some(Instant::now() + Duration::from_micros(2_000)));
        assert_ne!(p.verdict(), AdmissionVerdict::Exact);
        drop(p);
        let p = g.admit(1.0, Some(Instant::now() + Duration::from_micros(2_000)));
        assert_eq!(p.verdict(), AdmissionVerdict::Exact);
        drop(p);
    }

    #[test]
    fn complete_calibrates_and_releases() {
        let g = PressureGauge::new(2);
        let p = g.admit(1.0, None);
        std::thread::sleep(Duration::from_millis(2));
        p.complete();
        let s = g.stats();
        assert!(s.ewma_exact >= Duration::from_millis(1));
        assert_eq!(g.backlog(), Duration::ZERO);
    }

    #[test]
    fn degenerate_cost_factors_are_clamped() {
        let g = calibrated(1, 1_000, 100);
        for f in [f64::NAN, f64::INFINITY, -3.0, 0.0, 1e300] {
            let p = g.admit(f, Some(Instant::now() + Duration::from_secs(60)));
            drop(p);
        }
        assert_eq!(g.backlog(), Duration::ZERO);
    }
}
