//! Workload generators for the sharding benchmarks: replicas of the
//! Fig-7 heavily-overlapping PC set placed on disjoint attribute tiles,
//! so the constraint-interaction graph factors into one component per
//! tile. The flat engine pays one decomposition over the whole catalog;
//! the sharded engine pays `tiles` independent small ones.

use pc_core::{FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint};
use pc_datagen::intel::cols;
use pc_predicate::{Atom, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `tiles` replicas of an `n_per_tile`-constraint heavily overlapping
/// box set (the Fig-7 style: each box spans 35–75% of its range), every
/// replica confined to its own slice of the device axis with a 2% inner
/// margin, so boxes in different tiles never intersect. Within a tile
/// the boxes overlap heavily — each tile is one hard interaction
/// component of `n_per_tile` constraints.
pub fn tiled_replica_set(
    missing_like: &pc_storage::Table,
    n_per_tile: usize,
    tiles: usize,
    seed: u64,
) -> PcSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PcSet::new(missing_like.schema().clone());
    let (dlo, dhi) = missing_like.attr_range(cols::DEVICE).unwrap_or((0.0, 1.0));
    let (elo, ehi) = missing_like.attr_range(cols::EPOCH).unwrap_or((0.0, 1.0));
    let tile_w = (dhi - dlo) / tiles as f64;
    let espan = ehi - elo;
    for t in 0..tiles {
        let lo = dlo + t as f64 * tile_w + 0.01 * tile_w;
        let span = 0.98 * tile_w;
        for _ in 0..n_per_tile {
            let dw = span * rng.gen_range(0.35..0.75);
            let dstart = lo + rng.gen_range(0.0..(span - dw).max(f64::MIN_POSITIVE));
            let ew = espan * rng.gen_range(0.35..0.75);
            let estart = elo + rng.gen_range(0.0..(espan - ew).max(f64::MIN_POSITIVE));
            set.push(PredicateConstraint::new(
                Predicate::always()
                    .and(Atom::between(cols::DEVICE, dstart, dstart + dw))
                    .and(Atom::between(cols::EPOCH, estart, estart + ew)),
                ValueConstraint::none(),
                FrequencyConstraint::at_most(100),
            ));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_datagen::intel::{self, IntelConfig};

    #[test]
    fn tiles_factor_into_one_component_each() {
        let table = intel::generate(IntelConfig {
            rows: 500,
            ..IntelConfig::default()
        });
        let set = tiled_replica_set(&table, 5, 6, 7);
        assert_eq!(set.len(), 30);
        let components = pc_core::interaction_components(&set);
        assert_eq!(components.len(), 6, "one component per tile");
        assert!(components.iter().all(|c| c.len() == 5));
    }
}
