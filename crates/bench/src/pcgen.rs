//! Workload generators for the sharding benchmarks: replicas of the
//! Fig-7 heavily-overlapping PC set placed on disjoint attribute tiles,
//! so the constraint-interaction graph factors into one component per
//! tile. The flat engine pays one decomposition over the whole catalog;
//! the sharded engine pays `tiles` independent small ones.

use pc_core::{FrequencyConstraint, PcSet, PredicateConstraint, ValueConstraint};
use pc_datagen::intel::cols;
use pc_predicate::{Atom, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// `tiles` replicas of an `n_per_tile`-constraint heavily overlapping
/// box set (the Fig-7 style: each box spans 35–75% of its range), every
/// replica confined to its own slice of the device axis with a 2% inner
/// margin, so boxes in different tiles never intersect. Within a tile
/// the boxes overlap heavily — each tile is one hard interaction
/// component of `n_per_tile` constraints.
pub fn tiled_replica_set(
    missing_like: &pc_storage::Table,
    n_per_tile: usize,
    tiles: usize,
    seed: u64,
) -> PcSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PcSet::new(missing_like.schema().clone());
    let (dlo, dhi) = missing_like.attr_range(cols::DEVICE).unwrap_or((0.0, 1.0));
    let (elo, ehi) = missing_like.attr_range(cols::EPOCH).unwrap_or((0.0, 1.0));
    let tile_w = (dhi - dlo) / tiles as f64;
    let espan = ehi - elo;
    for t in 0..tiles {
        let lo = dlo + t as f64 * tile_w + 0.01 * tile_w;
        let span = 0.98 * tile_w;
        for _ in 0..n_per_tile {
            let dw = span * rng.gen_range(0.35..0.75);
            let dstart = lo + rng.gen_range(0.0..(span - dw).max(f64::MIN_POSITIVE));
            let ew = espan * rng.gen_range(0.35..0.75);
            let estart = elo + rng.gen_range(0.0..(espan - ew).max(f64::MIN_POSITIVE));
            set.push(PredicateConstraint::new(
                Predicate::always()
                    .and(Atom::between(cols::DEVICE, dstart, dstart + dw))
                    .and(Atom::between(cols::EPOCH, estart, estart + ew)),
                ValueConstraint::none(),
                FrequencyConstraint::at_most(100),
            ));
        }
    }
    set
}

/// 3-attr constraint for the ordering workloads: a box in the x–y plane
/// plus a value band `[vlo, vhi]` on the third attribute.
#[allow(clippy::too_many_arguments)]
fn ordering_pc(
    xlo: f64,
    xhi: f64,
    ylo: f64,
    yhi: f64,
    vlo: f64,
    vhi: f64,
    forced: bool,
    ku: u64,
) -> PredicateConstraint {
    let freq = if forced {
        FrequencyConstraint::between(1, ku)
    } else {
        FrequencyConstraint::at_most(ku)
    };
    PredicateConstraint::new(
        Predicate::always()
            .and(Atom::between(0, xlo, xhi))
            .and(Atom::between(1, ylo, yhi))
            .and(Atom::between(2, vlo, vhi)),
        pc_core::ValueConstraint::none().with(2, pc_predicate::Interval::closed(vlo, vhi)),
        freq,
    )
}

fn ordering_schema_and_domain() -> (pc_predicate::Schema, pc_predicate::Region) {
    use pc_predicate::{AttrType, Interval, Region, Schema};
    let schema = Schema::new(vec![
        ("x", AttrType::Int),
        ("y", AttrType::Int),
        ("v", AttrType::Int),
    ]);
    let mut domain = Region::full(&schema);
    domain.set_interval(0, Interval::closed(0.0, 12.0));
    domain.set_interval(1, Interval::closed(0.0, 12.0));
    domain.set_interval(2, Interval::closed(0.0, 20.0));
    (schema, domain)
}

/// The adversarial catalog for estimate-guided ordering (the shape of the
/// `prop_ordering.rs` skewed regression): wide, uninformative constraints
/// declared first, the selective ones last.
///
/// * a non-forced cover box — finite bounds, and one joint allocation
///   MILP (it couples every constraint into a single shard);
/// * a 3×3 cross-hatch of wide forced strips — in declaration order they
///   fragment the plane before anything selective has been decided;
/// * two pentagon "rings" (only cyclic neighbours overlap) sharing one
///   value band: an odd cycle's covering LP is fractional, so the
///   allocation MILP genuinely branches;
/// * three tiny slivers declared last — the cells estimate order decides
///   (and the MILP branches) first.
pub fn skewed_ordering_set() -> PcSet {
    let (schema, domain) = ordering_schema_and_domain();
    let mut set = PcSet::new(schema);
    let mut pcs = vec![ordering_pc(0.0, 12.0, 0.0, 12.0, 0.0, 20.0, false, 9)];
    for i in 0..3 {
        let lo = 4.0 * i as f64;
        pcs.push(ordering_pc(lo, lo + 4.0, 0.0, 12.0, 0.0, 20.0, true, 9));
        pcs.push(ordering_pc(0.0, 12.0, lo, lo + 4.0, 0.0, 20.0, true, 9));
    }
    // pentagon ring at (0, 4)
    pcs.push(ordering_pc(0.0, 4.0, 9.0, 12.0, 5.0, 6.0, true, 1));
    pcs.push(ordering_pc(3.0, 8.0, 9.0, 11.0, 5.0, 6.0, true, 1));
    pcs.push(ordering_pc(6.0, 8.0, 5.0, 10.0, 5.0, 6.0, true, 1));
    pcs.push(ordering_pc(1.0, 7.0, 4.0, 6.0, 5.0, 6.0, true, 1));
    pcs.push(ordering_pc(0.0, 2.0, 5.0, 10.0, 5.0, 6.0, true, 1));
    // tiny 4×4 ring at (8, 0)
    pcs.push(ordering_pc(8.0, 10.0, 3.0, 4.0, 5.0, 6.0, true, 1));
    pcs.push(ordering_pc(10.0, 12.0, 2.0, 4.0, 5.0, 6.0, true, 1));
    pcs.push(ordering_pc(11.0, 12.0, 0.0, 2.0, 5.0, 6.0, true, 1));
    pcs.push(ordering_pc(9.0, 11.0, 0.0, 1.0, 5.0, 6.0, true, 1));
    pcs.push(ordering_pc(8.0, 9.0, 1.0, 3.0, 5.0, 6.0, true, 1));
    // tiny slivers declared last
    pcs.push(ordering_pc(1.0, 2.0, 10.0, 11.0, 15.0, 16.0, true, 1));
    pcs.push(ordering_pc(7.0, 8.0, 9.0, 10.0, 17.0, 18.0, true, 1));
    pcs.push(ordering_pc(10.0, 11.0, 5.0, 6.0, 12.0, 13.0, true, 1));
    for pc in pcs {
        set.push(pc);
    }
    set.set_domain(domain);
    set
}

/// The control for [`skewed_ordering_set`]: the same constraint count on
/// the same domain, but every box a mid-size random rectangle — near-equal
/// volumes, so the estimate order is close to a no-op and ordering on/off
/// should measure the same work.
pub fn uniform_ordering_set(seed: u64) -> PcSet {
    let (schema, domain) = ordering_schema_and_domain();
    let mut set = PcSet::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    set.push(ordering_pc(0.0, 12.0, 0.0, 12.0, 0.0, 20.0, false, 9));
    for _ in 0..19 {
        let xlo = rng.gen_range(0..8) as f64;
        let ylo = rng.gen_range(0..8) as f64;
        let vlo = rng.gen_range(0..16) as f64;
        set.push(ordering_pc(
            xlo,
            xlo + 4.0,
            ylo,
            ylo + 4.0,
            vlo,
            vlo + 3.0,
            true,
            4,
        ));
    }
    set.set_domain(domain);
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_datagen::intel::{self, IntelConfig};

    #[test]
    fn tiles_factor_into_one_component_each() {
        let table = intel::generate(IntelConfig {
            rows: 500,
            ..IntelConfig::default()
        });
        let set = tiled_replica_set(&table, 5, 6, 7);
        assert_eq!(set.len(), 30);
        let components = pc_core::interaction_components(&set);
        assert_eq!(components.len(), 6, "one component per tile");
        assert!(components.iter().all(|c| c.len() == 5));
    }
}
