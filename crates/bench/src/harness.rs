//! Shared evaluation plumbing: the §6.1 protocol.
//!
//! Every framework summarizes the *actual* missing partition with a
//! comparable information budget (`n` PCs ↔ `n` sample rows ↔ `n` histogram
//! buckets), then answers a workload of random aggregate queries about the
//! missing rows. We record, per method: the **failure rate** (how often the
//! truth escapes the interval) and the **median over-estimation rate**
//! (`upper / truth`, closer to 1 is tighter — only meaningful while
//! failures are rare).

use pc_baselines::{
    Ci, EquiWidthHistogram, Estimate, GaussianMixture, StratifiedSample, UniformSample,
};
use pc_core::{BoundEngine, BoundError, BoundOptions, PcSet};
use pc_datagen::pcgen;
use pc_storage::{evaluate, AggKind, AggQuery, AggResult, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Workload scale knobs. `quick()` keeps the full pipeline honest in CI;
/// `full()` approaches the paper's workload sizes (scaled to the synthetic
/// data and the from-scratch solvers — see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Rows in each generated dataset.
    pub rows: usize,
    /// Queries per workload.
    pub queries: usize,
    /// Predicate constraints for Corr-PC (and sample rows at 1×).
    pub n_pc: usize,
    /// Predicate constraints for Rand-PC (kept smaller: overlapping sets
    /// decompose super-linearly).
    pub n_rand_pc: usize,
    /// GMM repetitions.
    pub gmm_reps: usize,
}

impl Scale {
    /// CI-friendly sizes (seconds, not minutes).
    pub fn quick() -> Self {
        Scale {
            rows: 8_000,
            queries: 60,
            n_pc: 100,
            n_rand_pc: 40,
            gmm_reps: 5,
        }
    }

    /// Paper-shaped sizes.
    pub fn full() -> Self {
        Scale {
            rows: 60_000,
            queries: 1000,
            n_pc: 2000,
            n_rand_pc: 100,
            gmm_reps: 10,
        }
    }
}

/// Per-method workload outcome.
#[derive(Debug, Clone)]
pub struct MethodSummary {
    /// Method display name (paper notation: Corr-PC, US-1n, ST-10p, …).
    pub name: String,
    /// Queries whose true value escaped the interval.
    pub failures: usize,
    /// Total queries evaluated.
    pub total: usize,
    /// Median of `upper / truth` over queries with positive truth.
    pub median_over: f64,
}

impl MethodSummary {
    /// Failure rate in percent.
    pub fn failure_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.failures as f64 / self.total as f64
        }
    }
}

/// Median of a slice (0 if empty).
pub fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
    xs[xs.len() / 2]
}

/// Summarize `(lo, hi)` intervals against truths.
pub fn summarize(name: &str, results: &[(f64, f64, f64)]) -> MethodSummary {
    let mut failures = 0;
    let mut overs = Vec::new();
    for &(lo, hi, truth) in results {
        if truth < lo - 1e-6 || truth > hi + 1e-6 {
            failures += 1;
        }
        if truth > 0.0 && hi.is_finite() {
            overs.push(hi / truth);
        }
    }
    MethodSummary {
        name: name.to_string(),
        failures,
        total: results.len(),
        median_over: median(&mut overs),
    }
}

/// The estimators compared across the accuracy experiments.
pub enum Method {
    /// Corr-PC: equi-cardinality grid PCs on the correlated attributes.
    CorrPc,
    /// Rand-PC: random overlapping PCs plus a coarse cover.
    RandPc,
    /// Uniform sampling at `mult × n_pc` rows with the given CI scheme.
    Us {
        /// Sample size multiplier (1 → `n_pc` rows).
        mult: usize,
        /// Interval scheme.
        ci: Ci,
    },
    /// Stratified sampling over the Corr-PC grid cells.
    St {
        /// Sample size multiplier.
        mult: usize,
        /// Interval scheme.
        ci: Ci,
    },
    /// Histogram, conservative hard-bound mode.
    HistHard,
    /// Histogram, independence-assumption mode (Table 2's "Hist").
    HistInd,
    /// Gaussian-mixture generative model.
    Gmm,
}

impl Method {
    /// Paper-style display name.
    pub fn name(&self) -> String {
        match self {
            Method::CorrPc => "Corr-PC".into(),
            Method::RandPc => "Rand-PC".into(),
            Method::Us { mult, ci } => format!("US-{mult}{}", ci_suffix(ci)),
            Method::St { mult, ci } => format!("ST-{mult}{}", ci_suffix(ci)),
            Method::HistHard => "Histogram".into(),
            Method::HistInd => "Hist".into(),
            Method::Gmm => "Gen".into(),
        }
    }
}

fn ci_suffix(ci: &Ci) -> &'static str {
    match ci {
        Ci::Parametric(_) => "p",
        Ci::NonParametric(_) => "n",
    }
}

/// A fully prepared evaluation context for one missing partition.
pub struct Workbench {
    /// The missing partition `R?` every method summarizes and is scored
    /// against.
    pub missing: Table,
    /// Attributes used for partitioning/predicates.
    pub pred_attrs: Vec<usize>,
    /// The aggregated attribute.
    pub agg_attr: usize,
    corr_set: PcSet,
    rand_set: Option<PcSet>,
    strata: Vec<Vec<usize>>,
    scale: Scale,
    seed: u64,
}

impl Workbench {
    /// Prepare PC sets and strata for a missing partition.
    pub fn new(
        missing: Table,
        pred_attrs: Vec<usize>,
        agg_attr: usize,
        scale: Scale,
        seed: u64,
        with_rand_pc: bool,
    ) -> Self {
        let corr_set = pcgen::corr_pc(&missing, &pred_attrs, scale.n_pc);
        let strata = pcgen::corr_partition(&missing, &pred_attrs, scale.n_pc);
        let rand_set = with_rand_pc.then(|| {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            pcgen::rand_pc(&missing, &pred_attrs, scale.n_rand_pc, &mut rng)
        });
        Workbench {
            missing,
            pred_attrs,
            agg_attr,
            corr_set,
            rand_set,
            strata,
            scale,
            seed,
        }
    }

    /// The prepared Corr-PC set.
    pub fn corr_set(&self) -> &PcSet {
        &self.corr_set
    }

    /// Evaluate a workload under one method, producing
    /// `(lo, hi, truth)` triples.
    pub fn run(&self, method: &Method, queries: &[AggQuery]) -> Vec<(f64, f64, f64)> {
        let truths: Vec<f64> = queries
            .iter()
            .map(|q| evaluate(&self.missing, q).unwrap_or(0.0))
            .collect();
        let intervals: Vec<(f64, f64)> = match method {
            Method::CorrPc => self.run_pc(&self.corr_set, queries),
            Method::RandPc => {
                let set = self
                    .rand_set
                    .as_ref()
                    .expect("workbench built without Rand-PC");
                self.run_pc(set, queries)
            }
            Method::Us { mult, ci } => {
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x05a1);
                let sample = UniformSample::draw(&self.missing, mult * self.scale.n_pc, &mut rng);
                queries
                    .iter()
                    .map(|q| est_pair(sample.estimate(q, *ci)))
                    .collect()
            }
            Method::St { mult, ci } => {
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x57a7);
                let sample = StratifiedSample::draw(
                    &self.missing,
                    &self.strata,
                    mult * self.scale.n_pc,
                    &mut rng,
                );
                queries
                    .iter()
                    .map(|q| est_pair(sample.estimate(q, *ci)))
                    .collect()
            }
            Method::HistHard | Method::HistInd => {
                let buckets = (self.scale.n_pc / self.missing.schema().width().max(1)).max(8);
                let hist = EquiWidthHistogram::build(&self.missing, buckets);
                queries
                    .iter()
                    .map(|q| {
                        let e = match method {
                            Method::HistHard => hist.bound_conservative(q),
                            _ => hist.estimate_independent(q),
                        };
                        est_pair(e)
                    })
                    .collect()
            }
            Method::Gmm => {
                let model = GaussianMixture::fit(&self.missing, 5, 25);
                let mut rng = StdRng::seed_from_u64(self.seed ^ 0x6e6e);
                // pre-generate the synthetic instances once; each query is
                // then evaluated against every instance
                let instances: Vec<Table> = (0..self.scale.gmm_reps)
                    .map(|_| model.sample_table(&self.missing, self.missing.len(), &mut rng))
                    .collect();
                queries
                    .iter()
                    .map(|q| {
                        let mut lo = f64::INFINITY;
                        let mut hi = f64::NEG_INFINITY;
                        for inst in &instances {
                            let v = evaluate(inst, q).unwrap_or(0.0);
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        (lo, hi)
                    })
                    .collect()
            }
        };
        intervals
            .into_iter()
            .zip(truths)
            .map(|((lo, hi), t)| (lo, hi, t))
            .collect()
    }

    /// PC bounding with error tolerance: `EmptyAggregate` means the
    /// constraints prove no row matches → the interval is `[0, 0]` for
    /// COUNT/SUM-style workloads.
    fn run_pc(&self, set: &PcSet, queries: &[AggQuery]) -> Vec<(f64, f64)> {
        let engine = BoundEngine::with_options(
            set,
            BoundOptions {
                check_closure: false, // generated sets are closed by construction
                ..BoundOptions::default()
            },
        );
        queries
            .iter()
            .map(|q| match engine.bound(q) {
                Ok(report) => (report.range.lo, report.range.hi),
                Err(BoundError::EmptyAggregate) => (0.0, 0.0),
                Err(e) => panic!("PC bounding failed on generated constraints: {e}"),
            })
            .collect()
    }

    /// Run + summarize in one go.
    pub fn summarize_method(&self, method: &Method, queries: &[AggQuery]) -> MethodSummary {
        summarize(&method.name(), &self.run(method, queries))
    }
}

fn est_pair(e: Estimate) -> (f64, f64) {
    (e.lo, e.hi)
}

/// Evaluate a COUNT or SUM truth over a table, unwrapping empties to 0.
pub fn truth_of(table: &Table, q: &AggQuery) -> f64 {
    match evaluate(table, q) {
        AggResult::Value(v) => v,
        AggResult::Empty => 0.0,
    }
}

/// The standard workload: `n` random queries of one aggregate kind over
/// the missing partition's predicate attributes.
pub fn workload(
    missing: &Table,
    pred_attrs: &[usize],
    agg: AggKind,
    agg_attr: usize,
    n: usize,
    seed: u64,
) -> Vec<AggQuery> {
    let qg = pc_datagen::QueryGenerator::from_table(missing, pred_attrs);
    let mut rng = StdRng::seed_from_u64(seed);
    qg.gen_workload(agg, agg_attr, n, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_datagen::intel::{self, cols, IntelConfig};
    use pc_datagen::missing::remove_top_fraction;

    fn bench() -> Workbench {
        let t = intel::generate(IntelConfig {
            rows: 4_000,
            seed: 31,
            ..IntelConfig::default()
        });
        let (missing, _) = remove_top_fraction(&t, cols::LIGHT, 0.3);
        Workbench::new(
            missing,
            vec![cols::DEVICE, cols::EPOCH],
            cols::LIGHT,
            Scale {
                rows: 4_000,
                queries: 20,
                n_pc: 64,
                n_rand_pc: 24,
                gmm_reps: 3,
            },
            9,
            true,
        )
    }

    #[test]
    fn corr_pc_never_fails_and_is_tight() {
        let wb = bench();
        let queries = workload(
            &wb.missing,
            &wb.pred_attrs,
            AggKind::Count,
            cols::LIGHT,
            20,
            5,
        );
        let s = wb.summarize_method(&Method::CorrPc, &queries);
        assert_eq!(s.failures, 0, "hard bounds cannot fail");
        assert!(
            s.median_over >= 1.0 && s.median_over < 4.0,
            "{}",
            s.median_over
        );
    }

    #[test]
    fn rand_pc_never_fails_but_looser() {
        let wb = bench();
        let queries = workload(
            &wb.missing,
            &wb.pred_attrs,
            AggKind::Sum,
            cols::LIGHT,
            10,
            6,
        );
        let corr = wb.summarize_method(&Method::CorrPc, &queries);
        let rand = wb.summarize_method(&Method::RandPc, &queries);
        assert_eq!(rand.failures, 0);
        assert!(
            rand.median_over >= corr.median_over * 0.9,
            "random PCs should not beat informed ones: {} vs {}",
            rand.median_over,
            corr.median_over
        );
    }

    #[test]
    fn all_methods_produce_summaries() {
        let wb = bench();
        let queries = workload(&wb.missing, &wb.pred_attrs, AggKind::Sum, cols::LIGHT, 8, 7);
        for m in [
            Method::CorrPc,
            Method::Us {
                mult: 1,
                ci: Ci::NonParametric(0.9999),
            },
            Method::St {
                mult: 1,
                ci: Ci::NonParametric(0.9999),
            },
            Method::HistHard,
            Method::HistInd,
            Method::Gmm,
        ] {
            let s = wb.summarize_method(&m, &queries);
            assert_eq!(s.total, 8, "{}", s.name);
        }
    }

    #[test]
    fn summarize_counts_failures() {
        let s = summarize("x", &[(0.0, 10.0, 5.0), (0.0, 1.0, 5.0), (4.0, 6.0, 5.0)]);
        assert_eq!(s.failures, 1);
        assert_eq!(s.total, 3);
        assert!((s.failure_pct() - 33.333).abs() < 0.01);
    }
}
