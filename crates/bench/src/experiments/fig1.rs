//! **Figure 1**: relative error of simple extrapolation as the fraction of
//! (value-correlated) missing data grows. The motivating plot of §1 — by
//! 50% missing, extrapolation is off by over half, silently.

use super::{fmt, intel_missing};
use crate::harness::Scale;
use crate::ExpTable;
use pc_baselines::extrapolate::{relative_error, simple_extrapolate};
use pc_datagen::intel::cols;
use pc_predicate::Predicate;
use pc_storage::{evaluate, AggKind, AggQuery};

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let mut rows = Vec::new();
    let q = AggQuery::new(AggKind::Sum, cols::LIGHT, Predicate::always());
    for i in 1..=9 {
        let r = f64::from(i) / 10.0;
        let (missing, present) = intel_missing(scale, r);
        let observed = evaluate(&present, &q).unwrap_or(0.0);
        let truth = observed + evaluate(&missing, &q).unwrap_or(0.0);
        let est = simple_extrapolate(observed, r);
        rows.push(vec![fmt(r), fmt(relative_error(est, truth))]);
    }
    ExpTable {
        id: "fig1",
        title: "Simple extrapolation error vs fraction of correlated missing data",
        header: vec!["missing_frac".into(), "relative_error".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_with_missing_fraction() {
        let t = run(&Scale::quick());
        assert_eq!(t.rows.len(), 9);
        let first: f64 = t.rows[0][1].parse().unwrap();
        let last: f64 = t.rows[8][1].parse().unwrap();
        assert!(
            last > 2.0 * first,
            "correlated missingness must hurt extrapolation increasingly: {first} → {last}"
        );
    }
}
