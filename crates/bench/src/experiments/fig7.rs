//! **Figure 7**: cells evaluated during decomposition of ~20 heavily
//! overlapping PCs — naive 2ⁿ enumeration vs DFS pruning vs DFS plus the
//! rewrite rule. The paper reports >1000× reduction; the counter is
//! satisfiability-solver invocations.

use super::intel_missing;
use crate::harness::Scale;
use crate::ExpTable;
use pc_core::{
    decompose, FrequencyConstraint, PcSet, PredicateConstraint, Strategy, ValueConstraint,
};
use pc_datagen::intel::cols;
use pc_predicate::{Atom, Predicate, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Heavily overlapping random boxes over (device, epoch), as in §6.4:
/// "20 random PCs that are very significantly overlapping".
pub fn overlapping_set(missing_like: &pc_storage::Table, n: usize, seed: u64) -> PcSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = PcSet::new(missing_like.schema().clone());
    let attrs = [cols::DEVICE, cols::EPOCH];
    let domains: Vec<(f64, f64)> = attrs
        .iter()
        .map(|&a| missing_like.attr_range(a).unwrap_or((0.0, 1.0)))
        .collect();
    for _ in 0..n {
        let mut pred = Predicate::always();
        for (&attr, &(lo, hi)) in attrs.iter().zip(&domains) {
            let span = hi - lo;
            // wide boxes (40-90% of the domain) to force overlap
            let w = span * rng.gen_range(0.4..0.9);
            let start = lo + rng.gen_range(0.0..(span - w).max(f64::MIN_POSITIVE));
            pred = pred.and(Atom::between(attr, start, start + w));
        }
        set.push(PredicateConstraint::new(
            pred,
            ValueConstraint::none(),
            FrequencyConstraint::at_most(100),
        ));
    }
    set
}

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    // naive enumerates 2^n cells; keep n tractable in quick mode
    let n = if scale.queries >= 500 { 20 } else { 14 };
    let (missing, _) = intel_missing(scale, 0.3);
    let set = overlapping_set(&missing, n, 7);
    let base = Region::full(set.schema());
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("No Optimization", Strategy::Naive),
        ("DFS", Strategy::Dfs),
        ("DFS + Re-writing", Strategy::DfsRewrite),
    ] {
        let (cells, stats) =
            decompose(&set, &base, strategy).expect("n is within the naive strategy's limit");
        rows.push(vec![
            name.into(),
            stats.sat_checks.to_string(),
            cells.len().to_string(),
        ]);
    }
    ExpTable {
        id: "fig7",
        title: "Cells evaluated during decomposition of heavily overlapping PCs",
        header: vec![
            "strategy".into(),
            "sat_checks".into(),
            "satisfiable_cells".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_reduces_checks_dramatically() {
        let mut s = Scale::quick();
        s.rows = 2000;
        let t = run(&s);
        let naive: f64 = t.rows[0][1].parse().unwrap();
        let dfs: f64 = t.rows[1][1].parse().unwrap();
        let rw: f64 = t.rows[2][1].parse().unwrap();
        assert!(
            naive > 10.0 * rw,
            "rewrite must prune ≫: naive {naive} vs {rw}"
        );
        assert!(dfs >= rw, "rewrite only removes checks");
        // all strategies agree on the satisfiable cells
        assert_eq!(t.rows[0][2], t.rows[1][2]);
        assert_eq!(t.rows[0][2], t.rows[2][2]);
    }
}
