//! **Figure 9**: MIN / MAX / AVG queries under Corr-PC. The paper's
//! finding: PCs give the *optimal* bound for MIN and MAX (value ranges
//! capture the spread exactly) and competitive AVG bounds.

use super::{fmt, intel_missing};
use crate::harness::{workload, Scale};
use crate::ExpTable;
use pc_core::{BoundEngine, BoundError, BoundOptions};
use pc_datagen::intel::cols;
use pc_datagen::pcgen;
use pc_storage::{evaluate, AggKind, AggQuery, AggResult, Table};

fn over_estimation(agg: AggKind, lo: f64, hi: f64, truth: f64) -> Option<f64> {
    match agg {
        // MAX is judged by how far the upper bound overshoots; MIN by how
        // far the lower bound undershoots
        AggKind::Max | AggKind::Avg => (truth > 0.0 && hi.is_finite()).then(|| hi / truth),
        AggKind::Min => (lo > 0.0 && truth > 0.0).then(|| truth / lo),
        _ => unreachable!("fig9 covers MIN/MAX/AVG"),
    }
}

fn eval_queries(
    set: &pc_core::PcSet,
    missing: &Table,
    agg: AggKind,
    queries: &[AggQuery],
) -> (usize, usize, f64) {
    let engine = BoundEngine::with_options(
        set,
        BoundOptions {
            check_closure: false,
            ..BoundOptions::default()
        },
    );
    let mut failures = 0;
    let mut total = 0;
    let mut overs = Vec::new();
    for q in queries {
        let truth = match evaluate(missing, q) {
            AggResult::Value(v) => v,
            AggResult::Empty => continue, // no rows matched; nothing to score
        };
        total += 1;
        match engine.bound(q) {
            Ok(r) => {
                if !r.range.contains(truth) {
                    failures += 1;
                }
                if let Some(o) = over_estimation(agg, r.range.lo, r.range.hi, truth) {
                    overs.push(o);
                }
            }
            Err(BoundError::EmptyAggregate) => failures += 1, // truth existed!
            Err(e) => panic!("bounding failed: {e}"),
        }
    }
    (failures, total, crate::harness::median(&mut overs))
}

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let (missing, _) = intel_missing(scale, 0.5);
    let attrs = [cols::DEVICE, cols::EPOCH];
    let set = pcgen::corr_pc(&missing, &attrs, scale.n_pc);
    let mut rows = Vec::new();
    for agg in [AggKind::Min, AggKind::Max, AggKind::Avg] {
        let queries = workload(&missing, &attrs, agg, cols::LIGHT, scale.queries, 900);
        let (failures, total, med) = eval_queries(&set, &missing, agg, &queries);
        rows.push(vec![
            agg.name().into(),
            format!("{failures}/{total}"),
            fmt(med),
        ]);
    }
    ExpTable {
        id: "fig9",
        title: "MIN/MAX/AVG bounds under Corr-PC (failures and median over-estimation)",
        header: vec!["agg".into(), "failures".into(), "median_over".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_optimal_avg_competitive() {
        let mut s = Scale::quick();
        s.rows = 4000;
        s.queries = 25;
        s.n_pc = 64;
        let t = run(&s);
        for row in &t.rows {
            let failures = row[1].split('/').next().unwrap();
            assert_eq!(failures, "0", "{} must not fail", row[0]);
        }
        let max_over: f64 = t.rows[1][2].parse().unwrap();
        assert!(
            max_over < 1.6,
            "MAX bounds should be near-optimal, got {max_over}"
        );
    }
}
