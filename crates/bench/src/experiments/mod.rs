//! One module per table/figure of the paper's evaluation. Each exposes
//! `run(scale) -> ExpTable` (the index lives in DESIGN.md).

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;

use crate::harness::Scale;
use pc_datagen::airbnb::{self, AirbnbConfig};
use pc_datagen::border::{self, BorderConfig};
use pc_datagen::intel::{self, IntelConfig};
use pc_datagen::missing::remove_top_fraction;
use pc_storage::Table;

/// The Intel-like table at the configured scale.
pub fn intel_table(scale: &Scale) -> Table {
    intel::generate(IntelConfig {
        rows: scale.rows,
        ..IntelConfig::default()
    })
}

/// Intel-like data with fraction `r` removed, correlated with `light`
/// (the paper's removal): returns `(missing, present)`.
pub fn intel_missing(scale: &Scale, r: f64) -> (Table, Table) {
    remove_top_fraction(&intel_table(scale), intel::cols::LIGHT, r)
}

/// Airbnb-like data with fraction `r` removed, correlated with `price`.
pub fn airbnb_missing(scale: &Scale, r: f64) -> (Table, Table) {
    let t = airbnb::generate(AirbnbConfig {
        rows: scale.rows,
        ..AirbnbConfig::default()
    });
    remove_top_fraction(&t, airbnb::cols::PRICE, r)
}

/// Border-crossing-like data with fraction `r` removed, correlated with
/// `value`.
pub fn border_missing(scale: &Scale, r: f64) -> (Table, Table) {
    let t = border::generate(BorderConfig {
        rows: scale.rows,
        ..BorderConfig::default()
    });
    remove_top_fraction(&t, border::cols::VALUE, r)
}

/// Format a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return "inf".into();
    }
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}
