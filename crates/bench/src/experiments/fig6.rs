//! **Figure 6**: robustness to mis-specified information. For the PC
//! methods, Gaussian noise of 0–3 "standard deviations" corrupts the
//! value-range endpoints; for the sampling baseline, the sample is drawn
//! from a pool missing the top tail (a mis-estimated spread, §6.3.2).
//!
//! The paper's qualitative finding reproduced here: the sampling interval
//! degrades fastest under spread mis-estimation, while PC bounds absorb
//! endpoint noise (overlapping constraints additionally clamp each other
//! via the most-restrictive rule). The noise *calibration* is
//! under-specified in the paper and our synthetic cells carry more slack
//! than the real Intel data, so the PC failure onset sits at larger noise
//! than the paper's — see EXPERIMENTS.md.

use super::intel_missing;
use crate::harness::{summarize, workload, Scale};
use crate::ExpTable;
use pc_baselines::{Ci, UniformSample};
use pc_core::{BoundEngine, BoundError, BoundOptions, PcSet};
use pc_datagen::intel::cols;
use pc_datagen::pcgen;
use pc_predicate::AttrType;
use pc_storage::{evaluate, AggKind, AggQuery, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pc_results(set: &PcSet, queries: &[AggQuery], missing: &Table) -> Vec<(f64, f64, f64)> {
    let engine = BoundEngine::with_options(
        set,
        BoundOptions {
            check_closure: false,
            ..BoundOptions::default()
        },
    );
    queries
        .iter()
        .map(|q| {
            let truth = evaluate(missing, q).unwrap_or(0.0);
            match engine.bound(q) {
                Ok(r) => (r.range.lo, r.range.hi, truth),
                Err(BoundError::EmptyAggregate) => (0.0, 0.0, truth),
                // noise can force a count into a value-impossible cell;
                // the constraints are then detectably contradictory and no
                // interval exists — score it as a failure (empty interval)
                Err(BoundError::Infeasible) => (f64::INFINITY, f64::NEG_INFINITY, truth),
                Err(e) => panic!("bounding failed: {e}"),
            }
        })
        .collect()
}

/// The sampling-side corruption: a sampling pool that misses the top
/// `10%·k` of the aggregate attribute. A sample that never sees the
/// extremes under-estimates the spread — "functionally equivalent to an
/// inaccurate PC" (§6.3.2) — and its range-based interval fails on
/// queries whose mass sits in the tail.
fn truncated_pool(table: &Table, attr: usize, level: u32) -> Table {
    debug_assert_eq!(table.schema().attr_type(attr), AttrType::Float);
    if level == 0 {
        return table.clone();
    }
    let mut values: Vec<f64> = (0..table.len()).map(|r| table.encoded(r, attr)).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let keep = 1.0 - 0.1 * f64::from(level);
    let cut = values[(((values.len() - 1) as f64) * keep) as usize];
    let rows: Vec<usize> = (0..table.len())
        .filter(|&r| table.encoded(r, attr) <= cut)
        .collect();
    table.select(&rows)
}

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let (missing, _) = intel_missing(scale, 0.5);
    let attrs = [cols::DEVICE, cols::EPOCH];
    let queries = workload(
        &missing,
        &attrs,
        AggKind::Sum,
        cols::LIGHT,
        scale.queries,
        400,
    );
    let corr = pcgen::corr_pc(&missing, &attrs, scale.n_pc);
    // the paper's Overlapping-PC is a small set (10) of overlapping
    // constraints; widened grid cells overlap their neighbours
    let overlapping = pcgen::overlapping_pc(&missing, &[cols::EPOCH], 10, 1.0);

    // Absolute Gaussian noise on the aggregate attribute's range
    // endpoints, normalized by the constraint count: the failure
    // probability is governed by noise-vs-slack where slack grows with
    // √cells for query-spanning bounds, so σ ∝ √(n_pc/2000) keeps the
    // quick and full workloads on the same failure curve as the paper's
    // 2000-constraint setup.
    let sigma_scale = (scale.n_pc as f64 / 2000.0).sqrt();
    let light_sd = pcgen::attr_sigmas(&missing)[cols::LIGHT];
    const DRAWS: u64 = 5;
    let mut rows = Vec::new();
    for level in 0..=3u32 {
        let k = f64::from(level);
        let mut sigmas = vec![0.0; missing.schema().width()];
        sigmas[cols::LIGHT] = k * light_sd * sigma_scale;
        let mut corr_fail = 0.0;
        let mut overlap_fail = 0.0;
        let mut us_fail = 0.0;
        for draw in 0..DRAWS {
            let mut rng = StdRng::seed_from_u64(900 + u64::from(level) * 31 + draw);

            let noisy_corr = pcgen::perturb_values(&corr, &sigmas, &mut rng);
            corr_fail += summarize("", &pc_results(&noisy_corr, &queries, &missing)).failure_pct();

            let noisy_overlap = pcgen::perturb_values(&overlapping, &sigmas, &mut rng);
            overlap_fail +=
                summarize("", &pc_results(&noisy_overlap, &queries, &missing)).failure_pct();

            // US-10n drawing from a pool that misses the top tail — the
            // sample's estimated spread under-covers the true extremes
            let pool = truncated_pool(&missing, cols::LIGHT, level);
            let sample = UniformSample::draw_with_population(
                &pool,
                10 * scale.n_pc,
                missing.len() as u64,
                &mut rng,
            );
            let results: Vec<(f64, f64, f64)> = queries
                .iter()
                .map(|q| {
                    let e = sample.estimate(q, Ci::NonParametric(0.99));
                    let truth = evaluate(&missing, q).unwrap_or(0.0);
                    (e.lo, e.hi, truth)
                })
                .collect();
            us_fail += summarize("", &results).failure_pct();
        }
        let d = DRAWS as f64;
        for (name, total) in [
            ("Corr-PC", corr_fail),
            ("Overlapping-PC", overlap_fail),
            ("US-10n", us_fail),
        ] {
            rows.push(vec![
                level.to_string(),
                name.into(),
                format!("{:.1}", total / d),
            ]);
        }
    }
    ExpTable {
        id: "fig6",
        title: "Failure rate under 0-3 SD noise in constraints / sample values (SUM, Intel)",
        header: vec!["noise_sd".into(), "method".into(), "failure_pct".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_no_pc_failures_and_noise_hurts() {
        let mut s = Scale::quick();
        s.queries = 25;
        s.rows = 4000;
        s.n_pc = 64;
        let t = run(&s);
        // level 0: PCs cannot fail
        for row in t.rows.iter().filter(|r| r[0] == "0") {
            if row[1].contains("PC") {
                assert_eq!(row[2], "0.0", "{} must not fail without noise", row[1]);
            }
        }
        // shape: 4 levels × 3 methods, all failure rates valid percentages.
        // (Whether the corruption *bites* is scale-dependent: at this tiny
        // test scale the small-sample interval is wide enough to absorb
        // the truncated pool — the full-scale run in EXPERIMENTS.md shows
        // US-10n failing 25→59%.)
        assert_eq!(t.rows.len(), 12);
        for row in &t.rows {
            let pct: f64 = row[2].parse().unwrap();
            assert!((0.0..=100.0).contains(&pct), "{row:?}");
        }
    }
}
