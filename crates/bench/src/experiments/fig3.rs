//! **Figure 3**: failure rate and median over-estimation of 1000 random
//! COUNT(*) queries on the Intel-like dataset, as the missing fraction
//! varies — Corr-PC and Rand-PC (hard bounds, zero failures) vs US-1n,
//! ST-1n, and the conservative histogram.

use super::{fmt, intel_missing};
use crate::harness::{workload, Method, Scale, Workbench};
use crate::ExpTable;
use pc_baselines::Ci;
use pc_datagen::intel::cols;
use pc_storage::AggKind;

/// Shared driver for Figs 3 (COUNT) and 4 (SUM).
pub fn run_agg(scale: &Scale, agg: AggKind) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for i in [1u32, 3, 5, 7, 9] {
        let r = f64::from(i) / 10.0;
        let (missing, _) = intel_missing(scale, r);
        let wb = Workbench::new(
            missing,
            vec![cols::DEVICE, cols::EPOCH],
            cols::LIGHT,
            *scale,
            42 + u64::from(i),
            true,
        );
        let queries = workload(
            &wb.missing,
            &wb.pred_attrs,
            agg,
            cols::LIGHT,
            scale.queries,
            100 + u64::from(i),
        );
        for method in [
            Method::CorrPc,
            Method::RandPc,
            Method::Us {
                mult: 1,
                ci: Ci::NonParametric(0.9999),
            },
            Method::St {
                mult: 1,
                ci: Ci::NonParametric(0.9999),
            },
            Method::HistHard,
        ] {
            let s = wb.summarize_method(&method, &queries);
            rows.push(vec![
                fmt(r),
                s.name.clone(),
                format!("{:.2}", s.failure_pct()),
                fmt(s.median_over),
            ]);
        }
    }
    rows
}

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    ExpTable {
        id: "fig3",
        title: "COUNT(*) failure rate / median over-estimation vs missing fraction (Intel)",
        header: vec![
            "missing_frac".into(),
            "method".into(),
            "failure_pct".into(),
            "median_over".into(),
        ],
        rows: run_agg(scale, AggKind::Count),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_bounds_never_fail() {
        let mut s = Scale::quick();
        s.queries = 25;
        s.rows = 4000;
        let t = run(&s);
        for row in &t.rows {
            let method = &row[1];
            let failure: f64 = row[2].parse().unwrap();
            if method == "Corr-PC" || method == "Rand-PC" || method == "Histogram" {
                assert_eq!(failure, 0.0, "{method} must not fail");
            }
        }
        // informed PCs materially tighter than random ones at some fraction
        let over = |name: &str| -> f64 {
            t.rows
                .iter()
                .filter(|r| r[1] == name)
                .map(|r| r[3].parse::<f64>().unwrap())
                .sum::<f64>()
        };
        assert!(over("Corr-PC") <= over("Rand-PC") * 1.05);
    }
}
