//! **Figure 12**: join bounds — the fractional-edge-cover bound (Corr-PC)
//! vs elastic sensitivity, on triangle counting (TOP) and a 5-relation
//! acyclic chain (BOTTOM), across table sizes. The FEC bound lands at
//! `N^1.5` / `K³` while elastic sensitivity degenerates toward the
//! Cartesian product (`N³` / `K⁵`) — multiple orders of magnitude looser.

use super::fmt;
use crate::harness::Scale;
use crate::ExpTable;
use pc_baselines::{elastic_chain_bound, elastic_triangle_bound};
use pc_core::join::{fec_count_bound, JoinSpec};
use pc_core::{BoundEngine, BoundOptions};
use pc_datagen::pcgen;
use pc_datagen::synth_join::{chain_tables, triangle_tables};
use pc_predicate::Predicate;
use pc_storage::{natural_join, AggQuery, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-relation COUNT upper bound from a PC summary of the (fully
/// missing) table: build a small Corr-PC grid over both attributes and
/// bound `COUNT(*)`.
fn pc_count_bound(table: &Table) -> f64 {
    let set = pcgen::corr_pc(table, &[0, 1], 25);
    let engine = BoundEngine::with_options(
        &set,
        BoundOptions {
            check_closure: false,
            ..BoundOptions::default()
        },
    );
    engine
        .bound(&AggQuery::count(Predicate::always()))
        .expect("count bound on generated set")
        .range
        .hi
}

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let sizes: &[usize] = if scale.queries >= 500 {
        &[10, 100, 1000, 10000]
    } else {
        &[10, 100, 1000]
    };
    let mut rows = Vec::new();

    // TOP: triangle counting
    let spec = JoinSpec::triangle();
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let tables = triangle_tables(n, &mut rng);
        let counts: Vec<f64> = tables.iter().map(pc_count_bound).collect();
        let fec = fec_count_bound(&spec, &counts).expect("triangle FEC");
        let elastic = elastic_triangle_bound(n as f64, None);
        // ground truth only when the join is cheap enough to materialize
        let truth = if n <= 1000 {
            let rs = natural_join(&tables[0], &tables[1]);
            fmt(natural_join(&rs, &tables[2]).len() as f64)
        } else {
            "-".into()
        };
        rows.push(vec![
            "triangle".into(),
            n.to_string(),
            fmt(fec),
            fmt(elastic),
            truth,
        ]);
    }

    // BOTTOM: acyclic 5-chain
    let spec = JoinSpec::chain(5);
    for &k in sizes {
        let mut rng = StdRng::seed_from_u64(7000 + k as u64);
        let tables = chain_tables(5, k, &mut rng);
        let counts: Vec<f64> = tables.iter().map(pc_count_bound).collect();
        let fec = fec_count_bound(&spec, &counts).expect("chain FEC");
        let elastic = elastic_chain_bound(k as f64, 5, None);
        rows.push(vec![
            "chain5".into(),
            k.to_string(),
            fmt(fec),
            fmt(elastic),
            "-".into(),
        ]);
    }

    ExpTable {
        id: "fig12",
        title: "Join bounds: fractional edge cover (Corr-PC) vs elastic sensitivity",
        header: vec![
            "query".into(),
            "table_size".into(),
            "fec_bound".into(),
            "elastic_bound".into(),
            "true_join_size".into(),
        ],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fec_tighter_than_elastic_and_sound() {
        let t = run(&Scale::quick());
        for row in &t.rows {
            let fec: f64 = row[2].parse().unwrap();
            let elastic: f64 = row[3].parse().unwrap();
            assert!(fec <= elastic, "{row:?}");
            if row[4] != "-" {
                let truth: f64 = row[4].parse().unwrap();
                assert!(truth <= fec * (1.0 + 1e-9), "FEC must bound truth: {row:?}");
            }
        }
        // the gap widens with N for the triangle
        let gap = |i: usize| -> f64 {
            let fec: f64 = t.rows[i][2].parse().unwrap();
            let el: f64 = t.rows[i][3].parse().unwrap();
            el / fec
        };
        assert!(gap(2) > gap(0), "gap must grow with table size");
    }
}
