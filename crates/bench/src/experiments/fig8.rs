//! **Figure 8**: wall-clock time per query against *disjoint* (partition)
//! PC sets of growing size — the greedy special case scales linearly to
//! thousands of constraints (the paper reports ~50 ms at 2000).

use super::{fmt, intel_missing};
use crate::harness::{workload, Scale};
use crate::ExpTable;
use pc_core::{BoundEngine, BoundOptions};
use pc_datagen::intel::cols;
use pc_datagen::pcgen;
use pc_storage::AggKind;
use std::time::Instant;

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let (missing, _) = intel_missing(scale, 0.5);
    let attrs = [cols::DEVICE, cols::EPOCH];
    let n_queries = scale.queries.clamp(10, 100);
    let queries = workload(&missing, &attrs, AggKind::Sum, cols::LIGHT, n_queries, 800);
    let mut rows = Vec::new();
    for n in [50usize, 100, 500, 1000, 2000] {
        let set = pcgen::corr_pc(&missing, &attrs, n);
        let engine = BoundEngine::with_options(
            &set,
            BoundOptions {
                check_closure: false,
                ..BoundOptions::default()
            },
        );
        let start = Instant::now();
        for q in &queries {
            let _ = engine.bound(q).expect("disjoint bounding cannot fail");
        }
        let per_query_ms = start.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;
        rows.push(vec![n.to_string(), fmt(per_query_ms)]);
    }
    ExpTable {
        id: "fig8",
        title: "Per-query run time vs partition size (disjoint PCs, greedy path)",
        header: vec!["partition_size".into(), "ms_per_query".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_grows_roughly_linearly() {
        let mut s = Scale::quick();
        s.rows = 4000;
        s.queries = 10;
        let t = run(&s);
        assert_eq!(t.rows.len(), 5);
        let t50: f64 = t.rows[0][1].parse().unwrap();
        let t2000: f64 = t.rows[4][1].parse().unwrap();
        // 40× the partitions should cost well under 4000× the time
        // (debug-mode timings are noisy; assert only a sane super-linear cap)
        assert!(
            t2000 < (t50.max(0.01)) * 2000.0,
            "scaling blew up: {t50}ms → {t2000}ms"
        );
    }
}
