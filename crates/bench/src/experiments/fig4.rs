//! **Figure 4**: the Figure 3 protocol with SUM(light) queries — value
//! skew makes sampling intervals fail more and PCs relatively tighter.

use super::fig3::run_agg;
use crate::harness::Scale;
use crate::ExpTable;
use pc_storage::AggKind;

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    ExpTable {
        id: "fig4",
        title: "SUM(light) failure rate / median over-estimation vs missing fraction (Intel)",
        header: vec![
            "missing_frac".into(),
            "method".into(),
            "failure_pct".into(),
            "median_over".into(),
        ],
        rows: run_agg(scale, AggKind::Sum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_rows_present_and_sound() {
        let mut s = Scale::quick();
        s.queries = 20;
        s.rows = 4000;
        let t = run(&s);
        let corr_rows: Vec<_> = t.rows.iter().filter(|r| r[1] == "Corr-PC").collect();
        assert_eq!(corr_rows.len(), 5, "one row per missing fraction");
        for row in corr_rows {
            assert_eq!(row[2], "0.00");
            let over: f64 = row[3].parse().unwrap();
            assert!(over >= 1.0, "upper bound must cover the truth");
        }
    }
}
