//! **Figure 5**: how much more data does sampling need? Uniform samples of
//! 1×, 2×, 5×, 10× the PC budget, median over-estimation for COUNT and
//! SUM. The paper's finding: ~10× the data crosses over with a
//! well-designed PC.

use super::{fmt, intel_missing};
use crate::harness::{workload, Method, Scale, Workbench};
use crate::ExpTable;
use pc_baselines::Ci;
use pc_datagen::intel::cols;
use pc_storage::AggKind;

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let (missing, _) = intel_missing(scale, 0.5);
    let wb = Workbench::new(
        missing,
        vec![cols::DEVICE, cols::EPOCH],
        cols::LIGHT,
        *scale,
        55,
        false,
    );
    let mut rows = Vec::new();
    for agg in [AggKind::Count, AggKind::Sum] {
        let queries = workload(
            &wb.missing,
            &wb.pred_attrs,
            agg,
            cols::LIGHT,
            scale.queries,
            300,
        );
        for mult in [1usize, 2, 5, 10] {
            let s = wb.summarize_method(
                &Method::Us {
                    mult,
                    ci: Ci::NonParametric(0.9999),
                },
                &queries,
            );
            rows.push(vec![
                agg.name().into(),
                format!("US-{mult}N"),
                fmt(s.median_over),
            ]);
        }
        let pc = wb.summarize_method(&Method::CorrPc, &queries);
        rows.push(vec![
            agg.name().into(),
            "Corr-PC".into(),
            fmt(pc.median_over),
        ]);
    }
    ExpTable {
        id: "fig5",
        title: "Uniform-sampling over-estimation vs sample size (vs Corr-PC)",
        header: vec!["agg".into(), "method".into(), "median_over".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_samples_converge() {
        let mut s = Scale::quick();
        s.queries = 30;
        s.rows = 4000;
        let t = run(&s);
        // per aggregate: US-1N should be looser than US-10N
        for agg in ["COUNT", "SUM"] {
            let grab = |m: &str| -> f64 {
                t.rows.iter().find(|r| r[0] == agg && r[1] == m).unwrap()[2]
                    .parse()
                    .unwrap()
            };
            assert!(
                grab("US-1N") >= grab("US-10N") * 0.95,
                "{agg}: more data should not widen intervals"
            );
        }
    }
}
