//! **Table 1**: sweeping the uniform-sampling confidence level from 80% to
//! 99.99% trades failures against over-estimation, but never reaches the
//! zero failures that Corr-PC gives outright.

use super::{fmt, intel_missing};
use crate::harness::{Method, Scale, Workbench};
use crate::ExpTable;
use pc_baselines::Ci;
use pc_datagen::intel::cols;
use pc_storage::AggKind;

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let (missing, _) = intel_missing(scale, 0.5);
    let wb = Workbench::new(
        missing,
        vec![cols::DEVICE, cols::EPOCH],
        cols::LIGHT,
        *scale,
        77,
        false,
    );
    let queries = {
        let qg = pc_datagen::QueryGenerator::from_table(&wb.missing, &wb.pred_attrs);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(200);
        qg.gen_workload(AggKind::Sum, cols::LIGHT, scale.queries, &mut rng)
    };
    let mut rows = Vec::new();
    for conf in [0.80, 0.85, 0.90, 0.95, 0.99, 0.999, 0.9999] {
        // the CLT interval at the *nominal* level — the paper's point is
        // that ~(1 − conf) failures materialize (and worse on skew), so no
        // confidence setting reaches the hard-bound regime
        let s = wb.summarize_method(
            &Method::Us {
                mult: 1,
                ci: Ci::Parametric(conf),
            },
            &queries,
        );
        rows.push(vec![
            format!("US-1@{conf}"),
            format!("{:.1}", s.failure_pct()),
            fmt(s.median_over),
        ]);
    }
    let pc = wb.summarize_method(&Method::CorrPc, &queries);
    rows.push(vec![
        "Corr-PC".into(),
        format!("{:.1}", pc.failure_pct()),
        fmt(pc.median_over),
    ]);
    ExpTable {
        id: "table1",
        title: "Failure rate vs over-estimation across confidence levels (US-1n vs Corr-PC)",
        header: vec!["method".into(), "failure_pct".into(), "median_over".into()],
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confidence_trades_failures_for_width() {
        let mut s = Scale::quick();
        s.queries = 40;
        s.rows = 4000;
        let t = run(&s);
        assert_eq!(t.rows.len(), 8);
        let fail_80: f64 = t.rows[0][1].parse().unwrap();
        let fail_9999: f64 = t.rows[6][1].parse().unwrap();
        assert!(fail_80 >= fail_9999, "higher confidence → fewer failures");
        let over_80: f64 = t.rows[0][2].parse().unwrap();
        let over_9999: f64 = t.rows[6][2].parse().unwrap();
        assert!(over_9999 >= over_80, "higher confidence → wider intervals");
        // the PC row is failure-free
        let pc_fail: f64 = t.rows[7][1].parse().unwrap();
        assert_eq!(pc_fail, 0.0);
    }
}
