//! **Figure 11**: the Border-Crossing-like dataset — Zipf-skewed port
//! volumes, port/date predicates. Same protocol as Fig 10.

use super::{border_missing, fig10::run_dataset};
use crate::harness::Scale;
use crate::ExpTable;
use pc_datagen::border::cols;

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let (missing, _) = border_missing(scale, 0.3);
    run_dataset(
        "fig11",
        "Border-like: COUNT/SUM over-estimation by method (port/date predicates)",
        missing,
        vec![cols::PORT, cols::DATE],
        cols::VALUE,
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn informed_pcs_hold_on_skewed_data() {
        let mut s = Scale::quick();
        s.rows = 4000;
        s.queries = 20;
        s.n_pc = 100;
        s.n_rand_pc = 30;
        let t = run(&s);
        let corr_rows: Vec<_> = t.rows.iter().filter(|r| r[1] == "Corr-PC").collect();
        assert_eq!(corr_rows.len(), 2);
        for row in corr_rows {
            assert_eq!(row[2], "0.00");
        }
    }
}
