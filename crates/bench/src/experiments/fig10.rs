//! **Figure 10**: the Airbnb-like dataset — skewed prices, lat/lon
//! predicates. Informed PCs stay as tight as sampling bounds; random PCs
//! are ~10× looser but still *bounds* ("PCs fail conservatively").

use super::{airbnb_missing, fmt};
use crate::harness::{workload, Method, Scale, Workbench};
use crate::ExpTable;
use pc_baselines::Ci;
use pc_datagen::airbnb::cols;
use pc_storage::AggKind;

/// Shared driver for Figs 10 (Airbnb) and 11 (Border).
pub fn run_dataset(
    id: &'static str,
    title: &'static str,
    missing: pc_storage::Table,
    pred_attrs: Vec<usize>,
    agg_attr: usize,
    scale: &Scale,
) -> ExpTable {
    let wb = Workbench::new(missing, pred_attrs, agg_attr, *scale, 1010, true);
    let mut rows = Vec::new();
    for agg in [AggKind::Count, AggKind::Sum] {
        let queries = workload(
            &wb.missing,
            &wb.pred_attrs,
            agg,
            agg_attr,
            scale.queries,
            2000,
        );
        for method in [
            Method::CorrPc,
            Method::RandPc,
            Method::Us {
                mult: 10,
                ci: Ci::NonParametric(0.9999),
            },
            Method::St {
                mult: 10,
                ci: Ci::NonParametric(0.9999),
            },
            Method::HistHard,
        ] {
            let s = wb.summarize_method(&method, &queries);
            rows.push(vec![
                agg.name().into(),
                s.name.clone(),
                format!("{:.2}", s.failure_pct()),
                fmt(s.median_over),
            ]);
        }
    }
    ExpTable {
        id,
        title,
        header: vec![
            "agg".into(),
            "method".into(),
            "failure_pct".into(),
            "median_over".into(),
        ],
        rows,
    }
}

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let (missing, _) = airbnb_missing(scale, 0.3);
    run_dataset(
        "fig10",
        "Airbnb-like: COUNT/SUM over-estimation by method (lat/lon predicates)",
        missing,
        vec![cols::LATITUDE, cols::LONGITUDE],
        cols::PRICE,
        scale,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcs_hold_and_rand_is_looser() {
        let mut s = Scale::quick();
        s.rows = 4000;
        s.queries = 20;
        s.n_pc = 100;
        s.n_rand_pc = 30;
        let t = run(&s);
        for row in &t.rows {
            if row[1].ends_with("PC") || row[1] == "Histogram" {
                assert_eq!(row[2], "0.00", "{} {} must hold", row[0], row[1]);
            }
        }
        let over = |agg: &str, m: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == agg && r[1] == m).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(over("SUM", "Rand-PC") >= over("SUM", "Corr-PC"));
    }
}
