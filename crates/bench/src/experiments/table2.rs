//! **Table 2**: the failure-count grid — 9 estimators × {dataset ×
//! aggregate × predicate attributes}, counting how many of the workload's
//! queries escaped each method's interval. PCs (and the conservative
//! histogram special case) are guaranteed zero; CLT intervals fail far
//! more than their nominal 1%.

use super::{airbnb_missing, border_missing, intel_missing};
use crate::harness::{workload, Method, Scale, Workbench};
use crate::ExpTable;
use pc_baselines::Ci;
use pc_datagen::{airbnb, border, intel};
use pc_storage::{AggKind, Table};

struct Setting {
    dataset: &'static str,
    agg: AggKind,
    agg_attr: usize,
    pred_name: &'static str,
    pred_attrs: Vec<usize>,
    missing: Table,
}

fn settings(scale: &Scale) -> Vec<Setting> {
    let (intel_miss, _) = intel_missing(scale, 0.4);
    let (airbnb_miss, _) = airbnb_missing(scale, 0.4);
    let (border_miss, _) = border_missing(scale, 0.4);
    let mut out = Vec::new();
    for (agg, agg_attr) in [
        (AggKind::Count, intel::cols::LIGHT),
        (AggKind::Sum, intel::cols::LIGHT),
    ] {
        for (pred_name, pred_attrs) in [
            ("Time", vec![intel::cols::EPOCH]),
            ("DevID", vec![intel::cols::DEVICE]),
            ("DevID,Time", vec![intel::cols::DEVICE, intel::cols::EPOCH]),
        ] {
            out.push(Setting {
                dataset: "IntelWireless",
                agg,
                agg_attr,
                pred_name,
                pred_attrs,
                missing: intel_miss.clone(),
            });
        }
    }
    for (agg, agg_attr) in [
        (AggKind::Count, airbnb::cols::PRICE),
        (AggKind::Sum, airbnb::cols::PRICE),
    ] {
        for (pred_name, pred_attrs) in [
            ("Latitude", vec![airbnb::cols::LATITUDE]),
            ("Longitude", vec![airbnb::cols::LONGITUDE]),
            (
                "Lat,Lon",
                vec![airbnb::cols::LATITUDE, airbnb::cols::LONGITUDE],
            ),
        ] {
            out.push(Setting {
                dataset: "Airbnb@NYC",
                agg,
                agg_attr,
                pred_name,
                pred_attrs,
                missing: airbnb_miss.clone(),
            });
        }
    }
    for (agg, agg_attr) in [
        (AggKind::Count, border::cols::VALUE),
        (AggKind::Sum, border::cols::VALUE),
    ] {
        for (pred_name, pred_attrs) in [
            ("Port", vec![border::cols::PORT]),
            ("Date", vec![border::cols::DATE]),
            ("Port,Date", vec![border::cols::PORT, border::cols::DATE]),
        ] {
            out.push(Setting {
                dataset: "BorderCross",
                agg,
                agg_attr,
                pred_name,
                pred_attrs,
                missing: border_miss.clone(),
            });
        }
    }
    out
}

fn methods() -> Vec<Method> {
    vec![
        Method::CorrPc,
        Method::HistInd,
        Method::Us {
            mult: 1,
            ci: Ci::Parametric(0.99),
        },
        Method::Us {
            mult: 10,
            ci: Ci::Parametric(0.99),
        },
        Method::Us {
            mult: 1,
            ci: Ci::NonParametric(0.99),
        },
        Method::Us {
            mult: 10,
            ci: Ci::NonParametric(0.99),
        },
        Method::St {
            mult: 1,
            ci: Ci::NonParametric(0.99),
        },
        Method::St {
            mult: 10,
            ci: Ci::NonParametric(0.99),
        },
        Method::Gmm,
    ]
}

/// Run the experiment.
pub fn run(scale: &Scale) -> ExpTable {
    let methods = methods();
    let mut header: Vec<String> = vec!["dataset".into(), "query".into(), "pred_attr".into()];
    header.extend(methods.iter().map(|m| m.name()));
    let mut rows = Vec::new();
    for setting in settings(scale) {
        let wb = Workbench::new(
            setting.missing,
            setting.pred_attrs.clone(),
            setting.agg_attr,
            *scale,
            3000,
            false,
        );
        let queries = workload(
            &wb.missing,
            &setting.pred_attrs,
            setting.agg,
            setting.agg_attr,
            scale.queries,
            4000,
        );
        let mut row = vec![
            setting.dataset.to_string(),
            format!("{}(*)", setting.agg.name()),
            setting.pred_name.to_string(),
        ];
        for m in &methods {
            let s = wb.summarize_method(m, &queries);
            row.push(s.failures.to_string());
        }
        rows.push(row);
    }
    ExpTable {
        id: "table2",
        title: "Failure counts per dataset × aggregate × predicate attributes × method",
        header,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_column_is_all_zero() {
        let mut s = Scale::quick();
        s.rows = 3000;
        s.queries = 15;
        s.n_pc = 64;
        s.gmm_reps = 3;
        let t = run(&s);
        assert_eq!(t.rows.len(), 18, "3 datasets × 2 aggs × 3 predicate sets");
        let pc_col = t.header.iter().position(|h| h == "Corr-PC").unwrap();
        for row in &t.rows {
            assert_eq!(row[pc_col], "0", "PC failures must be zero: {row:?}");
        }
    }
}
