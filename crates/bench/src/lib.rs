//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§6), regenerating the same rows/series on the synthetic
//! dataset twins.
//!
//! Run everything with the `experiments` binary:
//!
//! ```text
//! cargo run --release -p pc-bench --bin experiments -- all
//! cargo run --release -p pc-bench --bin experiments -- fig3 fig4 --full
//! ```
//!
//! Each experiment returns an [`ExpTable`] that the binary pretty-prints
//! and (optionally) writes as CSV. Absolute numbers differ from the paper
//! (different hardware, synthetic data, scaled workloads — see
//! EXPERIMENTS.md), but the qualitative shape — who wins, by roughly what
//! factor, where crossovers fall — is the reproduction target.

#![warn(missing_docs)]

pub mod experiments;

/// Append one machine-readable line to the `PC_BENCH_JSON` stream (the
/// same file the vendored criterion shim writes its timing rows to) and
/// echo it to stdout — how the benches publish pivot/work-profile
/// columns next to their wall-clock rows.
pub fn emit_bench_json_line(line: &str) {
    println!("pivots {line}");
    if let Ok(path) = std::env::var("PC_BENCH_JSON") {
        if !path.is_empty() {
            use std::io::Write;
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(file, "{line}");
            }
        }
    }
}
pub mod harness;
pub mod pcgen;

pub use harness::{MethodSummary, Scale};

/// A rendered experiment result: a titled table of string cells.
#[derive(Debug, Clone)]
pub struct ExpTable {
    /// Experiment id, e.g. `fig3`.
    pub id: &'static str,
    /// Human title, e.g. `Figure 3: COUNT failure/over-estimation vs missing fraction`.
    pub title: &'static str,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ExpTable {
    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (cells containing commas or quotes are quoted).
    pub fn to_csv(&self) -> String {
        fn cell(s: &str) -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let render = |cells: &[String]| cells.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",");
        out.push_str(&render(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = ExpTable {
            id: "figX",
            title: "demo",
            header: vec!["a".into(), "method".into()],
            rows: vec![
                vec!["1".into(), "Corr-PC".into()],
                vec!["10".into(), "US".into()],
            ],
        };
        let s = t.render();
        assert!(s.contains("figX"));
        assert!(s.lines().count() >= 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "a,method");
        assert_eq!(csv.lines().count(), 3);
    }
}
