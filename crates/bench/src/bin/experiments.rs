//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments all [--full] [--csv DIR]
//! experiments fig3 fig12 table2 [--quick]
//! experiments list
//! ```

use pc_bench::experiments::*;
use pc_bench::{ExpTable, Scale};
use std::time::Instant;

type Runner = fn(&Scale) -> ExpTable;

const ALL: &[(&str, Runner)] = &[
    ("fig1", fig1::run as Runner),
    ("fig3", fig3::run),
    ("fig4", fig4::run),
    ("table1", table1::run),
    ("fig5", fig5::run),
    ("fig6", fig6::run),
    ("fig7", fig7::run),
    ("fig8", fig8::run),
    ("fig9", fig9::run),
    ("fig10", fig10::run),
    ("fig11", fig11::run),
    ("fig12", fig12::run),
    ("table2", table2::run),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv_dir = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let picks: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| csv_dir.as_deref() != Some(a.as_str()))
        .map(String::as_str)
        .collect();

    if picks.contains(&"list") {
        for (id, _) in ALL {
            println!("{id}");
        }
        return;
    }

    let scale = if full { Scale::full() } else { Scale::quick() };
    let run_all = picks.is_empty() || picks.contains(&"all");

    let mut ran = 0;
    for (id, runner) in ALL {
        if !run_all && !picks.contains(id) {
            continue;
        }
        let start = Instant::now();
        let table = runner(&scale);
        let elapsed = start.elapsed();
        println!("{}", table.render());
        println!("[{} completed in {:.1}s]\n", id, elapsed.as_secs_f64());
        if let Some(dir) = &csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{id}.csv");
            std::fs::write(&path, table.to_csv()).expect("write csv");
            println!("[wrote {path}]\n");
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment(s): {picks:?}; try `experiments list`");
        std::process::exit(1);
    }
}
