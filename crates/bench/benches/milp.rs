//! Criterion bench for the branch & bound MILP solver: the three
//! warm-start tiers (cold crash / basis restore / tableau carry) crossed
//! with sequential vs work-stealing-parallel search.
//!
//! The workload is a batch of PC-allocation-shaped problems — `max u·x`
//! over random subset rows `Σ_{i∈S} xᵢ ≤ ku` with box bounds `0 ≤ xᵢ ≤ 4`
//! — with *fractional* row capacities, so every relaxation sits at a
//! fractional vertex and the search genuinely branches (integral-data
//! instances solve at the root and would benchmark nothing).
//!
//! Besides the wall-clock rows, every mode's sanity pass aggregates the
//! solver's per-node counters ([`pc_solver::SearchStats`]) and emits them
//! as `milp_pivots/...` JSON lines next to the timing rows: carried vs
//! rebuilt node counts and their pivot totals — the measured
//! O(m) → O(1) rebuild elimination of the tableau carry.
//!
//! Parallel ids carry the pool size (`…_par_4w` = 4 workers): the global
//! pool is sized once per process from `RAYON_NUM_THREADS` / the
//! machine, so "1 vs N threads" here is sequential mode vs the whole
//! pool. On a single-core container the parallel rows only measure task
//! overhead; the scaling signal needs the multi-core CI runner (see
//! `BENCH_milp.json`'s host note).
//!
//! Set `PC_BENCH_JSON=/path/file.json` to append machine-readable results
//! (the repo's `BENCH_milp.json` is produced this way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_bench::emit_bench_json_line;
use pc_solver::{solve_milp, ConstraintOp, LinearProgram, MilpOptions, MilpProblem, SearchStats};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random allocation-shaped MILP that forces real branching. Like the
/// paper's §4.2 programs it mixes `Σ x ≤ ku` caps with `Σ x ≥ kl` floors
/// (frequency lower bounds): the floors are what make phase 1 non-trivial
/// at every node — an all-slack basis is infeasible, a cold solve pays
/// artificial elimination, the basis tier's crash + dual restore skips
/// phase 1 but still rebuilds the tableau, and the carry tier skips the
/// rebuild too (one appended row + O(1) dual pivots per node).
fn try_alloc_problem(nvars: usize, nrows: usize, seed: u64) -> MilpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let u: Vec<f64> = (0..nvars)
        .map(|_| rng.gen_range(1..20) as f64 + 0.99)
        .collect();
    let mut lp = LinearProgram::maximize(u);
    for i in 0..nvars {
        lp.set_bounds(i, 0.0, 4.0);
    }
    for row in 0..nrows {
        let k = rng.gen_range(2..=(nvars / 2).max(2));
        let mut members: Vec<usize> = (0..nvars).collect();
        // partial Fisher–Yates: the first k entries are a random subset
        for i in 0..k {
            let j = rng.gen_range(i..nvars);
            members.swap(i, j);
        }
        let terms: Vec<(usize, f64)> = members[..k].iter().map(|&i| (i, 1.0)).collect();
        // fractional capacity: the relaxation can never sit integral here
        let ku = rng.gen_range(5..11) as f64 + 0.5;
        if row % 3 != 0 {
            // a frequency floor on the same membership
            let kl = rng.gen_range(1..3) as f64;
            lp.add_constraint(terms.clone(), ConstraintOp::Ge, kl);
        }
        lp.add_constraint(terms, ConstraintOp::Le, ku);
    }
    MilpProblem::all_integer(lp)
}

/// First `count` *solvable* instances from the seed stream (random floors
/// can conflict across overlapping subsets; infeasible draws are skipped
/// so every mode benches identical productive work).
fn alloc_problems(nvars: usize, nrows: usize, count: usize) -> Vec<(MilpProblem, f64)> {
    let mut out = Vec::new();
    let mut seed = 0u64;
    while out.len() < count {
        let p = try_alloc_problem(nvars, nrows, seed);
        seed += 1;
        if let Ok(sol) = solve_milp(&p, MilpOptions::default()) {
            out.push((p, sol.objective));
        }
    }
    out
}

fn modes() -> Vec<(String, MilpOptions)> {
    let pool = rayon::current_num_threads();
    let tiers: [(&str, bool, bool); 3] = [
        ("cold", false, false),
        ("basis", true, false),
        ("carry", true, true),
    ];
    let mut out = Vec::new();
    for (tier, warm_start, tableau_carry) in tiers {
        out.push((
            format!("{tier}_seq"),
            MilpOptions {
                threads: 1,
                warm_start,
                tableau_carry,
                ..MilpOptions::default()
            },
        ));
    }
    for (tier, warm_start, tableau_carry) in tiers {
        out.push((
            format!("{tier}_par_{pool}w"),
            MilpOptions {
                threads: 0,
                warm_start,
                tableau_carry,
                ..MilpOptions::default()
            },
        ));
    }
    out
}

/// The pivot-count columns that ride next to criterion's timing rows.
fn emit_pivot_profile(id: &str, nodes: u64, s: &SearchStats) {
    emit_bench_json_line(&format!(
        "{{\"id\": \"{id}\", \"nodes\": {nodes}, \"carried_nodes\": {}, \"rebuilt_nodes\": {}, \
         \"carried_pivots\": {}, \"rebuilt_pivots\": {}, \"pivots\": {}}}",
        s.carried_nodes,
        s.rebuilt_nodes,
        s.carried_pivots,
        s.rebuilt_pivots,
        s.pivots()
    ));
}

fn bench_milp(c: &mut Criterion) {
    let sizes = [(10usize, 8usize), (14, 12)];
    let mut group = c.benchmark_group("milp_bnb");
    group.sample_size(10);
    for (nvars, nrows) in sizes {
        let problems = alloc_problems(nvars, nrows, 4);
        for (name, options) in modes() {
            // sanity outside the timed region: every mode proves the same
            // objective on every instance — and its aggregated node/pivot
            // profile becomes the pivot-count columns of the artifact
            let mut nodes = 0u64;
            let mut stats = SearchStats::default();
            for (p, want) in &problems {
                let got = solve_milp(p, options).expect("solvable in every mode");
                assert!(
                    (got.objective - want).abs() < 1e-6,
                    "{name}: {} vs {}",
                    got.objective,
                    want
                );
                nodes += got.nodes as u64;
                stats.carried_nodes += got.search.carried_nodes;
                stats.rebuilt_nodes += got.search.rebuilt_nodes;
                stats.carried_pivots += got.search.carried_pivots;
                stats.rebuilt_pivots += got.search.rebuilt_pivots;
            }
            emit_pivot_profile(
                &format!("milp_pivots/{name}/{nvars}x{nrows}"),
                nodes,
                &stats,
            );
            group.bench_with_input(
                BenchmarkId::new(name, format!("{nvars}x{nrows}")),
                &problems,
                |b, ps| {
                    b.iter(|| {
                        for (p, _) in ps {
                            solve_milp(p, options).expect("solvable");
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

/// Estimate-scored branch-variable selection, measured from the engine
/// side: the skewed ordering catalog's allocation MILPs branch on the
/// selective cells' variables first (weights = `2 − volume`), against the
/// classic most-fractional rule (`ordering: false`). Node and
/// incumbent-first counts ride next to the timing rows; the uniform
/// control shows the weights are a no-op when nothing is selective.
fn bench_ordering_nodes(c: &mut Criterion) {
    use pc_core::{BoundEngine, BoundOptions};
    use pc_predicate::Predicate;
    use pc_storage::{AggKind, AggQuery};

    let query = AggQuery::new(AggKind::Sum, 2, Predicate::always());
    let mut group = c.benchmark_group("ordering");
    group.sample_size(10);
    for (workload, set) in [
        ("skewed", pc_bench::pcgen::skewed_ordering_set()),
        ("uniform", pc_bench::pcgen::uniform_ordering_set(7)),
    ] {
        let on = BoundEngine::with_options(
            &set,
            BoundOptions {
                threads: 1,
                ..BoundOptions::default()
            },
        );
        let off = BoundEngine::with_options(
            &set,
            BoundOptions {
                threads: 1,
                ordering: false,
                ..BoundOptions::default()
            },
        );
        let (a, b) = (on.bound(&query).unwrap(), off.bound(&query).unwrap());
        assert_eq!((a.range.lo, a.range.hi), (b.range.lo, b.range.hi));
        for (mode, r) in [("scored", &a), ("most_fractional", &b)] {
            emit_bench_json_line(&format!(
                "{{\"id\": \"ordering_nodes/{workload}_{mode}\", \"nodes\": {}, \
                 \"incumbent_first\": {}, \"sat_checks\": {}}}",
                r.solver.nodes, r.solver.incumbent_first, r.stats.sat_checks
            ));
        }
        for (mode, engine) in [("scored", &on), ("most_fractional", &off)] {
            group.bench_function(
                BenchmarkId::new(format!("{workload}_{mode}"), set.len()),
                |b| b.iter(|| engine.bound(&query).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_milp, bench_ordering_nodes);
criterion_main!(benches);
