//! Criterion bench for the branch & bound MILP solver: cold vs
//! warm-started node relaxations, sequential vs work-stealing-parallel
//! search.
//!
//! The workload is a batch of PC-allocation-shaped problems — `max u·x`
//! over random subset rows `Σ_{i∈S} xᵢ ≤ ku` with box bounds `0 ≤ xᵢ ≤ 4`
//! — with *fractional* row capacities, so every relaxation sits at a
//! fractional vertex and the search genuinely branches (integral-data
//! instances solve at the root and would benchmark nothing).
//!
//! Parallel ids carry the pool size (`…_par_4w` = 4 workers): the global
//! pool is sized once per process from `RAYON_NUM_THREADS` / the
//! machine, so "1 vs N threads" here is sequential mode vs the whole
//! pool. On a single-core container the parallel rows only measure task
//! overhead; the scaling signal needs the multi-core CI runner (see
//! `BENCH_milp.json`'s host note).
//!
//! Set `PC_BENCH_JSON=/path/file.json` to append machine-readable results
//! (the repo's `BENCH_milp.json` is produced this way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_solver::{solve_milp, ConstraintOp, LinearProgram, MilpOptions, MilpProblem};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random allocation-shaped MILP that forces real branching. Like the
/// paper's §4.2 programs it mixes `Σ x ≤ ku` caps with `Σ x ≥ kl` floors
/// (frequency lower bounds): the floors are what make phase 1 non-trivial
/// at every node — an all-slack basis is infeasible, a cold solve pays
/// artificial elimination, and the warm path's crash + dual restore
/// skips it.
fn try_alloc_problem(nvars: usize, nrows: usize, seed: u64) -> MilpProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let u: Vec<f64> = (0..nvars)
        .map(|_| rng.gen_range(1..20) as f64 + 0.99)
        .collect();
    let mut lp = LinearProgram::maximize(u);
    for i in 0..nvars {
        lp.set_bounds(i, 0.0, 4.0);
    }
    for row in 0..nrows {
        let k = rng.gen_range(2..=(nvars / 2).max(2));
        let mut members: Vec<usize> = (0..nvars).collect();
        // partial Fisher–Yates: the first k entries are a random subset
        for i in 0..k {
            let j = rng.gen_range(i..nvars);
            members.swap(i, j);
        }
        let terms: Vec<(usize, f64)> = members[..k].iter().map(|&i| (i, 1.0)).collect();
        // fractional capacity: the relaxation can never sit integral here
        let ku = rng.gen_range(5..11) as f64 + 0.5;
        if row % 3 != 0 {
            // a frequency floor on the same membership
            let kl = rng.gen_range(1..3) as f64;
            lp.add_constraint(terms.clone(), ConstraintOp::Ge, kl);
        }
        lp.add_constraint(terms, ConstraintOp::Le, ku);
    }
    MilpProblem::all_integer(lp)
}

/// First `count` *solvable* instances from the seed stream (random floors
/// can conflict across overlapping subsets; infeasible draws are skipped
/// so every mode benches identical productive work).
fn alloc_problems(nvars: usize, nrows: usize, count: usize) -> Vec<(MilpProblem, f64)> {
    let mut out = Vec::new();
    let mut seed = 0u64;
    while out.len() < count {
        let p = try_alloc_problem(nvars, nrows, seed);
        seed += 1;
        if let Ok(sol) = solve_milp(&p, MilpOptions::default()) {
            out.push((p, sol.objective));
        }
    }
    out
}

fn modes() -> Vec<(String, MilpOptions)> {
    let pool = rayon::current_num_threads();
    vec![
        (
            "cold_seq".into(),
            MilpOptions {
                threads: 1,
                warm_start: false,
                ..MilpOptions::default()
            },
        ),
        (
            "warm_seq".into(),
            MilpOptions {
                threads: 1,
                warm_start: true,
                ..MilpOptions::default()
            },
        ),
        (
            format!("cold_par_{pool}w"),
            MilpOptions {
                threads: 0,
                warm_start: false,
                ..MilpOptions::default()
            },
        ),
        (
            format!("warm_par_{pool}w"),
            MilpOptions {
                threads: 0,
                warm_start: true,
                ..MilpOptions::default()
            },
        ),
    ]
}

fn bench_milp(c: &mut Criterion) {
    let sizes = [(10usize, 8usize), (14, 12)];
    let mut group = c.benchmark_group("milp_bnb");
    group.sample_size(10);
    for (nvars, nrows) in sizes {
        let problems = alloc_problems(nvars, nrows, 4);
        for (name, options) in modes() {
            // sanity outside the timed region: every mode proves the same
            // objective on every instance
            for (p, want) in &problems {
                let got = solve_milp(p, options).expect("solvable in every mode");
                assert!(
                    (got.objective - want).abs() < 1e-6,
                    "{name}: {} vs {}",
                    got.objective,
                    want
                );
            }
            group.bench_with_input(
                BenchmarkId::new(name, format!("{nvars}x{nrows}")),
                &problems,
                |b, ps| {
                    b.iter(|| {
                        for (p, _) in ps {
                            solve_milp(p, options).expect("solvable");
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
