//! Criterion bench for Fig 7 and the parallel/incremental bound engine.
//!
//! * `fig7_decompose` — cell decomposition of heavily overlapping PC sets
//!   under the three strategies (the paper's >1000× sat-check reduction at
//!   n = 20; wall-clock tracks the check counts).
//! * `parallel_decompose` — sequential vs forked DFS on an 18-constraint
//!   overlapping set at several thread counts.
//! * `group_by` — a 100-key GROUP-BY: per-key full decomposition baseline
//!   vs the shared-decomposition path, cold and warm-started.
//! * `shard_scaling` — 10×/30× replicas of the 14-pc overlapping set on
//!   disjoint attribute tiles: one `COUNT` bound end to end, sharded
//!   (per-component decomposition) vs flat (whole-catalog decomposition),
//!   plus the one-mutation epoch-derivation latency of a session on the
//!   30-tile catalog, shard-local vs flat-incremental.
//!
//! Set `PC_BENCH_JSON=/path/file.json` to append machine-readable results
//! (the repo's `BENCH_decompose.json` is produced this way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_bench::experiments::fig7::overlapping_set;
use pc_bench::Scale;
use pc_core::{
    decompose, decompose_with, BoundEngine, BoundOptions, FrequencyConstraint, Parallelism, PcSet,
    PredicateConstraint, Session, SessionOptions, Strategy, ValueConstraint,
};
use pc_datagen::intel::{self, IntelConfig};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};

fn bench_decompose(c: &mut Criterion) {
    let table = intel::generate(IntelConfig {
        rows: 2_000,
        ..IntelConfig::default()
    });
    let _ = Scale::quick();
    let mut group = c.benchmark_group("fig7_decompose");
    group.sample_size(10);
    for n in [8usize, 12] {
        let set = overlapping_set(&table, n, 7);
        let base = Region::full(set.schema());
        for (name, strategy) in [
            ("naive", Strategy::Naive),
            ("dfs", Strategy::Dfs),
            ("dfs_rewrite", Strategy::DfsRewrite),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| decompose(&set, &base, strategy).unwrap())
            });
        }
        // early stopping for the approximate variant (Optimization 4)
        group.bench_with_input(BenchmarkId::new("early_stop", n), &n, |b, _| {
            b.iter(|| decompose(&set, &base, Strategy::EarlyStop { depth: n - 2 }).unwrap())
        });
    }
    group.finish();
}

/// Sequential vs fork/join decomposition of one large overlapping set.
/// The emitted cells are identical; only wall-clock differs.
fn bench_parallel_decompose(c: &mut Criterion) {
    let table = intel::generate(IntelConfig {
        rows: 2_000,
        ..IntelConfig::default()
    });
    let n = 18usize;
    let set = overlapping_set(&table, n, 7);
    let base = Region::full(set.schema());
    let mut group = c.benchmark_group("parallel_decompose");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("sequential", n), |b| {
        b.iter(|| decompose(&set, &base, Strategy::DfsRewrite).unwrap())
    });
    for threads in [2usize, 4, 8] {
        let par = Parallelism {
            threads,
            depth: None,
        };
        group.bench_function(BenchmarkId::new(format!("threads_{threads}"), n), |b| {
            b.iter(|| decompose_with(&set, &base, Strategy::DfsRewrite, par).unwrap())
        });
    }
    group.finish();
}

/// A categorical group attribute with `keys` groups, covered by `n_pc`
/// heavily overlapping 2-D boxes over (group, value) — each spanning
/// 40–90% of both ranges, like the paper's Rand-PC workload. Every group
/// slice still sees most constraints with overlapping value ranges, so a
/// per-key decomposition pays a real (exponential-family) DFS for every
/// key, which is exactly the workload the shared decomposition removes.
fn group_by_set(keys: usize, n_pc: usize, seed: u64) -> PcSet {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let schema = Schema::new(vec![("g", AttrType::Cat), ("v", AttrType::Float)]);
    let mut domain = Region::full(&schema);
    domain.set_interval(0, Interval::closed(0.0, (keys - 1) as f64));
    let mut set = PcSet::new(schema);
    let mut rng = StdRng::seed_from_u64(seed);
    let gmax = (keys - 1) as f64;
    let vmax = 1_000.0;
    for i in 0..n_pc {
        let gw = gmax * rng.gen_range(0.4..0.9);
        let glo = rng.gen_range(0.0..(gmax - gw));
        let vw = vmax * rng.gen_range(0.4..0.9);
        let vlo = rng.gen_range(0.0..(vmax - vw));
        set.push(PredicateConstraint::new(
            Predicate::always()
                .and(Atom::between(0, glo, glo + gw))
                .and(Atom::between(1, vlo, vlo + vw)),
            ValueConstraint::none().with(1, Interval::closed(vlo, vlo + vw)),
            FrequencyConstraint::at_most(40 + (i as u64 % 7)),
        ));
    }
    // catch-all constraint: keeps the set closed so every group produces a
    // finite range and the allocation solver actually runs
    set.push(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, vmax)),
        FrequencyConstraint::at_most(500),
    ));
    set.set_domain(domain);
    set
}

fn bench_group_by(c: &mut Criterion) {
    let keys: Vec<f64> = (0..100).map(f64::from).collect();
    let set = group_by_set(100, 20, 7);
    let query = AggQuery::new(AggKind::Sum, 1, Predicate::always());

    let mut group = c.benchmark_group("group_by");
    group.sample_size(10);

    let configs: [(&str, BoundOptions); 3] = [
        (
            "per_key_baseline",
            BoundOptions {
                shared_group_by: false,
                threads: 1,
                ..BoundOptions::default()
            },
        ),
        (
            "shared_cold",
            BoundOptions {
                warm_start: false,
                threads: 1,
                ..BoundOptions::default()
            },
        ),
        (
            "shared_warm",
            BoundOptions {
                threads: 1,
                ..BoundOptions::default()
            },
        ),
    ];
    for (name, options) in configs {
        let engine = BoundEngine::with_options(&set, options);
        group.bench_function(BenchmarkId::new(name, keys.len()), |b| {
            b.iter(|| engine.bound_group_by(&query, 0, keys.iter().copied()))
        });
    }
    // LP-relaxation variant: every allocation solved as a (warm-startable)
    // LP — the throughput configuration for wide GROUP-BYs (bounds stay
    // sound, possibly slightly wider).
    for (name, warm_start) in [("shared_lp_cold", false), ("shared_lp_warm", true)] {
        let options = BoundOptions {
            lp_relax_cell_limit: 0,
            warm_start,
            threads: 1,
            ..BoundOptions::default()
        };
        let engine = BoundEngine::with_options(&set, options);
        group.bench_function(BenchmarkId::new(name, keys.len()), |b| {
            b.iter(|| engine.bound_group_by(&query, 0, keys.iter().copied()))
        });
    }
    group.finish();
}

/// Replicas of the 14-pc heavily overlapping set on disjoint attribute
/// tiles (one interaction component per tile). The sharded engine
/// decomposes per component, so its cost grows ~linearly with the tile
/// count; the flat engine decomposes the whole catalog at once, where
/// every emitted cell pays exclusion work against every other tile's
/// constraints — superlinear in the tile count. Also measures the
/// one-mutation epoch-derivation latency on the largest catalog:
/// shard-local derivation re-derives one 14-constraint tile, the flat
/// baseline re-derives through the whole cell set.
fn bench_shard_scaling(c: &mut Criterion) {
    let table = intel::generate(IntelConfig {
        rows: 2_000,
        ..IntelConfig::default()
    });
    let query = AggQuery::count(Predicate::always());
    let mut group = c.benchmark_group("shard_scaling");
    group.sample_size(10);
    for tiles in [10usize, 30] {
        let set = pc_bench::pcgen::tiled_replica_set(&table, 14, tiles, 7);
        // tiles never merge; a tile may fracture into finer components
        assert!(pc_core::interaction_components(&set).len() >= tiles);
        let sharded = BoundEngine::new(&set);
        let flat = BoundEngine::with_options(
            &set,
            BoundOptions {
                shard: false,
                ..BoundOptions::default()
            },
        );
        // same answer before we time anything
        let (a, b) = (sharded.bound(&query).unwrap(), flat.bound(&query).unwrap());
        assert_eq!((a.range.lo, a.range.hi), (b.range.lo, b.range.hi));
        group.bench_function(BenchmarkId::new("sharded", tiles), |b| {
            b.iter(|| sharded.bound(&query).unwrap())
        });
        group.bench_function(BenchmarkId::new("flat", tiles), |b| {
            b.iter(|| flat.bound(&query).unwrap())
        });
    }

    // One-mutation epoch derivation on the 30-tile catalog: add a
    // constraint overlapping tile 0, then retire it (leaves the session
    // where it started, so every iteration derives from the same shape).
    let set = pc_bench::pcgen::tiled_replica_set(&table, 14, 30, 7);
    let extra = set.constraints()[0].clone();
    for (name, shard) in [("epoch_derive_sharded", true), ("epoch_derive_flat", false)] {
        let session = Session::with_options(
            set.clone(),
            SessionOptions {
                bound: BoundOptions {
                    shard,
                    ..BoundOptions::default()
                },
                ..SessionOptions::default()
            },
        );
        session.cell_set().unwrap(); // warm epoch 0
        group.bench_function(BenchmarkId::new(name, 30), |b| {
            b.iter(|| {
                let id = session.add_constraint(extra.clone());
                session.cell_set().unwrap();
                session.retire_constraint(id).unwrap();
                session.cell_set().unwrap();
            })
        });
    }
    group.finish();
}

/// Estimate-guided split ordering on the adversarial skewed catalog
/// (selective constraints declared last) vs a uniform control: ordering
/// on (the default) against the declaration-order oracle. The emitted
/// cell set and every bound are identical; the SAT-check and ordered-split
/// counters ride next to the timing rows as `ordering_pivots/...` lines.
fn bench_ordering(c: &mut Criterion) {
    let query = AggQuery::new(AggKind::Sum, 2, Predicate::always());
    let mut group = c.benchmark_group("ordering");
    group.sample_size(10);
    for (workload, set) in [
        ("skewed", pc_bench::pcgen::skewed_ordering_set()),
        ("uniform", pc_bench::pcgen::uniform_ordering_set(7)),
    ] {
        let on = BoundEngine::with_options(
            &set,
            BoundOptions {
                threads: 1,
                ..BoundOptions::default()
            },
        );
        let off = BoundEngine::with_options(
            &set,
            BoundOptions {
                threads: 1,
                ordering: false,
                ..BoundOptions::default()
            },
        );
        // same answer before we time anything — and the work profile
        // becomes the pivot columns of the artifact
        let (a, b) = (on.bound(&query).unwrap(), off.bound(&query).unwrap());
        assert_eq!((a.range.lo, a.range.hi), (b.range.lo, b.range.hi));
        for (mode, r) in [("on", &a), ("off", &b)] {
            pc_bench::emit_bench_json_line(&format!(
                "{{\"id\": \"ordering_pivots/{workload}_{mode}\", \"sat_checks\": {}, \
                 \"ordered_splits\": {}, \"nodes\": {}, \"incumbent_first\": {}}}",
                r.stats.sat_checks,
                r.stats.ordered_splits,
                r.solver.nodes,
                r.solver.incumbent_first
            ));
        }
        for (mode, engine) in [("on", &on), ("off", &off)] {
            group.bench_function(
                BenchmarkId::new(format!("{workload}_{mode}"), set.len()),
                |b| b.iter(|| engine.bound(&query).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decompose,
    bench_parallel_decompose,
    bench_group_by,
    bench_shard_scaling,
    bench_ordering
);
criterion_main!(benches);
