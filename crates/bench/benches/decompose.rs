//! Criterion bench for Fig 7: cell decomposition of heavily overlapping
//! PC sets under the three strategies. The paper's claim is a >1000×
//! reduction in satisfiability checks at n = 20; wall-clock tracks the
//! check counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_bench::experiments::fig7::overlapping_set;
use pc_bench::Scale;
use pc_core::{decompose, Strategy};
use pc_datagen::intel::{self, IntelConfig};
use pc_predicate::Region;

fn bench_decompose(c: &mut Criterion) {
    let table = intel::generate(IntelConfig {
        rows: 2_000,
        ..IntelConfig::default()
    });
    let _ = Scale::quick();
    let mut group = c.benchmark_group("fig7_decompose");
    group.sample_size(10);
    for n in [8usize, 12] {
        let set = overlapping_set(&table, n, 7);
        let base = Region::full(set.schema());
        for (name, strategy) in [
            ("naive", Strategy::Naive),
            ("dfs", Strategy::Dfs),
            ("dfs_rewrite", Strategy::DfsRewrite),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| decompose(&set, &base, strategy))
            });
        }
        // early stopping for the approximate variant (Optimization 4)
        group.bench_with_input(BenchmarkId::new("early_stop", n), &n, |b, _| {
            b.iter(|| decompose(&set, &base, Strategy::EarlyStop { depth: n - 2 }))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decompose);
criterion_main!(benches);
