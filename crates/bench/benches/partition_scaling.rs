//! Criterion bench for Fig 8: per-query bounding time against disjoint
//! (partitioned) PC sets of growing size — the greedy fast path. The
//! paper reports ~50 ms at 2000 partitions and linear scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_core::{BoundEngine, BoundOptions};
use pc_datagen::intel::{cols, IntelConfig};
use pc_datagen::missing::remove_top_fraction;
use pc_datagen::{intel, pcgen, QueryGenerator};
use pc_storage::AggKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_partition(c: &mut Criterion) {
    let table = intel::generate(IntelConfig {
        rows: 20_000,
        ..IntelConfig::default()
    });
    let (missing, _) = remove_top_fraction(&table, cols::LIGHT, 0.5);
    let qg = QueryGenerator::from_table(&missing, &[cols::DEVICE, cols::EPOCH]);
    let mut rng = StdRng::seed_from_u64(1);
    let queries = qg.gen_workload(AggKind::Sum, cols::LIGHT, 20, &mut rng);

    let mut group = c.benchmark_group("fig8_partition_scaling");
    group.sample_size(10);
    for n in [50usize, 200, 500, 1000, 2000] {
        let set = pcgen::corr_pc(&missing, &[cols::DEVICE, cols::EPOCH], n);
        let engine = BoundEngine::with_options(
            &set,
            BoundOptions {
                check_closure: false,
                ..BoundOptions::default()
            },
        );
        group.bench_with_input(BenchmarkId::new("greedy_bound", n), &n, |b, _| {
            b.iter(|| {
                for q in &queries {
                    let _ = engine.bound(q).expect("disjoint bounding");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
