//! Criterion bench for the LP/MILP substrate on PC-shaped allocation
//! problems (§4.2): interval row-sum constraints over cell variables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_solver::{
    greedy, solve_lp, solve_milp, ConstraintOp, LinearProgram, MilpOptions, MilpProblem,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random PC-shaped allocation problem: `cells` variables, `rows`
/// interval constraints over random subsets.
fn pc_shaped(cells: usize, rows: usize, seed: u64) -> LinearProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let obj: Vec<f64> = (0..cells).map(|_| rng.gen_range(0.0..150.0)).collect();
    let mut lp = LinearProgram::maximize(obj);
    let mut covered = vec![false; cells];
    for _ in 0..rows {
        let members: Vec<(usize, f64)> = (0..cells)
            .filter(|_| rng.gen_bool(0.3))
            .map(|i| (i, 1.0))
            .collect();
        if members.is_empty() {
            continue;
        }
        for &(i, _) in &members {
            covered[i] = true;
        }
        let ku = rng.gen_range(10.0..100.0_f64).round();
        lp.add_constraint(members.clone(), ConstraintOp::Le, ku);
        if rng.gen_bool(0.5) {
            lp.add_constraint(members, ConstraintOp::Ge, (ku / 4.0).round());
        }
    }
    // every real PC cell sits under at least one frequency cap; give any
    // uncovered variable one, or the program is unbounded by construction
    let stragglers: Vec<(usize, f64)> = covered
        .iter()
        .enumerate()
        .filter(|(_, c)| !**c)
        .map(|(i, _)| (i, 1.0))
        .collect();
    if !stragglers.is_empty() {
        lp.add_constraint(stragglers, ConstraintOp::Le, 100.0);
    }
    lp
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(10);
    for (cells, rows) in [(20usize, 8usize), (60, 20), (200, 40)] {
        let lp = pc_shaped(cells, rows, 42);
        group.bench_with_input(
            BenchmarkId::new("simplex_lp", format!("{cells}x{rows}")),
            &lp,
            |b, lp| b.iter(|| solve_lp(lp).expect("lp")),
        );
        let milp = MilpProblem::all_integer(lp.clone());
        group.bench_with_input(
            BenchmarkId::new("milp_bb", format!("{cells}x{rows}")),
            &milp,
            |b, p| {
                b.iter(|| {
                    solve_milp(
                        p,
                        MilpOptions {
                            node_limit: 20_000,
                            best_effort: true,
                            ..MilpOptions::default()
                        },
                    )
                    .expect("milp")
                })
            },
        );
    }
    // the disjoint greedy path at Fig 8 scale
    let u: Vec<f64> = (0..2000).map(|i| (i % 157) as f64).collect();
    let freq: Vec<(f64, f64)> = (0..2000).map(|i| (0.0, (i % 91 + 1) as f64)).collect();
    group.bench_function("greedy_disjoint_2000", |b| {
        b.iter(|| greedy::maximize_disjoint(&u, &freq))
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
