//! Criterion bench for per-query bounding across the accuracy
//! experiments' regimes (Figs 3-5, 9-11): disjoint Corr-PC (greedy),
//! overlapping Rand-PC (decomposition + MILP/LP), AVG binary search, and
//! the baselines' per-query costs for context.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_baselines::{Ci, EquiWidthHistogram, UniformSample};
use pc_core::{BoundEngine, BoundOptions};
use pc_datagen::intel::{cols, IntelConfig};
use pc_datagen::missing::remove_top_fraction;
use pc_datagen::{intel, pcgen, QueryGenerator};
use pc_storage::{AggKind, AggQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_query_bounds(c: &mut Criterion) {
    let table = intel::generate(IntelConfig {
        rows: 10_000,
        ..IntelConfig::default()
    });
    let (missing, _) = remove_top_fraction(&table, cols::LIGHT, 0.5);
    let attrs = [cols::DEVICE, cols::EPOCH];

    let corr = pcgen::corr_pc(&missing, &attrs, 400);
    let mut rng = StdRng::seed_from_u64(3);
    let rand_set = pcgen::rand_pc(&missing, &attrs, 40, &mut rng);
    let opts = BoundOptions {
        check_closure: false,
        ..BoundOptions::default()
    };
    let corr_engine = BoundEngine::with_options(&corr, opts);
    let rand_engine = BoundEngine::with_options(&rand_set, opts);

    let qg = QueryGenerator::from_table(&missing, &attrs);
    let mut qrng = StdRng::seed_from_u64(5);
    let sum_queries = qg.gen_workload(AggKind::Sum, cols::LIGHT, 10, &mut qrng);
    let avg_query = qg.gen_query(AggKind::Avg, cols::LIGHT, &mut qrng);
    let count_query = AggQuery::count(sum_queries[0].predicate.clone());

    let mut group = c.benchmark_group("query_bounds");
    group.sample_size(10);
    group.bench_function("corr_pc_sum_greedy", |b| {
        b.iter(|| {
            for q in &sum_queries {
                let _ = corr_engine.bound(q).expect("bound");
            }
        })
    });
    group.bench_function("rand_pc_sum_decompose_milp", |b| {
        b.iter(|| {
            for q in &sum_queries {
                let _ = rand_engine.bound(q).expect("bound");
            }
        })
    });
    group.bench_function("corr_pc_avg_binary_search", |b| {
        b.iter(|| corr_engine.bound(&avg_query).expect("bound"))
    });
    group.bench_function("corr_pc_count", |b| {
        b.iter(|| corr_engine.bound(&count_query).expect("bound"))
    });

    // baseline per-query costs for context
    let hist = EquiWidthHistogram::build(&missing, 60);
    group.bench_function("histogram_conservative", |b| {
        b.iter(|| {
            for q in &sum_queries {
                let _ = hist.bound_conservative(q);
            }
        })
    });
    let mut srng = StdRng::seed_from_u64(7);
    let sample = UniformSample::draw(&missing, 400, &mut srng);
    group.bench_function("uniform_sample_estimate", |b| {
        b.iter(|| {
            for q in &sum_queries {
                let _ = sample.estimate(q, Ci::NonParametric(0.9999));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query_bounds);
criterion_main!(benches);
