//! Criterion bench for the session serve path: cold per-query
//! decomposition vs one long-lived `Session` specializing a cached
//! decomposition, on a stream of repeated aggregate queries against one
//! overlapping PC set.
//!
//! Modes:
//!
//! * `cold` — `BoundEngine::bound` per query: every query re-decomposes
//!   its region from scratch (the pre-session architecture).
//! * `warm_chain` — a `Session` with the cell cache *disabled*: cold
//!   decompositions, but simplex warm starts chained across queries.
//!   Isolates the warm-chaining contribution.
//! * `session` — the full session: decompose once against the domain,
//!   specialize cached cells per query, chain warm starts — with the
//!   default tableau carry, so structurally repeating LPs re-price one
//!   carried canonical tableau across queries. The serve path `pc batch`
//!   uses.
//! * `session_basis` — the full session with `tableau_carry` off:
//!   identical cell cache, but chained warm starts hand over bases only
//!   (the pre-carry architecture). Isolates the carry's contribution.
//!
//! Every mode is asserted (outside the timed region) to produce
//! identical ranges, so the bench only ever compares equal work; each
//! mode's aggregated `BoundReport::solver` counters (pivots, carried vs
//! rebuilt tableaux, branch & bound nodes) are emitted as
//! `serve_pivots/...` JSON lines next to the timing rows.
//!
//! Set `PC_BENCH_JSON=/path/file.json` to append machine-readable results
//! (the repo's `BENCH_serve.json` is produced this way).

use criterion::{criterion_group, criterion_main, Criterion};
use pc_bench::emit_bench_json_line;
use pc_core::budget::pressure::AdmissionVerdict;
use pc_core::{
    BoundEngine, BoundOptions, FrequencyConstraint, LpWork, PcSet, PredicateConstraint,
    QueryBudget, Session, SessionOptions, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The solver-work columns that ride next to criterion's timing rows.
fn emit_work_profile(id: &str, w: &LpWork) {
    emit_bench_json_line(&format!(
        "{{\"id\": \"{id}\", \"pivots\": {}, \"carried\": {}, \"rebuilt\": {}, \"nodes\": {}}}",
        w.pivots, w.carried, w.rebuilt, w.nodes
    ));
}

/// An overlapping constraint set over (region, value): `n` staggered
/// range constraints whose boxes overlap their neighbors, so the
/// decomposition tree is genuinely bushy and worth amortizing.
fn serving_set(n: usize) -> PcSet {
    let schema = Schema::new(vec![("region", AttrType::Int), ("value", AttrType::Float)]);
    let mut set = PcSet::new(schema);
    for i in 0..n {
        let lo = (i * 5 % 23) as f64;
        // every third constraint is a narrow *floor* (a frequency lower
        // bound on a box small enough that query windows contain it
        // whole, so pushdown keeps the bound): floors force Ge rows into
        // the allocation LPs — a real phase 1 per cold solve — and
        // engage the AVG binary search below, the workload shapes the
        // warm-start tiers exist for
        let (hi, freq) = if i % 3 == 0 {
            (
                lo + 3.0,
                FrequencyConstraint::between(2, 15 + (i % 7) as u64),
            )
        } else {
            (
                lo + 9.0 + (i % 4) as f64,
                FrequencyConstraint::at_most(15 + (i % 7) as u64),
            )
        };
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, lo, hi)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 40.0 + 10.0 * (i % 6) as f64)),
            freq,
        ));
    }
    // a catch-all cap closes the set: every query gets finite bounds
    set.push(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, 100.0)),
        FrequencyConstraint::at_most(200),
    ));
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, 40.0));
    domain.set_interval(1, Interval::closed(0.0, 100.0));
    set.set_domain(domain);
    set
}

/// `a == b` within tolerance, treating equal infinities as equal.
fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() < 1e-6
}

/// The query stream: aggregate queries over staggered region windows —
/// the repeated-traffic shape a session amortizes (every query's region
/// cuts the shared decomposition differently). AVG queries are the
/// chain-carry showcase: each runs a binary search of up to ~80
/// feasibility probes over the *same* constraint rows with shifting
/// objectives, so with `tableau_carry` every probe after the first
/// re-prices one carried tableau instead of rebuilding and crashing.
fn query_stream(count: usize) -> Vec<AggQuery> {
    (0..count)
        .map(|i| {
            let lo = (i * 7 % 29) as f64;
            let hi = lo + 6.0 + (i % 5) as f64;
            let predicate = Predicate::atom(Atom::between(0, lo, hi));
            match i % 4 {
                0 => AggQuery::new(AggKind::Sum, 1, predicate),
                1 => AggQuery::count(predicate),
                2 => AggQuery::new(AggKind::Avg, 1, predicate),
                _ => AggQuery::new(AggKind::Max, 1, predicate),
            }
        })
        .collect()
}

fn bench_query_throughput(c: &mut Criterion) {
    let opts = BoundOptions::default();
    let mut group = c.benchmark_group("query_throughput");
    group.sample_size(10);
    for n_constraints in [10usize, 14] {
        let set = serving_set(n_constraints);
        let queries = query_stream(24);

        // sanity outside the timed region: all four modes agree — and
        // their aggregated solver-work counters become the pivot columns
        // of the artifact
        let basis_opts = BoundOptions {
            tableau_carry: false,
            ..opts
        };
        let engine = BoundEngine::with_options(&set, opts);
        let session = Session::with_options(
            set.clone(),
            SessionOptions {
                bound: opts,
                ..SessionOptions::default()
            },
        );
        let session_basis = Session::with_options(
            set.clone(),
            SessionOptions {
                bound: basis_opts,
                ..SessionOptions::default()
            },
        );
        let chain_only = Session::with_options(
            set.clone(),
            SessionOptions {
                bound: opts,
                cache_cells: false,
                ..SessionOptions::default()
            },
        );
        let mut cold_work = LpWork::default();
        let mut session_work = LpWork::default();
        let mut basis_work = LpWork::default();
        let absorb = |into: &mut LpWork, w: LpWork| {
            into.pivots += w.pivots;
            into.carried += w.carried;
            into.rebuilt += w.rebuilt;
            into.nodes += w.nodes;
        };
        for q in &queries {
            let cold = engine.bound(q).expect("bounded workload");
            let served = session.bound(q).expect("bounded workload");
            let basis = session_basis.bound(q).expect("bounded workload");
            let chained = chain_only.bound(q).expect("bounded workload").range;
            absorb(&mut cold_work, cold.solver);
            absorb(&mut session_work, served.solver);
            absorb(&mut basis_work, basis.solver);
            let (cold, served, basis) = (cold.range, served.range, basis.range);
            assert!(
                close(cold.lo, served.lo) && close(cold.hi, served.hi),
                "session mismatch on {q:?}: {cold:?} vs {served:?}"
            );
            assert!(
                close(cold.lo, basis.lo) && close(cold.hi, basis.hi),
                "session_basis mismatch on {q:?}: {cold:?} vs {basis:?}"
            );
            assert!(
                close(cold.lo, chained.lo) && close(cold.hi, chained.hi),
                "warm-chain mismatch on {q:?}: {cold:?} vs {chained:?}"
            );
        }
        let param = format!("{n_constraints}pc");
        emit_work_profile(&format!("serve_pivots/cold/{param}"), &cold_work);
        emit_work_profile(&format!("serve_pivots/session/{param}"), &session_work);
        emit_work_profile(&format!("serve_pivots/session_basis/{param}"), &basis_work);

        group.bench_with_input(
            criterion::BenchmarkId::new("cold", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let engine = BoundEngine::with_options(&set, opts);
                    for q in qs {
                        engine.bound(q).expect("bounded workload");
                    }
                })
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("warm_chain", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = Session::with_options(
                        set.clone(),
                        SessionOptions {
                            bound: opts,
                            cache_cells: false,
                            ..SessionOptions::default()
                        },
                    );
                    for q in qs {
                        session.bound(q).expect("bounded workload");
                    }
                })
            },
        );
        // The session is constructed (and its cache filled) once, outside
        // the timed loop: this measures the steady serving state — the
        // whole point of the layer. The first iteration pays the one-time
        // decomposition; criterion's warmup absorbs it.
        group.bench_with_input(
            criterion::BenchmarkId::new("session", &param),
            &queries,
            |b, qs| {
                let session = Session::with_options(
                    set.clone(),
                    SessionOptions {
                        bound: opts,
                        ..SessionOptions::default()
                    },
                );
                b.iter(|| {
                    for q in qs {
                        session.bound(q).expect("bounded workload");
                    }
                })
            },
        );
        // carry-off ablation: same cache, bases-only warm chains
        group.bench_with_input(
            criterion::BenchmarkId::new("session_basis", &param),
            &queries,
            |b, qs| {
                let session = Session::with_options(
                    set.clone(),
                    SessionOptions {
                        bound: basis_opts,
                        ..SessionOptions::default()
                    },
                );
                b.iter(|| {
                    for q in qs {
                        session.bound(q).expect("bounded workload");
                    }
                })
            },
        );
    }
    group.finish();
}

/// Extra constraints the churn script admits and retires: wide caps whose
/// boxes cover the query windows whole, so existing cells are *contained*
/// rather than cut — the allocation LPs then keep their variables and
/// gain/lose exactly the churned constraint's row, which is the shape the
/// carried-tableau delta adaptation absorbs (append/delete one row + dual
/// restore instead of a cold rebuild).
fn churn_pool() -> Vec<PredicateConstraint> {
    (0..4)
        .map(|k| {
            PredicateConstraint::new(
                Predicate::atom(Atom::between(0, 0.0, 40.0)),
                ValueConstraint::none().with(1, Interval::closed(0.0, 95.0 - 5.0 * k as f64)),
                FrequencyConstraint::at_most(180 - 10 * k as u64),
            )
        })
        .collect()
}

/// One run of the churn script against a session: serve `queries` in
/// rounds, admitting a pool constraint after each round and retiring the
/// oldest live one every other round. Returns the served ranges plus the
/// summed per-epoch derivation stats (`cell_set().stats()` is each
/// epoch's own work) and the summed per-query solver work.
fn run_churn(
    session: &Session,
    queries: &[AggQuery],
) -> (Vec<(f64, f64)>, pc_core::DecomposeStats, LpWork) {
    let pool = churn_pool();
    let mut ranges = Vec::new();
    let mut decompose_work = pc_core::DecomposeStats::default();
    let mut solver_work = LpWork::default();
    let absorb_epoch = |session: &Session, w: &mut pc_core::DecomposeStats| {
        let stats = session.cell_set().expect("decomposable workload").stats();
        w.absorb(&stats);
    };
    absorb_epoch(session, &mut decompose_work);
    let mut live: Vec<pc_core::ConstraintId> = Vec::new();
    for (round, chunk) in queries.chunks(3).enumerate() {
        for q in chunk {
            let r = session.bound(q).expect("bounded workload");
            solver_work.pivots += r.solver.pivots;
            solver_work.carried += r.solver.carried;
            solver_work.rebuilt += r.solver.rebuilt;
            solver_work.nodes += r.solver.nodes;
            ranges.push((r.range.lo, r.range.hi));
        }
        if let Some(pc) = pool.get(round % pool.len()) {
            live.push(session.add_constraint(pc.clone()));
            absorb_epoch(session, &mut decompose_work);
        }
        if round % 2 == 1 {
            if let Some(id) = (!live.is_empty()).then(|| live.remove(0)) {
                session
                    .retire_constraint(id)
                    .expect("live id retires cleanly");
                absorb_epoch(session, &mut decompose_work);
            }
        }
    }
    (ranges, decompose_work, solver_work)
}

/// The constraint-churn scenario: serve N queries while K constraints are
/// added/retired in between — the versioned session's reason to exist.
///
/// * `incremental` — delta-derived epochs + tableau carry (the default
///   serving configuration).
/// * `rebuild` — `SessionOptions::incremental` off: every mutation pays a
///   full re-decomposition (the pre-epoch architecture). Isolates the
///   derivation's SAT-check savings (`churn_work/.../sat_checks`).
/// * `basis` — incremental epochs but `tableau_carry` off: chained warm
///   starts hand over bases only, so every cross-epoch LP falls back to
///   a crash/cold start instead of a one-row adaptation. Isolates the
///   carry's pivot savings (`churn_work/.../pivots`).
///
/// All three modes are asserted to produce identical ranges (and to match
/// a fresh engine on the final catalog), so the timings compare equal
/// answers; per-mode work profiles are emitted as `churn_work/...` JSON
/// lines next to criterion's timing rows.
fn bench_constraint_churn(c: &mut Criterion) {
    let opts = BoundOptions::default();
    let basis_opts = BoundOptions {
        tableau_carry: false,
        ..opts
    };
    let mut group = c.benchmark_group("constraint_churn");
    group.sample_size(10);
    for n_constraints in [10usize, 14] {
        let set = serving_set(n_constraints);
        let queries = query_stream(18);
        let make = |bound: BoundOptions, incremental: bool| {
            Session::with_options(
                set.clone(),
                SessionOptions {
                    bound,
                    incremental,
                    ..SessionOptions::default()
                },
            )
        };

        // sanity + work profiles outside the timed region
        let incremental = make(opts, true);
        let rebuild = make(opts, false);
        let basis = make(basis_opts, true);
        let (inc_ranges, inc_cells, inc_lp) = run_churn(&incremental, &queries);
        let (reb_ranges, reb_cells, reb_lp) = run_churn(&rebuild, &queries);
        let (bas_ranges, bas_cells, bas_lp) = run_churn(&basis, &queries);
        assert_eq!(inc_ranges.len(), reb_ranges.len());
        for (i, (a, b)) in inc_ranges.iter().zip(&reb_ranges).enumerate() {
            assert!(
                close(a.0, b.0) && close(a.1, b.1),
                "rebuild mismatch at {i}: {a:?} vs {b:?}"
            );
        }
        for (i, (a, b)) in inc_ranges.iter().zip(&bas_ranges).enumerate() {
            assert!(
                close(a.0, b.0) && close(a.1, b.1),
                "basis mismatch at {i}: {a:?} vs {b:?}"
            );
        }
        // the final catalog answers like a fresh engine
        {
            let final_set = incremental.pc_set();
            let fresh = BoundEngine::with_options(&final_set, opts);
            let q = &queries[0];
            let a = fresh.bound(q).expect("bounded workload").range;
            let b = incremental.bound(q).expect("bounded workload").range;
            assert!(close(a.lo, b.lo) && close(a.hi, b.hi));
        }
        let param = format!("{n_constraints}pc");
        for (mode, cells, lp) in [
            ("incremental", &inc_cells, &inc_lp),
            ("rebuild", &reb_cells, &reb_lp),
            ("basis", &bas_cells, &bas_lp),
        ] {
            emit_bench_json_line(&format!(
                "{{\"id\": \"churn_work/{mode}/{param}\", \"sat_checks\": {}, \
                 \"incremental_splits\": {}, \"pivots\": {}, \"carried\": {}, \
                 \"rebuilt\": {}, \"nodes\": {}}}",
                cells.sat_checks,
                cells.incremental_splits,
                lp.pivots,
                lp.carried,
                lp.rebuilt,
                lp.nodes
            ));
        }

        group.bench_with_input(
            criterion::BenchmarkId::new("incremental", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = make(opts, true);
                    run_churn(&session, qs)
                })
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("rebuild", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = make(opts, false);
                    run_churn(&session, qs)
                })
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("basis", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = make(basis_opts, true);
                    run_churn(&session, qs)
                })
            },
        );
    }
    group.finish();
}

/// Latency percentile out of a sorted sample, in microseconds.
fn percentile_us(sorted: &[Duration], pct: usize) -> u128 {
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx].as_micros()
}

/// The deadline-stress scenario: the serving stream under per-query
/// [`QueryBudget`]s — the robustness layer's "always answers by the
/// deadline" promise, measured.
///
/// Two artifact families ride next to the timing rows:
///
/// * `deadline_stress/deadline_<t>` — the 24-query stream served under a
///   per-query wall-clock deadline `t`, many rounds. Reports the
///   **degraded hit-rate** (what fraction of answers had to fall back to
///   a sound-but-wider range) and the latency percentiles. Every
///   degraded answer is asserted to *contain* the exact range first —
///   the stress never trades soundness.
/// * `deadline_stress/cancel` — the same stream served on budgets that
///   are **already cancelled** when the call starts: the measured
///   latency is pure cancellation response (how fast the pipeline's
///   cooperative checks notice and unwind through the degradation
///   ladder), and its p99 is the "cancel latency" a serving tier would
///   quote.
fn bench_deadline_stress(c: &mut Criterion) {
    let opts = BoundOptions::default();
    let set = serving_set(14);
    let queries = query_stream(24);
    let session = Session::with_options(
        set.clone(),
        SessionOptions {
            bound: opts,
            ..SessionOptions::default()
        },
    );
    // Exact oracle (and cache warm-up) outside any measured region.
    let oracle: Vec<(f64, f64)> = queries
        .iter()
        .map(|q| {
            let r = session.bound(q).expect("bounded workload").range;
            (r.lo, r.hi)
        })
        .collect();

    const ROUNDS: usize = 20;
    for (label, timeout) in [
        ("50us", Duration::from_micros(50)),
        ("500us", Duration::from_micros(500)),
        ("5ms", Duration::from_millis(5)),
    ] {
        let mut lat: Vec<Duration> = Vec::with_capacity(ROUNDS * queries.len());
        let mut degraded = 0usize;
        for _ in 0..ROUNDS {
            for (q, &(lo, hi)) in queries.iter().zip(&oracle) {
                let budget = QueryBudget::armed().with_timeout(timeout);
                let t0 = Instant::now();
                let r = session
                    .bound_budgeted(q, &budget)
                    .expect("a deadline degrades, never errors");
                lat.push(t0.elapsed());
                assert!(
                    r.range.lo <= lo + 1e-6 && r.range.hi >= hi - 1e-6,
                    "deadline {label}: degraded [{}, {}] must contain exact [{lo}, {hi}]",
                    r.range.lo,
                    r.range.hi
                );
                degraded += r.degraded as usize;
            }
        }
        lat.sort();
        emit_bench_json_line(&format!(
            "{{\"id\": \"deadline_stress/deadline_{label}\", \"queries\": {}, \
             \"degraded\": {degraded}, \"degraded_rate\": {:.4}, \
             \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            lat.len(),
            degraded as f64 / lat.len() as f64,
            percentile_us(&lat, 50),
            percentile_us(&lat, 99),
            lat.last().unwrap().as_micros()
        ));
    }

    // Cancellation response: the budget is tripped before the call, so
    // the whole measured latency is "how long until the engine notices
    // and answers degraded".
    let mut lat: Vec<Duration> = Vec::with_capacity(ROUNDS * queries.len());
    for _ in 0..ROUNDS {
        for (q, &(lo, hi)) in queries.iter().zip(&oracle) {
            let budget = QueryBudget::armed().with_sat_cap(u64::MAX);
            budget.cancel_token().expect("armed budget").cancel();
            let t0 = Instant::now();
            let r = session
                .bound_budgeted(q, &budget)
                .expect("a cancel degrades, never errors");
            lat.push(t0.elapsed());
            assert!(r.degraded, "a cancelled query's answer must be marked");
            assert!(r.range.lo <= lo + 1e-6 && r.range.hi >= hi - 1e-6);
        }
    }
    lat.sort();
    emit_bench_json_line(&format!(
        "{{\"id\": \"deadline_stress/cancel\", \"queries\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        lat.len(),
        percentile_us(&lat, 50),
        percentile_us(&lat, 99),
        lat.last().unwrap().as_micros()
    ));

    // Timing rows: the budget layer's overhead on the un-tripped fast
    // path (unlimited vs a deadline generous enough to never fire).
    let mut group = c.benchmark_group("deadline_stress");
    group.sample_size(10);
    group.bench_with_input(
        criterion::BenchmarkId::new("unlimited", "14pc"),
        &queries,
        |b, qs| {
            b.iter(|| {
                for q in qs {
                    session.bound(q).expect("bounded workload");
                }
            })
        },
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("deadline_1s", "14pc"),
        &queries,
        |b, qs| {
            b.iter(|| {
                for q in qs {
                    let budget = QueryBudget::armed().with_timeout(Duration::from_secs(1));
                    session
                        .bound_budgeted(q, &budget)
                        .expect("bounded workload");
                }
            })
        },
    );
    group.finish();
}

/// One answered arrival of an open-loop burst (see
/// [`bench_deadline_burst`]): latency is measured from the *planned*
/// arrival instant, so queue wait counts against the query exactly as a
/// client would experience it.
struct BurstRow {
    lat: Duration,
    degraded: bool,
    shed: bool,
    tight: bool,
    lo: f64,
    hi: f64,
    qi: usize,
}

/// Fire `arrivals` queries at a fixed `interval` (open loop: the driver
/// never waits for completions), each with its own arrival-anchored
/// deadline, and collect every answer. `tagged` routes the spawns through
/// the pool's EDF lane (the session's own fan-out inherits the tag via
/// `deadline_sched`); untagged spawns land in the plain FIFO injector.
fn run_burst(
    session: &Arc<Session>,
    queries: &[AggQuery],
    arrivals: usize,
    interval: Duration,
    deadlines: [Duration; 2],
    tagged: bool,
) -> Vec<BurstRow> {
    let (tx, rx) = std::sync::mpsc::channel::<BurstRow>();
    let start = Instant::now() + Duration::from_micros(200);
    for i in 0..arrivals {
        let planned = start + interval * i as u32;
        while Instant::now() < planned {
            std::hint::spin_loop();
        }
        let qi = i % queries.len();
        let q = queries[qi].clone();
        // One urgent arrival in six: the tight class alone must fit in
        // the pool's *contended* capacity (roughly 3x the uncontended
        // probe), or no scheduler could save it and the comparison would
        // only measure shedding.
        let tight = i % 6 == 0;
        let deadline = planned + deadlines[usize::from(!tight)];
        let session = Arc::clone(session);
        let tx = tx.clone();
        // Armed at arrival (not at task start): `armed_for` is the real
        // queue wait by the time the query runs.
        let budget = QueryBudget::armed().with_deadline(deadline);
        // Arrival-time admission: the verdict must come before the queue
        // wait, not after it — judging at task start would admit every
        // arrival into a queue none of them can survive.
        let ticket = session.admit(&q, &budget);
        let shed_at_arrival = matches!(
            ticket.as_ref().map(|t| t.verdict()),
            Some(AdmissionVerdict::Shed)
        );
        let task = move || {
            let r = session
                .bound_ticketed(&q, &budget, ticket)
                .expect("a deadline degrades, never errors");
            let shed = matches!(
                r.sched.as_ref().map(|s| s.verdict),
                Some(AdmissionVerdict::Shed)
            );
            let _ = tx.send(BurstRow {
                lat: planned.elapsed(),
                degraded: r.degraded,
                shed,
                tight,
                lo: r.range.lo,
                hi: r.range.hi,
                qi,
            });
        };
        if tagged {
            // A shed verdict is a rejection notice: it costs one serial
            // granule and should reach the client immediately, not queue
            // behind the very backlog it was shed to avoid — tag it
            // "due now" so it pops ahead of everything.
            let tag = if shed_at_arrival {
                Instant::now()
            } else {
                deadline
            };
            rayon::with_task_deadline(Some(tag), || rayon::spawn(task));
        } else {
            rayon::spawn(task);
        }
    }
    drop(tx);
    rx.iter().collect()
}

/// The overload scenario the scheduler PR exists for: an open-loop burst
/// of arrivals (fixed inter-arrival gap, driver never backpressures)
/// with **mixed urgency** — arrivals alternate a tight and a loose
/// deadline, both anchored at the arrival instant. Served FIFO, tight
/// queries queue behind loose ones and trip; served EDF with admission,
/// the lane pops the most urgent task first and the gauge degrades or
/// sheds only what provably cannot finish. Same offered load, same
/// deadlines, same session configuration otherwise — the artifact rows
/// (`deadline_stress/burst_fifo` vs `burst_edf`) report degraded-rate
/// and latency percentiles, and every answer (degraded, shed, or exact)
/// is asserted to contain the exact range before anything is recorded.
fn bench_deadline_burst(_c: &mut Criterion) {
    let set = serving_set(14);
    let queries = query_stream(24);
    const ARRIVALS: usize = 96;

    // Scale the scenario to this machine. The burst constants are
    // ratios of the measured uncontended per-query service time, so the
    // same overload factor reproduces on fast and slow hosts alike;
    // fixed microsecond constants flip between trivial and hopeless as
    // the host speed drifts. Arrivals come ~1.7x faster than serial
    // drain, so the queue by burst end (~40 services deep) reaches the
    // loose deadline (42 services): early loose arrivals survive, the
    // late tail is marginal or hopeless and worth rejecting early, and
    // tight ones (14 services) only survive if served first — the
    // regime where scheduling, not capacity, decides who meets a
    // deadline.
    let probe = Session::with_options(set.clone(), SessionOptions::default());
    for q in &queries {
        probe.bound(q).expect("probe warm-up");
    }
    // Min over several passes: the probe anchors every constant below,
    // and a single descheduling sputter during one pass would inflate it
    // 3-4x and silently swap the regime for an easy one. A query can't
    // run faster than its work, so the min is the robust estimate.
    let mut service = Duration::MAX;
    for _ in 0..5 {
        let probe_start = Instant::now();
        for q in &queries {
            probe.bound(q).expect("service probe");
        }
        service = service.min(probe_start.elapsed() / queries.len() as u32);
    }
    let service = service.max(Duration::from_micros(40));
    let interval = service * 3 / 5;
    let deadlines = [service * 14, service * 42];

    // Exact oracle from an untimed session.
    let oracle_session = Session::with_options(set.clone(), SessionOptions::default());
    let oracle: Vec<(f64, f64)> = queries
        .iter()
        .map(|q| {
            let r = oracle_session.bound(q).expect("bounded workload").range;
            (r.lo, r.hi)
        })
        .collect();

    let mut arms: Vec<(&str, bool, Arc<Session>, Vec<BurstRow>)> = Vec::new();
    for (mode, tagged, options) in [
        (
            "fifo",
            false,
            SessionOptions {
                deadline_sched: false,
                admission: false,
                ..SessionOptions::default()
            },
        ),
        ("edf", true, SessionOptions::default()),
    ] {
        let session = Arc::new(Session::with_options(set.clone(), options));
        // Warm the cell cache and worker warm-starts outside the burst:
        // this benchmarks the scheduler under load, not a cold session.
        for q in &queries {
            session.bound(q).expect("warm-up");
        }
        // Calibrate the gauge's service-time EWMA with uncontended timed
        // runs (generous deadline: admits exact, completes, calibrates).
        // A burst against an uncalibrated gauge admits everything — that
        // measures the cold-start transient, not the scheduler.
        for q in &queries {
            let warm = QueryBudget::armed().with_timeout(Duration::from_secs(1));
            session.bound_budgeted(q, &warm).expect("calibration run");
        }
        arms.push((mode, tagged, session, Vec::new()));
    }
    // Pool several bursts: one 96-arrival burst's p99 is its max, so a
    // single unlucky steal would dominate the row. Rounds alternate the
    // FIFO and EDF arms so slow machine drift hits both equally, run on
    // the same per-arm session — the gauge stays calibrated, as in
    // steady serving — with a settle gap so each burst starts
    // queue-empty.
    const ROUNDS: usize = 12;
    for _ in 0..ROUNDS {
        for (_, tagged, session, rows) in arms.iter_mut() {
            // Re-converge the gauge in the calm gap between bursts:
            // settles from inside a burst measure contention, not
            // service, and drift the EWMA up; in steady serving the
            // calm traffic between bursts pulls it back down.
            for q in &queries {
                let warm = QueryBudget::armed().with_timeout(Duration::from_secs(1));
                session.bound_budgeted(q, &warm).expect("calibration run");
            }
            rows.extend(run_burst(
                session, &queries, ARRIVALS, interval, deadlines, *tagged,
            ));
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    for (mode, _, _, mut rows) in arms {
        for row in &rows {
            let (lo, hi) = oracle[row.qi];
            assert!(
                row.lo <= lo + 1e-6 && row.hi >= hi - 1e-6,
                "burst_{mode}: answer [{}, {}] must contain exact [{lo}, {hi}]",
                row.lo,
                row.hi
            );
        }
        let degraded = rows.iter().filter(|r| r.degraded).count();
        let degraded_tight = rows.iter().filter(|r| r.degraded && r.tight).count();
        let shed = rows.iter().filter(|r| r.shed).count();
        rows.sort_by_key(|r| r.lat);
        let lat: Vec<Duration> = rows.iter().map(|r| r.lat).collect();
        emit_bench_json_line(&format!(
            "{{\"id\": \"deadline_stress/burst_{mode}\", \"arrivals\": {}, \
             \"service_us\": {}, \
             \"interval_us\": {}, \"deadline_tight_us\": {}, \"deadline_loose_us\": {}, \
             \"degraded\": {degraded}, \"degraded_rate\": {:.4}, \
             \"degraded_tight\": {degraded_tight}, \"shed\": {shed}, \
             \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            rows.len(),
            service.as_micros(),
            interval.as_micros(),
            deadlines[0].as_micros(),
            deadlines[1].as_micros(),
            degraded as f64 / rows.len() as f64,
            percentile_us(&lat, 50),
            percentile_us(&lat, 99),
            lat.last().unwrap().as_micros()
        ));
    }
}

criterion_group!(
    benches,
    bench_query_throughput,
    bench_constraint_churn,
    bench_deadline_stress,
    bench_deadline_burst
);
criterion_main!(benches);
